#include "stack/ip_stack.h"

#include "net/buffer.h"

namespace mip::stack {

IpStack::IpStack(sim::Simulator& simulator, sim::Node& node)
    : simulator_(simulator), node_(node) {
    register_protocol(net::IpProto::Icmp,
                      [this](const net::Packet& p, std::size_t in_iface) {
                          handle_icmp(p, in_iface);
                      });
}

std::size_t IpStack::add_interface(sim::Nic& nic) {
    const std::size_t index = interfaces_.size();
    interfaces_.push_back(std::make_unique<Interface>(simulator_, nic));
    nic.set_handler([this, index](const sim::Frame& frame) { on_frame(index, frame); });
    return index;
}

std::size_t IpStack::add_virtual_interface(std::string name, Interface::VirtualSender sender) {
    interfaces_.push_back(std::make_unique<Interface>(std::move(name), std::move(sender)));
    return interfaces_.size() - 1;
}

void IpStack::configure(std::size_t index, net::Ipv4Address addr, net::Prefix subnet,
                        bool add_connected_route) {
    Interface& ifc = iface(index);
    if (ifc.configured()) {
        deconfigure(index);
    }
    ifc.configure(addr, subnet);
    add_local_address(addr);
    if (add_connected_route) {
        routes_.add({subnet, net::Ipv4Address{}, index, 0});
    }
}

void IpStack::deconfigure(std::size_t index) {
    Interface& ifc = iface(index);
    if (!ifc.configured()) return;
    remove_local_address(ifc.address());
    routes_.remove_interface(index);
    ifc.deconfigure();
}

void IpStack::add_default_route(net::Ipv4Address gateway, std::size_t interface_index) {
    routes_.add({net::kDefaultRoute, gateway, interface_index, 0});
}

void IpStack::add_ingress_filter(std::size_t interface_index,
                                 std::shared_ptr<const routing::FilterRule> rule) {
    ingress_filters_[interface_index].push_back(std::move(rule));
}

void IpStack::add_egress_filter(std::size_t interface_index,
                                std::shared_ptr<const routing::FilterRule> rule) {
    egress_filters_[interface_index].push_back(std::move(rule));
}

namespace {
void remove_filter_rule(
    std::map<std::size_t, std::vector<std::shared_ptr<const routing::FilterRule>>>& filters,
    std::size_t interface_index, const routing::FilterRule* rule) {
    auto it = filters.find(interface_index);
    if (it == filters.end()) return;
    std::erase_if(it->second, [rule](const auto& r) { return r.get() == rule; });
    if (it->second.empty()) filters.erase(it);
}
}  // namespace

void IpStack::remove_ingress_filter(std::size_t interface_index,
                                    const routing::FilterRule* rule) {
    remove_filter_rule(ingress_filters_, interface_index, rule);
}

void IpStack::remove_egress_filter(std::size_t interface_index,
                                   const routing::FilterRule* rule) {
    remove_filter_rule(egress_filters_, interface_index, rule);
}

void IpStack::add_local_address(net::Ipv4Address addr) {
    if (addr.is_unspecified()) return;
    ++local_addresses_[addr];
}

void IpStack::remove_local_address(net::Ipv4Address addr) {
    auto it = local_addresses_.find(addr);
    if (it == local_addresses_.end()) return;
    if (--it->second <= 0) {
        local_addresses_.erase(it);
    }
}

bool IpStack::is_local_address(net::Ipv4Address addr) const {
    return local_addresses_.contains(addr);
}

void IpStack::join_group(net::Ipv4Address group) {
    if (!group.is_multicast()) {
        throw std::invalid_argument("join_group: " + group.to_string() +
                                    " is not a multicast address");
    }
    joined_groups_.insert(group);
}

void IpStack::leave_group(net::Ipv4Address group) {
    joined_groups_.erase(group);
}

void IpStack::register_protocol(net::IpProto proto, ProtocolHandler handler) {
    protocols_[proto] = std::move(handler);
}

void IpStack::emit_trace(sim::TraceKind kind, const net::Packet* packet,
                         const sim::TraceDetail& detail) {
    if (trace_ == nullptr) return;
    trace_->record(kind, simulator_.now(), trace_->node_id(node_), nullptr,
                   packet != nullptr
                       ? static_cast<std::uint32_t>(packet->wire_size())
                       : 0,
                   0, packet != nullptr ? packet->journey() : 0, detail);
}

void IpStack::trace_packet(sim::TraceKind kind, const net::Packet& packet,
                           const sim::TraceDetail& detail) {
    emit_trace(kind, &packet, detail);
}

void IpStack::begin_journey(net::Packet& packet) {
    if (packet.journey() != 0) return;  // mid-journey (forward/encap/resend)
    packet.set_journey(simulator_.next_packet_id());
    emit_trace(sim::TraceKind::PacketSent, &packet,
               sim::TraceDetail::args(
                   sim::TraceDetailKind::ProtoSrcDst,
                   static_cast<std::uint32_t>(packet.header().protocol),
                   packet.header().src.value(), packet.header().dst.value()));
}

FlowKey IpStack::flow_from_packet(const net::Packet& packet) {
    FlowKey flow;
    flow.bound_src = packet.header().src;
    flow.dst = packet.header().dst;
    flow.proto = packet.header().protocol;
    // For unfragmented TCP/UDP, the ports are the first four payload bytes.
    if ((flow.proto == net::IpProto::Tcp || flow.proto == net::IpProto::Udp) &&
        !packet.header().is_fragment() && packet.payload().size() >= 4) {
        net::BufferReader r(packet.payload());
        flow.src_port = r.u16();
        flow.dst_port = r.u16();
    }
    return flow;
}

net::Ipv4Address IpStack::select_source(const FlowKey& flow) const {
    if (!flow.bound_src.is_unspecified()) {
        return flow.bound_src;
    }
    if (policy_ != nullptr) {
        if (auto res = policy_->resolve(flow)) {
            if (!res->source_hint.is_unspecified()) {
                return res->source_hint;
            }
            if (res->kind == Resolution::Kind::Interface &&
                res->interface_index < interfaces_.size() &&
                interfaces_[res->interface_index]->configured()) {
                return interfaces_[res->interface_index]->address();
            }
        }
    }
    if (flow.dst.is_multicast() || flow.dst.is_broadcast()) {
        // Link-scope traffic goes out the first configured physical
        // interface (see send()); source accordingly.
        for (const auto& ifc : interfaces_) {
            if (ifc->is_physical() && ifc->configured()) {
                return ifc->address();
            }
        }
        return net::Ipv4Address{};
    }
    if (auto entry = routes_.lookup(flow.dst)) {
        const Interface& out = iface(entry->interface_index);
        if (out.configured()) {
            return out.address();
        }
    }
    return net::Ipv4Address{};
}

void IpStack::send(net::Packet packet, std::optional<FlowKey> flow_opt) {
    FlowKey flow = flow_opt ? *flow_opt : flow_from_packet(packet);
    flow.dst = packet.header().dst;
    flow.proto = packet.header().protocol;

    if (packet.header().identification == 0) {
        packet.header().identification = next_ip_id_++;
        if (next_ip_id_ == 0) next_ip_id_ = 1;
    }
    begin_journey(packet);

    // Multicast sends go out the first configured physical interface in a
    // single link-scope frame (RFC 1112 level-2 host, no routing).
    if (packet.header().dst.is_multicast()) {
        for (std::size_t i = 0; i < interfaces_.size(); ++i) {
            Interface& ifc = *interfaces_[i];
            if (ifc.is_physical() && ifc.configured()) {
                if (packet.header().src.is_unspecified()) {
                    packet.header().src = ifc.address();
                }
                ++stats_.packets_sent;
                const net::Ipv4Address group = packet.header().dst;
                transmit(std::move(packet), i, group);
                return;
            }
        }
        ++stats_.no_route_drops;
        return;
    }

    Resolution res = Resolution::table();
    if (policy_ != nullptr) {
        if (auto r = policy_->resolve(flow)) {
            res = *r;
        }
    }

    // Fill in the source address if the caller left it open.
    if (packet.header().src.is_unspecified()) {
        net::Ipv4Address src = res.source_hint;
        if (src.is_unspecified() && res.kind == Resolution::Kind::Interface &&
            res.interface_index < interfaces_.size()) {
            src = interfaces_[res.interface_index]->address();
        }
        packet.header().src = src;
    }

    ++stats_.packets_sent;

    switch (res.kind) {
        case Resolution::Kind::Loopback:
            deliver_local(packet, kNoInterface);
            return;
        case Resolution::Kind::Interface: {
            Interface& out = iface(res.interface_index);
            if (!out.is_physical()) {
                if (packet.header().src.is_unspecified() && !res.source_hint.is_unspecified()) {
                    packet.header().src = res.source_hint;
                }
                out.virtual_sender()(std::move(packet));
                return;
            }
            net::Ipv4Address next_hop =
                res.next_hop.is_unspecified() ? packet.header().dst : res.next_hop;
            transmit(std::move(packet), res.interface_index, next_hop);
            return;
        }
        case Resolution::Kind::Table:
            break;
    }

    if (is_local_address(packet.header().dst)) {
        deliver_local(packet, kNoInterface);
        return;
    }
    auto entry = routes_.lookup(packet.header().dst);
    if (!entry) {
        ++stats_.no_route_drops;
        emit_trace(sim::TraceKind::NoRoute, &packet,
                   sim::TraceDetail::args(sim::TraceDetailKind::NoRouteSend,
                                          packet.header().dst.value()));
        return;
    }
    Interface& out = iface(entry->interface_index);
    if (packet.header().src.is_unspecified()) {
        packet.header().src = out.address();
    }
    if (!out.is_physical()) {
        out.virtual_sender()(std::move(packet));
        return;
    }
    const net::Ipv4Address next_hop = entry->on_link() ? packet.header().dst : entry->gateway;
    transmit(std::move(packet), entry->interface_index, next_hop);
}

void IpStack::transmit(net::Packet packet, std::size_t interface_index,
                       net::Ipv4Address next_hop) {
    Interface& out = iface(interface_index);
    if (!out.is_physical() || out.nic() == nullptr || !out.nic()->connected()) {
        ++stats_.no_route_drops;
        emit_trace(sim::TraceKind::NoRoute, &packet,
                   sim::TraceDetail::args(sim::TraceDetailKind::InterfaceDown, 0));
        return;
    }
    // Egress filters run on the full datagram before fragmentation.
    if (!run_filters(egress_filters_[interface_index], packet,
                     &stats_.egress_filter_drops)) {
        return;
    }
    const std::size_t mtu = out.mtu();
    std::vector<net::Packet> pieces;
    try {
        pieces = net::fragment(packet, mtu);
    } catch (const std::invalid_argument&) {
        emit_trace(sim::TraceKind::FrameTooBig, &packet,
                   sim::TraceDetail::args(sim::TraceDetailKind::DfExceedsMtu, 0));
        return;
    }
    if (pieces.size() > 1) {
        stats_.fragments_sent += pieces.size();
    }
    for (auto& piece : pieces) {
        transmit_one(std::move(piece), interface_index, next_hop);
    }
}

void IpStack::send_direct(net::Packet packet, std::size_t interface_index,
                          net::Ipv4Address next_hop) {
    if (packet.header().identification == 0) {
        packet.header().identification = next_ip_id_++;
        if (next_ip_id_ == 0) next_ip_id_ = 1;
    }
    begin_journey(packet);
    ++stats_.packets_sent;
    if (next_hop.is_unspecified()) {
        next_hop = packet.header().dst;
    }
    transmit(std::move(packet), interface_index, next_hop);
}

void IpStack::transmit_one(net::Packet fragment, std::size_t interface_index,
                           net::Ipv4Address next_hop) {
    Interface& out = iface(interface_index);
    arp::ArpEngine* arp = out.arp();
    sim::Nic* nic = out.nic();
    const std::uint64_t journey = fragment.journey();
    // Wire bytes come out of the world's buffer pool; the link layer
    // releases them back once the frame is delivered (or dropped).
    auto wire = fragment.to_wire(simulator_.buffer_pool());
    if (next_hop.is_broadcast() || next_hop.is_multicast()) {
        sim::Frame frame;
        frame.dst = next_hop.is_broadcast()
                        ? sim::MacAddress::broadcast()
                        : sim::MacAddress::multicast_for(next_hop.value());
        frame.type = net::EtherType::Ipv4;
        frame.payload = std::move(wire);
        frame.journey = journey;
        nic->send(std::move(frame));
        return;
    }
    arp->resolve(next_hop, [this, nic, journey, wire = std::move(wire)](
                               std::optional<sim::MacAddress> mac) mutable {
        if (!mac) {
            ++stats_.arp_failures;
            emit_trace(sim::TraceKind::NoRoute, nullptr,
                       sim::TraceDetail::args(sim::TraceDetailKind::ArpFailed, 0));
            simulator_.buffer_pool().release(std::move(wire));
            return;
        }
        sim::Frame frame;
        frame.dst = *mac;
        frame.type = net::EtherType::Ipv4;
        frame.payload = std::move(wire);
        frame.journey = journey;
        nic->send(std::move(frame));
    });
}

void IpStack::on_frame(std::size_t interface_index, const sim::Frame& frame) {
    switch (frame.type) {
        case net::EtherType::Arp: {
            Interface& ifc = iface(interface_index);
            if (ifc.arp() != nullptr) {
                ifc.arp()->handle_frame(frame);
            }
            return;
        }
        case net::EtherType::Ipv4:
            on_ip_frame(interface_index, frame);
            return;
    }
}

void IpStack::on_ip_frame(std::size_t interface_index, const sim::Frame& frame) {
    net::Packet packet;
    try {
        packet = net::Packet::from_wire(frame.payload);
    } catch (const net::ParseError&) {
        return;  // corrupted packets vanish, as on a real wire
    }
    // The journey id rode beside the wire bytes; pick it back up so this
    // stack's events stay correlated with the sender's.
    packet.set_journey(frame.journey);
    ++stats_.packets_received;

    if (!run_filters(ingress_filters_[interface_index], packet,
                     &stats_.ingress_filter_drops)) {
        return;
    }

    if (packet.header().dst.is_multicast()) {
        // Multicast is link-scoped in this simulator (no IGMP/DVMRP):
        // deliver if joined, never forward.
        if (joined_groups_.contains(packet.header().dst)) {
            deliver_local(packet, interface_index);
        }
        return;
    }
    if (is_local_address(packet.header().dst) || packet.header().dst.is_broadcast()) {
        deliver_local(packet, interface_index);
        return;
    }
    forward(std::move(packet), interface_index);
}

void IpStack::forward(net::Packet packet, std::size_t in_interface) {
    if (forward_interceptor_ && forward_interceptor_(packet, in_interface)) {
        return;  // consumed (e.g. home agent captured a proxy-ARP'd packet)
    }
    if (!forwarding_) {
        return;  // hosts silently drop traffic not addressed to them
    }
    if (!packet.decrement_ttl()) {
        ++stats_.ttl_drops;
        emit_trace(sim::TraceKind::TtlExpired, &packet,
                   sim::TraceDetail::args(sim::TraceDetailKind::Dst,
                                          packet.header().dst.value()));
        return;
    }
    auto entry = routes_.lookup(packet.header().dst);
    if (!entry) {
        ++stats_.no_route_drops;
        emit_trace(sim::TraceKind::NoRoute, &packet,
                   sim::TraceDetail::args(sim::TraceDetailKind::NoRouteForward,
                                          packet.header().dst.value()));
        return;
    }
    ++stats_.packets_forwarded;
    const net::Ipv4Address next_hop = entry->on_link() ? packet.header().dst : entry->gateway;
    emit_trace(sim::TraceKind::PacketForwarded, &packet,
               sim::TraceDetail::args(sim::TraceDetailKind::DstVia,
                                      packet.header().dst.value(), next_hop.value()));
    transmit(std::move(packet), entry->interface_index, next_hop);
}

bool IpStack::run_filters(
    const std::vector<std::shared_ptr<const routing::FilterRule>>& rules,
    const net::Packet& packet, std::size_t* drop_counter) {
    const net::Ipv4Header& header = packet.header();
    for (const auto& rule : rules) {
        if (rule->evaluate(header) == routing::FilterVerdict::Drop) {
            ++*drop_counter;
            // describe() allocates, but only on the (cold) drop path; the
            // view is interned before this full-expression ends.
            const std::string rule_text = rule->describe();
            emit_trace(sim::TraceKind::FilterDrop, &packet,
                       sim::TraceDetail::with_text(sim::TraceDetailKind::FilterRule,
                                                   rule_text, header.src.value(),
                                                   header.dst.value()));
            if (filter_feedback_) {
                send_filter_feedback(packet);
            }
            return false;
        }
    }
    return true;
}

void IpStack::send_filter_feedback(const net::Packet& dropped) {
    // Never generate ICMP errors about ICMP (avoids error storms; a
    // simplification of RFC 1122's "never about ICMP *errors*").
    if (dropped.header().protocol == net::IpProto::Icmp) {
        return;
    }
    net::IcmpMessage msg;
    msg.type = net::IcmpType::DestinationUnreachable;
    msg.code = static_cast<std::uint8_t>(
        net::IcmpUnreachableCode::CommunicationAdministrativelyProhibited);
    // Body: the dropped datagram's header plus the first 8 payload bytes
    // (RFC 792), enough for the source to identify the flow.
    net::BufferWriter w;
    net::Ipv4Header h = dropped.header();
    h.serialize(w);
    const auto head = dropped.payload().subspan(0, std::min<std::size_t>(8, dropped.payload().size()));
    w.bytes(head);
    msg.body = w.take();
    // Source the error from our first configured interface (the inside,
    // domain-addressed one on a boundary router) so the error itself
    // survives our own egress anti-spoofing rules.
    net::Ipv4Address src;
    for (const auto& ifc : interfaces_) {
        if (ifc->is_physical() && ifc->configured()) {
            src = ifc->address();
            break;
        }
    }
    send_icmp(dropped.header().src, msg, src);
}

void IpStack::deliver_local(const net::Packet& packet, std::size_t in_interface) {
    std::optional<net::Packet> complete = packet;
    if (packet.header().is_fragment()) {
        complete = reassembler_.add(packet, simulator_.now());
        reassembler_.expire(simulator_.now());
        if (!complete) {
            return;  // waiting for more fragments
        }
        ++stats_.reassembled;
    }
    ++stats_.packets_delivered;
    emit_trace(sim::TraceKind::PacketDelivered, &*complete,
               sim::TraceDetail::args(
                   sim::TraceDetailKind::Proto,
                   static_cast<std::uint32_t>(complete->header().protocol)));
    if (complete->header().dst.is_multicast() && multicast_observer_) {
        multicast_observer_(*complete);
    }
    auto it = protocols_.find(complete->header().protocol);
    if (it != protocols_.end()) {
        it->second(*complete, in_interface);
    }
}

void IpStack::handle_icmp(const net::Packet& packet, std::size_t in_interface) {
    (void)in_interface;
    net::IcmpMessage msg;
    try {
        net::BufferReader r(packet.payload());
        msg = net::IcmpMessage::parse(r);
    } catch (const net::ParseError&) {
        return;
    }
    if (msg.type == net::IcmpType::EchoRequest) {
        net::IcmpMessage reply = msg;
        reply.type = net::IcmpType::EchoReply;
        send_icmp(packet.header().src, reply, packet.header().dst);
        return;
    }
    for (const auto& observer : icmp_observers_) {
        observer(msg, packet);
    }
}

void IpStack::send_icmp(net::Ipv4Address dst, const net::IcmpMessage& message,
                        net::Ipv4Address src) {
    net::BufferWriter w;
    message.serialize(w);
    net::Packet packet = net::make_packet(src, dst, net::IpProto::Icmp, w.take());
    send(std::move(packet));
}

}  // namespace mip::stack
