// An IP router: a node whose stack forwards, with per-interface policy
// filters. Boundary routers in the scenarios are Routers carrying the
// filter rules from routing/filters.h.
#pragma once

#include "routing/filters.h"
#include "sim/node.h"
#include "stack/ip_stack.h"

namespace mip::stack {

class Router : public sim::Node {
public:
    Router(sim::Simulator& simulator, std::string name);

    IpStack& stack() noexcept { return stack_; }
    const IpStack& stack() const noexcept { return stack_; }

    /// Connects a new interface to @p link with address @p addr. Returns
    /// the interface index.
    std::size_t attach(sim::Link& link, net::Ipv4Address addr, net::Prefix subnet);

    void add_route(net::Prefix prefix, net::Ipv4Address gateway, std::size_t interface_index,
                   int metric = 0);
    void add_default_route(net::Ipv4Address gateway, std::size_t interface_index);

    void add_ingress_filter(std::size_t interface_index,
                            std::shared_ptr<const routing::FilterRule> rule);
    void add_egress_filter(std::size_t interface_index,
                           std::shared_ptr<const routing::FilterRule> rule);
    void remove_ingress_filter(std::size_t interface_index, const routing::FilterRule* rule);
    void remove_egress_filter(std::size_t interface_index, const routing::FilterRule* rule);

private:
    IpStack stack_;
};

}  // namespace mip::stack
