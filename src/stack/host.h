// A general-purpose Internet host: one node, one stack, convenience
// attachment helpers. Hosts do not forward.
#pragma once

#include <optional>

#include "sim/node.h"
#include "stack/ip_stack.h"

namespace mip::stack {

class Host : public sim::Node {
public:
    Host(sim::Simulator& simulator, std::string name);

    IpStack& stack() noexcept { return stack_; }
    const IpStack& stack() const noexcept { return stack_; }

    /// Creates a NIC, connects it to @p link, assigns @p addr/@p subnet and
    /// optionally a default route via @p gateway. Returns the new
    /// interface's index.
    std::size_t attach(sim::Link& link, net::Ipv4Address addr, net::Prefix subnet,
                       std::optional<net::Ipv4Address> gateway = std::nullopt);

    /// Disconnects the NIC behind @p interface_index and removes its
    /// addresses and routes — "unplugging the cable".
    void detach(std::size_t interface_index);

    /// Moves an existing interface to a different segment with a new
    /// address (unplug + replug). Keeps the same NIC and interface index.
    void move(std::size_t interface_index, sim::Link& new_link, net::Ipv4Address addr,
              net::Prefix subnet, std::optional<net::Ipv4Address> gateway = std::nullopt);

    /// The address of the first configured interface (convenience).
    net::Ipv4Address address() const;

private:
    IpStack stack_;
};

}  // namespace mip::stack
