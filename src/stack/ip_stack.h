// The per-node IP stack: interfaces, forwarding table, policy-routing hook,
// packet filters, fragmentation/reassembly, local delivery demux, and ICMP.
//
// One class serves both hosts (forwarding off) and routers (forwarding on)
// — the same way a general-purpose OS kernel does.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "net/fragmentation.h"
#include "net/icmp.h"
#include "net/packet.h"
#include "routing/filters.h"
#include "routing/forwarding_table.h"
#include "sim/node.h"
#include "sim/trace.h"
#include "stack/interface.h"
#include "stack/route_resolver.h"

namespace mip::stack {

class IpStack {
public:
    /// Handler for locally-delivered packets of one IP protocol.
    /// @p packet is the reassembled datagram; @p in_interface the interface
    /// it arrived on (size_t(-1) for loopback/reinjected packets).
    using ProtocolHandler = std::function<void(const net::Packet& packet, std::size_t in_interface)>;

    /// Observer for non-echo ICMP messages delivered to this host
    /// (mobile-aware correspondents watch for care-of adverts here).
    using IcmpObserver = std::function<void(const net::IcmpMessage&, const net::Packet&)>;

    /// Hook consulted for every packet that would be *forwarded* (arrived
    /// here but addressed elsewhere). Returns true when the hook consumed
    /// the packet. The home agent's proxy-ARP capture path registers one.
    using ForwardInterceptor = std::function<bool(const net::Packet&, std::size_t in_interface)>;

    IpStack(sim::Simulator& simulator, sim::Node& node);

    // ---- interfaces -------------------------------------------------------

    /// Wraps @p nic as a stack interface and installs the frame handler.
    std::size_t add_interface(sim::Nic& nic);
    std::size_t add_virtual_interface(std::string name, Interface::VirtualSender sender);

    Interface& iface(std::size_t index) { return *interfaces_.at(index); }
    const Interface& iface(std::size_t index) const { return *interfaces_.at(index); }
    std::size_t interface_count() const noexcept { return interfaces_.size(); }

    /// Assigns an address and (by default) a connected route for the subnet.
    void configure(std::size_t index, net::Ipv4Address addr, net::Prefix subnet,
                   bool add_connected_route = true);

    /// Removes the address, its connected routes, and its local-address entry.
    void deconfigure(std::size_t index);

    // ---- routing ----------------------------------------------------------

    routing::ForwardingTable& routes() noexcept { return routes_; }
    const routing::ForwardingTable& routes() const noexcept { return routes_; }
    void add_default_route(net::Ipv4Address gateway, std::size_t interface_index);

    /// Installs the policy resolver consulted before the route table.
    /// Not owned; pass nullptr to remove.
    void set_policy_resolver(RouteResolver* resolver) noexcept { policy_ = resolver; }

    void set_forwarding(bool on) noexcept { forwarding_ = on; }
    bool forwarding() const noexcept { return forwarding_; }
    void set_forward_interceptor(ForwardInterceptor f) { forward_interceptor_ = std::move(f); }

    void add_ingress_filter(std::size_t interface_index,
                            std::shared_ptr<const routing::FilterRule> rule);
    void add_egress_filter(std::size_t interface_index,
                           std::shared_ptr<const routing::FilterRule> rule);
    /// Removes a previously added rule, matched by pointer identity (the
    /// caller keeps the shared_ptr it installed — policy churn needs to
    /// take back exactly the rule it added, not every rule of that shape).
    /// No-op when the rule isn't installed on that interface.
    void remove_ingress_filter(std::size_t interface_index, const routing::FilterRule* rule);
    void remove_egress_filter(std::size_t interface_index, const routing::FilterRule* rule);

    /// When enabled, a router answers each filtered-out packet with ICMP
    /// Destination Unreachable (code 13, "communication administratively
    /// prohibited") to the source. Most security-conscious routers drop
    /// silently (the paper's assumption); turning this on lets a mobile
    /// host learn about undeliverable modes immediately instead of waiting
    /// for retransmission timeouts — see bench/abl_failure_feedback.
    void set_filter_feedback(bool on) noexcept { filter_feedback_ = on; }

    // ---- addresses --------------------------------------------------------

    /// Registers an address as "ours" for local delivery, independent of
    /// interface configuration. A mobile host away from home keeps its home
    /// address registered here — packets reaching it addressed to home
    /// (decapsulated, or In-DH link-layer delivery) are accepted.
    void add_local_address(net::Ipv4Address addr);
    void remove_local_address(net::Ipv4Address addr);
    bool is_local_address(net::Ipv4Address addr) const;

    // ---- multicast (RFC 1112 host extensions) -------------------------------

    /// Joins an IPv4 multicast group: packets addressed to @p group are
    /// accepted for local delivery. The paper's §6.4 point is that a mobile
    /// host should join "through its real physical interface on the current
    /// local network" rather than through its distant home network.
    void join_group(net::Ipv4Address group);
    void leave_group(net::Ipv4Address group);
    bool in_group(net::Ipv4Address group) const { return joined_groups_.contains(group); }

    /// Observer for every multicast packet delivered locally (the home
    /// agent's §6.4 relay uses this to re-tunnel group traffic to mobile
    /// hosts subscribed "through the virtual interface").
    using MulticastObserver = std::function<void(const net::Packet&)>;
    void set_multicast_observer(MulticastObserver obs) {
        multicast_observer_ = std::move(obs);
    }

    /// Source address for a new flow to @p dst: the policy resolver's hint
    /// if it gives one, else the outgoing interface's address.
    net::Ipv4Address select_source(const FlowKey& flow) const;

    // ---- datapath ---------------------------------------------------------

    /// Routes and transmits @p packet. If the header's source address is
    /// unspecified it is filled in from policy/interface. @p flow carries
    /// transport context for the policy layer; when omitted it is derived
    /// from the header (ports parsed from TCP/UDP payloads).
    void send(net::Packet packet, std::optional<FlowKey> flow = std::nullopt);

    /// Delivers a packet up this stack as if received (used by tunnel
    /// decapsulation to resubmit inner packets, per paper §7).
    void deliver_local(const net::Packet& packet, std::size_t in_interface);

    /// Transmits @p packet out a specific physical interface toward
    /// @p next_hop, bypassing both the policy resolver and the route table
    /// (agents use this for link-local chores like broadcasting
    /// advertisements or delivering to a registered visitor). A broadcast
    /// destination/next hop goes to the link broadcast MAC without ARP.
    void send_direct(net::Packet packet, std::size_t interface_index,
                     net::Ipv4Address next_hop = {});

    void register_protocol(net::IpProto proto, ProtocolHandler handler);
    /// Adds an observer for non-echo-request ICMP messages (echo replies,
    /// unreachables, care-of adverts). Multiple observers may coexist.
    void add_icmp_observer(IcmpObserver observer) {
        icmp_observers_.push_back(std::move(observer));
    }

    /// Sends an ICMP message to @p dst.
    void send_icmp(net::Ipv4Address dst, const net::IcmpMessage& message,
                   net::Ipv4Address src = {});

    // ---- observability ----------------------------------------------------

    /// Attaches (or, with nullptr, detaches) the trace recorder. Off by
    /// default; when detached every trace seam in the stack costs a single
    /// pointer compare and builds nothing — detail arguments are packed
    /// lazily on the recorder side (see sim::TraceDetail). The recorder
    /// must outlive its attachment.
    void set_trace(sim::TraceRecorder* trace) noexcept { trace_ = trace; }
    sim::TraceRecorder* trace() const noexcept { return trace_; }

    /// Emits a packet-level trace event attributed to this node. The tunnel
    /// layer uses this to report Encapsulated/Decapsulated milestones that
    /// happen above the stack proper (virtual-interface senders, protocol
    /// handlers) so they land in the same journey as the stack's own events.
    void trace_packet(sim::TraceKind kind, const net::Packet& packet,
                      const sim::TraceDetail& detail);

    struct Stats {
        std::size_t packets_sent = 0;
        std::size_t packets_received = 0;
        std::size_t packets_forwarded = 0;
        std::size_t packets_delivered = 0;
        std::size_t ingress_filter_drops = 0;
        std::size_t egress_filter_drops = 0;
        std::size_t no_route_drops = 0;
        std::size_t ttl_drops = 0;
        std::size_t arp_failures = 0;
        std::size_t fragments_sent = 0;
        std::size_t reassembled = 0;
    };
    const Stats& stats() const noexcept { return stats_; }
    sim::Simulator& simulator() const noexcept { return simulator_; }
    sim::Node& node() const noexcept { return node_; }

    /// Index used for packets not associated with a receive interface.
    static constexpr std::size_t kNoInterface = static_cast<std::size_t>(-1);

private:
    void on_frame(std::size_t interface_index, const sim::Frame& frame);
    void on_ip_frame(std::size_t interface_index, const sim::Frame& frame);
    void forward(net::Packet packet, std::size_t in_interface);
    /// Resolves next hop + transmits on a physical interface (fragmenting
    /// to the link MTU and ARP-resolving the next hop).
    void transmit(net::Packet packet, std::size_t interface_index, net::Ipv4Address next_hop);
    void transmit_one(net::Packet fragment, std::size_t interface_index,
                      net::Ipv4Address next_hop);
    bool run_filters(const std::vector<std::shared_ptr<const routing::FilterRule>>& rules,
                     const net::Packet& packet, std::size_t* drop_counter);
    /// ICMP "administratively prohibited" back to the dropped packet's
    /// source (when filter feedback is on).
    void send_filter_feedback(const net::Packet& dropped);
    void handle_icmp(const net::Packet& packet, std::size_t in_interface);
    void emit_trace(sim::TraceKind kind, const net::Packet* packet,
                    const sim::TraceDetail& detail);
    /// Assigns a journey id if the packet doesn't have one yet (i.e. this
    /// stack is the datagram's origin) and emits the PacketSent milestone.
    void begin_journey(net::Packet& packet);
    static FlowKey flow_from_packet(const net::Packet& packet);

    sim::Simulator& simulator_;
    sim::Node& node_;
    std::vector<std::unique_ptr<Interface>> interfaces_;
    routing::ForwardingTable routes_;
    RouteResolver* policy_ = nullptr;
    bool forwarding_ = false;
    bool filter_feedback_ = false;
    ForwardInterceptor forward_interceptor_;
    std::map<std::size_t, std::vector<std::shared_ptr<const routing::FilterRule>>>
        ingress_filters_;
    std::map<std::size_t, std::vector<std::shared_ptr<const routing::FilterRule>>>
        egress_filters_;
    std::map<net::Ipv4Address, int> local_addresses_;  ///< refcounted
    std::set<net::Ipv4Address> joined_groups_;
    MulticastObserver multicast_observer_;
    std::map<net::IpProto, ProtocolHandler> protocols_;
    std::vector<IcmpObserver> icmp_observers_;
    net::Reassembler reassembler_;
    sim::TraceRecorder* trace_ = nullptr;
    Stats stats_;
    std::uint16_t next_ip_id_ = 1;
};

}  // namespace mip::stack
