// A stack interface: either physical (NIC + ARP engine) or virtual (a
// callback that consumes packets — e.g. the Mobile IP encapsulating
// interface of paper §7: "the routine directs IP to send the packet to our
// virtual interface, which encapsulates the packet and resubmits it to IP").
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "arp/arp_engine.h"
#include "net/ipv4_address.h"
#include "net/packet.h"
#include "sim/link.h"
#include "sim/nic.h"

namespace mip::stack {

class Interface {
public:
    using VirtualSender = std::function<void(net::Packet)>;

    /// Physical interface bound to @p nic.
    Interface(sim::Simulator& simulator, sim::Nic& nic, arp::ArpConfig arp_config = {});

    /// Virtual interface; packets routed here go to @p sender.
    Interface(std::string name, VirtualSender sender);

    bool is_physical() const noexcept { return nic_ != nullptr; }
    sim::Nic* nic() const noexcept { return nic_; }
    arp::ArpEngine* arp() const noexcept { return arp_.get(); }
    const VirtualSender& virtual_sender() const noexcept { return sender_; }
    const std::string& name() const noexcept { return name_; }

    /// Assigns an address. Physical interfaces start answering ARP for it.
    void configure(net::Ipv4Address addr, net::Prefix subnet);
    void deconfigure();
    bool configured() const noexcept { return !address_.is_unspecified(); }

    net::Ipv4Address address() const noexcept { return address_; }
    net::Prefix subnet() const noexcept { return subnet_; }

    /// MTU seen by IP: the link MTU for connected physical interfaces. A
    /// virtual tunnel interface reports "no limit"; the encapsulated packet
    /// is fragmented at the physical interface it ultimately leaves by.
    std::size_t mtu() const;

private:
    std::string name_;
    sim::Nic* nic_ = nullptr;
    std::unique_ptr<arp::ArpEngine> arp_;
    VirtualSender sender_;
    net::Ipv4Address address_;
    net::Prefix subnet_;
};

}  // namespace mip::stack
