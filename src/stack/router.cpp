#include "stack/router.h"

namespace mip::stack {

Router::Router(sim::Simulator& simulator, std::string name)
    : sim::Node(simulator, std::move(name)), stack_(simulator, *this) {
    stack_.set_forwarding(true);
}

std::size_t Router::attach(sim::Link& link, net::Ipv4Address addr, net::Prefix subnet) {
    sim::Nic& n = add_nic();
    n.connect(link);
    const std::size_t index = stack_.add_interface(n);
    stack_.configure(index, addr, subnet);
    return index;
}

void Router::add_route(net::Prefix prefix, net::Ipv4Address gateway,
                       std::size_t interface_index, int metric) {
    stack_.routes().add({prefix, gateway, interface_index, metric});
}

void Router::add_default_route(net::Ipv4Address gateway, std::size_t interface_index) {
    stack_.add_default_route(gateway, interface_index);
}

void Router::add_ingress_filter(std::size_t interface_index,
                                std::shared_ptr<const routing::FilterRule> rule) {
    stack_.add_ingress_filter(interface_index, std::move(rule));
}

void Router::add_egress_filter(std::size_t interface_index,
                               std::shared_ptr<const routing::FilterRule> rule) {
    stack_.add_egress_filter(interface_index, std::move(rule));
}

void Router::remove_ingress_filter(std::size_t interface_index,
                                   const routing::FilterRule* rule) {
    stack_.remove_ingress_filter(interface_index, rule);
}

void Router::remove_egress_filter(std::size_t interface_index,
                                  const routing::FilterRule* rule) {
    stack_.remove_egress_filter(interface_index, rule);
}

}  // namespace mip::stack
