// The policy-routing hook — the paper's central implementation idea (§7):
//
//   "We override the IP route lookup routine and replace it with a routine
//    that consults a mobility policy table before the usual route table.
//    This allows us to control, on a packet by packet basis, whether a
//    packet should use Mobile IP, and if so which interface to use."
//
// IpStack::send() and IpStack::select_source() both consult the installed
// RouteResolver before the forwarding table, so one policy object captures
// every decision point — including TCP's choice of connection endpoint
// address — "without any extra special-case work".
#pragma once

#include <cstdint>
#include <optional>

#include "net/ipv4_address.h"
#include "net/protocol.h"

namespace mip::stack {

/// Everything the policy layer may key its decision on: the addresses, the
/// transport protocol and ports (for the paper's §7.1.1 port-number
/// heuristics), whether the sending socket explicitly bound a source
/// address, and whether this packet is a retransmission (the §7.1.2
/// original-vs-retransmission delivery-failure signal).
struct FlowKey {
    net::Ipv4Address bound_src;  ///< unspecified when the socket didn't bind
    net::Ipv4Address dst;
    net::IpProto proto = net::IpProto::Udp;
    std::uint16_t src_port = 0;
    std::uint16_t dst_port = 0;
    bool retransmission = false;
};

/// Where a packet should go, as decided by policy or the forwarding table.
struct Resolution {
    enum class Kind {
        /// Fall through to the normal forwarding table for the next hop,
        /// but honour source_hint (e.g. Out-DH: home source, normal route).
        Table,
        /// Send through a specific interface. For a virtual (tunnel)
        /// interface this hands the packet to the encapsulator; for a
        /// physical one, next_hop (or the destination itself when
        /// unspecified) is ARP-resolved on that link.
        Interface,
        /// Deliver locally (destination is one of our own addresses).
        Loopback,
    };

    Kind kind = Kind::Table;
    std::size_t interface_index = 0;
    /// Link-layer next hop for Kind::Interface on a physical interface.
    /// Unspecified = the destination address itself (on-link delivery).
    /// The Row C trick — reaching a mobile host's *home* address in one
    /// link-layer hop — is expressed as next_hop = care-of address.
    net::Ipv4Address next_hop;
    /// Source address the packet should carry if its header doesn't
    /// already pin one. Unspecified = use the outgoing interface address.
    net::Ipv4Address source_hint;

    static Resolution table(net::Ipv4Address source_hint = {}) {
        Resolution r;
        r.kind = Kind::Table;
        r.source_hint = source_hint;
        return r;
    }
    static Resolution via_interface(std::size_t index, net::Ipv4Address next_hop = {},
                                    net::Ipv4Address source_hint = {}) {
        Resolution r;
        r.kind = Kind::Interface;
        r.interface_index = index;
        r.next_hop = next_hop;
        r.source_hint = source_hint;
        return r;
    }
    static Resolution loopback() {
        Resolution r;
        r.kind = Kind::Loopback;
        return r;
    }
};

class RouteResolver {
public:
    virtual ~RouteResolver() = default;

    /// Returns nullopt to fall through to the normal forwarding table with
    /// default source selection.
    virtual std::optional<Resolution> resolve(const FlowKey& flow) = 0;
};

}  // namespace mip::stack
