#include "stack/interface.h"

#include <limits>

namespace mip::stack {

Interface::Interface(sim::Simulator& simulator, sim::Nic& nic, arp::ArpConfig arp_config)
    : name_(nic.name()),
      nic_(&nic),
      arp_(std::make_unique<arp::ArpEngine>(simulator, nic, arp_config)) {}

Interface::Interface(std::string name, VirtualSender sender)
    : name_(std::move(name)), sender_(std::move(sender)) {}

void Interface::configure(net::Ipv4Address addr, net::Prefix subnet) {
    address_ = addr;
    subnet_ = subnet;
    if (arp_) {
        arp_->set_local_address(addr);
        arp_->flush_cache();  // new segment/new address: old mappings are stale
    }
}

void Interface::deconfigure() {
    address_ = net::Ipv4Address{};
    subnet_ = net::Prefix{};
    if (arp_) {
        arp_->set_local_address(net::Ipv4Address{});
        arp_->flush_cache();
    }
}

std::size_t Interface::mtu() const {
    if (nic_ != nullptr && nic_->connected()) {
        return nic_->link()->mtu();
    }
    return std::numeric_limits<std::size_t>::max();
}

}  // namespace mip::stack
