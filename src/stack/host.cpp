#include "stack/host.h"

namespace mip::stack {

Host::Host(sim::Simulator& simulator, std::string name)
    : sim::Node(simulator, std::move(name)), stack_(simulator, *this) {}

std::size_t Host::attach(sim::Link& link, net::Ipv4Address addr, net::Prefix subnet,
                         std::optional<net::Ipv4Address> gateway) {
    sim::Nic& n = add_nic();
    n.connect(link);
    const std::size_t index = stack_.add_interface(n);
    stack_.configure(index, addr, subnet);
    if (gateway) {
        stack_.add_default_route(*gateway, index);
    }
    return index;
}

void Host::detach(std::size_t interface_index) {
    Interface& ifc = stack_.iface(interface_index);
    stack_.deconfigure(interface_index);
    if (ifc.nic() != nullptr) {
        ifc.nic()->disconnect();
    }
}

void Host::move(std::size_t interface_index, sim::Link& new_link, net::Ipv4Address addr,
                net::Prefix subnet, std::optional<net::Ipv4Address> gateway) {
    Interface& ifc = stack_.iface(interface_index);
    stack_.deconfigure(interface_index);
    if (ifc.nic() != nullptr) {
        ifc.nic()->disconnect();
        ifc.nic()->connect(new_link);
    }
    stack_.configure(interface_index, addr, subnet);
    if (gateway) {
        stack_.add_default_route(*gateway, interface_index);
    }
}

net::Ipv4Address Host::address() const {
    for (std::size_t i = 0; i < stack_.interface_count(); ++i) {
        if (stack_.iface(i).configured()) {
            return stack_.iface(i).address();
        }
    }
    return net::Ipv4Address{};
}

}  // namespace mip::stack
