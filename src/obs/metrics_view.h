// Typed, scoped query API over a MetricsRegistry (ISSUE 5 satellite:
// replace stringly-typed gauge_value() lookups).
//
// Where benches used to write
//     world.metrics.gauge_value("mobile-host", "ip", "packets_sent")
// — one untyped entry point that only knew about gauges — a MetricsView
// gives kind-typed accessors and scoped selectors:
//
//     obs::MetricsView view(world.metrics);
//     auto mh = view.node("mobile-host").layer("ip");
//     double sent   = mh.gauge("packets_sent");
//     auto   drops  = view.counter("foreign-gw", "ip", "filter_drops");
//     const obs::Histogram& rtt = view.node("corr").layer("probe").histogram("rtt_ns");
//
// Misses throw MetricsError naming the closest registered keys of every
// kind, so a mistyped or renamed metric fails with the fix in hand.
// This is the only query API: the stringly-typed
// MetricsRegistry::gauge_value() wrapper is gone (PR 8 satellite).
#pragma once

#include <cstdint>
#include <string>

#include "obs/json.h"
#include "obs/metrics.h"

namespace mip::obs {

/// Thrown on a lookup miss. Derives from JsonError so call sites that
/// caught gauge_value()'s misses keep working unchanged.
class MetricsError : public JsonError {
public:
    using JsonError::JsonError;
};

class MetricsView {
public:
    /// The view borrows the registry; it must outlive the view.
    explicit MetricsView(const MetricsRegistry& registry) : registry_(&registry) {}

    // ---- typed accessors (full triple) -------------------------------------

    /// Value of the counter at (node, layer, name); throws MetricsError
    /// (with closest-key suggestions) when no such counter exists.
    std::uint64_t counter(const std::string& node, const std::string& layer,
                          const std::string& name) const;

    /// Polls the gauge at (node, layer, name) right now; throws
    /// MetricsError with suggestions on a miss.
    double gauge(const std::string& node, const std::string& layer,
                 const std::string& name) const;

    /// The histogram at (node, layer, name); throws MetricsError with
    /// suggestions on a miss. The reference is valid for the registry's
    /// lifetime.
    const Histogram& histogram(const std::string& node, const std::string& layer,
                               const std::string& name) const;

    // ---- presence probes (no throw) ----------------------------------------

    bool has_counter(const std::string& node, const std::string& layer,
                     const std::string& name) const noexcept;
    bool has_gauge(const std::string& node, const std::string& layer,
                   const std::string& name) const noexcept;
    bool has_histogram(const std::string& node, const std::string& layer,
                       const std::string& name) const noexcept;

    // ---- scoped selectors --------------------------------------------------

    /// A (node, layer) scope: the accessors take just the metric name.
    /// Borrows only the registry, so a scope outlives the expression that
    /// built it — `MetricsView(reg).node("mh").layer("ip")` stored in a
    /// local stays valid for the registry's lifetime.
    class Scope {
    public:
        std::uint64_t counter(const std::string& name) const {
            return MetricsView(*registry_).counter(node_, layer_, name);
        }
        double gauge(const std::string& name) const {
            return MetricsView(*registry_).gauge(node_, layer_, name);
        }
        const Histogram& histogram(const std::string& name) const {
            return MetricsView(*registry_).histogram(node_, layer_, name);
        }
        const std::string& node() const noexcept { return node_; }
        const std::string& layer() const noexcept { return layer_; }

    private:
        friend class MetricsView;
        Scope(const MetricsRegistry& registry, std::string node, std::string layer)
            : registry_(&registry), node_(std::move(node)), layer_(std::move(layer)) {}
        const MetricsRegistry* registry_;
        std::string node_;
        std::string layer_;
    };

    /// A node scope: narrow to a layer, or query with (layer, name).
    class NodeScope {
    public:
        Scope layer(const std::string& layer) const {
            return {*registry_, node_, layer};
        }
        std::uint64_t counter(const std::string& layer, const std::string& name) const {
            return MetricsView(*registry_).counter(node_, layer, name);
        }
        double gauge(const std::string& layer, const std::string& name) const {
            return MetricsView(*registry_).gauge(node_, layer, name);
        }
        const Histogram& histogram(const std::string& layer,
                                   const std::string& name) const {
            return MetricsView(*registry_).histogram(node_, layer, name);
        }

    private:
        friend class MetricsView;
        NodeScope(const MetricsRegistry& registry, std::string node)
            : registry_(&registry), node_(std::move(node)) {}
        const MetricsRegistry* registry_;
        std::string node_;
    };

    NodeScope node(const std::string& node) const { return {*registry_, node}; }

    const MetricsRegistry& registry() const noexcept { return *registry_; }

private:
    [[noreturn]] void miss(const char* kind, const std::string& node,
                           const std::string& layer, const std::string& name) const;

    const MetricsRegistry* registry_;
};

}  // namespace mip::obs
