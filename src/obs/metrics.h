// Per-node metrics registry (ISSUE: observability tentpole, part b).
//
// Every metric is identified by the triple (node, layer, name) —
// e.g. ("foreign-gw", "ip", "filter_drops") — and is one of:
//
//   counter    monotonically increasing count, owned by the registry and
//              bumped by the instrumented code via the returned reference
//   gauge      point-in-time value polled from a provider callback at
//              snapshot() time (used to mirror existing Stats structs
//              without double-bookkeeping)
//   histogram  distribution with count/sum/min/max and cumulative buckets
//              (used for RTT latency and hop counts)
//
// snapshot() renders everything into the JSON document format specified in
// docs/TRACE_FORMAT.md §4; validate_metrics_document() checks an arbitrary
// parsed document against that same schema and is shared by the unit tests
// and the bench_smoke validator binary, so the schema cannot silently
// drift from its enforcement.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "obs/json.h"
#include "sim/time.h"

namespace mip::obs {

/// Monotonic counter. References returned by MetricsRegistry::counter()
/// stay valid for the registry's lifetime (node-based map storage).
///
/// Counters participate in the registry's dirty-marking protocol: the
/// first add() after a drain appends the counter to the registry's dirty
/// list, so a delta consumer (MetricsSampler) can visit only the metrics
/// that actually moved since its last tick instead of walking the whole
/// registry. Quiet counters cost one branch per add().
class Counter {
public:
    void add(std::uint64_t n = 1) noexcept {
        value_ += n;
        if (!dirty_ && dirty_list_ != nullptr) {
            dirty_ = true;
            dirty_list_->push_back(this);
        }
    }
    std::uint64_t value() const noexcept { return value_; }

private:
    friend class MetricsRegistry;
    std::uint64_t value_ = 0;
    bool dirty_ = false;
    std::vector<Counter*>* dirty_list_ = nullptr;  // wired by the registry
};

/// Distribution with cumulative ("le") buckets, Prometheus style: each
/// bucket counts observations <= its upper bound, and an implicit +inf
/// bucket equals the total count.
class Histogram {
public:
    /// `bounds` must be strictly increasing; may be empty (summary only).
    explicit Histogram(std::vector<double> bounds = {});

    void observe(double value) noexcept;

    std::uint64_t count() const noexcept { return count_; }
    double sum() const noexcept { return sum_; }
    double min() const noexcept { return min_; }
    double max() const noexcept { return max_; }
    double mean() const noexcept { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }

    const std::vector<double>& bounds() const noexcept { return bounds_; }
    const std::vector<std::uint64_t>& bucket_counts() const noexcept { return counts_; }

private:
    friend class MetricsRegistry;
    std::vector<double> bounds_;
    std::vector<std::uint64_t> counts_;  // parallel to bounds_, cumulative
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
    bool dirty_ = false;
    std::vector<Histogram*>* dirty_list_ = nullptr;  // wired by the registry
};

/// Bucket bounds tuned for simulated RTTs: 1 ms .. ~4 s, doubling.
std::vector<double> rtt_bounds_ns();
/// Bucket bounds for hop counts: 1 .. 16 link-level hops.
std::vector<double> hop_bounds();

/// Registry of every metric a World publishes. One instance per World;
/// nodes register at construction, benches call snapshot() at the end of
/// a run. Not thread-safe (the simulator is single-threaded).
class MetricsRegistry {
public:
    using GaugeFn = std::function<double()>;
    /// (node, layer, name) — the identity of every metric.
    using Key = std::tuple<std::string, std::string, std::string>;

    MetricsRegistry() = default;
    // Counters/histograms hold back-pointers into this registry's dirty
    // lists, so the registry must stay at one address for its lifetime.
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /// Returns the counter for (node, layer, name), creating it on first
    /// use. The reference stays valid for the registry's lifetime.
    Counter& counter(const std::string& node, const std::string& layer,
                     const std::string& name);

    /// Returns the histogram for (node, layer, name), creating it with the
    /// given bounds on first use (bounds are ignored when it exists).
    Histogram& histogram(const std::string& node, const std::string& layer,
                         const std::string& name, std::vector<double> bounds = {});

    /// Registers a polled gauge. The provider is invoked at snapshot()
    /// time and must stay callable for the registry's lifetime — World
    /// guarantees this by registering only callbacks that capture nodes it
    /// owns. Re-registering the same triple replaces the provider.
    void register_gauge(const std::string& node, const std::string& layer,
                        const std::string& name, GaugeFn provider);

    /// Renders every metric into the docs/TRACE_FORMAT.md §4 document:
    ///   {"schema_version":1, "bench":..., "label":..., "time_ns":...,
    ///    "metrics":[{node,layer,name,kind,...}, ...]}
    /// Metrics appear sorted by (node, layer, name); gauges are polled now.
    JsonValue snapshot(const std::string& bench, const std::string& label,
                       sim::TimePoint now) const;

    /// Convenience: snapshot() serialized with 2-space indentation.
    std::string snapshot_json(const std::string& bench, const std::string& label,
                              sim::TimePoint now) const;

    std::size_t size() const noexcept {
        return counters_.size() + gauges_.size() + histograms_.size();
    }

    // Read-only iteration over the stores, (node, layer, name)-sorted —
    // what obs::MetricsSampler walks every sampling interval.
    const std::map<Key, Counter>& counters() const noexcept { return counters_; }
    const std::map<Key, GaugeFn>& gauges() const noexcept { return gauges_; }
    const std::map<Key, Histogram>& histograms() const noexcept { return histograms_; }

    // ---- delta-snapshot feed (dirty marking) --------------------------------
    //
    // Counters and histograms flag themselves on first mutation after a
    // drain; a single delta consumer (obs::MetricsSampler in delta mode)
    // drains the flagged entries each tick instead of walking every
    // metric. Gauges are excluded: they are polled provider callbacks and
    // cannot observe their own mutation. The dirty lists are bounded by
    // the number of distinct metrics regardless of how many consumers (or
    // none) drain them — a metric enqueues itself at most once per drain.

    /// Bumped whenever a *new* counter/gauge/histogram key is created, so
    /// delta consumers know when to re-scan the stores for new series.
    std::uint64_t structure_generation() const noexcept { return structure_generation_; }

    /// Claims the (single) delta-consumer slot for `who`. Returns true if
    /// `who` now holds it (or already did); false when another consumer
    /// holds it — the caller must then fall back to full walks.
    bool claim_dirty_consumer(const void* who) const noexcept;
    /// Releases the slot if `who` holds it; no-op otherwise.
    void release_dirty_consumer(const void* who) const noexcept;

    /// Moves the dirty entries into `counters` / `histograms` (replacing
    /// their contents) and clears the dirty flags. Only the claimed
    /// consumer should drain; anyone may call without corrupting state.
    void drain_dirty(std::vector<Counter*>& counters,
                     std::vector<Histogram*>& histograms) const;

private:
    std::map<Key, Counter> counters_;
    std::map<Key, GaugeFn> gauges_;
    std::map<Key, Histogram> histograms_;
    std::uint64_t structure_generation_ = 0;
    // The dirty feed mutates under const reads (drain from a const
    // registry reference held by the sampler); mutable keeps the public
    // observable state — metric values — logically const.
    mutable std::vector<Counter*> dirty_counters_;
    mutable std::vector<Histogram*> dirty_histograms_;
    mutable const void* dirty_consumer_ = nullptr;
};

/// Checks a parsed document against the metrics schema in
/// docs/TRACE_FORMAT.md §4. Returns human-readable problems; an empty
/// vector means the document is valid. Shared by tests/test_obs.cpp and
/// the bench_smoke validator so there is exactly one schema authority.
std::vector<std::string> validate_metrics_document(const JsonValue& doc);

}  // namespace mip::obs
