// Online health monitors (ISSUE 8: observability tentpole, part a).
//
// Everything below PR 8 in the observability stack is post-hoc: run a
// bench, export JSON, grep for the anomaly afterwards. HealthMonitor is
// the online layer — a set of streaming detectors evaluated against the
// MetricsRegistry on a sim-time interval, so the signals a production
// mobility system must watch live (registration storms, handoff churn,
// probe deliverability, latency SLOs) are detected *while the run is
// happening*, deterministically, inside simulated time.
//
// Three detector families:
//
//   watermark     absolute value of a gauge/counter crossed trip_at, with
//                 clear_at hysteresis ("binding table above 10k entries")
//   rate spike    per-evaluation delta of a monotone counter (or gauge)
//                 against an EWMA baseline: trip when the rate exceeds
//                 max(min_rate, spike_factor x ewma) after warmup
//                 ("registration storm", "handoff churn", probe failures)
//   quantile SLO  a P^2 streaming quantile sketch (Jain & Chlamtac 1985,
//                 five markers, O(1) memory) over values push-fed via
//                 observe(): trip when the running estimate exceeds the
//                 SLO bound ("p95 handoff recovery <= 2 s")
//
// Every trip/clear transition is audited as a DecisionEvent (§6 schema,
// node "health-monitor") and counted in the registry, and a registered
// on_trip callback receives the MonitorTrip — that is the hook the
// incident flight recorder (obs/incident.h) hangs off.
//
// Determinism: evaluation happens on the simulated clock, detectors are
// pure arithmetic over registry state, and trips are sequence-numbered —
// two runs of the same seed produce byte-identical trip logs.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "obs/decision.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace mip::obs {

/// Streaming quantile estimate via the P^2 algorithm: five markers track
/// (min, p/2, p, (1+p)/2, max) with parabolic interpolation — no stored
/// samples, O(1) per observation. Estimates are exact until five
/// observations, then approximate.
class P2Quantile {
public:
    /// `q` in (0, 1), e.g. 0.95 for p95.
    explicit P2Quantile(double q);

    void add(double value);
    /// The current estimate; 0 when empty. Exact for < 5 observations.
    double estimate() const;
    std::uint64_t count() const noexcept { return count_; }

private:
    double q_;
    std::uint64_t count_ = 0;
    double heights_[5] = {0, 0, 0, 0, 0};   // marker heights
    double positions_[5] = {1, 2, 3, 4, 5}; // actual marker positions (1-based)
    double desired_[5] = {1, 2, 3, 4, 5};   // desired marker positions
    double increment_[5] = {0, 0, 0, 0, 0}; // desired-position increments
};

/// Where a rule reads its signal from.
enum class MetricSource : std::uint8_t {
    Counter,  ///< registry counter (monotone)
    Gauge,    ///< polled gauge provider
};

/// Absolute-threshold rule with hysteresis: trips when the metric's
/// value reaches `trip_at`, clears when it falls below `clear_at`
/// (defaults to trip_at when NaN).
struct WatermarkRule {
    std::string name;  // unique monitor name, e.g. "binding-pressure"
    std::string node, layer, metric;
    MetricSource source = MetricSource::Gauge;
    double trip_at = 0.0;
    double clear_at = std::numeric_limits<double>::quiet_NaN();
    std::string detail;  // free-form, copied into trips and bundles
};

/// EWMA rate-spike rule: each evaluation computes the metric's delta
/// since the previous evaluation, trips when
///   delta >= max(min_rate, spike_factor * ewma_before)
/// after `warmup_evals` evaluations have fed the baseline, and clears
/// when the delta falls below min_rate. spike_factor 0 degenerates to a
/// fixed per-evaluation rate threshold.
struct RateSpikeRule {
    std::string name;
    std::string node, layer, metric;
    MetricSource source = MetricSource::Counter;
    double min_rate = 1.0;
    double spike_factor = 0.0;
    double alpha = 0.3;  // EWMA smoothing factor in (0, 1]
    std::uint32_t warmup_evals = 0;
    std::string detail;
};

/// Streaming-quantile SLO rule over push-fed observations (see
/// HealthMonitor::observe): trips when the P^2 estimate of `quantile`
/// exceeds `bound` once `min_samples` observations have arrived. The
/// sketch is cumulative over the whole run.
struct QuantileSloRule {
    std::string name;  // also the observe() feed name
    double quantile = 0.95;
    double bound = 0.0;
    std::uint64_t min_samples = 16;
    std::string unit;  // rendered in details, e.g. "ns"
    std::string detail;
};

/// One monitor trip (or the state behind it), as delivered to on_trip
/// callbacks and summarized in incident bundles.
struct MonitorTrip {
    sim::TimePoint when = 0;
    std::uint64_t sequence = 0;  // 1-based, total order over all trips
    std::string monitor;         // rule name
    std::string rule;            // "watermark" | "rate-spike" | "quantile-slo"
    double value = 0.0;          // observed value that tripped
    double threshold = 0.0;      // effective bound it crossed
    std::string detail;          // rule's free-form detail
};

struct MonitorConfig {
    /// Simulated time between evaluations.
    sim::Duration interval = sim::milliseconds(250);
    /// Node name used for the monitor's own registry counters and
    /// DecisionEvents.
    std::string node = "health-monitor";
};

/// Evaluates a set of detector rules against a MetricsRegistry on a
/// sim-time interval. Off until start(); stop() (or destruction)
/// disarms. The registry and simulator must outlive the monitor.
///
/// Metrics referenced by rules may not exist yet at start() — counters
/// are created lazily on first bump — so resolution retries every
/// evaluation until the metric appears; a missing metric reads as 0.
class HealthMonitor {
public:
    using TripCallback = std::function<void(const MonitorTrip&)>;

    HealthMonitor(sim::Simulator& sim, MetricsRegistry& registry,
                  MonitorConfig config = {});
    ~HealthMonitor();

    HealthMonitor(const HealthMonitor&) = delete;
    HealthMonitor& operator=(const HealthMonitor&) = delete;

    void add_watermark(WatermarkRule rule);
    void add_rate_spike(RateSpikeRule rule);
    void add_quantile_slo(QuantileSloRule rule);
    std::size_t rules() const noexcept;

    /// Push one observation into the quantile-SLO rule named `name`
    /// (no-op when no such rule). SLO rules evaluate on the shared
    /// interval like everything else; observe() only feeds the sketch.
    void observe(const std::string& name, double value);

    /// Attach the decision audit trail (nullable; off by default).
    void set_decision_log(DecisionLog* log) { decisions_ = log; }
    /// Register the trip hook (the incident recorder's entry point).
    void on_trip(TripCallback cb) { on_trip_ = std::move(cb); }

    void start();
    void stop();
    bool running() const noexcept { return running_; }
    /// Evaluates every rule immediately (also usable without start()).
    void evaluate_now();

    // ---- queries ------------------------------------------------------------
    std::uint64_t evaluations() const noexcept { return evaluations_; }
    std::uint64_t trips() const noexcept { return trip_log_.size(); }
    std::uint64_t clears() const noexcept { return clears_; }
    /// All trips, in sequence order.
    const std::vector<MonitorTrip>& trip_log() const noexcept { return trip_log_; }
    /// Is the named monitor currently in the tripped state?
    bool tripped(const std::string& name) const;
    /// How many times has the named monitor tripped?
    std::uint64_t trip_count(const std::string& name) const;
    /// Sim time of the first trip of the named monitor, or -1 when it
    /// never tripped.
    sim::TimePoint first_trip_at(const std::string& name) const;
    /// The quantile estimate of an SLO rule's sketch (0 when unknown).
    double quantile_estimate(const std::string& name) const;

private:
    struct RuleState {
        enum class Kind : std::uint8_t { Watermark, RateSpike, QuantileSlo } kind;
        std::string name;
        std::string detail;
        // source metric (watermark / rate-spike)
        std::string node, layer, metric;
        MetricSource source = MetricSource::Counter;
        const Counter* counter = nullptr;        // resolved lazily
        const MetricsRegistry::GaugeFn* gauge = nullptr;
        // watermark
        double trip_at = 0.0, clear_at = 0.0;
        // rate spike
        double min_rate = 0.0, spike_factor = 0.0, alpha = 0.3;
        std::uint32_t warmup_evals = 0;
        std::uint32_t evals_seen = 0;
        double last_value = 0.0;
        bool have_last = false;
        double ewma = 0.0;
        // quantile SLO
        double quantile = 0.95, bound = 0.0;
        std::uint64_t min_samples = 0;
        std::string unit;
        P2Quantile sketch{0.95};
        // shared
        bool is_tripped = false;
        std::uint64_t trip_count = 0;
        sim::TimePoint first_trip = -1;
    };

    void tick();
    bool read_source(RuleState& rule, double& out);
    void evaluate(RuleState& rule);
    void transition(RuleState& rule, bool trip, double value, double threshold,
                    const char* rule_kind);

    sim::Simulator& sim_;
    MetricsRegistry& registry_;
    MonitorConfig config_;
    bool running_ = false;
    sim::EventId timer_ = 0;
    std::uint64_t evaluations_ = 0;
    std::uint64_t clears_ = 0;
    std::vector<RuleState> rules_;
    std::vector<MonitorTrip> trip_log_;
    DecisionLog* decisions_ = nullptr;
    TripCallback on_trip_;
};

}  // namespace mip::obs
