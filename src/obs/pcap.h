// Pcap export (ISSUE tentpole, part c): write frames passing a Link or a
// Nic to a classic libpcap capture file that Wireshark/tcpdump open
// directly (`wireshark capture.pcap`, `tcpdump -r capture.pcap`).
//
// Format: the original pcap container (not pcapng) — 24-byte global
// header, version 2.4, LINKTYPE_ETHERNET (1), then one 16-byte record
// header per frame followed by the frame bytes (14-byte Ethernet header +
// IP payload; no FCS, matching the simulator's frame model).
//
// Timestamp resolution (documented in docs/TRACE_FORMAT.md §7): classic
// pcap has two magics — 0xa1b2c3d4 stores seconds+microseconds,
// 0xa1b23c4d stores seconds+nanoseconds. The simulator keeps integer
// nanoseconds, so Nanosecond mode is lossless; Microsecond mode (the
// default, for tool compatibility) truncates to µs, where frames captured
// within the same microsecond keep their relative order because records
// are written in simulation order.
//
// Capture points differ in what they see:
//   attach(Link) — every frame *offered* to the wire, including frames the
//                  loss model later destroys (one record per transmit).
//   attach(Nic)  — tcpdump's view of one interface: frames it sends plus
//                  frames it accepts (destined to it / broadcast /
//                  subscribed multicast). Lost frames never appear.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>

#include "sim/frame.h"
#include "sim/link.h"
#include "sim/nic.h"
#include "sim/simulator.h"

namespace mip::obs {

/// Record timestamp resolution — selects the file's magic number.
enum class PcapResolution {
    Microsecond,  ///< magic 0xa1b2c3d4; ns clock truncated to µs
    Nanosecond,   ///< magic 0xa1b23c4d; full simulator precision
};

/// Streams captured frames to a pcap file. The writer must outlive every
/// Link/Nic it is attached to (attach installs a FrameTap capturing
/// `this`); World-owned captures satisfy this by declaring the writer
/// before running the simulation and keeping it alive until exit. Records
/// are flushed on close()/destruction.
class PcapWriter {
public:
    /// Opens `path` and writes the global header immediately; throws
    /// std::runtime_error if the file cannot be created. Reads the
    /// simulator clock at each capture for record timestamps, stored at
    /// the chosen resolution (default: microseconds, readable by every
    /// pcap consumer; Nanosecond needs libpcap >= 1.5 / any current
    /// Wireshark and keeps the clock's full precision).
    PcapWriter(sim::Simulator& simulator, const std::string& path,
               PcapResolution resolution = PcapResolution::Microsecond);
    ~PcapWriter();

    PcapWriter(const PcapWriter&) = delete;
    PcapWriter& operator=(const PcapWriter&) = delete;

    /// Captures every frame offered to the link (including later-lost
    /// ones). Replaces any tap already installed on the link.
    void attach(sim::Link& link);
    /// Captures the interface's send+accept view. Replaces any tap
    /// already installed on the NIC.
    void attach(sim::Nic& nic);

    /// Writes one frame record stamped with the current simulated time.
    /// Usable directly when capturing from a custom tap.
    void write(const sim::Frame& frame);

    std::size_t frames_written() const noexcept { return frames_; }
    PcapResolution resolution() const noexcept { return resolution_; }

    /// Flushes and closes the file; further write() calls are ignored.
    void close();

private:
    sim::Simulator& simulator_;
    std::ofstream out_;
    PcapResolution resolution_;
    std::size_t frames_ = 0;
};

}  // namespace mip::obs
