#include "obs/perfetto.h"

#include <fstream>

#include "obs/decision.h"
#include "obs/journey.h"
#include "obs/timeseries.h"
#include "sim/trace.h"

namespace mip::obs {

namespace {

double to_us(sim::TimePoint t) { return static_cast<double>(t) / 1000.0; }

}  // namespace

ChromeTraceWriter::ChromeTraceWriter() {
    set_process_name(kPidJourneys, "journeys");
    set_process_name(kPidDecisions, "decisions");
    set_process_name(kPidMetrics, "metrics");
    set_process_name(kPidTimeline, "timeline");
}

void ChromeTraceWriter::set_process_name(int pid, const std::string& name) {
    JsonValue::Object args;
    args["name"] = name;
    JsonValue::Object ev;
    ev["ph"] = "M";
    ev["name"] = "process_name";
    ev["pid"] = pid;
    ev["tid"] = 0;
    ev["args"] = std::move(args);
    events_.emplace_back(std::move(ev));
}

int ChromeTraceWriter::tid_for(int pid, const std::string& label) {
    const auto key = std::make_pair(pid, label);
    const auto it = tids_.find(key);
    if (it != tids_.end()) return it->second;
    const int tid = ++next_tid_[pid];
    tids_.emplace(key, tid);

    JsonValue::Object args;
    args["name"] = label;
    JsonValue::Object ev;
    ev["ph"] = "M";
    ev["name"] = "thread_name";
    ev["pid"] = pid;
    ev["tid"] = tid;
    ev["args"] = std::move(args);
    events_.emplace_back(std::move(ev));
    return tid;
}

void ChromeTraceWriter::push_event(JsonValue::Object event) {
    events_.emplace_back(std::move(event));
    ++data_events_;
}

void ChromeTraceWriter::add_journeys(const JourneyIndex& index) {
    for (const auto& [id, journey] : index.journeys()) {
        if (journey.events.empty()) continue;
        const int tid = tid_for(kPidJourneys, "journey " + std::to_string(id));
        const sim::TimePoint begin = journey.events.front().when;
        const sim::TimePoint end = journey.events.back().when;

        std::string outcome = "in flight";
        if (journey.delivered()) outcome = "delivered";
        const sim::TraceEvent* drop = journey.drop();
        if (drop != nullptr) outcome = std::string("dropped: ") + to_string(drop->kind);

        JsonValue::Object span_args;
        span_args["events"] = static_cast<std::uint64_t>(journey.events.size());
        span_args["hops"] = static_cast<std::uint64_t>(journey.hops());
        JsonValue::Object span;
        span["ph"] = "X";
        span["pid"] = kPidJourneys;
        span["tid"] = tid;
        span["ts"] = to_us(begin);
        // Zero-duration spans render invisibly; give single-event
        // journeys a 1 µs sliver so they stay clickable.
        span["dur"] = end > begin ? to_us(end - begin) : 1.0;
        span["name"] = outcome;
        span["cat"] = "journey";
        span["args"] = std::move(span_args);
        push_event(std::move(span));

        for (const sim::TraceEvent& te : journey.events) {
            JsonValue::Object args;
            args["node"] = te.node;
            if (te.bytes != 0) args["bytes"] = static_cast<std::uint64_t>(te.bytes);
            if (!te.detail.empty()) args["detail"] = te.detail;
            JsonValue::Object ev;
            ev["ph"] = "i";
            ev["s"] = "t";  // thread-scoped instant
            ev["pid"] = kPidJourneys;
            ev["tid"] = tid;
            ev["ts"] = to_us(te.when);
            ev["name"] = std::string(to_string(te.kind)) + " @ " + te.node;
            ev["cat"] = "journey";
            ev["args"] = std::move(args);
            push_event(std::move(ev));
        }
    }
}

void ChromeTraceWriter::add_decisions(const DecisionLog& log) {
    for (const DecisionEvent& de : log.events()) {
        const int tid = tid_for(kPidDecisions, de.node + " → " + de.correspondent);
        JsonValue::Object args;
        args["trigger"] = de.trigger;
        args["test"] = de.test;
        args["input"] = de.input;
        args["passed"] = de.passed;
        args["from_mode"] = de.from_mode;
        args["to_mode"] = de.to_mode;
        args["in_mode"] = de.in_mode;
        args["detail"] = de.detail;
        JsonValue::Object ev;
        ev["ph"] = "i";
        ev["s"] = "t";
        ev["pid"] = kPidDecisions;
        ev["tid"] = tid;
        ev["ts"] = to_us(de.when);
        std::string name = de.trigger + "/" + de.test;
        if (!de.to_mode.empty() && de.to_mode != de.from_mode) {
            name += " → " + de.to_mode;
        }
        ev["name"] = std::move(name);
        ev["cat"] = "decision";
        ev["args"] = std::move(args);
        push_event(std::move(ev));
    }
}

void ChromeTraceWriter::add_series(const MetricsSampler& sampler) {
    for (const auto& [key, ring] : sampler.series()) {
        const std::string name = std::get<0>(key) + "/" + std::get<1>(key) + "/" +
                                 std::get<2>(key) + "." + std::get<3>(key);
        for (std::size_t i = 0; i < ring.size(); ++i) {
            const SeriesPoint& p = ring.at(i);
            JsonValue::Object args;
            args["value"] = p.value;
            JsonValue::Object ev;
            ev["ph"] = "C";
            ev["pid"] = kPidMetrics;
            ev["tid"] = 0;
            ev["ts"] = to_us(p.t_ns);
            ev["name"] = name;
            ev["cat"] = "metric";
            ev["args"] = std::move(args);
            push_event(std::move(ev));
        }
    }
}

void ChromeTraceWriter::add_instant(const std::string& track, sim::TimePoint t,
                                    const std::string& name, JsonValue::Object args) {
    const int tid = tid_for(kPidTimeline, track);
    JsonValue::Object ev;
    ev["ph"] = "i";
    ev["s"] = "t";
    ev["pid"] = kPidTimeline;
    ev["tid"] = tid;
    ev["ts"] = to_us(t);
    ev["name"] = name;
    ev["cat"] = "timeline";
    ev["args"] = std::move(args);
    push_event(std::move(ev));
}

void ChromeTraceWriter::add_span(const std::string& track, sim::TimePoint begin,
                                 sim::TimePoint end, const std::string& name,
                                 JsonValue::Object args) {
    const int tid = tid_for(kPidTimeline, track);
    JsonValue::Object ev;
    ev["ph"] = "X";
    ev["pid"] = kPidTimeline;
    ev["tid"] = tid;
    ev["ts"] = to_us(begin);
    ev["dur"] = end > begin ? to_us(end - begin) : 1.0;
    ev["name"] = name;
    ev["cat"] = "timeline";
    ev["args"] = std::move(args);
    push_event(std::move(ev));
}

JsonValue ChromeTraceWriter::document() const {
    JsonValue::Object doc;
    doc["traceEvents"] = events_;
    doc["displayTimeUnit"] = "ms";
    return JsonValue(std::move(doc));
}

std::string ChromeTraceWriter::document_string() const {
    return document().dump() + "\n";
}

void ChromeTraceWriter::write(const std::string& path) const {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw JsonError("cannot open " + path + " for writing");
    out << document_string();
    if (!out) throw JsonError("failed writing " + path);
}

}  // namespace mip::obs
