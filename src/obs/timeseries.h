// Metrics time-series sampling (ISSUE: time-resolved observability,
// part a).
//
// A MetricsRegistry snapshot is an end-of-run photograph; the paper's
// runtime behavior — the §7.1 "series of tests", probe upgrades, mode
// flips, handoff dynamics — is a *process over time*. MetricsSampler
// turns the registry into time series: driven on a configurable sim-time
// interval (off by default; start() attaches it), each tick walks the
// registry and records
//
//   counters    -> field "rate":  the delta since the previous tick
//   gauges      -> field "value": the polled value
//   histograms  -> fields "count" and "sum": the cumulative snapshot
//
// into a fixed-capacity ring buffer per (node, layer, name, field).
// When a ring fills, the oldest points are dropped and counted, so a
// long run keeps the most recent window at full resolution instead of
// exhausting memory.
//
// Export is deterministic JSON (docs/TRACE_FORMAT.md §5,
// validate_timeseries_document() is the schema authority) — and, via
// obs::ChromeTraceWriter (perfetto.h), Chrome-trace counter tracks
// openable in ui.perfetto.dev.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace mip::obs {

struct SeriesPoint {
    sim::TimePoint t_ns = 0;
    double value = 0.0;
};

/// Fixed-capacity ring of points in time order; push() drops (and counts)
/// the oldest point when full.
class SeriesRing {
public:
    explicit SeriesRing(std::size_t capacity);

    void push(SeriesPoint p);

    std::size_t size() const noexcept { return size_; }
    std::size_t capacity() const noexcept { return points_.size(); }
    std::uint64_t dropped() const noexcept { return dropped_; }

    /// i-th retained point, oldest first (0 <= i < size()).
    const SeriesPoint& at(std::size_t i) const;

    /// Retained points, oldest first.
    std::vector<SeriesPoint> points() const;

private:
    std::vector<SeriesPoint> points_;  // fixed size = capacity
    std::size_t head_ = 0;             // index of the oldest retained point
    std::size_t size_ = 0;
    std::uint64_t dropped_ = 0;
};

struct SamplerConfig {
    /// Simulated time between ticks.
    sim::Duration interval = sim::milliseconds(100);
    /// Points retained per series; older points are dropped (and counted).
    std::size_t ring_capacity = 4096;
};

/// Samples a MetricsRegistry on a simulated-time interval. Off by
/// default: construction records nothing and schedules nothing; start()
/// arms the repeating tick (tagged "metrics-sample" for the
/// self-profiler), stop() (or destruction) disarms it. The registry and
/// simulator must outlive the sampler.
class MetricsSampler {
public:
    /// (node, layer, name, field) — field is "rate", "value", "count" or
    /// "sum" per the class comment.
    using SeriesKey = std::tuple<std::string, std::string, std::string, std::string>;

    MetricsSampler(sim::Simulator& sim, const MetricsRegistry& registry,
                   SamplerConfig config = {});
    ~MetricsSampler();

    MetricsSampler(const MetricsSampler&) = delete;
    MetricsSampler& operator=(const MetricsSampler&) = delete;

    void start();
    void stop();
    bool running() const noexcept { return running_; }

    /// Takes one sample immediately (also usable without start()).
    void sample_now();

    std::uint64_t samples_taken() const noexcept { return samples_; }
    const SamplerConfig& config() const noexcept { return config_; }

    const std::map<SeriesKey, SeriesRing>& series() const noexcept { return series_; }
    /// The ring for one series, or nullptr when never recorded.
    const SeriesRing* find(const std::string& node, const std::string& layer,
                           const std::string& name, const std::string& field) const;

    /// Renders every series into the docs/TRACE_FORMAT.md §5 document:
    ///   {"schema_version":1, "kind":"timeseries", "bench":..., "label":...,
    ///    "interval_ns":..., "samples":..., "series":[...]}
    /// Series appear sorted by (node, layer, name, field).
    JsonValue to_json(const std::string& bench, const std::string& label) const;

    /// Convenience: to_json() serialized with 2-space indentation.
    std::string to_json_string(const std::string& bench, const std::string& label) const;

private:
    void tick();

    sim::Simulator& sim_;
    const MetricsRegistry& registry_;
    SamplerConfig config_;
    bool running_ = false;
    sim::EventId timer_ = 0;
    std::uint64_t samples_ = 0;
    std::map<SeriesKey, SeriesRing> series_;
    std::map<MetricsRegistry::Key, std::uint64_t> last_counter_;
};

/// Checks a parsed document against the time-series schema in
/// docs/TRACE_FORMAT.md §5. Empty result = valid. Shared by the unit
/// tests and the validate_metrics binary (bench_smoke), like the §4
/// metrics validator.
std::vector<std::string> validate_timeseries_document(const JsonValue& doc);

}  // namespace mip::obs
