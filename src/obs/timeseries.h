// Metrics time-series sampling (ISSUE: time-resolved observability,
// part a; delta-sampled hot path: observability tentpole PR 8).
//
// A MetricsRegistry snapshot is an end-of-run photograph; the paper's
// runtime behavior — the §7.1 "series of tests", probe upgrades, mode
// flips, handoff dynamics — is a *process over time*. MetricsSampler
// turns the registry into time series: driven on a configurable sim-time
// interval (off by default; start() attaches it), each tick records
//
//   counters    -> field "rate":  the delta since the previous tick
//   gauges      -> field "value": the polled value
//   histograms  -> fields "count" and "sum": the cumulative snapshot
//
// bounded per series to the most recent `ring_capacity` ticks; older
// points are dropped and counted (`dropped_points` in the export), so a
// long run keeps the most recent window at full resolution instead of
// exhausting memory.
//
// Two internally different but byte-identical sampling strategies:
//
//   delta (default)  claims the registry's dirty-consumer slot and per
//                    tick visits only the counters/histograms that
//                    mutated since the previous tick (plus all polled
//                    gauges, which cannot self-report). Quiet metrics are
//                    stored run-length / sparse and reconstructed at
//                    export. This is what makes always-on sampling cheap
//                    enough to leave armed at city scale.
//   full walk        walks every registry entry every tick into eager
//                    per-series rings — the reference implementation the
//                    delta path is pinned against (golden + unit tests),
//                    and the automatic fallback when another sampler
//                    already holds the dirty feed.
//
// Lifecycle contract (PR 8 satellite): a sampler is Idle until start(),
// Running until stop(), and Stopped after. sample_now() records in Idle
// and Running; once stopped the observation window is sealed and
// sample_now() is a no-op (it used to keep appending with a stale
// counter baseline). start() after stop() re-opens the window and
// re-baselines counters to their current values, so mutations during the
// gap contribute no spurious rate spike.
//
// Export is deterministic JSON (docs/TRACE_FORMAT.md §5,
// validate_timeseries_document() is the schema authority) — and, via
// obs::ChromeTraceWriter (perfetto.h), Chrome-trace counter tracks
// openable in ui.perfetto.dev.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace mip::obs {

struct SeriesPoint {
    sim::TimePoint t_ns = 0;
    double value = 0.0;
};

/// Fixed-capacity ring of points in time order; push() drops (and counts)
/// the oldest point when full.
class SeriesRing {
public:
    explicit SeriesRing(std::size_t capacity);

    void push(SeriesPoint p);

    std::size_t size() const noexcept { return size_; }
    std::size_t capacity() const noexcept { return points_.size(); }
    std::uint64_t dropped() const noexcept { return dropped_; }

    /// Accounts for points that were logically dropped without ever being
    /// pushed — used when a ring is materialized from the delta store,
    /// which never held the evicted points in the first place.
    void add_dropped(std::uint64_t n) noexcept { dropped_ += n; }

    /// i-th retained point, oldest first (0 <= i < size()).
    const SeriesPoint& at(std::size_t i) const;

    /// Retained points, oldest first.
    std::vector<SeriesPoint> points() const;

private:
    std::vector<SeriesPoint> points_;  // fixed size = capacity
    std::size_t head_ = 0;             // index of the oldest retained point
    std::size_t size_ = 0;
    std::uint64_t dropped_ = 0;
};

struct SamplerConfig {
    /// Simulated time between ticks.
    sim::Duration interval = sim::milliseconds(100);
    /// Points retained per series; older points are dropped (and counted).
    std::size_t ring_capacity = 4096;
    /// Delta sampling (dirty-marked registry feed) vs the full-walk
    /// reference path. Output is byte-identical either way; delta is the
    /// cheap one. Automatically downgraded to full walk when another
    /// sampler already claims the registry's dirty feed.
    bool delta = true;
};

/// Samples a MetricsRegistry on a simulated-time interval. Off by
/// default: construction records nothing and schedules nothing; start()
/// arms the repeating tick (tagged "metrics-sample" for the
/// self-profiler), stop() (or destruction) disarms it and seals the
/// window. The registry and simulator must outlive the sampler.
class MetricsSampler {
public:
    /// (node, layer, name, field) — field is "rate", "value", "count" or
    /// "sum" per the class comment.
    using SeriesKey = std::tuple<std::string, std::string, std::string, std::string>;

    MetricsSampler(sim::Simulator& sim, const MetricsRegistry& registry,
                   SamplerConfig config = {});
    ~MetricsSampler();

    MetricsSampler(const MetricsSampler&) = delete;
    MetricsSampler& operator=(const MetricsSampler&) = delete;

    void start();
    void stop();
    bool running() const noexcept { return phase_ == Phase::Running; }
    /// True once stop() has sealed the window (sample_now() is a no-op).
    bool stopped() const noexcept { return phase_ == Phase::Stopped; }
    /// True when the cheap dirty-feed path is active (config().delta was
    /// set and this sampler won the registry's single consumer slot).
    bool delta_active() const noexcept { return delta_mode_; }

    /// Takes one sample immediately (also usable without start()).
    /// No-op after stop() — the stopped-sampler contract.
    void sample_now();

    std::uint64_t samples_taken() const noexcept { return samples_; }
    const SamplerConfig& config() const noexcept { return config_; }

    /// Per-series rings, (node, layer, name, field)-sorted. In delta mode
    /// this materializes (and caches) the rings from the sparse store.
    const std::map<SeriesKey, SeriesRing>& series() const;
    /// The ring for one series, or nullptr when never recorded.
    const SeriesRing* find(const std::string& node, const std::string& layer,
                           const std::string& name, const std::string& field) const;

    /// Renders every series into the docs/TRACE_FORMAT.md §5 document:
    ///   {"schema_version":2, "kind":"timeseries", "bench":..., "label":...,
    ///    "interval_ns":..., "samples":..., "ring_capacity":..., "series":[...]}
    /// Series appear sorted by (node, layer, name, field).
    JsonValue to_json(const std::string& bench, const std::string& label) const;

    /// Convenience: to_json() serialized with 2-space indentation.
    std::string to_json_string(const std::string& bench, const std::string& label) const;

private:
    enum class Phase { Idle, Running, Stopped };

    // Delta-mode sparse stores. Tick indices are 0-based; tick i's
    // timestamp lives in tick_times_[i % cap] while i is within the
    // retained window [samples_ - min(samples_, cap), samples_).
    struct CounterSeries {
        MetricsRegistry::Key key;
        const Counter* src = nullptr;
        std::uint64_t first_tick = 0;
        std::uint64_t baseline = 0;  // counter value already accounted for
        std::deque<std::pair<std::uint64_t, double>> deltas;  // (tick, nonzero delta)
    };
    struct GaugeSeries {
        MetricsRegistry::Key key;
        const MetricsRegistry::GaugeFn* src = nullptr;
        std::uint64_t first_tick = 0;
        std::deque<std::pair<std::uint64_t, double>> values;  // run-length: (tick, new value)
    };
    struct HistSeries {
        MetricsRegistry::Key key;
        const Histogram* src = nullptr;
        std::uint64_t first_tick = 0;
        // run-length: (tick, cumulative count, cumulative sum)
        std::deque<std::tuple<std::uint64_t, std::uint64_t, double>> points;
    };

    void tick();
    void sample_full_walk(sim::TimePoint now);
    void sample_delta(sim::TimePoint now);
    void sync_plan(std::uint64_t t);  // fold new registry entries into the stores
    void rebaseline_counters();      // start()-after-stop(): discard gap deltas
    void materialize() const;        // rebuild series_ from the sparse stores

    sim::Simulator& sim_;
    const MetricsRegistry& registry_;
    SamplerConfig config_;
    std::size_t cap_;  // effective ring capacity (>= 1)
    Phase phase_ = Phase::Idle;
    bool delta_mode_ = false;
    sim::EventId timer_ = 0;
    std::uint64_t samples_ = 0;

    // Full-walk state (also the materialized cache in delta mode).
    mutable std::map<SeriesKey, SeriesRing> series_;
    mutable bool series_stale_ = false;  // delta mode: cache behind the stores
    std::map<MetricsRegistry::Key, std::uint64_t> last_counter_;

    // Delta-mode state.
    std::uint64_t plan_generation_ = 0;  // registry structure gen last folded in
    bool hist_resync_ = false;           // restart: re-check every histogram once
    std::vector<sim::TimePoint> tick_times_;  // ring of the last `cap_` tick times
    std::vector<CounterSeries> counter_series_;
    std::vector<GaugeSeries> gauge_series_;
    std::vector<HistSeries> hist_series_;
    std::unordered_map<const void*, std::size_t> counter_index_;  // Counter* -> idx
    std::unordered_map<const void*, std::size_t> gauge_index_;    // GaugeFn* -> idx
    std::unordered_map<const void*, std::size_t> hist_index_;     // Histogram* -> idx
    std::vector<Counter*> dirty_counters_scratch_;
    std::vector<Histogram*> dirty_hists_scratch_;
};

/// Checks a parsed document against the time-series schema in
/// docs/TRACE_FORMAT.md §5. Empty result = valid. Shared by the unit
/// tests and the validate_metrics binary (bench_smoke), like the §4
/// metrics validator.
std::vector<std::string> validate_timeseries_document(const JsonValue& doc);

}  // namespace mip::obs
