// Delivery-decision audit trail (ISSUE: time-resolved observability,
// part b).
//
// The paper's §7.1 selection machinery — "run a series of tests, pick the
// first delivery method that passes, downgrade on failure, periodically
// probe for an upgrade" — ends in a single OutMode per correspondent, but
// the *path* to that mode is what figures 10's sixteen cells actually
// differ in. DecisionEvent captures one step of that path: which test
// ran, on what input, whether it passed, which mode was left and which
// was entered, and what triggered the evaluation (initial selection, a
// delivery failure, an upgrade probe, an explicit override).
//
// DecisionLog is the append-only index: core::DeliveryMethodCache and
// core::CapabilityProber record into the World's log (when one is
// attached — off by default, like the sampler and profiler), benches
// print per-correspondent causal chains via chain_string(), and to_json()
// renders the docs/TRACE_FORMAT.md §6 document checked by
// validate_decisions_document().
//
// Modes are carried as strings ("IE", "DE", "DH", "DT", ...) rather than
// core enums: obs is below core in the link graph (core links obs, never
// the reverse), so core converts at the call site via to_string(OutMode).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.h"
#include "sim/record_arena.h"
#include "sim/time.h"

namespace mip::obs {

/// One step in the delivery-method decision process for one
/// correspondent.
struct DecisionEvent {
    sim::TimePoint when = 0;
    /// Node running the selection machinery (the mobile host).
    std::string node;
    /// Correspondent the decision is about (address or name).
    std::string correspondent;
    /// What prompted the evaluation: "initial", "failure", "upgrade",
    /// "probe", "forced", ... (open set; §6 lists the core producers).
    std::string trigger;
    /// Which test ran, e.g. "same-subnet", "probe-ping", "failure-count".
    std::string test;
    /// The test's input, human-readable ("failures=2", "rtt=12ms", ...).
    std::string input;
    /// Did the test pass?
    bool passed = false;
    /// Delivery mode before/after ("" when unchanged or not applicable).
    std::string from_mode;
    std::string to_mode;
    /// Inbound mode in effect, when relevant ("" otherwise).
    std::string in_mode;
    /// Free-form elaboration.
    std::string detail;

    /// One-line rendering used in causal chains:
    ///   [12.500s] failure/failure-count failures=2 FAIL DE->IE (blacklisted DE)
    std::string to_string() const;
};

/// The compact stored form of a DecisionEvent: every string interned to
/// a u32 id, the record itself written once into an arena chunk. Like
/// the trace layer's TraceRecord, nothing JSON-shaped or string-valued
/// exists until export time (ISSUE 7).
struct DecisionRecord {
    sim::TimePoint when = 0;
    std::uint32_t node = 0;
    std::uint32_t correspondent = 0;
    std::uint32_t trigger = 0;
    std::uint32_t test = 0;
    std::uint32_t input = 0;
    std::uint32_t from_mode = 0;
    std::uint32_t to_mode = 0;
    std::uint32_t in_mode = 0;
    std::uint32_t detail = 0;
    bool passed = false;
};

/// Append-only log of DecisionEvents, indexed per correspondent on
/// demand. Attach one to the producing objects (DeliveryMethodCache,
/// CapabilityProber) to turn recording on; detached, they pay one null
/// pointer compare per decision.
///
/// Storage mirrors TraceRecorder: compact DecisionRecords in arena
/// chunks (pass the per-Simulator arena; with none given the log owns a
/// private arena), strings interned once, classic DecisionEvents
/// materialized lazily by events(). The returned reference is
/// invalidated by the next record() or clear().
class DecisionLog {
public:
    explicit DecisionLog(sim::RecordArena* arena = nullptr);
    DecisionLog(const DecisionLog&) = delete;
    DecisionLog& operator=(const DecisionLog&) = delete;

    void record(DecisionEvent ev);

    const std::vector<DecisionEvent>& events() const;
    std::size_t size() const noexcept { return records_.size(); }
    void clear();

    /// Events about one correspondent, in record order.
    std::vector<DecisionEvent> for_correspondent(const std::string& correspondent) const;

    /// Correspondents that appear in the log, sorted, deduplicated.
    std::vector<std::string> correspondents() const;

    /// The causal chain behind one correspondent's current mode: every
    /// event's to_string(), one per line with the given prefix. Empty
    /// string when nothing was recorded.
    std::string chain_string(const std::string& correspondent,
                             const std::string& line_prefix = "  ") const;

    /// Renders the docs/TRACE_FORMAT.md §6 document:
    ///   {"schema_version":1, "kind":"decisions", "bench":..., "label":...,
    ///    "events":[...]}
    /// Events appear in record order (simulated-time order for a single
    /// run, since recording happens inside event handlers).
    JsonValue to_json(const std::string& bench, const std::string& label) const;

    /// Convenience: to_json() serialized with 2-space indentation.
    std::string to_json_string(const std::string& bench, const std::string& label) const;

private:
    sim::RecordArena owned_arena_;  ///< used when no arena is injected
    sim::RecordArena* arena_;
    sim::RecordLog<DecisionRecord> records_;
    sim::StringInterner strings_;
    mutable std::vector<DecisionEvent> materialized_;
    mutable std::size_t materialized_upto_ = 0;
};

/// Checks a parsed document against the decision-event schema in
/// docs/TRACE_FORMAT.md §6. Empty result = valid. Shared by the unit
/// tests and the validate_metrics binary (bench_smoke).
std::vector<std::string> validate_decisions_document(const JsonValue& doc);

}  // namespace mip::obs
