// Bridge from the simulator self-profiler into the metrics registry
// (ISSUE: time-resolved observability, part c).
//
// sim::SimProfiler keeps its own storage because wall-clock readings are
// non-deterministic and must stay out of the bit-reproducible snapshot
// path by default. When a bench *wants* profiler data in its metrics
// document (or sampled into time series), publish_profiler() registers
// polled gauges under the pseudo-node "simulator":
//
//   ("simulator", "profiler", "dispatches")         total events dispatched
//   ("simulator", "profiler", "wall_ns")            total handler wall time
//   ("simulator", "profiler", "events_per_sec")     dispatch rate so far
//   ("simulator", "profiler", "max_queue_depth")    queue high-water mark
//   ("simulator", "profiler", "max_cancelled")      cancelled-set high-water
//   ("simulator", "queue", "depth")                 live pending-event count
//   ("simulator", "queue", "cancelled_backlog")     live cancelled-set size
//   ("simulator", "profiler", "kind/<kind>")        per-kind dispatch count
//
// Gauges poll live, so a MetricsSampler attached to the same registry
// turns queue depth and dispatch counts into time series for free. The
// profiler and simulator must outlive the registry's use of the gauges.
#pragma once

#include "obs/metrics.h"
#include "sim/profiler.h"
#include "sim/simulator.h"

namespace mip::obs {

void publish_profiler(const sim::SimProfiler& profiler, const sim::Simulator& sim,
                      MetricsRegistry& registry);

}  // namespace mip::obs
