// Packet journeys: the flow-correlated view of a trace (ISSUE tentpole).
//
// Every datagram gets a network-wide-unique journey id at its first send
// (sim::Simulator::next_packet_id, assigned in IpStack::send). The id
// rides along as out-of-band metadata — through fragmentation, IP-in-IP /
// minimal / GRE encapsulation, home-agent forwarding, and across the wire
// via sim::Frame — so every TraceEvent the datagram generates anywhere in
// the network carries the same packet_id. JourneyIndex groups a recorded
// trace by that id; a PacketJourney is then the datagram's complete story:
// sent, encapsulated, forwarded hop by hop, filtered, decapsulated,
// delivered or dropped with a reason.
//
// The event schema is documented in docs/TRACE_FORMAT.md; §3 there shows
// a worked journey for the Figure 2 firewall-drop scenario.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/trace.h"

namespace mip::obs {

/// All trace events one datagram generated, in time order (ties keep the
/// recorder's emission order, which follows causality within a node).
struct PacketJourney {
    std::uint64_t id = 0;
    std::vector<sim::TraceEvent> events;

    std::size_t count(sim::TraceKind kind) const;
    /// First event of the given kind, or nullptr.
    const sim::TraceEvent* first(sim::TraceKind kind) const;

    /// The datagram (or its reassembled self) reached a protocol handler.
    bool delivered() const { return count(sim::TraceKind::PacketDelivered) > 0; }

    /// First drop event (FilterDrop, TtlExpired, NoRoute, FrameLost or
    /// FrameTooBig), or nullptr if nothing was dropped. For a filter drop
    /// this names the router and the matching rule — the Figure 2 query.
    const sim::TraceEvent* drop() const;
    bool dropped() const { return drop() != nullptr; }

    /// Link-level hops taken (FrameTx events; fragments each count).
    std::size_t hops() const { return count(sim::TraceKind::FrameTx); }

    /// Node names in first-touch order — the path the datagram took.
    std::vector<std::string> node_path() const;

    /// Human-readable multi-line account ("t=... FrameTx at ch0 ...");
    /// what a developer prints when a test's journey assertion fails.
    std::string to_string() const;
};

/// Groups a recorded trace into journeys, keyed by packet id. Build it
/// after the simulation from TraceRecorder::events(); it copies the
/// events it indexes, so the recorder may be cleared afterwards.
class JourneyIndex {
public:
    JourneyIndex() = default;
    explicit JourneyIndex(const std::vector<sim::TraceEvent>& events) { add(events); }

    /// Indexes more events (events with packet_id == 0, e.g. ARP frames,
    /// are not part of any journey and are skipped).
    void add(const std::vector<sim::TraceEvent>& events);

    const PacketJourney* find(std::uint64_t id) const;
    std::size_t size() const noexcept { return journeys_.size(); }

    /// All journeys, ascending by id (= order of first send).
    const std::map<std::uint64_t, PacketJourney>& journeys() const noexcept {
        return journeys_;
    }

private:
    std::map<std::uint64_t, PacketJourney> journeys_;
};

}  // namespace mip::obs
