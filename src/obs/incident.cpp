#include "obs/incident.h"

#include <algorithm>

namespace mip::obs {

IncidentRecorder::IncidentRecorder(IncidentConfig config) : config_(config) {}

void IncidentRecorder::arm(HealthMonitor& monitor, std::string bench,
                           std::string label) {
    monitor.on_trip([this, bench = std::move(bench),
                     label = std::move(label)](const MonitorTrip& trip) {
        ++captured_;
        if (bundles_.size() >= config_.max_bundles) return;  // counted above
        bundles_.push_back(capture(trip, trip.when, bench, label));
    });
}

JsonValue IncidentRecorder::capture(const MonitorTrip& trip, sim::TimePoint now,
                                    const std::string& bench,
                                    const std::string& label) const {
    const sim::TimePoint window_start =
        now >= config_.window ? now - config_.window : 0;

    JsonValue::Object doc;
    doc["schema_version"] = 1;
    doc["kind"] = "incident";
    doc["bench"] = bench;
    doc["label"] = label;
    doc["sequence"] = trip.sequence;

    JsonValue::Object monitor;
    monitor["name"] = trip.monitor;
    monitor["rule"] = trip.rule;
    monitor["value"] = trip.value;
    monitor["threshold"] = trip.threshold;
    monitor["detail"] = trip.detail;
    doc["monitor"] = std::move(monitor);

    doc["tripped_at_ns"] = static_cast<std::uint64_t>(trip.when);
    doc["captured_at_ns"] = static_cast<std::uint64_t>(now);
    doc["window_ns"] = static_cast<std::uint64_t>(config_.window);

    // Trace excerpt: every event inside the window, newest-tail capped.
    // `total` counts the in-window events before the cap so truncation is
    // explicit in the artifact, never silent.
    {
        JsonValue::Object section;
        JsonValue::Array events;
        std::uint64_t in_window = 0;
        if (trace_ != nullptr) {
            const auto& all = trace_->events();
            std::size_t first = all.size();
            while (first > 0 && all[first - 1].when >= window_start) --first;
            in_window = static_cast<std::uint64_t>(all.size() - first);
            std::size_t start = first;
            if (all.size() - first > config_.max_trace_events) {
                start = all.size() - config_.max_trace_events;
            }
            for (std::size_t i = start; i < all.size(); ++i) {
                const sim::TraceEvent& ev = all[i];
                JsonValue::Object e;
                e["t_ns"] = static_cast<std::uint64_t>(ev.when);
                e["kind"] = sim::to_string(ev.kind);
                e["node"] = ev.node;
                e["bytes"] = static_cast<std::uint64_t>(ev.bytes);
                e["packet_id"] = ev.packet_id;
                e["detail"] = ev.detail;
                events.emplace_back(std::move(e));
            }
        }
        section["total"] = in_window;
        section["included"] = static_cast<std::uint64_t>(events.size());
        section["truncated"] =
            in_window > static_cast<std::uint64_t>(events.size());
        section["events"] = std::move(events);
        doc["trace"] = std::move(section);
    }

    // Decision excerpt: same windowing over the DecisionLog tail.
    {
        JsonValue::Object section;
        JsonValue::Array events;
        std::uint64_t in_window = 0;
        if (decisions_ != nullptr) {
            const auto& all = decisions_->events();
            std::size_t first = all.size();
            while (first > 0 && all[first - 1].when >= window_start) --first;
            in_window = static_cast<std::uint64_t>(all.size() - first);
            std::size_t start = first;
            if (all.size() - first > config_.max_decisions) {
                start = all.size() - config_.max_decisions;
            }
            for (std::size_t i = start; i < all.size(); ++i) {
                const DecisionEvent& ev = all[i];
                JsonValue::Object e;
                e["t_ns"] = static_cast<std::uint64_t>(ev.when);
                e["node"] = ev.node;
                e["correspondent"] = ev.correspondent;
                e["trigger"] = ev.trigger;
                e["test"] = ev.test;
                e["input"] = ev.input;
                e["passed"] = ev.passed;
                e["detail"] = ev.detail;
                events.emplace_back(std::move(e));
            }
        }
        section["total"] = in_window;
        section["included"] = static_cast<std::uint64_t>(events.size());
        section["truncated"] =
            in_window > static_cast<std::uint64_t>(events.size());
        section["events"] = std::move(events);
        doc["decisions"] = std::move(section);
    }

    // Time-series excerpt: per series, the in-window tail of the ring.
    {
        JsonValue::Array rendered;
        if (sampler_ != nullptr) {
            for (const auto& [key, ring] : sampler_->series()) {
                std::size_t first = ring.size();
                while (first > 0 && ring.at(first - 1).t_ns >= window_start) --first;
                const std::size_t in_window = ring.size() - first;
                if (in_window == 0) continue;  // nothing from this series
                std::size_t start = first;
                if (in_window > config_.max_points_per_series) {
                    start = ring.size() - config_.max_points_per_series;
                }
                JsonValue::Object s;
                s["node"] = std::get<0>(key);
                s["layer"] = std::get<1>(key);
                s["name"] = std::get<2>(key);
                s["field"] = std::get<3>(key);
                s["total"] = static_cast<std::uint64_t>(in_window);
                JsonValue::Array points;
                for (std::size_t i = start; i < ring.size(); ++i) {
                    const SeriesPoint& p = ring.at(i);
                    JsonValue::Object point;
                    point["t_ns"] = static_cast<std::uint64_t>(p.t_ns);
                    point["v"] = p.value;
                    points.emplace_back(std::move(point));
                }
                s["included"] = static_cast<std::uint64_t>(points.size());
                s["truncated"] = in_window > points.size();
                s["points"] = std::move(points);
                rendered.emplace_back(std::move(s));
            }
        }
        doc["series"] = std::move(rendered);
    }

    return JsonValue(std::move(doc));
}

// ---- schema validation ------------------------------------------------------

namespace {

void require(std::vector<std::string>& problems, bool ok, const std::string& what) {
    if (!ok) problems.push_back(what);
}

bool is_uint(const JsonValue& v) {
    return v.is_number() && v.as_number() >= 0;
}

// Validates one {total, included, truncated, events|points} excerpt
// section; `time_key` is the timestamp member of each entry.
void validate_excerpt(std::vector<std::string>& problems, const JsonValue& section,
                      const std::string& where, const char* list_key,
                      const std::vector<const char*>& string_keys) {
    if (!section.is_object()) {
        problems.push_back(where + " must be an object");
        return;
    }
    for (const char* key : {"total", "included"}) {
        require(problems, section.contains(key) && is_uint(section.at(key)),
                where + "." + key + " must be a non-negative number");
    }
    require(problems, section.contains("truncated") && section.at("truncated").is_bool(),
            where + ".truncated must be a boolean");
    if (!section.contains(list_key) || !section.at(list_key).is_array()) {
        problems.push_back(where + "." + list_key + " must be an array");
        return;
    }
    const auto& list = section.at(list_key).as_array();
    if (section.contains("included") && is_uint(section.at("included"))) {
        require(problems,
                section.at("included").as_number() ==
                    static_cast<double>(list.size()),
                where + ".included must equal the " + list_key + " length");
    }
    if (section.contains("total") && section.contains("truncated") &&
        is_uint(section.at("total")) && section.at("truncated").is_bool()) {
        const bool cut =
            section.at("total").as_number() > static_cast<double>(list.size());
        require(problems, section.at("truncated").as_bool() == cut,
                where + ".truncated must reflect total vs included");
    }
    double prev_t = -1.0;
    std::size_t i = 0;
    for (const JsonValue& e : list) {
        const std::string ewhere =
            where + "." + list_key + "[" + std::to_string(i++) + "]";
        if (!e.is_object() || !e.contains("t_ns") || !is_uint(e.at("t_ns"))) {
            problems.push_back(ewhere + ".t_ns must be a non-negative number");
            continue;
        }
        const double t = e.at("t_ns").as_number();
        require(problems, t >= prev_t, ewhere + ": timestamps must be non-decreasing");
        prev_t = t;
        for (const char* key : string_keys) {
            require(problems, e.contains(key) && e.at(key).is_string(),
                    ewhere + "." + key + " must be a string");
        }
    }
}

}  // namespace

std::vector<std::string> validate_incident_document(const JsonValue& doc) {
    std::vector<std::string> problems;
    if (!doc.is_object()) {
        problems.push_back("document is not a JSON object");
        return problems;
    }
    require(problems,
            doc.contains("schema_version") && doc.at("schema_version").is_number() &&
                doc.at("schema_version").as_number() == 1,
            "schema_version must be the number 1");
    require(problems,
            doc.contains("kind") && doc.at("kind").is_string() &&
                doc.at("kind").as_string() == "incident",
            "kind must be the string \"incident\"");
    for (const char* key : {"bench", "label"}) {
        require(problems, doc.contains(key) && doc.at(key).is_string(),
                std::string(key) + " must be a string");
    }
    require(problems, doc.contains("sequence") && is_uint(doc.at("sequence")) &&
                          doc.at("sequence").as_number() >= 1,
            "sequence must be a number >= 1");
    for (const char* key : {"tripped_at_ns", "captured_at_ns", "window_ns"}) {
        require(problems, doc.contains(key) && is_uint(doc.at(key)),
                std::string(key) + " must be a non-negative number");
    }

    if (!doc.contains("monitor") || !doc.at("monitor").is_object()) {
        problems.push_back("monitor must be an object");
    } else {
        const JsonValue& m = doc.at("monitor");
        for (const char* key : {"name", "rule", "detail"}) {
            require(problems, m.contains(key) && m.at(key).is_string(),
                    std::string("monitor.") + key + " must be a string");
        }
        if (m.contains("rule") && m.at("rule").is_string()) {
            const std::string& rule = m.at("rule").as_string();
            require(problems,
                    rule == "watermark" || rule == "rate-spike" ||
                        rule == "quantile-slo",
                    "monitor.rule must be watermark, rate-spike or quantile-slo");
        }
        for (const char* key : {"value", "threshold"}) {
            require(problems, m.contains(key) && m.at(key).is_number(),
                    std::string("monitor.") + key + " must be a number");
        }
    }

    if (doc.contains("trace")) {
        validate_excerpt(problems, doc.at("trace"), "trace", "events",
                         {"kind", "node", "detail"});
    } else {
        problems.push_back("trace section missing");
    }
    if (doc.contains("decisions")) {
        validate_excerpt(problems, doc.at("decisions"), "decisions", "events",
                         {"node", "correspondent", "trigger", "test", "input",
                          "detail"});
    } else {
        problems.push_back("decisions section missing");
    }

    if (!doc.contains("series") || !doc.at("series").is_array()) {
        problems.push_back("series must be an array");
        return problems;
    }
    std::size_t i = 0;
    for (const JsonValue& s : doc.at("series").as_array()) {
        const std::string where = "series[" + std::to_string(i++) + "]";
        if (!s.is_object()) {
            problems.push_back(where + " is not an object");
            continue;
        }
        for (const char* key : {"node", "layer", "name", "field"}) {
            require(problems, s.contains(key) && s.at(key).is_string(),
                    where + "." + key + " must be a string");
        }
        validate_excerpt(problems, s, where, "points", {});
    }
    return problems;
}

}  // namespace mip::obs
