#include "obs/decision.h"

#include <algorithm>
#include <cstdio>

namespace mip::obs {

std::string DecisionEvent::to_string() const {
    char stamp[32];
    std::snprintf(stamp, sizeof stamp, "[%.3fs]",
                  static_cast<double>(when) / 1e9);
    std::string out = stamp;
    out += " " + trigger + "/" + test;
    if (!input.empty()) out += " " + input;
    out += passed ? " PASS" : " FAIL";
    if (!from_mode.empty() || !to_mode.empty()) {
        const std::string& from = from_mode.empty() ? to_mode : from_mode;
        const std::string& to = to_mode.empty() ? from_mode : to_mode;
        if (from == to) {
            out += " " + to;
        } else {
            out += " " + from + "->" + to;
        }
    }
    if (!in_mode.empty()) out += " in=" + in_mode;
    if (!detail.empty()) out += " (" + detail + ")";
    return out;
}

DecisionLog::DecisionLog(sim::RecordArena* arena)
    : arena_(arena != nullptr ? arena : &owned_arena_), records_(*arena_) {}

void DecisionLog::record(DecisionEvent ev) {
    // Decisions are rare (mode changes, probes), so interning nine strings
    // here is fine — what matters is that nothing else allocates and the
    // record itself lands in a recycled arena chunk.
    DecisionRecord rec;
    rec.when = ev.when;
    rec.node = strings_.intern(ev.node);
    rec.correspondent = strings_.intern(ev.correspondent);
    rec.trigger = strings_.intern(ev.trigger);
    rec.test = strings_.intern(ev.test);
    rec.input = strings_.intern(ev.input);
    rec.from_mode = strings_.intern(ev.from_mode);
    rec.to_mode = strings_.intern(ev.to_mode);
    rec.in_mode = strings_.intern(ev.in_mode);
    rec.detail = strings_.intern(ev.detail);
    rec.passed = ev.passed;
    records_.push_back(rec);
}

const std::vector<DecisionEvent>& DecisionLog::events() const {
    for (; materialized_upto_ < records_.size(); ++materialized_upto_) {
        const DecisionRecord& rec = records_[materialized_upto_];
        DecisionEvent ev;
        ev.when = rec.when;
        ev.node = strings_.text(rec.node);
        ev.correspondent = strings_.text(rec.correspondent);
        ev.trigger = strings_.text(rec.trigger);
        ev.test = strings_.text(rec.test);
        ev.input = strings_.text(rec.input);
        ev.passed = rec.passed;
        ev.from_mode = strings_.text(rec.from_mode);
        ev.to_mode = strings_.text(rec.to_mode);
        ev.in_mode = strings_.text(rec.in_mode);
        ev.detail = strings_.text(rec.detail);
        materialized_.push_back(std::move(ev));
    }
    return materialized_;
}

void DecisionLog::clear() {
    records_.clear();
    materialized_.clear();
    materialized_upto_ = 0;
}

std::vector<DecisionEvent> DecisionLog::for_correspondent(
    const std::string& correspondent) const {
    std::vector<DecisionEvent> out;
    for (const DecisionEvent& ev : events()) {
        if (ev.correspondent == correspondent) out.push_back(ev);
    }
    return out;
}

std::vector<std::string> DecisionLog::correspondents() const {
    std::vector<std::string> out;
    for (const DecisionEvent& ev : events()) out.push_back(ev.correspondent);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

std::string DecisionLog::chain_string(const std::string& correspondent,
                                      const std::string& line_prefix) const {
    std::string out;
    for (const DecisionEvent& ev : events()) {
        if (ev.correspondent != correspondent) continue;
        out += line_prefix + ev.to_string() + "\n";
    }
    return out;
}

JsonValue DecisionLog::to_json(const std::string& bench,
                               const std::string& label) const {
    JsonValue::Array rendered;
    for (const DecisionEvent& ev : events()) {
        JsonValue::Object e;
        e["t_ns"] = static_cast<std::uint64_t>(ev.when);
        e["node"] = ev.node;
        e["correspondent"] = ev.correspondent;
        e["trigger"] = ev.trigger;
        e["test"] = ev.test;
        e["input"] = ev.input;
        e["passed"] = ev.passed;
        e["from_mode"] = ev.from_mode;
        e["to_mode"] = ev.to_mode;
        e["in_mode"] = ev.in_mode;
        e["detail"] = ev.detail;
        rendered.emplace_back(std::move(e));
    }

    JsonValue::Object doc;
    doc["schema_version"] = 1;
    doc["kind"] = "decisions";
    doc["bench"] = bench;
    doc["label"] = label;
    doc["events"] = std::move(rendered);
    return JsonValue(std::move(doc));
}

std::string DecisionLog::to_json_string(const std::string& bench,
                                        const std::string& label) const {
    return to_json(bench, label).dump(2) + "\n";
}

namespace {

void require(std::vector<std::string>& problems, bool ok, const std::string& what) {
    if (!ok) problems.push_back(what);
}

}  // namespace

std::vector<std::string> validate_decisions_document(const JsonValue& doc) {
    std::vector<std::string> problems;
    if (!doc.is_object()) {
        problems.push_back("document is not a JSON object");
        return problems;
    }
    require(problems,
            doc.contains("schema_version") && doc.at("schema_version").is_number() &&
                doc.at("schema_version").as_number() == 1,
            "schema_version must be the number 1");
    require(problems,
            doc.contains("kind") && doc.at("kind").is_string() &&
                doc.at("kind").as_string() == "decisions",
            "kind must be the string \"decisions\"");
    for (const char* key : {"bench", "label"}) {
        require(problems, doc.contains(key) && doc.at(key).is_string(),
                std::string(key) + " must be a string");
    }
    if (!doc.contains("events") || !doc.at("events").is_array()) {
        problems.push_back("events must be an array");
        return problems;
    }

    std::size_t i = 0;
    for (const JsonValue& e : doc.at("events").as_array()) {
        const std::string where = "events[" + std::to_string(i++) + "]";
        if (!e.is_object()) {
            problems.push_back(where + " is not an object");
            continue;
        }
        require(problems,
                e.contains("t_ns") && e.at("t_ns").is_number() &&
                    e.at("t_ns").as_number() >= 0,
                where + ".t_ns must be a non-negative number");
        for (const char* key : {"node", "correspondent", "trigger", "test", "input",
                                "from_mode", "to_mode", "in_mode", "detail"}) {
            require(problems, e.contains(key) && e.at(key).is_string(),
                    where + "." + key + " must be a string");
        }
        require(problems, e.contains("passed") && e.at("passed").is_bool(),
                where + ".passed must be a boolean");
        // trigger/test carry the causal chain; an empty one means the
        // producer forgot to say what happened.
        for (const char* key : {"node", "correspondent", "trigger", "test"}) {
            if (e.contains(key) && e.at(key).is_string()) {
                require(problems, !e.at(key).as_string().empty(),
                        where + "." + key + " must be non-empty");
            }
        }
    }
    return problems;
}

}  // namespace mip::obs
