// Minimal JSON document model: enough to write metrics snapshots, read
// them back (the round-trip the tests assert), and validate the files the
// bench harnesses emit — with no external dependency.
//
// Supported: null, bool, finite numbers (doubles; integral values print
// without a decimal point), strings (with \uXXXX escapes for control
// characters; input surrogate pairs are not combined), arrays, objects.
// Object keys keep deterministic (sorted) order via std::map, so dumps are
// byte-stable run to run — a property bench_smoke relies on when diffing.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace mip::obs {

class JsonError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

class JsonValue {
public:
    using Array = std::vector<JsonValue>;
    using Object = std::map<std::string, JsonValue>;

    JsonValue() = default;  // null
    JsonValue(std::nullptr_t) {}
    JsonValue(bool b) : value_(b) {}
    JsonValue(double d) : value_(d) {}
    JsonValue(int i) : value_(static_cast<double>(i)) {}
    JsonValue(long long i) : value_(static_cast<double>(i)) {}
    JsonValue(unsigned long long u) : value_(static_cast<double>(u)) {}
    JsonValue(long u) : value_(static_cast<double>(u)) {}
    JsonValue(unsigned long u) : value_(static_cast<double>(u)) {}
    JsonValue(unsigned u) : value_(static_cast<double>(u)) {}
    JsonValue(const char* s) : value_(std::string(s)) {}
    JsonValue(std::string s) : value_(std::move(s)) {}
    JsonValue(Array a) : value_(std::move(a)) {}
    JsonValue(Object o) : value_(std::move(o)) {}

    /// Parses a complete JSON document; throws JsonError with a byte
    /// offset on malformed input or trailing garbage.
    static JsonValue parse(std::string_view text);

    bool is_null() const noexcept { return std::holds_alternative<std::monostate>(value_); }
    bool is_bool() const noexcept { return std::holds_alternative<bool>(value_); }
    bool is_number() const noexcept { return std::holds_alternative<double>(value_); }
    bool is_string() const noexcept { return std::holds_alternative<std::string>(value_); }
    bool is_array() const noexcept { return std::holds_alternative<Array>(value_); }
    bool is_object() const noexcept { return std::holds_alternative<Object>(value_); }

    // Typed accessors; throw JsonError on type mismatch.
    bool as_bool() const;
    double as_number() const;
    const std::string& as_string() const;
    const Array& as_array() const;
    Array& as_array();
    const Object& as_object() const;
    Object& as_object();

    /// Object member access. The non-const form inserts a null member
    /// (converting a null value to an empty object first); the const form
    /// throws JsonError when the key is missing.
    JsonValue& operator[](const std::string& key);
    const JsonValue& at(const std::string& key) const;
    bool contains(const std::string& key) const;

    /// Serializes the document. indent < 0 → compact single line;
    /// otherwise pretty-printed with that many spaces per level.
    std::string dump(int indent = -1) const;

    friend bool operator==(const JsonValue&, const JsonValue&) = default;

private:
    void dump_to(std::string& out, int indent, int depth) const;

    std::variant<std::monostate, bool, double, std::string, Array, Object> value_;
};

}  // namespace mip::obs
