#include "obs/pcap.h"

#include <array>
#include <stdexcept>

namespace mip::obs {

namespace {

// Classic pcap constants (https://wiki.wireshark.org/Development/LibpcapFileFormat).
constexpr std::uint32_t kMagicMicro = 0xa1b2c3d4;  // native byte order, µs timestamps
constexpr std::uint32_t kMagicNano = 0xa1b23c4d;   // native byte order, ns timestamps
constexpr std::uint16_t kVersionMajor = 2;
constexpr std::uint16_t kVersionMinor = 4;
constexpr std::uint32_t kLinktypeEthernet = 1;
constexpr std::uint32_t kSnapLen = 65535;

void put_u16(std::ofstream& out, std::uint16_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void put_u32(std::ofstream& out, std::uint32_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

}  // namespace

PcapWriter::PcapWriter(sim::Simulator& simulator, const std::string& path,
                       PcapResolution resolution)
    : simulator_(simulator),
      out_(path, std::ios::binary | std::ios::trunc),
      resolution_(resolution) {
    if (!out_) {
        throw std::runtime_error("PcapWriter: cannot open " + path);
    }
    put_u32(out_, resolution_ == PcapResolution::Nanosecond ? kMagicNano : kMagicMicro);
    put_u16(out_, kVersionMajor);
    put_u16(out_, kVersionMinor);
    put_u32(out_, 0);  // thiszone: GMT
    put_u32(out_, 0);  // sigfigs
    put_u32(out_, kSnapLen);
    put_u32(out_, kLinktypeEthernet);
}

PcapWriter::~PcapWriter() {
    close();
}

void PcapWriter::attach(sim::Link& link) {
    link.set_tap([this](const sim::Frame& frame) { write(frame); });
}

void PcapWriter::attach(sim::Nic& nic) {
    nic.set_tap([this](const sim::Frame& frame) { write(frame); });
}

void PcapWriter::write(const sim::Frame& frame) {
    if (!out_.is_open()) return;

    const std::uint64_t ns = static_cast<std::uint64_t>(simulator_.now());
    const std::uint64_t frac = ns % 1'000'000'000ull;
    put_u32(out_, static_cast<std::uint32_t>(ns / 1'000'000'000ull));  // ts_sec
    // Second field: nanoseconds (lossless) or truncated microseconds,
    // per the magic written in the header.
    put_u32(out_, static_cast<std::uint32_t>(
                      resolution_ == PcapResolution::Nanosecond ? frac : frac / 1'000ull));

    const std::uint32_t len = static_cast<std::uint32_t>(frame.wire_size());
    put_u32(out_, len);  // incl_len — frames are never snapped
    put_u32(out_, len);  // orig_len

    std::array<std::uint8_t, sim::kFrameHeaderSize> hdr{};
    const auto& dst = frame.dst.octets();
    const auto& src = frame.src.octets();
    for (std::size_t i = 0; i < 6; ++i) {
        hdr[i] = dst[i];
        hdr[6 + i] = src[i];
    }
    const auto ethertype = static_cast<std::uint16_t>(frame.type);
    hdr[12] = static_cast<std::uint8_t>(ethertype >> 8);
    hdr[13] = static_cast<std::uint8_t>(ethertype & 0xff);
    out_.write(reinterpret_cast<const char*>(hdr.data()),
               static_cast<std::streamsize>(hdr.size()));
    out_.write(reinterpret_cast<const char*>(frame.payload.data()),
               static_cast<std::streamsize>(frame.payload.size()));
    ++frames_;
}

void PcapWriter::close() {
    if (out_.is_open()) {
        out_.flush();
        out_.close();
    }
}

}  // namespace mip::obs
