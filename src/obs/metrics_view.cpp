#include "obs/metrics_view.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace mip::obs {

namespace {

/// Levenshtein distance, the usual two-row dynamic program.
std::size_t edit_distance(const std::string& a, const std::string& b) {
    std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        cur[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

std::string key_string(const MetricsRegistry::Key& key) {
    return std::get<0>(key) + "/" + std::get<1>(key) + "/" + std::get<2>(key);
}

}  // namespace

void MetricsView::miss(const char* kind, const std::string& node,
                       const std::string& layer, const std::string& name) const {
    // Rank every registered key of every kind by edit distance to the
    // request and name the closest few, so the caller's next attempt is
    // informed rather than another guess.
    const std::string wanted = node + "/" + layer + "/" + name;
    std::vector<std::pair<std::size_t, std::string>> ranked;
    const auto consider = [&](const MetricsRegistry::Key& key, const char* k) {
        const std::string s = key_string(key);
        ranked.emplace_back(edit_distance(wanted, s), s + " (" + k + ")");
    };
    for (const auto& [key, _] : registry_->gauges()) consider(key, "gauge");
    for (const auto& [key, _] : registry_->counters()) consider(key, "counter");
    for (const auto& [key, _] : registry_->histograms()) consider(key, "histogram");
    std::sort(ranked.begin(), ranked.end());

    std::string msg = std::string("no ") + kind + " registered for " + wanted;
    if (ranked.empty()) {
        msg += " (the registry is empty)";
    } else {
        msg += "; closest available keys:";
        const std::size_t shown = std::min<std::size_t>(ranked.size(), 5);
        for (std::size_t i = 0; i < shown; ++i) {
            msg += "\n  " + ranked[i].second;
        }
    }
    throw MetricsError(msg);
}

std::uint64_t MetricsView::counter(const std::string& node, const std::string& layer,
                                   const std::string& name) const {
    const auto it = registry_->counters().find({node, layer, name});
    if (it == registry_->counters().end()) miss("counter", node, layer, name);
    return it->second.value();
}

double MetricsView::gauge(const std::string& node, const std::string& layer,
                          const std::string& name) const {
    const auto it = registry_->gauges().find({node, layer, name});
    if (it == registry_->gauges().end() || !it->second) {
        miss("gauge", node, layer, name);
    }
    return it->second();
}

const Histogram& MetricsView::histogram(const std::string& node,
                                        const std::string& layer,
                                        const std::string& name) const {
    const auto it = registry_->histograms().find({node, layer, name});
    if (it == registry_->histograms().end()) miss("histogram", node, layer, name);
    return it->second;
}

bool MetricsView::has_counter(const std::string& node, const std::string& layer,
                              const std::string& name) const noexcept {
    return registry_->counters().contains({node, layer, name});
}

bool MetricsView::has_gauge(const std::string& node, const std::string& layer,
                            const std::string& name) const noexcept {
    return registry_->gauges().contains({node, layer, name});
}

bool MetricsView::has_histogram(const std::string& node, const std::string& layer,
                                const std::string& name) const noexcept {
    return registry_->histograms().contains({node, layer, name});
}

}  // namespace mip::obs
