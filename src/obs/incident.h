// Incident flight recorder (ISSUE 8: observability tentpole, part b).
//
// When a HealthMonitor trips mid-run, the interesting evidence — the
// trace records, delivery decisions and metric time-series leading up to
// the trip — is already sitting in memory: arena-backed TraceRecords,
// the DecisionLog tail, and the sampler's bounded rings (PR 7 made all
// of them cheap enough to leave armed). IncidentRecorder snapshots that
// recent history into a *self-contained* deterministic JSON bundle: one
// document holding the trip that caused it, a bounded window of trace
// events, the decision tail, and per-series time-series excerpts, each
// with explicit truncation accounting (nothing is silently capped).
//
// Bundles follow the docs/TRACE_FORMAT.md §10 schema;
// validate_incident_document() is the schema authority, and the
// validate_metrics binary dispatches on kind == "incident", so bundles
// dropped into a bench metrics dir are schema-checked by bench_smoke
// like every other artifact. CI uploads them as workflow artifacts on
// bench failure — a failing run ships its own flight-recorder dump.
//
// Sources are nullable: attach whatever the run has armed; absent
// sources export as empty sections. arm() subscribes the recorder to a
// monitor's trip callback so every trip captures a bundle automatically
// (bounded by max_bundles, overflow counted).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/decision.h"
#include "obs/json.h"
#include "obs/monitor.h"
#include "obs/timeseries.h"
#include "sim/trace.h"

namespace mip::obs {

struct IncidentConfig {
    /// How far back from the trip the excerpts reach (sim time).
    sim::Duration window = sim::seconds(5);
    /// Caps on excerpt sizes; the newest entries win, and the bundle
    /// records how many in-window entries were cut.
    std::size_t max_trace_events = 512;
    std::size_t max_decisions = 128;
    std::size_t max_points_per_series = 64;
    /// Bundles retained per recorder; later trips are counted, not kept.
    std::size_t max_bundles = 16;
};

/// Captures deterministic incident bundles from the observability state
/// already in memory. All attached sources must outlive the recorder.
class IncidentRecorder {
public:
    explicit IncidentRecorder(IncidentConfig config = {});

    void attach_trace(const sim::TraceRecorder* trace) { trace_ = trace; }
    void attach_decisions(const DecisionLog* decisions) { decisions_ = decisions; }
    void attach_sampler(const MetricsSampler* sampler) { sampler_ = sampler; }

    /// Subscribes to the monitor's on_trip hook: every trip captures a
    /// bundle tagged (bench, label). Replaces any previous on_trip
    /// callback on the monitor.
    void arm(HealthMonitor& monitor, std::string bench, std::string label);

    /// Builds one bundle for `trip` right now (capture time = trip
    /// time when called from the trip hook).
    JsonValue capture(const MonitorTrip& trip, sim::TimePoint now,
                      const std::string& bench, const std::string& label) const;

    /// Bundles captured via arm(), oldest first (bounded by max_bundles).
    const std::vector<JsonValue>& bundles() const noexcept { return bundles_; }
    std::uint64_t captured() const noexcept { return captured_; }
    /// Trips whose bundles were not retained (captured - bundles kept).
    std::uint64_t overflowed() const noexcept {
        return captured_ - static_cast<std::uint64_t>(bundles_.size());
    }

    const IncidentConfig& config() const noexcept { return config_; }

private:
    IncidentConfig config_;
    const sim::TraceRecorder* trace_ = nullptr;
    const DecisionLog* decisions_ = nullptr;
    const MetricsSampler* sampler_ = nullptr;
    std::vector<JsonValue> bundles_;
    std::uint64_t captured_ = 0;
};

/// Checks a parsed document against the incident-bundle schema in
/// docs/TRACE_FORMAT.md §10. Empty result = valid. Shared by the unit
/// tests and the validate_metrics binary, like the other validators.
std::vector<std::string> validate_incident_document(const JsonValue& doc);

}  // namespace mip::obs
