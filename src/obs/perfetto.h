// Chrome-trace / Perfetto export (ISSUE: time-resolved observability,
// part a, visual half).
//
// ChromeTraceWriter renders observability data — packet journeys,
// delivery decisions, sampled metric series, and arbitrary caller spans
// (handoffs, registrations) — into the Chrome trace event format:
// a JSON document {"traceEvents":[...]} that ui.perfetto.dev (and
// chrome://tracing) opens directly. Simulated nanoseconds map onto the
// format's microsecond timestamps as ts = t_ns / 1000.0, so sub-µs
// precision survives as fractional timestamps.
//
// Track model ("process" and "thread" are just track groups here):
//
//   pid 1 "journeys"   one thread per packet journey; a complete (X)
//                      span covers first-to-last event, instants mark
//                      each hop/drop/encap along the way
//   pid 2 "decisions"  one thread per (node, correspondent) pair;
//                      instants mark each DecisionEvent
//   pid 3 "metrics"    counter (C) tracks, one per sampled series —
//                      rendered by Perfetto as little area charts
//   pid 4 "timeline"   caller-defined named tracks via add_span() /
//                      add_instant() (benches put handoffs and
//                      delivery-mode phases here)
//
// Output is deterministic for deterministic inputs: events appear in
// insertion order and all JSON objects dump with sorted keys.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "obs/json.h"
#include "sim/time.h"

namespace mip::obs {

class JourneyIndex;
class DecisionLog;
class MetricsSampler;

class ChromeTraceWriter {
public:
    // The fixed track groups (see the file comment).
    static constexpr int kPidJourneys = 1;
    static constexpr int kPidDecisions = 2;
    static constexpr int kPidMetrics = 3;
    static constexpr int kPidTimeline = 4;

    ChromeTraceWriter();

    /// One thread track per journey: an X span over the journey's
    /// lifetime named by its outcome, plus an instant per trace event.
    void add_journeys(const JourneyIndex& index);

    /// One thread track per (node, correspondent): an instant per
    /// DecisionEvent, args carrying the full audit record.
    void add_decisions(const DecisionLog& log);

    /// One counter track per sampled series ("node/layer/name.field").
    void add_series(const MetricsSampler& sampler);

    /// Caller-defined tracks in the "timeline" group; `track` names the
    /// thread (created on first use).
    void add_instant(const std::string& track, sim::TimePoint t, const std::string& name,
                     JsonValue::Object args = {});
    void add_span(const std::string& track, sim::TimePoint begin, sim::TimePoint end,
                  const std::string& name, JsonValue::Object args = {});

    /// Events written so far (excluding name metadata).
    std::size_t size() const noexcept { return data_events_; }

    /// The complete {"traceEvents":[...]} document.
    JsonValue document() const;
    /// document() serialized compactly (these files get large).
    std::string document_string() const;
    /// document_string() written to `path`; throws JsonError on I/O error.
    void write(const std::string& path) const;

private:
    /// Thread id for `label` within track group `pid`, allocating and
    /// emitting the thread_name metadata on first use.
    int tid_for(int pid, const std::string& label);
    void set_process_name(int pid, const std::string& name);
    void push_event(JsonValue::Object event);

    JsonValue::Array events_;
    std::size_t data_events_ = 0;
    std::map<std::pair<int, std::string>, int> tids_;
    std::map<int, int> next_tid_;
};

}  // namespace mip::obs
