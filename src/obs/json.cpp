#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mip::obs {

namespace {

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    JsonValue run() {
        JsonValue v = value();
        skip_ws();
        if (pos_ != text_.size()) {
            fail("trailing characters after document");
        }
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& what) const {
        throw JsonError("JSON parse error at byte " + std::to_string(pos_) + ": " + what);
    }

    void skip_ws() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos_;
        }
    }

    char peek() {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume_literal(std::string_view lit) {
        if (text_.substr(pos_, lit.size()) != lit) return false;
        pos_ += lit.size();
        return true;
    }

    JsonValue value() {
        skip_ws();
        switch (peek()) {
            case '{': return object();
            case '[': return array();
            case '"': return JsonValue(string());
            case 't':
                if (!consume_literal("true")) fail("bad literal");
                return JsonValue(true);
            case 'f':
                if (!consume_literal("false")) fail("bad literal");
                return JsonValue(false);
            case 'n':
                if (!consume_literal("null")) fail("bad literal");
                return JsonValue(nullptr);
            default: return number();
        }
    }

    JsonValue object() {
        expect('{');
        JsonValue::Object out;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return JsonValue(std::move(out));
        }
        while (true) {
            skip_ws();
            std::string key = string();
            skip_ws();
            expect(':');
            out[std::move(key)] = value();
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return JsonValue(std::move(out));
        }
    }

    JsonValue array() {
        expect('[');
        JsonValue::Array out;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return JsonValue(std::move(out));
        }
        while (true) {
            out.push_back(value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return JsonValue(std::move(out));
        }
    }

    std::string string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size()) fail("unterminated escape");
            c = text_[pos_++];
            switch (c) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) fail("short \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
                        else fail("bad hex digit in \\u escape");
                    }
                    // UTF-8 encode the code point (surrogate pairs are kept
                    // as two separate 3-byte sequences — fine for the
                    // ASCII-dominated documents this library produces).
                    if (code < 0x80) {
                        out.push_back(static_cast<char>(code));
                    } else if (code < 0x800) {
                        out.push_back(static_cast<char>(0xc0 | (code >> 6)));
                        out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
                    } else {
                        out.push_back(static_cast<char>(0xe0 | (code >> 12)));
                        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
                        out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
                    }
                    break;
                }
                default: fail("unknown escape");
            }
        }
    }

    JsonValue number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' ||
                c == '-') {
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start) fail("expected a value");
        const std::string token(text_.substr(start, pos_ - start));
        char* end = nullptr;
        const double d = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size()) fail("malformed number");
        if (!std::isfinite(d)) fail("number out of range");
        return JsonValue(d);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

void escape_to(std::string& out, const std::string& s) {
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out.push_back(c);
                }
        }
    }
    out.push_back('"');
}

void number_to(std::string& out, double d) {
    // Integral values (the overwhelmingly common case for counters) print
    // without a decimal point so documents stay readable and stable.
    if (d == std::floor(d) && std::abs(d) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
        out += buf;
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
}

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
    return Parser(text).run();
}

bool JsonValue::as_bool() const {
    if (const bool* b = std::get_if<bool>(&value_)) return *b;
    throw JsonError("not a bool");
}

double JsonValue::as_number() const {
    if (const double* d = std::get_if<double>(&value_)) return *d;
    throw JsonError("not a number");
}

const std::string& JsonValue::as_string() const {
    if (const std::string* s = std::get_if<std::string>(&value_)) return *s;
    throw JsonError("not a string");
}

const JsonValue::Array& JsonValue::as_array() const {
    if (const Array* a = std::get_if<Array>(&value_)) return *a;
    throw JsonError("not an array");
}

JsonValue::Array& JsonValue::as_array() {
    if (Array* a = std::get_if<Array>(&value_)) return *a;
    throw JsonError("not an array");
}

const JsonValue::Object& JsonValue::as_object() const {
    if (const Object* o = std::get_if<Object>(&value_)) return *o;
    throw JsonError("not an object");
}

JsonValue::Object& JsonValue::as_object() {
    if (Object* o = std::get_if<Object>(&value_)) return *o;
    throw JsonError("not an object");
}

JsonValue& JsonValue::operator[](const std::string& key) {
    if (is_null()) value_ = Object{};
    return as_object()[key];
}

const JsonValue& JsonValue::at(const std::string& key) const {
    const Object& o = as_object();
    const auto it = o.find(key);
    if (it == o.end()) throw JsonError("missing key: " + key);
    return it->second;
}

bool JsonValue::contains(const std::string& key) const {
    return is_object() && as_object().contains(key);
}

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
    const auto newline = [&](int d) {
        if (indent < 0) return;
        out.push_back('\n');
        out.append(static_cast<std::size_t>(indent * d), ' ');
    };
    if (is_null()) {
        out += "null";
    } else if (const bool* b = std::get_if<bool>(&value_)) {
        out += *b ? "true" : "false";
    } else if (const double* d = std::get_if<double>(&value_)) {
        number_to(out, *d);
    } else if (const std::string* s = std::get_if<std::string>(&value_)) {
        escape_to(out, *s);
    } else if (const Array* a = std::get_if<Array>(&value_)) {
        if (a->empty()) {
            out += "[]";
            return;
        }
        out.push_back('[');
        bool first = true;
        for (const JsonValue& v : *a) {
            if (!first) out.push_back(',');
            first = false;
            newline(depth + 1);
            v.dump_to(out, indent, depth + 1);
        }
        newline(depth);
        out.push_back(']');
    } else if (const Object* o = std::get_if<Object>(&value_)) {
        if (o->empty()) {
            out += "{}";
            return;
        }
        out.push_back('{');
        bool first = true;
        for (const auto& [k, v] : *o) {
            if (!first) out.push_back(',');
            first = false;
            newline(depth + 1);
            escape_to(out, k);
            out.push_back(':');
            if (indent >= 0) out.push_back(' ');
            v.dump_to(out, indent, depth + 1);
        }
        newline(depth);
        out.push_back('}');
    }
}

std::string JsonValue::dump(int indent) const {
    std::string out;
    dump_to(out, indent, 0);
    return out;
}

}  // namespace mip::obs
