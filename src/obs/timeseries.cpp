#include "obs/timeseries.h"

#include <stdexcept>

namespace mip::obs {

// ---- SeriesRing -------------------------------------------------------------

SeriesRing::SeriesRing(std::size_t capacity) : points_(capacity == 0 ? 1 : capacity) {}

void SeriesRing::push(SeriesPoint p) {
    if (size_ < points_.size()) {
        points_[(head_ + size_) % points_.size()] = p;
        ++size_;
        return;
    }
    // Full: overwrite the oldest slot and advance the head.
    points_[head_] = p;
    head_ = (head_ + 1) % points_.size();
    ++dropped_;
}

const SeriesPoint& SeriesRing::at(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("SeriesRing::at");
    return points_[(head_ + i) % points_.size()];
}

std::vector<SeriesPoint> SeriesRing::points() const {
    std::vector<SeriesPoint> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) out.push_back(at(i));
    return out;
}

// ---- MetricsSampler ---------------------------------------------------------

MetricsSampler::MetricsSampler(sim::Simulator& sim, const MetricsRegistry& registry,
                               SamplerConfig config)
    : sim_(sim), registry_(registry), config_(config) {
    if (config_.interval <= 0) {
        throw std::invalid_argument("MetricsSampler: interval must be positive");
    }
}

MetricsSampler::~MetricsSampler() {
    stop();
}

void MetricsSampler::start() {
    if (running_) return;
    running_ = true;
    timer_ = sim_.schedule_in(config_.interval, [this] { tick(); }, "metrics-sample");
}

void MetricsSampler::stop() {
    if (!running_) return;
    running_ = false;
    sim_.cancel(timer_);
}

void MetricsSampler::tick() {
    if (!running_) return;
    sample_now();
    timer_ = sim_.schedule_in(config_.interval, [this] { tick(); }, "metrics-sample");
}

void MetricsSampler::sample_now() {
    const sim::TimePoint now = sim_.now();
    const auto record = [&](const MetricsRegistry::Key& key, const char* field,
                            double value) {
        const SeriesKey skey{std::get<0>(key), std::get<1>(key), std::get<2>(key), field};
        auto it = series_.find(skey);
        if (it == series_.end()) {
            it = series_.emplace(skey, SeriesRing(config_.ring_capacity)).first;
        }
        it->second.push(SeriesPoint{now, value});
    };

    for (const auto& [key, counter] : registry_.counters()) {
        // Rate: the counter's delta since the previous tick. A counter
        // first seen mid-run contributes its whole value as the first
        // delta (it grew from nothing inside this window).
        const std::uint64_t value = counter.value();
        auto [it, fresh] = last_counter_.try_emplace(key, 0);
        const std::uint64_t delta = value - it->second;
        it->second = value;
        (void)fresh;
        record(key, "rate", static_cast<double>(delta));
    }
    for (const auto& [key, provider] : registry_.gauges()) {
        record(key, "value", provider ? provider() : 0.0);
    }
    for (const auto& [key, histogram] : registry_.histograms()) {
        record(key, "count", static_cast<double>(histogram.count()));
        record(key, "sum", histogram.sum());
    }
    ++samples_;
}

const SeriesRing* MetricsSampler::find(const std::string& node, const std::string& layer,
                                       const std::string& name,
                                       const std::string& field) const {
    const auto it = series_.find(SeriesKey{node, layer, name, field});
    return it != series_.end() ? &it->second : nullptr;
}

JsonValue MetricsSampler::to_json(const std::string& bench, const std::string& label) const {
    JsonValue::Array series;
    for (const auto& [key, ring] : series_) {
        JsonValue::Object s;
        s["node"] = std::get<0>(key);
        s["layer"] = std::get<1>(key);
        s["name"] = std::get<2>(key);
        s["field"] = std::get<3>(key);
        s["dropped"] = ring.dropped();
        JsonValue::Array points;
        for (std::size_t i = 0; i < ring.size(); ++i) {
            const SeriesPoint& p = ring.at(i);
            JsonValue::Object point;
            point["t_ns"] = static_cast<std::uint64_t>(p.t_ns);
            point["v"] = p.value;
            points.emplace_back(std::move(point));
        }
        s["points"] = std::move(points);
        series.emplace_back(std::move(s));
    }

    JsonValue::Object doc;
    doc["schema_version"] = 1;
    doc["kind"] = "timeseries";
    doc["bench"] = bench;
    doc["label"] = label;
    doc["interval_ns"] = static_cast<std::uint64_t>(config_.interval);
    doc["samples"] = samples_;
    doc["series"] = std::move(series);
    return JsonValue(std::move(doc));
}

std::string MetricsSampler::to_json_string(const std::string& bench,
                                           const std::string& label) const {
    return to_json(bench, label).dump(2) + "\n";
}

// ---- schema validation ------------------------------------------------------

namespace {

void require(std::vector<std::string>& problems, bool ok, const std::string& what) {
    if (!ok) problems.push_back(what);
}

}  // namespace

std::vector<std::string> validate_timeseries_document(const JsonValue& doc) {
    std::vector<std::string> problems;
    if (!doc.is_object()) {
        problems.push_back("document is not a JSON object");
        return problems;
    }
    require(problems,
            doc.contains("schema_version") && doc.at("schema_version").is_number() &&
                doc.at("schema_version").as_number() == 1,
            "schema_version must be the number 1");
    require(problems,
            doc.contains("kind") && doc.at("kind").is_string() &&
                doc.at("kind").as_string() == "timeseries",
            "kind must be the string \"timeseries\"");
    for (const char* key : {"bench", "label"}) {
        require(problems, doc.contains(key) && doc.at(key).is_string(),
                std::string(key) + " must be a string");
    }
    require(problems,
            doc.contains("interval_ns") && doc.at("interval_ns").is_number() &&
                doc.at("interval_ns").as_number() > 0,
            "interval_ns must be a positive number");
    require(problems,
            doc.contains("samples") && doc.at("samples").is_number() &&
                doc.at("samples").as_number() >= 0,
            "samples must be a non-negative number");
    if (!doc.contains("series") || !doc.at("series").is_array()) {
        problems.push_back("series must be an array");
        return problems;
    }

    std::size_t i = 0;
    for (const JsonValue& s : doc.at("series").as_array()) {
        const std::string where = "series[" + std::to_string(i++) + "]";
        if (!s.is_object()) {
            problems.push_back(where + " is not an object");
            continue;
        }
        for (const char* key : {"node", "layer", "name", "field"}) {
            require(problems, s.contains(key) && s.at(key).is_string(),
                    where + "." + key + " must be a string");
        }
        if (s.contains("field") && s.at("field").is_string()) {
            const std::string& field = s.at("field").as_string();
            require(problems,
                    field == "rate" || field == "value" || field == "count" ||
                        field == "sum",
                    where + ".field must be rate, value, count or sum");
        }
        require(problems,
                s.contains("dropped") && s.at("dropped").is_number() &&
                    s.at("dropped").as_number() >= 0,
                where + ".dropped must be a non-negative number");
        if (!s.contains("points") || !s.at("points").is_array()) {
            problems.push_back(where + ".points must be an array");
            continue;
        }
        double prev_t = -1.0;
        std::size_t j = 0;
        for (const JsonValue& p : s.at("points").as_array()) {
            const std::string pwhere = where + ".points[" + std::to_string(j++) + "]";
            if (!p.is_object() || !p.contains("t_ns") || !p.contains("v") ||
                !p.at("t_ns").is_number() || !p.at("v").is_number()) {
                problems.push_back(pwhere + " must be {t_ns: number, v: number}");
                continue;
            }
            const double t = p.at("t_ns").as_number();
            require(problems, t >= 0, pwhere + ".t_ns must be non-negative");
            require(problems, t >= prev_t, pwhere + ": timestamps must be non-decreasing");
            prev_t = t;
        }
    }
    return problems;
}

}  // namespace mip::obs
