#include "obs/timeseries.h"

#include <algorithm>
#include <stdexcept>

namespace mip::obs {

// ---- SeriesRing -------------------------------------------------------------

SeriesRing::SeriesRing(std::size_t capacity) : points_(capacity == 0 ? 1 : capacity) {}

void SeriesRing::push(SeriesPoint p) {
    if (size_ < points_.size()) {
        points_[(head_ + size_) % points_.size()] = p;
        ++size_;
        return;
    }
    // Full: overwrite the oldest slot and advance the head.
    points_[head_] = p;
    head_ = (head_ + 1) % points_.size();
    ++dropped_;
}

const SeriesPoint& SeriesRing::at(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("SeriesRing::at");
    return points_[(head_ + i) % points_.size()];
}

std::vector<SeriesPoint> SeriesRing::points() const {
    std::vector<SeriesPoint> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) out.push_back(at(i));
    return out;
}

// ---- MetricsSampler ---------------------------------------------------------

MetricsSampler::MetricsSampler(sim::Simulator& sim, const MetricsRegistry& registry,
                               SamplerConfig config)
    : sim_(sim),
      registry_(registry),
      config_(config),
      cap_(config.ring_capacity == 0 ? 1 : config.ring_capacity) {
    if (config_.interval <= 0) {
        throw std::invalid_argument("MetricsSampler: interval must be positive");
    }
    delta_mode_ = config_.delta && registry_.claim_dirty_consumer(this);
    if (delta_mode_) tick_times_.resize(cap_);
}

MetricsSampler::~MetricsSampler() {
    stop();
    if (delta_mode_) registry_.release_dirty_consumer(this);
}

void MetricsSampler::start() {
    if (phase_ == Phase::Running) return;
    if (phase_ == Phase::Stopped) {
        // Re-opening a sealed window: mutations during the gap must not
        // show up as one giant delta at the next tick, so counters the
        // sampler already tracked are re-baselined at their current
        // values. (Counters *created* during the gap keep the first-seen
        // rule: their whole value is the first delta.) Histograms are
        // cumulative snapshots, but in delta mode a gap mutation may have
        // had its dirty flag drained into the discard below — re-check
        // every histogram once on the next tick.
        rebaseline_counters();
        if (delta_mode_) hist_resync_ = true;
    }
    phase_ = Phase::Running;
    timer_ = sim_.schedule_in(config_.interval, [this] { tick(); }, "metrics-sample");
}

void MetricsSampler::stop() {
    if (phase_ != Phase::Running) return;
    phase_ = Phase::Stopped;
    sim_.cancel(timer_);
}

void MetricsSampler::rebaseline_counters() {
    if (delta_mode_) {
        for (CounterSeries& cs : counter_series_) cs.baseline = cs.src->value();
        return;
    }
    for (auto& [key, baseline] : last_counter_) {
        const auto it = registry_.counters().find(key);
        if (it != registry_.counters().end()) baseline = it->second.value();
    }
}

void MetricsSampler::tick() {
    if (phase_ != Phase::Running) return;
    sample_now();
    timer_ = sim_.schedule_in(config_.interval, [this] { tick(); }, "metrics-sample");
}

void MetricsSampler::sample_now() {
    if (phase_ == Phase::Stopped) return;  // the window is sealed
    const sim::TimePoint now = sim_.now();
    if (delta_mode_) {
        sample_delta(now);
    } else {
        sample_full_walk(now);
    }
    ++samples_;
}

// The reference path: walk every registry entry, append one point per
// series per tick. The delta path below is pinned byte-identical to this.
void MetricsSampler::sample_full_walk(sim::TimePoint now) {
    const auto record = [&](const MetricsRegistry::Key& key, const char* field,
                            double value) {
        const SeriesKey skey{std::get<0>(key), std::get<1>(key), std::get<2>(key), field};
        auto it = series_.find(skey);
        if (it == series_.end()) {
            it = series_.emplace(skey, SeriesRing(config_.ring_capacity)).first;
        }
        it->second.push(SeriesPoint{now, value});
    };

    for (const auto& [key, counter] : registry_.counters()) {
        // Rate: the counter's delta since the previous tick. A counter
        // first seen mid-run contributes its whole value as the first
        // delta (it grew from nothing inside this window).
        const std::uint64_t value = counter.value();
        auto [it, fresh] = last_counter_.try_emplace(key, 0);
        const std::uint64_t delta = value - it->second;
        it->second = value;
        (void)fresh;
        record(key, "rate", static_cast<double>(delta));
    }
    for (const auto& [key, provider] : registry_.gauges()) {
        record(key, "value", provider ? provider() : 0.0);
    }
    for (const auto& [key, histogram] : registry_.histograms()) {
        record(key, "count", static_cast<double>(histogram.count()));
        record(key, "sum", histogram.sum());
    }
}

// Folds registry entries created since the last tick into the sparse
// stores. A new counter with a nonzero value records that value as its
// first delta (same first-seen rule as the full walk); a new histogram
// records its current cumulative state as the run-length base.
void MetricsSampler::sync_plan(std::uint64_t t) {
    if (plan_generation_ == registry_.structure_generation()) return;
    for (const auto& [key, c] : registry_.counters()) {
        if (counter_index_.find(&c) != counter_index_.end()) continue;
        counter_index_.emplace(&c, counter_series_.size());
        CounterSeries cs;
        cs.key = key;
        cs.src = &c;
        cs.first_tick = t;
        const std::uint64_t v = c.value();
        if (v != 0) {
            cs.deltas.emplace_back(t, static_cast<double>(v));
            cs.baseline = v;
        }
        counter_series_.push_back(std::move(cs));
    }
    for (const auto& [key, fn] : registry_.gauges()) {
        if (gauge_index_.find(&fn) != gauge_index_.end()) continue;
        gauge_index_.emplace(&fn, gauge_series_.size());
        GaugeSeries gs;
        gs.key = key;
        gs.src = &fn;
        gs.first_tick = t;
        gauge_series_.push_back(std::move(gs));  // first poll below seeds values
    }
    for (const auto& [key, h] : registry_.histograms()) {
        if (hist_index_.find(&h) != hist_index_.end()) continue;
        hist_index_.emplace(&h, hist_series_.size());
        HistSeries hs;
        hs.key = key;
        hs.src = &h;
        hs.first_tick = t;
        hs.points.emplace_back(t, h.count(), h.sum());
        hist_series_.push_back(std::move(hs));
    }
    plan_generation_ = registry_.structure_generation();
}

void MetricsSampler::sample_delta(sim::TimePoint now) {
    const std::uint64_t t = samples_;  // 0-based index of this tick
    sync_plan(t);
    tick_times_[t % cap_] = now;
    // Retained window once this tick lands: [ws, t]. Entries at ticks
    // below ws can no longer appear in any export; run-length stores keep
    // one base entry at or before ws so the window start has a value.
    const std::uint64_t ws = (t + 1 > cap_) ? t + 1 - cap_ : 0;

    registry_.drain_dirty(dirty_counters_scratch_, dirty_hists_scratch_);

    for (Counter* c : dirty_counters_scratch_) {
        const auto idx = counter_index_.find(c);
        if (idx == counter_index_.end()) continue;
        CounterSeries& cs = counter_series_[idx->second];
        const std::uint64_t v = cs.src->value();
        if (v != cs.baseline) {
            cs.deltas.emplace_back(t, static_cast<double>(v - cs.baseline));
            cs.baseline = v;
            while (!cs.deltas.empty() && cs.deltas.front().first < ws) {
                cs.deltas.pop_front();
            }
        }
    }

    const auto hist_update = [&](HistSeries& hs) {
        const std::uint64_t c = hs.src->count();
        const double s = hs.src->sum();
        const auto& back = hs.points.back();
        if (std::get<1>(back) != c || std::get<2>(back) != s) {
            hs.points.emplace_back(t, c, s);
            while (hs.points.size() >= 2 && std::get<0>(hs.points[1]) <= ws) {
                hs.points.pop_front();
            }
        }
    };
    if (hist_resync_) {
        hist_resync_ = false;
        for (HistSeries& hs : hist_series_) hist_update(hs);
    } else {
        for (Histogram* h : dirty_hists_scratch_) {
            const auto idx = hist_index_.find(h);
            if (idx != hist_index_.end()) hist_update(hist_series_[idx->second]);
        }
    }

    // Gauges are polled provider callbacks — they cannot mark themselves
    // dirty, so every gauge is polled every tick and stored run-length.
    for (GaugeSeries& gs : gauge_series_) {
        const double v = (*gs.src) ? (*gs.src)() : 0.0;
        if (gs.values.empty() || gs.values.back().second != v) {
            gs.values.emplace_back(t, v);
            while (gs.values.size() >= 2 && gs.values[1].first <= ws) {
                gs.values.pop_front();
            }
        }
    }

    series_stale_ = true;
}

// Rebuilds the eager per-series rings from the sparse stores, exactly as
// the full walk would have produced them: one point per tick from the
// series' first tick, capped to the most recent `cap_` ticks with the
// overflow counted as dropped_points.
void MetricsSampler::materialize() const {
    series_.clear();
    const std::uint64_t T = samples_;

    const auto window = [&](std::uint64_t first_tick, SeriesRing& ring) {
        const std::uint64_t n_all = T - first_tick;
        const std::uint64_t n_keep = std::min<std::uint64_t>(n_all, cap_);
        ring.add_dropped(n_all - n_keep);
        return T - n_keep;  // first tick index reconstructed into the ring
    };

    for (const CounterSeries& cs : counter_series_) {
        SeriesRing ring(config_.ring_capacity);
        const std::uint64_t start = window(cs.first_tick, ring);
        auto it = cs.deltas.begin();
        while (it != cs.deltas.end() && it->first < start) ++it;
        for (std::uint64_t i = start; i < T; ++i) {
            double v = 0.0;
            if (it != cs.deltas.end() && it->first == i) {
                v = it->second;
                ++it;
            }
            ring.push(SeriesPoint{tick_times_[i % cap_], v});
        }
        series_.emplace(
            SeriesKey{std::get<0>(cs.key), std::get<1>(cs.key), std::get<2>(cs.key), "rate"},
            std::move(ring));
    }

    for (const GaugeSeries& gs : gauge_series_) {
        SeriesRing ring(config_.ring_capacity);
        const std::uint64_t start = window(gs.first_tick, ring);
        auto it = gs.values.begin();
        double cur = 0.0;
        for (std::uint64_t i = start; i < T; ++i) {
            while (it != gs.values.end() && it->first <= i) {
                cur = it->second;
                ++it;
            }
            ring.push(SeriesPoint{tick_times_[i % cap_], cur});
        }
        series_.emplace(
            SeriesKey{std::get<0>(gs.key), std::get<1>(gs.key), std::get<2>(gs.key), "value"},
            std::move(ring));
    }

    for (const HistSeries& hs : hist_series_) {
        SeriesRing count_ring(config_.ring_capacity);
        SeriesRing sum_ring(config_.ring_capacity);
        const std::uint64_t start = window(hs.first_tick, count_ring);
        sum_ring.add_dropped(count_ring.dropped());
        auto it = hs.points.begin();
        std::uint64_t cc = 0;
        double ss = 0.0;
        for (std::uint64_t i = start; i < T; ++i) {
            while (it != hs.points.end() && std::get<0>(*it) <= i) {
                cc = std::get<1>(*it);
                ss = std::get<2>(*it);
                ++it;
            }
            count_ring.push(SeriesPoint{tick_times_[i % cap_], static_cast<double>(cc)});
            sum_ring.push(SeriesPoint{tick_times_[i % cap_], ss});
        }
        series_.emplace(
            SeriesKey{std::get<0>(hs.key), std::get<1>(hs.key), std::get<2>(hs.key), "count"},
            std::move(count_ring));
        series_.emplace(
            SeriesKey{std::get<0>(hs.key), std::get<1>(hs.key), std::get<2>(hs.key), "sum"},
            std::move(sum_ring));
    }
}

const std::map<MetricsSampler::SeriesKey, SeriesRing>& MetricsSampler::series() const {
    if (delta_mode_ && series_stale_) {
        materialize();
        series_stale_ = false;
    }
    return series_;
}

const SeriesRing* MetricsSampler::find(const std::string& node, const std::string& layer,
                                       const std::string& name,
                                       const std::string& field) const {
    const auto& all = series();
    const auto it = all.find(SeriesKey{node, layer, name, field});
    return it != all.end() ? &it->second : nullptr;
}

JsonValue MetricsSampler::to_json(const std::string& bench, const std::string& label) const {
    JsonValue::Array series;
    for (const auto& [key, ring] : this->series()) {
        JsonValue::Object s;
        s["node"] = std::get<0>(key);
        s["layer"] = std::get<1>(key);
        s["name"] = std::get<2>(key);
        s["field"] = std::get<3>(key);
        s["dropped_points"] = ring.dropped();
        JsonValue::Array points;
        for (std::size_t i = 0; i < ring.size(); ++i) {
            const SeriesPoint& p = ring.at(i);
            JsonValue::Object point;
            point["t_ns"] = static_cast<std::uint64_t>(p.t_ns);
            point["v"] = p.value;
            points.emplace_back(std::move(point));
        }
        s["points"] = std::move(points);
        series.emplace_back(std::move(s));
    }

    JsonValue::Object doc;
    doc["schema_version"] = 2;
    doc["kind"] = "timeseries";
    doc["bench"] = bench;
    doc["label"] = label;
    doc["interval_ns"] = static_cast<std::uint64_t>(config_.interval);
    doc["samples"] = samples_;
    doc["ring_capacity"] = static_cast<std::uint64_t>(cap_);
    doc["series"] = std::move(series);
    return JsonValue(std::move(doc));
}

std::string MetricsSampler::to_json_string(const std::string& bench,
                                           const std::string& label) const {
    return to_json(bench, label).dump(2) + "\n";
}

// ---- schema validation ------------------------------------------------------

namespace {

void require(std::vector<std::string>& problems, bool ok, const std::string& what) {
    if (!ok) problems.push_back(what);
}

}  // namespace

std::vector<std::string> validate_timeseries_document(const JsonValue& doc) {
    std::vector<std::string> problems;
    if (!doc.is_object()) {
        problems.push_back("document is not a JSON object");
        return problems;
    }
    require(problems,
            doc.contains("schema_version") && doc.at("schema_version").is_number() &&
                doc.at("schema_version").as_number() == 2,
            "schema_version must be the number 2");
    require(problems,
            doc.contains("kind") && doc.at("kind").is_string() &&
                doc.at("kind").as_string() == "timeseries",
            "kind must be the string \"timeseries\"");
    for (const char* key : {"bench", "label"}) {
        require(problems, doc.contains(key) && doc.at(key).is_string(),
                std::string(key) + " must be a string");
    }
    require(problems,
            doc.contains("interval_ns") && doc.at("interval_ns").is_number() &&
                doc.at("interval_ns").as_number() > 0,
            "interval_ns must be a positive number");
    require(problems,
            doc.contains("samples") && doc.at("samples").is_number() &&
                doc.at("samples").as_number() >= 0,
            "samples must be a non-negative number");
    const bool has_capacity = doc.contains("ring_capacity") &&
                              doc.at("ring_capacity").is_number() &&
                              doc.at("ring_capacity").as_number() >= 1;
    require(problems, has_capacity, "ring_capacity must be a number >= 1");
    const double capacity = has_capacity ? doc.at("ring_capacity").as_number() : 0.0;
    const double samples = doc.contains("samples") && doc.at("samples").is_number()
                               ? doc.at("samples").as_number()
                               : 0.0;
    if (!doc.contains("series") || !doc.at("series").is_array()) {
        problems.push_back("series must be an array");
        return problems;
    }

    std::size_t i = 0;
    for (const JsonValue& s : doc.at("series").as_array()) {
        const std::string where = "series[" + std::to_string(i++) + "]";
        if (!s.is_object()) {
            problems.push_back(where + " is not an object");
            continue;
        }
        for (const char* key : {"node", "layer", "name", "field"}) {
            require(problems, s.contains(key) && s.at(key).is_string(),
                    where + "." + key + " must be a string");
        }
        if (s.contains("field") && s.at("field").is_string()) {
            const std::string& field = s.at("field").as_string();
            require(problems,
                    field == "rate" || field == "value" || field == "count" ||
                        field == "sum",
                    where + ".field must be rate, value, count or sum");
        }
        const bool has_dropped = s.contains("dropped_points") &&
                                 s.at("dropped_points").is_number() &&
                                 s.at("dropped_points").as_number() >= 0;
        require(problems, has_dropped,
                where + ".dropped_points must be a non-negative number");
        if (!s.contains("points") || !s.at("points").is_array()) {
            problems.push_back(where + ".points must be an array");
            continue;
        }
        const double npoints = static_cast<double>(s.at("points").as_array().size());
        if (has_capacity) {
            require(problems, npoints <= capacity,
                    where + ": points exceed ring_capacity");
            if (has_dropped && s.at("dropped_points").as_number() > 0) {
                // Drops only happen once the ring is full, so a series
                // that dropped anything must still be at capacity.
                require(problems, npoints == capacity,
                        where + ": dropped_points > 0 requires a full ring");
            }
        }
        if (has_dropped) {
            require(problems,
                    s.at("dropped_points").as_number() + npoints <= samples,
                    where + ": dropped_points + points exceed samples");
        }
        double prev_t = -1.0;
        std::size_t j = 0;
        for (const JsonValue& p : s.at("points").as_array()) {
            const std::string pwhere = where + ".points[" + std::to_string(j++) + "]";
            if (!p.is_object() || !p.contains("t_ns") || !p.contains("v") ||
                !p.at("t_ns").is_number() || !p.at("v").is_number()) {
                problems.push_back(pwhere + " must be {t_ns: number, v: number}");
                continue;
            }
            const double t = p.at("t_ns").as_number();
            require(problems, t >= 0, pwhere + ".t_ns must be non-negative");
            require(problems, t >= prev_t, pwhere + ": timestamps must be non-decreasing");
            prev_t = t;
        }
    }
    return problems;
}

}  // namespace mip::obs
