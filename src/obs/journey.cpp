#include "obs/journey.h"

namespace mip::obs {

std::size_t PacketJourney::count(sim::TraceKind kind) const {
    std::size_t n = 0;
    for (const auto& ev : events) {
        if (ev.kind == kind) ++n;
    }
    return n;
}

const sim::TraceEvent* PacketJourney::first(sim::TraceKind kind) const {
    for (const auto& ev : events) {
        if (ev.kind == kind) return &ev;
    }
    return nullptr;
}

const sim::TraceEvent* PacketJourney::drop() const {
    for (const auto& ev : events) {
        switch (ev.kind) {
            case sim::TraceKind::FilterDrop:
            case sim::TraceKind::TtlExpired:
            case sim::TraceKind::NoRoute:
            case sim::TraceKind::FrameLost:
            case sim::TraceKind::FrameTooBig:
                return &ev;
            default:
                break;
        }
    }
    return nullptr;
}

std::vector<std::string> PacketJourney::node_path() const {
    std::vector<std::string> path;
    for (const auto& ev : events) {
        if (ev.node.empty()) continue;
        if (path.empty() || path.back() != ev.node) {
            path.push_back(ev.node);
        }
    }
    return path;
}

std::string PacketJourney::to_string() const {
    std::string out = "journey " + std::to_string(id) + ":\n";
    for (const auto& ev : events) {
        out += "  t=" + std::to_string(ev.when) + "ns " + sim::to_string(ev.kind) +
               " at " + (ev.node.empty() ? "?" : ev.node);
        if (ev.bytes != 0) out += " (" + std::to_string(ev.bytes) + "B)";
        if (!ev.detail.empty()) out += " — " + ev.detail;
        out += "\n";
    }
    return out;
}

void JourneyIndex::add(const std::vector<sim::TraceEvent>& events) {
    for (const auto& ev : events) {
        if (ev.packet_id == 0) continue;  // ARP chatter and untagged frames
        PacketJourney& j = journeys_[ev.packet_id];
        j.id = ev.packet_id;
        j.events.push_back(ev);
    }
}

const PacketJourney* JourneyIndex::find(std::uint64_t id) const {
    const auto it = journeys_.find(id);
    return it == journeys_.end() ? nullptr : &it->second;
}

}  // namespace mip::obs
