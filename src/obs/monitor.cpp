#include "obs/monitor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace mip::obs {

// ---- P2Quantile -------------------------------------------------------------

P2Quantile::P2Quantile(double q) : q_(q) {
    if (!(q > 0.0 && q < 1.0)) {
        throw std::invalid_argument("P2Quantile: q must be in (0, 1)");
    }
}

void P2Quantile::add(double value) {
    if (count_ < 5) {
        heights_[count_++] = value;
        if (count_ == 5) {
            std::sort(heights_, heights_ + 5);
            desired_[0] = 1;
            desired_[1] = 1 + 2 * q_;
            desired_[2] = 1 + 4 * q_;
            desired_[3] = 3 + 2 * q_;
            desired_[4] = 5;
            increment_[0] = 0;
            increment_[1] = q_ / 2;
            increment_[2] = q_;
            increment_[3] = (1 + q_) / 2;
            increment_[4] = 1;
        }
        return;
    }
    ++count_;

    // Locate the cell and stretch the extremes.
    int k;
    if (value < heights_[0]) {
        heights_[0] = value;
        k = 0;
    } else if (value >= heights_[4]) {
        heights_[4] = value;
        k = 3;
    } else {
        k = 0;
        while (k < 3 && value >= heights_[k + 1]) ++k;
    }

    for (int i = k + 1; i < 5; ++i) positions_[i] += 1;
    for (int i = 0; i < 5; ++i) desired_[i] += increment_[i];

    // Adjust the interior markers toward their desired positions with
    // piecewise-parabolic (P^2) interpolation, falling back to linear
    // when the parabola would leave the bracketing heights.
    for (int i = 1; i <= 3; ++i) {
        const double d = desired_[i] - positions_[i];
        const double right = positions_[i + 1] - positions_[i];
        const double left = positions_[i - 1] - positions_[i];
        if ((d >= 1 && right > 1) || (d <= -1 && left < -1)) {
            const double s = d >= 1 ? 1.0 : -1.0;
            const double qp =
                heights_[i] +
                s / (positions_[i + 1] - positions_[i - 1]) *
                    ((positions_[i] - positions_[i - 1] + s) *
                         (heights_[i + 1] - heights_[i]) / right +
                     (positions_[i + 1] - positions_[i] - s) *
                         (heights_[i] - heights_[i - 1]) / -left);
            if (heights_[i - 1] < qp && qp < heights_[i + 1]) {
                heights_[i] = qp;
            } else {
                // Linear toward the neighbor in the adjustment direction.
                const int j = i + static_cast<int>(s);
                heights_[i] += s * (heights_[j] - heights_[i]) /
                               (positions_[j] - positions_[i]);
            }
            positions_[i] += s;
        }
    }
}

double P2Quantile::estimate() const {
    if (count_ == 0) return 0.0;
    if (count_ >= 5) return heights_[2];
    // Exact small-sample estimate: sort what we have and index by rank.
    double sorted[5];
    std::copy(heights_, heights_ + count_, sorted);
    std::sort(sorted, sorted + count_);
    const double rank = q_ * static_cast<double>(count_);
    std::size_t idx = rank <= 1.0 ? 0 : static_cast<std::size_t>(std::ceil(rank)) - 1;
    if (idx >= count_) idx = count_ - 1;
    return sorted[idx];
}

// ---- HealthMonitor ----------------------------------------------------------

namespace {

std::string format_value(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

}  // namespace

HealthMonitor::HealthMonitor(sim::Simulator& sim, MetricsRegistry& registry,
                             MonitorConfig config)
    : sim_(sim), registry_(registry), config_(std::move(config)) {
    if (config_.interval <= 0) {
        throw std::invalid_argument("HealthMonitor: interval must be positive");
    }
}

HealthMonitor::~HealthMonitor() {
    stop();
}

void HealthMonitor::add_watermark(WatermarkRule rule) {
    RuleState st;
    st.kind = RuleState::Kind::Watermark;
    st.name = std::move(rule.name);
    st.detail = std::move(rule.detail);
    st.node = std::move(rule.node);
    st.layer = std::move(rule.layer);
    st.metric = std::move(rule.metric);
    st.source = rule.source;
    st.trip_at = rule.trip_at;
    st.clear_at = std::isnan(rule.clear_at) ? rule.trip_at : rule.clear_at;
    rules_.push_back(std::move(st));
}

void HealthMonitor::add_rate_spike(RateSpikeRule rule) {
    RuleState st;
    st.kind = RuleState::Kind::RateSpike;
    st.name = std::move(rule.name);
    st.detail = std::move(rule.detail);
    st.node = std::move(rule.node);
    st.layer = std::move(rule.layer);
    st.metric = std::move(rule.metric);
    st.source = rule.source;
    st.min_rate = rule.min_rate;
    st.spike_factor = rule.spike_factor;
    st.alpha = rule.alpha;
    st.warmup_evals = rule.warmup_evals;
    rules_.push_back(std::move(st));
}

void HealthMonitor::add_quantile_slo(QuantileSloRule rule) {
    RuleState st;
    st.kind = RuleState::Kind::QuantileSlo;
    st.name = std::move(rule.name);
    st.detail = std::move(rule.detail);
    st.quantile = rule.quantile;
    st.bound = rule.bound;
    st.min_samples = rule.min_samples;
    st.unit = std::move(rule.unit);
    st.sketch = P2Quantile(rule.quantile);
    rules_.push_back(std::move(st));
}

std::size_t HealthMonitor::rules() const noexcept {
    return rules_.size();
}

void HealthMonitor::observe(const std::string& name, double value) {
    for (RuleState& rule : rules_) {
        if (rule.kind == RuleState::Kind::QuantileSlo && rule.name == name) {
            rule.sketch.add(value);
        }
    }
}

void HealthMonitor::start() {
    if (running_) return;
    running_ = true;
    timer_ = sim_.schedule_in(config_.interval, [this] { tick(); }, "health-monitor");
}

void HealthMonitor::stop() {
    if (!running_) return;
    running_ = false;
    sim_.cancel(timer_);
}

void HealthMonitor::tick() {
    if (!running_) return;
    evaluate_now();
    timer_ = sim_.schedule_in(config_.interval, [this] { tick(); }, "health-monitor");
}

void HealthMonitor::evaluate_now() {
    for (RuleState& rule : rules_) evaluate(rule);
    ++evaluations_;
}

// Resolves (and caches) the rule's source metric; metrics referenced
// before they exist — counters are created on first bump — read as 0
// until they appear, so a counter's whole value becomes its first delta,
// matching the sampler's first-seen rule.
bool HealthMonitor::read_source(RuleState& rule, double& out) {
    if (rule.source == MetricSource::Counter) {
        if (rule.counter == nullptr) {
            const auto it = registry_.counters().find(
                MetricsRegistry::Key{rule.node, rule.layer, rule.metric});
            if (it != registry_.counters().end()) rule.counter = &it->second;
        }
        out = rule.counter != nullptr ? static_cast<double>(rule.counter->value()) : 0.0;
        return true;
    }
    if (rule.gauge == nullptr) {
        const auto it = registry_.gauges().find(
            MetricsRegistry::Key{rule.node, rule.layer, rule.metric});
        if (it != registry_.gauges().end()) rule.gauge = &it->second;
    }
    out = (rule.gauge != nullptr && *rule.gauge) ? (*rule.gauge)() : 0.0;
    return true;
}

void HealthMonitor::evaluate(RuleState& rule) {
    switch (rule.kind) {
        case RuleState::Kind::Watermark: {
            double v = 0.0;
            read_source(rule, v);
            if (!rule.is_tripped && v >= rule.trip_at) {
                transition(rule, true, v, rule.trip_at, "watermark");
            } else if (rule.is_tripped && v < rule.clear_at) {
                transition(rule, false, v, rule.clear_at, "watermark");
            }
            break;
        }
        case RuleState::Kind::RateSpike: {
            double v = 0.0;
            read_source(rule, v);
            const double delta = v - rule.last_value;
            rule.last_value = v;
            double threshold = rule.min_rate;
            if (rule.spike_factor > 0.0) {
                threshold = std::max(threshold, rule.spike_factor * rule.ewma);
            }
            const bool warmed = rule.evals_seen >= rule.warmup_evals;
            ++rule.evals_seen;
            rule.ewma = rule.alpha * delta + (1.0 - rule.alpha) * rule.ewma;
            if (!warmed) break;  // baseline still settling: no transitions
            if (!rule.is_tripped && delta >= threshold) {
                transition(rule, true, delta, threshold, "rate-spike");
            } else if (rule.is_tripped && delta < rule.min_rate) {
                transition(rule, false, delta, rule.min_rate, "rate-spike");
            }
            break;
        }
        case RuleState::Kind::QuantileSlo: {
            if (rule.sketch.count() < rule.min_samples) break;
            const double est = rule.sketch.estimate();
            if (!rule.is_tripped && est > rule.bound) {
                transition(rule, true, est, rule.bound, "quantile-slo");
            } else if (rule.is_tripped && est <= rule.bound) {
                transition(rule, false, est, rule.bound, "quantile-slo");
            }
            break;
        }
    }
}

void HealthMonitor::transition(RuleState& rule, bool trip, double value,
                               double threshold, const char* rule_kind) {
    const sim::TimePoint now = sim_.now();
    rule.is_tripped = trip;
    if (trip) {
        ++rule.trip_count;
        if (rule.first_trip < 0) rule.first_trip = now;
        MonitorTrip t;
        t.when = now;
        t.sequence = static_cast<std::uint64_t>(trip_log_.size()) + 1;
        t.monitor = rule.name;
        t.rule = rule_kind;
        t.value = value;
        t.threshold = threshold;
        t.detail = rule.detail;
        registry_.counter(config_.node, "monitor", "trips").add();
        registry_.counter(config_.node, "monitor", rule.name + "_trips").add();
        trip_log_.push_back(t);
        if (decisions_ != nullptr) {
            DecisionEvent ev;
            ev.when = now;
            ev.node = config_.node;
            ev.correspondent = rule.name;
            ev.trigger = "monitor-trip";
            ev.test = rule_kind;
            ev.input = "value=" + format_value(value) +
                       " threshold=" + format_value(threshold);
            ev.passed = false;
            ev.detail = rule.detail;
            decisions_->record(std::move(ev));
        }
        if (on_trip_) on_trip_(trip_log_.back());
    } else {
        ++clears_;
        registry_.counter(config_.node, "monitor", "clears").add();
        if (decisions_ != nullptr) {
            DecisionEvent ev;
            ev.when = now;
            ev.node = config_.node;
            ev.correspondent = rule.name;
            ev.trigger = "monitor-clear";
            ev.test = rule_kind;
            ev.input = "value=" + format_value(value) +
                       " threshold=" + format_value(threshold);
            ev.passed = true;
            ev.detail = rule.detail;
            decisions_->record(std::move(ev));
        }
    }
}

bool HealthMonitor::tripped(const std::string& name) const {
    for (const RuleState& rule : rules_) {
        if (rule.name == name) return rule.is_tripped;
    }
    return false;
}

std::uint64_t HealthMonitor::trip_count(const std::string& name) const {
    for (const RuleState& rule : rules_) {
        if (rule.name == name) return rule.trip_count;
    }
    return 0;
}

sim::TimePoint HealthMonitor::first_trip_at(const std::string& name) const {
    for (const RuleState& rule : rules_) {
        if (rule.name == name) return rule.first_trip;
    }
    return -1;
}

double HealthMonitor::quantile_estimate(const std::string& name) const {
    for (const RuleState& rule : rules_) {
        if (rule.kind == RuleState::Kind::QuantileSlo && rule.name == name) {
            return rule.sketch.estimate();
        }
    }
    return 0.0;
}

}  // namespace mip::obs
