#include "obs/profile.h"

namespace mip::obs {

void publish_profiler(const sim::SimProfiler& profiler, const sim::Simulator& sim,
                      MetricsRegistry& registry) {
    const sim::SimProfiler* p = &profiler;
    const sim::Simulator* s = &sim;

    registry.register_gauge("simulator", "profiler", "dispatches",
                            [p] { return static_cast<double>(p->total_dispatches()); });
    registry.register_gauge("simulator", "profiler", "wall_ns",
                            [p] { return static_cast<double>(p->total_wall_ns()); });
    registry.register_gauge("simulator", "profiler", "events_per_sec",
                            [p] { return p->events_per_second(); });
    registry.register_gauge("simulator", "profiler", "max_queue_depth",
                            [p] { return static_cast<double>(p->max_queue_depth()); });
    registry.register_gauge("simulator", "profiler", "max_cancelled",
                            [p] { return static_cast<double>(p->max_cancelled_size()); });
    registry.register_gauge("simulator", "queue", "depth",
                            [s] { return static_cast<double>(s->pending_events()); });
    registry.register_gauge("simulator", "queue", "cancelled_backlog",
                            [s] { return static_cast<double>(s->cancelled_backlog()); });

    // Per-kind dispatch counts for every kind seen so far. Kinds appear
    // as their first event fires, so call publish_profiler() again after
    // a run (re-registration replaces providers harmlessly) to pick up
    // kinds that did not exist at first attach.
    for (const auto& [kind, _] : profiler.by_kind()) {
        const std::string k = kind;
        registry.register_gauge("simulator", "profiler", "kind/" + k, [p, k] {
            const auto it = p->by_kind().find(k);
            return it == p->by_kind().end()
                       ? 0.0
                       : static_cast<double>(it->second.dispatches);
        });
    }
}

}  // namespace mip::obs
