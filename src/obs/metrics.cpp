#include "obs/metrics.h"

#include <algorithm>

namespace mip::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size(), 0) {}

void Histogram::observe(double value) noexcept {
    ++count_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
    // Cumulative buckets: bump every bucket whose bound admits the value.
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
        if (value <= bounds_[i]) ++counts_[i];
    }
    if (!dirty_ && dirty_list_ != nullptr) {
        dirty_ = true;
        dirty_list_->push_back(this);
    }
}

std::vector<double> rtt_bounds_ns() {
    std::vector<double> b;
    for (double ns = 1e6; ns <= 4.1e9; ns *= 2.0) b.push_back(ns);
    return b;
}

std::vector<double> hop_bounds() {
    std::vector<double> b;
    for (double h = 1; h <= 16; ++h) b.push_back(h);
    return b;
}

Counter& MetricsRegistry::counter(const std::string& node, const std::string& layer,
                                  const std::string& name) {
    auto [it, fresh] = counters_.try_emplace(Key{node, layer, name});
    if (fresh) {
        it->second.dirty_list_ = &dirty_counters_;
        ++structure_generation_;
    }
    return it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& node, const std::string& layer,
                                      const std::string& name,
                                      std::vector<double> bounds) {
    const Key key{node, layer, name};
    auto it = histograms_.find(key);
    if (it == histograms_.end()) {
        it = histograms_.emplace(key, Histogram(std::move(bounds))).first;
        it->second.dirty_list_ = &dirty_histograms_;
        ++structure_generation_;
    }
    return it->second;
}

void MetricsRegistry::register_gauge(const std::string& node, const std::string& layer,
                                     const std::string& name, GaugeFn provider) {
    auto [it, fresh] = gauges_.try_emplace(Key{node, layer, name});
    it->second = std::move(provider);
    if (fresh) ++structure_generation_;
}

bool MetricsRegistry::claim_dirty_consumer(const void* who) const noexcept {
    if (dirty_consumer_ != nullptr && dirty_consumer_ != who) return false;
    dirty_consumer_ = who;
    return true;
}

void MetricsRegistry::release_dirty_consumer(const void* who) const noexcept {
    if (dirty_consumer_ == who) dirty_consumer_ = nullptr;
}

void MetricsRegistry::drain_dirty(std::vector<Counter*>& counters,
                                  std::vector<Histogram*>& histograms) const {
    counters.clear();
    histograms.clear();
    counters.swap(dirty_counters_);
    histograms.swap(dirty_histograms_);
    for (Counter* c : counters) c->dirty_ = false;
    for (Histogram* h : histograms) h->dirty_ = false;
}

namespace {

JsonValue::Object metric_base(const std::tuple<std::string, std::string, std::string>& key,
                              const char* kind) {
    JsonValue::Object m;
    m["node"] = std::get<0>(key);
    m["layer"] = std::get<1>(key);
    m["name"] = std::get<2>(key);
    m["kind"] = kind;
    return m;
}

}  // namespace

JsonValue MetricsRegistry::snapshot(const std::string& bench, const std::string& label,
                                    sim::TimePoint now) const {
    // Merge the three stores into one (node, layer, name)-sorted array.
    // std::map iteration is already sorted; a three-way merge keeps the
    // combined output sorted without building an intermediate index.
    JsonValue::Array metrics;

    auto ci = counters_.begin();
    auto gi = gauges_.begin();
    auto hi = histograms_.begin();
    while (ci != counters_.end() || gi != gauges_.end() || hi != histograms_.end()) {
        // Pick the smallest key among the three heads.
        const Key* best = nullptr;
        int which = -1;
        if (ci != counters_.end()) { best = &ci->first; which = 0; }
        if (gi != gauges_.end() && (best == nullptr || gi->first < *best)) {
            best = &gi->first; which = 1;
        }
        if (hi != histograms_.end() && (best == nullptr || hi->first < *best)) {
            best = &hi->first; which = 2;
        }
        if (which == 0) {
            JsonValue::Object m = metric_base(ci->first, "counter");
            m["value"] = ci->second.value();
            metrics.emplace_back(std::move(m));
            ++ci;
        } else if (which == 1) {
            JsonValue::Object m = metric_base(gi->first, "gauge");
            m["value"] = gi->second ? gi->second() : 0.0;
            metrics.emplace_back(std::move(m));
            ++gi;
        } else {
            const Histogram& h = hi->second;
            JsonValue::Object m = metric_base(hi->first, "histogram");
            m["count"] = h.count();
            m["sum"] = h.sum();
            if (h.count() > 0) {
                m["min"] = h.min();
                m["max"] = h.max();
                m["mean"] = h.mean();
            }
            JsonValue::Array buckets;
            for (std::size_t i = 0; i < h.bounds().size(); ++i) {
                JsonValue::Object b;
                b["le"] = h.bounds()[i];
                b["count"] = h.bucket_counts()[i];
                buckets.emplace_back(std::move(b));
            }
            m["buckets"] = std::move(buckets);
            metrics.emplace_back(std::move(m));
            ++hi;
        }
    }

    JsonValue::Object doc;
    doc["schema_version"] = 1;
    doc["bench"] = bench;
    doc["label"] = label;
    doc["time_ns"] = static_cast<std::uint64_t>(now);
    doc["metrics"] = std::move(metrics);
    return JsonValue(std::move(doc));
}

std::string MetricsRegistry::snapshot_json(const std::string& bench,
                                           const std::string& label,
                                           sim::TimePoint now) const {
    return snapshot(bench, label, now).dump(2) + "\n";
}

namespace {

void require(std::vector<std::string>& problems, bool ok, const std::string& what) {
    if (!ok) problems.push_back(what);
}

}  // namespace

std::vector<std::string> validate_metrics_document(const JsonValue& doc) {
    std::vector<std::string> problems;
    if (!doc.is_object()) {
        problems.push_back("document is not a JSON object");
        return problems;
    }
    require(problems,
            doc.contains("schema_version") && doc.at("schema_version").is_number() &&
                doc.at("schema_version").as_number() == 1,
            "schema_version must be the number 1");
    for (const char* key : {"bench", "label"}) {
        require(problems, doc.contains(key) && doc.at(key).is_string(),
                std::string(key) + " must be a string");
    }
    require(problems,
            doc.contains("time_ns") && doc.at("time_ns").is_number() &&
                doc.at("time_ns").as_number() >= 0,
            "time_ns must be a non-negative number");
    if (!doc.contains("metrics") || !doc.at("metrics").is_array()) {
        problems.push_back("metrics must be an array");
        return problems;
    }

    std::size_t i = 0;
    for (const JsonValue& m : doc.at("metrics").as_array()) {
        const std::string where = "metrics[" + std::to_string(i++) + "]";
        if (!m.is_object()) {
            problems.push_back(where + " is not an object");
            continue;
        }
        for (const char* key : {"node", "layer", "name", "kind"}) {
            require(problems, m.contains(key) && m.at(key).is_string(),
                    where + "." + key + " must be a string");
        }
        if (!m.contains("kind") || !m.at("kind").is_string()) continue;
        const std::string& kind = m.at("kind").as_string();
        if (kind == "counter" || kind == "gauge") {
            require(problems, m.contains("value") && m.at("value").is_number(),
                    where + ".value must be a number");
            if (kind == "counter" && m.contains("value") && m.at("value").is_number()) {
                require(problems, m.at("value").as_number() >= 0,
                        where + ": counter value must be non-negative");
            }
        } else if (kind == "histogram") {
            for (const char* key : {"count", "sum"}) {
                require(problems, m.contains(key) && m.at(key).is_number(),
                        where + "." + key + " must be a number");
            }
            const bool has_summary =
                m.contains("min") && m.contains("max") && m.contains("mean");
            if (m.contains("count") && m.at("count").is_number() &&
                m.at("count").as_number() > 0) {
                require(problems, has_summary,
                        where + ": non-empty histogram needs min/max/mean");
            }
            if (!m.contains("buckets") || !m.at("buckets").is_array()) {
                problems.push_back(where + ".buckets must be an array");
                continue;
            }
            double prev_le = -std::numeric_limits<double>::infinity();
            double prev_count = -1.0;
            std::size_t j = 0;
            for (const JsonValue& b : m.at("buckets").as_array()) {
                const std::string bwhere = where + ".buckets[" + std::to_string(j++) + "]";
                if (!b.is_object() || !b.contains("le") || !b.contains("count") ||
                    !b.at("le").is_number() || !b.at("count").is_number()) {
                    problems.push_back(bwhere + " must be {le: number, count: number}");
                    continue;
                }
                const double le = b.at("le").as_number();
                const double cnt = b.at("count").as_number();
                require(problems, le > prev_le,
                        bwhere + ": bucket bounds must be strictly increasing");
                require(problems, cnt >= prev_count,
                        bwhere + ": cumulative bucket counts must be non-decreasing");
                if (m.contains("count") && m.at("count").is_number()) {
                    require(problems, cnt <= m.at("count").as_number(),
                            bwhere + ": bucket count exceeds total count");
                }
                prev_le = le;
                prev_count = cnt;
            }
        } else {
            problems.push_back(where + ".kind must be counter, gauge or histogram");
        }
    }
    return problems;
}

}  // namespace mip::obs
