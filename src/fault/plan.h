// A FaultPlan is the deterministic script of a chaos run: a time-sorted
// list of fault actions (inject or clear) against named links, agents and
// boundary routers. Plans are either built explicitly (tests) or generated
// from a seed (FaultPlan::random) — the same seed and profile always yield
// the same plan, so every chaos run is replayable.
//
// By construction every injected fault has a matching clearing action at
// or before the profile's horizon; last_clear_time() is therefore the
// moment the network is guaranteed fault-free, which is what the
// convergence harness (bench/abl_chaos) measures recovery from.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace mip::fault {

enum class FaultKind {
    LinkDown,        ///< target link drops everything
    LinkUp,          ///< clears LinkDown
    BurstLossOn,     ///< Gilbert–Elliott burst loss (rate = p_good_to_bad scale)
    BurstLossOff,
    CorruptionOn,    ///< random bit flips in a fraction `rate` of frames
    CorruptionOff,
    DuplicationOn,   ///< a fraction `rate` of frames delivered twice
    DuplicationOff,
    ReorderOn,       ///< a fraction `rate` of frames held back by `duration`
    ReorderOff,
    JitterOn,        ///< uniform extra latency in [0, duration]
    JitterOff,
    AgentCrash,      ///< target agent loses all volatile state
    AgentRestart,
    FilterChurnOn,   ///< target boundary router gains an egress anti-spoof rule
    FilterChurnOff,
};

const char* to_string(FaultKind kind);
/// True for the kinds that clear a fault rather than inject one.
bool is_clearing(FaultKind kind);
/// The kind that clears @p kind (LinkDown -> LinkUp, ...); clearing kinds
/// map to themselves.
FaultKind clearing_kind(FaultKind kind);

struct FaultAction {
    sim::TimePoint at = 0;
    FaultKind kind = FaultKind::LinkDown;
    /// Link name, agent name ("home-agent" / "foreign-agent") or boundary
    /// router name ("foreign-gw", ...) the action applies to.
    std::string target;
    /// Impairment probability (loss/corruption/duplication/reorder).
    double rate = 0.0;
    /// Impairment time knob (reorder hold / jitter max).
    sim::Duration duration = 0;

    /// One-line rendering: "[2.500s] burst-loss-on foreign-lan rate=0.20".
    std::string describe() const;
};

/// Knobs for FaultPlan::random. Counts are per fault class; each generated
/// fault gets an outage window [min_outage, max_outage] placed uniformly
/// inside the horizon, with its clearing action clamped to the horizon.
struct ChaosProfile {
    sim::Duration horizon = sim::seconds(15);
    int link_flaps = 1;
    int impairments = 2;
    int agent_crashes = 1;
    int filter_churns = 1;
    sim::Duration min_outage = sim::milliseconds(200);
    sim::Duration max_outage = sim::seconds(3);
    std::vector<std::string> links{"foreign-lan", "home-lan"};
    std::vector<std::string> agents{"home-agent"};
    std::vector<std::string> routers{"foreign-gw"};
};

class FaultPlan {
public:
    /// Inserts @p action keeping the plan sorted by time (stable: equal
    /// timestamps keep insertion order).
    void add(FaultAction action);

    // Paired-action helpers.
    void link_flap(const std::string& link, sim::TimePoint down_at, sim::TimePoint up_at);
    void impairment(const std::string& link, FaultKind on_kind, sim::TimePoint from,
                    sim::TimePoint to, double rate, sim::Duration duration = 0);
    void agent_outage(const std::string& agent, sim::TimePoint crash_at,
                      sim::TimePoint restart_at);
    void filter_churn(const std::string& router, sim::TimePoint from, sim::TimePoint to);

    const std::vector<FaultAction>& actions() const noexcept { return actions_; }
    std::size_t size() const noexcept { return actions_.size(); }
    bool empty() const noexcept { return actions_.empty(); }

    /// The time of the last clearing action — from this moment on the
    /// network is fault-free (0 for an empty plan).
    sim::TimePoint last_clear_time() const;

    /// Multi-line rendering of every action (tests compare these to check
    /// generation determinism).
    std::string summary() const;

    /// Deterministic seeded generation: the same (seed, profile) always
    /// yields the same plan.
    static FaultPlan random(std::uint64_t seed, const ChaosProfile& profile = {});

private:
    std::vector<FaultAction> actions_;
};

}  // namespace mip::fault
