// Composable link impairments: the concrete sim::LinkFault hooks the
// FaultInjector installs on links while a FaultPlan runs.
//
// Each impairment is an independent hook with its own seeded PRNG — the
// draws it makes never perturb the link's configured loss model, so a run
// with no fault attached is bit-identical whether or not this library is
// linked. A FaultChain stacks several impairments on one link (a link can
// be down AND noisy); verdicts merge with any-drop-wins, delays adding and
// duplication OR-ing.
#pragma once

#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include "sim/link.h"

namespace mip::fault {

/// Scheduled outage: drops every frame while down (cable unplugged).
class LinkDownFault final : public sim::LinkFault {
public:
    void set_down(bool down) noexcept { down_ = down; }
    bool down() const noexcept { return down_; }
    std::size_t frames_dropped() const noexcept { return dropped_; }

    sim::FaultVerdict on_transmit(sim::Frame&, sim::TimePoint) override;

private:
    bool down_ = false;
    std::size_t dropped_ = 0;
};

/// Two-state Markov burst-loss channel (Gilbert–Elliott). The chain steps
/// once per frame; the Good state loses frames with loss_good, the Bad
/// state with loss_bad — so losses arrive in bursts whose mean length is
/// 1 / p_bad_to_good frames.
struct GilbertElliottConfig {
    double p_good_to_bad = 0.05;
    double p_bad_to_good = 0.25;
    double loss_good = 0.0;
    double loss_bad = 1.0;
};

class GilbertElliottLoss final : public sim::LinkFault {
public:
    enum class State { Good, Bad };

    GilbertElliottLoss(GilbertElliottConfig config, std::uint64_t seed);

    sim::FaultVerdict on_transmit(sim::Frame&, sim::TimePoint) override;

    /// Advances the chain one frame slot and returns whether that slot
    /// loses its frame — exposed so tests can drive the state machine
    /// without a link.
    bool step();

    State state() const noexcept { return state_; }
    const GilbertElliottConfig& config() const noexcept { return config_; }
    std::size_t frames_dropped() const noexcept { return dropped_; }

private:
    GilbertElliottConfig config_;
    State state_ = State::Good;
    std::mt19937_64 rng_;
    std::size_t dropped_ = 0;
};

/// Flips random payload bits in a fraction of frames. The damaged frames
/// still get delivered — it is the receiver's checksums (IPv4 header, UDP,
/// TCP, ICMP, tunnel) that must catch them.
class BitCorruptionFault final : public sim::LinkFault {
public:
    BitCorruptionFault(double rate, unsigned bits_per_frame, std::uint64_t seed);

    sim::FaultVerdict on_transmit(sim::Frame& frame, sim::TimePoint) override;

    std::size_t frames_corrupted() const noexcept { return corrupted_; }

private:
    double rate_;
    unsigned bits_per_frame_;
    std::mt19937_64 rng_;
    std::size_t corrupted_ = 0;
};

/// Delivers a second copy of a fraction of frames.
class DuplicationFault final : public sim::LinkFault {
public:
    DuplicationFault(double rate, std::uint64_t seed);

    sim::FaultVerdict on_transmit(sim::Frame&, sim::TimePoint) override;

    std::size_t frames_duplicated() const noexcept { return duplicated_; }

private:
    double rate_;
    std::mt19937_64 rng_;
    std::size_t duplicated_ = 0;
};

/// Holds a fraction of frames back by a fixed delay, letting later frames
/// overtake them (reordering as seen by the receiver).
class ReorderFault final : public sim::LinkFault {
public:
    ReorderFault(double rate, sim::Duration hold, std::uint64_t seed);

    sim::FaultVerdict on_transmit(sim::Frame&, sim::TimePoint) override;

    std::size_t frames_held() const noexcept { return held_; }

private:
    double rate_;
    sim::Duration hold_;
    std::mt19937_64 rng_;
    std::size_t held_ = 0;
};

/// Adds uniform random extra latency in [0, max_jitter] to every frame.
class JitterFault final : public sim::LinkFault {
public:
    JitterFault(sim::Duration max_jitter, std::uint64_t seed);

    sim::FaultVerdict on_transmit(sim::Frame&, sim::TimePoint) override;

private:
    sim::Duration max_jitter_;
    std::mt19937_64 rng_;
};

/// Stacks several faults on one link. Hooks run in add order; any drop
/// short-circuits (later hooks neither see the frame nor draw from their
/// PRNGs for it), extra delays add, and duplication flags OR.
class FaultChain final : public sim::LinkFault {
public:
    void add(std::shared_ptr<sim::LinkFault> fault);
    /// Removes @p fault (matched by pointer identity); no-op when absent.
    void remove(const sim::LinkFault* fault);
    void clear() { faults_.clear(); }
    bool empty() const noexcept { return faults_.empty(); }
    std::size_t size() const noexcept { return faults_.size(); }

    sim::FaultVerdict on_transmit(sim::Frame& frame, sim::TimePoint now) override;

private:
    std::vector<std::shared_ptr<sim::LinkFault>> faults_;
};

}  // namespace mip::fault
