#include "fault/plan.h"

#include <algorithm>
#include <cstdio>
#include <random>

namespace mip::fault {

const char* to_string(FaultKind kind) {
    switch (kind) {
        case FaultKind::LinkDown: return "link-down";
        case FaultKind::LinkUp: return "link-up";
        case FaultKind::BurstLossOn: return "burst-loss-on";
        case FaultKind::BurstLossOff: return "burst-loss-off";
        case FaultKind::CorruptionOn: return "corruption-on";
        case FaultKind::CorruptionOff: return "corruption-off";
        case FaultKind::DuplicationOn: return "duplication-on";
        case FaultKind::DuplicationOff: return "duplication-off";
        case FaultKind::ReorderOn: return "reorder-on";
        case FaultKind::ReorderOff: return "reorder-off";
        case FaultKind::JitterOn: return "jitter-on";
        case FaultKind::JitterOff: return "jitter-off";
        case FaultKind::AgentCrash: return "agent-crash";
        case FaultKind::AgentRestart: return "agent-restart";
        case FaultKind::FilterChurnOn: return "filter-churn-on";
        case FaultKind::FilterChurnOff: return "filter-churn-off";
    }
    return "?";
}

bool is_clearing(FaultKind kind) {
    switch (kind) {
        case FaultKind::LinkUp:
        case FaultKind::BurstLossOff:
        case FaultKind::CorruptionOff:
        case FaultKind::DuplicationOff:
        case FaultKind::ReorderOff:
        case FaultKind::JitterOff:
        case FaultKind::AgentRestart:
        case FaultKind::FilterChurnOff:
            return true;
        default:
            return false;
    }
}

FaultKind clearing_kind(FaultKind kind) {
    switch (kind) {
        case FaultKind::LinkDown: return FaultKind::LinkUp;
        case FaultKind::BurstLossOn: return FaultKind::BurstLossOff;
        case FaultKind::CorruptionOn: return FaultKind::CorruptionOff;
        case FaultKind::DuplicationOn: return FaultKind::DuplicationOff;
        case FaultKind::ReorderOn: return FaultKind::ReorderOff;
        case FaultKind::JitterOn: return FaultKind::JitterOff;
        case FaultKind::AgentCrash: return FaultKind::AgentRestart;
        case FaultKind::FilterChurnOn: return FaultKind::FilterChurnOff;
        default: return kind;
    }
}

std::string FaultAction::describe() const {
    char buf[160];
    std::snprintf(buf, sizeof buf, "[%.3fs] %s %s", sim::to_seconds(at),
                  to_string(kind), target.c_str());
    std::string out = buf;
    if (rate > 0.0) {
        std::snprintf(buf, sizeof buf, " rate=%.2f", rate);
        out += buf;
    }
    if (duration > 0) {
        std::snprintf(buf, sizeof buf, " dur=%.0fms", sim::to_milliseconds(duration));
        out += buf;
    }
    return out;
}

void FaultPlan::add(FaultAction action) {
    auto pos = std::upper_bound(
        actions_.begin(), actions_.end(), action,
        [](const FaultAction& a, const FaultAction& b) { return a.at < b.at; });
    actions_.insert(pos, std::move(action));
}

void FaultPlan::link_flap(const std::string& link, sim::TimePoint down_at,
                          sim::TimePoint up_at) {
    add({.at = down_at, .kind = FaultKind::LinkDown, .target = link});
    add({.at = up_at, .kind = FaultKind::LinkUp, .target = link});
}

void FaultPlan::impairment(const std::string& link, FaultKind on_kind,
                           sim::TimePoint from, sim::TimePoint to, double rate,
                           sim::Duration duration) {
    add({.at = from, .kind = on_kind, .target = link, .rate = rate, .duration = duration});
    add({.at = to, .kind = clearing_kind(on_kind), .target = link});
}

void FaultPlan::agent_outage(const std::string& agent, sim::TimePoint crash_at,
                             sim::TimePoint restart_at) {
    add({.at = crash_at, .kind = FaultKind::AgentCrash, .target = agent});
    add({.at = restart_at, .kind = FaultKind::AgentRestart, .target = agent});
}

void FaultPlan::filter_churn(const std::string& router, sim::TimePoint from,
                             sim::TimePoint to) {
    add({.at = from, .kind = FaultKind::FilterChurnOn, .target = router});
    add({.at = to, .kind = FaultKind::FilterChurnOff, .target = router});
}

sim::TimePoint FaultPlan::last_clear_time() const {
    sim::TimePoint last = 0;
    for (const FaultAction& a : actions_) {
        if (is_clearing(a.kind)) last = std::max(last, a.at);
    }
    return last;
}

std::string FaultPlan::summary() const {
    std::string out;
    for (const FaultAction& a : actions_) {
        out += a.describe();
        out += '\n';
    }
    return out;
}

FaultPlan FaultPlan::random(std::uint64_t seed, const ChaosProfile& profile) {
    FaultPlan plan;
    std::mt19937_64 rng(seed);
    // Faults start no earlier than 5% into the horizon (let the scenario
    // reach steady state) and must clear by the horizon.
    const sim::TimePoint lo = profile.horizon / 20;
    const sim::TimePoint hi =
        std::max<sim::TimePoint>(lo + 1, profile.horizon - profile.min_outage);

    const auto pick = [&rng](const std::vector<std::string>& pool) -> std::string {
        if (pool.empty()) return {};
        std::uniform_int_distribution<std::size_t> d(0, pool.size() - 1);
        return pool[d(rng)];
    };
    const auto window = [&](sim::TimePoint& from, sim::TimePoint& to) {
        std::uniform_int_distribution<sim::TimePoint> start(lo, hi);
        std::uniform_int_distribution<sim::Duration> outage(profile.min_outage,
                                                            profile.max_outage);
        from = start(rng);
        to = std::min<sim::TimePoint>(from + outage(rng), profile.horizon);
    };

    for (int i = 0; i < profile.link_flaps; ++i) {
        const std::string link = pick(profile.links);
        if (link.empty()) break;
        sim::TimePoint from, to;
        window(from, to);
        plan.link_flap(link, from, to);
    }

    static constexpr FaultKind kImpairments[] = {
        FaultKind::BurstLossOn, FaultKind::CorruptionOn, FaultKind::DuplicationOn,
        FaultKind::ReorderOn, FaultKind::JitterOn,
    };
    for (int i = 0; i < profile.impairments; ++i) {
        const std::string link = pick(profile.links);
        if (link.empty()) break;
        std::uniform_int_distribution<std::size_t> which(0, std::size(kImpairments) - 1);
        const FaultKind kind = kImpairments[which(rng)];
        std::uniform_real_distribution<double> rate(0.05, 0.4);
        sim::TimePoint from, to;
        window(from, to);
        plan.impairment(link, kind, from, to, rate(rng),
                        kind == FaultKind::ReorderOn || kind == FaultKind::JitterOn
                            ? sim::milliseconds(20)
                            : sim::Duration{0});
    }

    for (int i = 0; i < profile.agent_crashes; ++i) {
        const std::string agent = pick(profile.agents);
        if (agent.empty()) break;
        sim::TimePoint from, to;
        window(from, to);
        plan.agent_outage(agent, from, to);
    }

    for (int i = 0; i < profile.filter_churns; ++i) {
        const std::string router = pick(profile.routers);
        if (router.empty()) break;
        sim::TimePoint from, to;
        window(from, to);
        plan.filter_churn(router, from, to);
    }

    return plan;
}

}  // namespace mip::fault
