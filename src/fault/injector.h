// FaultInjector executes a FaultPlan against a running core::World: it
// schedules one simulator event per FaultAction and, when each fires,
// installs/removes the matching LinkFault hooks, crashes/restarts agents,
// or churns boundary-router filter policy.
//
// Determinism: every impairment hook gets its own PRNG seeded from the
// injector's base seed and a running counter, so the same plan applied to
// the same world always produces the same packet-level behaviour — and a
// world with no injector attached is bit-identical to one where the fault
// library is not even linked.
//
// Observability: each applied action is recorded as a DecisionEvent
// (node "fault-injector", trigger "fault-inject"/"fault-clear") in the
// world's decision log and counted in the metrics registry under
// ("fault-injector", "fault", "injected"/"cleared"), giving the chaos
// harness causal traceability from fault to recovery.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "fault/link_faults.h"
#include "fault/plan.h"

namespace mip::fault {

class FaultInjector {
public:
    /// @p seed salts the per-impairment PRNGs (independent of the plan's
    /// generation seed so the same plan can be replayed under different
    /// noise realizations — pass the same value for exact replay).
    explicit FaultInjector(core::World& world, std::uint64_t seed = 0x9e3779b9);
    ~FaultInjector();
    FaultInjector(const FaultInjector&) = delete;
    FaultInjector& operator=(const FaultInjector&) = delete;

    /// Schedules every action in @p plan on the world's simulator. May be
    /// called repeatedly (plans accumulate).
    void execute(const FaultPlan& plan);

    /// Applies one action right now (tests drive this directly).
    void apply(const FaultAction& action);

    /// Cancels every still-pending scheduled action and detaches all fault
    /// hooks from links (agents and filters are left as the plan put them —
    /// a well-formed plan has already cleared them by its horizon).
    void reset();

    /// Actions applied so far (scheduled ones only count once fired).
    std::size_t actions_applied() const noexcept { return applied_; }
    /// Actions that named a target the world does not have (skipped).
    std::size_t actions_skipped() const noexcept { return skipped_; }

private:
    /// The hooks currently installed on one link. The chain is attached to
    /// the link whenever at least one hook exists and detached when the
    /// last clears, so an idle link is back to the one-pointer-compare
    /// fast path.
    struct LinkState {
        FaultChain chain;
        std::shared_ptr<LinkDownFault> down;
        std::shared_ptr<GilbertElliottLoss> burst;
        std::shared_ptr<BitCorruptionFault> corrupt;
        std::shared_ptr<DuplicationFault> duplicate;
        std::shared_ptr<ReorderFault> reorder;
        std::shared_ptr<JitterFault> jitter;
    };

    LinkState& state_for(sim::Link& link);
    void sync_attachment(sim::Link& link, LinkState& st);
    /// Removes @p hook from the chain and releases @p hook (templated over
    /// the concrete shared_ptr member).
    template <typename T>
    void drop_hook(LinkState& st, std::shared_ptr<T>& hook);
    std::uint64_t next_seed() noexcept { return seed_ + 0x9e3779b97f4a7c15ull * ++seq_; }
    void apply_link(const FaultAction& action, sim::Link& link);
    void apply_agent(const FaultAction& action);
    void apply_filter(const FaultAction& action);
    void record(const FaultAction& action, bool applied, std::string detail);

    core::World& world_;
    std::uint64_t seed_;
    std::uint64_t seq_ = 0;
    std::map<sim::Link*, std::unique_ptr<LinkState>> links_;
    std::vector<sim::EventId> scheduled_;
    /// Churn rules currently installed, keyed by router name, so the
    /// clearing action can remove exactly the rule it added.
    std::map<std::string, std::shared_ptr<const routing::FilterRule>> churn_rules_;
    std::size_t applied_ = 0;
    std::size_t skipped_ = 0;
};

}  // namespace mip::fault
