#include "fault/link_faults.h"

#include <algorithm>

namespace mip::fault {

// ---- LinkDownFault ----------------------------------------------------------

sim::FaultVerdict LinkDownFault::on_transmit(sim::Frame&, sim::TimePoint) {
    if (!down_) return {};
    ++dropped_;
    return {.drop = true, .drop_reason = "fault: link down"};
}

// ---- GilbertElliottLoss -----------------------------------------------------

GilbertElliottLoss::GilbertElliottLoss(GilbertElliottConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {}

bool GilbertElliottLoss::step() {
    std::uniform_real_distribution<double> uniform(0.0, 1.0);
    // Transition first, then lose with the new state's rate: a freshly
    // entered Bad state already drops, which is what makes losses bursty.
    if (state_ == State::Good) {
        if (uniform(rng_) < config_.p_good_to_bad) state_ = State::Bad;
    } else {
        if (uniform(rng_) < config_.p_bad_to_good) state_ = State::Good;
    }
    const double loss = state_ == State::Good ? config_.loss_good : config_.loss_bad;
    if (loss <= 0.0) return false;
    if (loss >= 1.0) return true;
    return uniform(rng_) < loss;
}

sim::FaultVerdict GilbertElliottLoss::on_transmit(sim::Frame&, sim::TimePoint) {
    if (!step()) return {};
    ++dropped_;
    return {.drop = true, .drop_reason = "fault: burst loss"};
}

// ---- BitCorruptionFault -----------------------------------------------------

BitCorruptionFault::BitCorruptionFault(double rate, unsigned bits_per_frame,
                                       std::uint64_t seed)
    : rate_(rate), bits_per_frame_(bits_per_frame), rng_(seed) {}

sim::FaultVerdict BitCorruptionFault::on_transmit(sim::Frame& frame, sim::TimePoint) {
    if (frame.payload.empty()) return {};
    std::uniform_real_distribution<double> uniform(0.0, 1.0);
    if (uniform(rng_) >= rate_) return {};
    ++corrupted_;
    std::uniform_int_distribution<std::size_t> bit(0, frame.payload.size() * 8 - 1);
    for (unsigned i = 0; i < bits_per_frame_; ++i) {
        const std::size_t b = bit(rng_);
        frame.payload[b / 8] ^= static_cast<std::uint8_t>(1u << (b % 8));
    }
    return {};  // delivered damaged; the receiver's checksums must catch it
}

// ---- DuplicationFault -------------------------------------------------------

DuplicationFault::DuplicationFault(double rate, std::uint64_t seed)
    : rate_(rate), rng_(seed) {}

sim::FaultVerdict DuplicationFault::on_transmit(sim::Frame&, sim::TimePoint) {
    std::uniform_real_distribution<double> uniform(0.0, 1.0);
    if (uniform(rng_) >= rate_) return {};
    ++duplicated_;
    return {.duplicate = true};
}

// ---- ReorderFault -----------------------------------------------------------

ReorderFault::ReorderFault(double rate, sim::Duration hold, std::uint64_t seed)
    : rate_(rate), hold_(hold), rng_(seed) {}

sim::FaultVerdict ReorderFault::on_transmit(sim::Frame&, sim::TimePoint) {
    std::uniform_real_distribution<double> uniform(0.0, 1.0);
    if (uniform(rng_) >= rate_) return {};
    ++held_;
    return {.extra_delay = hold_};
}

// ---- JitterFault ------------------------------------------------------------

JitterFault::JitterFault(sim::Duration max_jitter, std::uint64_t seed)
    : max_jitter_(max_jitter), rng_(seed) {}

sim::FaultVerdict JitterFault::on_transmit(sim::Frame&, sim::TimePoint) {
    if (max_jitter_ <= 0) return {};
    std::uniform_int_distribution<sim::Duration> jitter(0, max_jitter_);
    return {.extra_delay = jitter(rng_)};
}

// ---- FaultChain -------------------------------------------------------------

void FaultChain::add(std::shared_ptr<sim::LinkFault> fault) {
    faults_.push_back(std::move(fault));
}

void FaultChain::remove(const sim::LinkFault* fault) {
    std::erase_if(faults_, [fault](const auto& f) { return f.get() == fault; });
}

sim::FaultVerdict FaultChain::on_transmit(sim::Frame& frame, sim::TimePoint now) {
    sim::FaultVerdict merged;
    for (const auto& f : faults_) {
        const sim::FaultVerdict v = f->on_transmit(frame, now);
        if (v.drop) return v;
        merged.duplicate = merged.duplicate || v.duplicate;
        merged.extra_delay += v.extra_delay;
    }
    return merged;
}

}  // namespace mip::fault
