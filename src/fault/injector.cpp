#include "fault/injector.h"

#include "routing/filters.h"

namespace mip::fault {

FaultInjector::FaultInjector(core::World& world, std::uint64_t seed)
    : world_(world), seed_(seed) {}

FaultInjector::~FaultInjector() {
    reset();
}

void FaultInjector::execute(const FaultPlan& plan) {
    for (const FaultAction& action : plan.actions()) {
        scheduled_.push_back(world_.sim.schedule_at(
            action.at, [this, action] { apply(action); }, "fault-action"));
    }
}

void FaultInjector::reset() {
    for (const sim::EventId id : scheduled_) {
        world_.sim.cancel(id);
    }
    scheduled_.clear();
    for (auto& [link, st] : links_) {
        if (link->fault() == &st->chain) link->set_fault(nullptr);
    }
    links_.clear();
}

void FaultInjector::apply(const FaultAction& action) {
    switch (action.kind) {
        case FaultKind::AgentCrash:
        case FaultKind::AgentRestart:
            apply_agent(action);
            return;
        case FaultKind::FilterChurnOn:
        case FaultKind::FilterChurnOff:
            apply_filter(action);
            return;
        default:
            break;
    }
    sim::Link* link = world_.find_link(action.target);
    if (link == nullptr) {
        ++skipped_;
        record(action, false, "no such link");
        return;
    }
    apply_link(action, *link);
}

FaultInjector::LinkState& FaultInjector::state_for(sim::Link& link) {
    auto& slot = links_[&link];
    if (!slot) slot = std::make_unique<LinkState>();
    return *slot;
}

void FaultInjector::sync_attachment(sim::Link& link, LinkState& st) {
    link.set_fault(st.chain.empty() ? nullptr : &st.chain);
}

template <typename T>
void FaultInjector::drop_hook(LinkState& st, std::shared_ptr<T>& hook) {
    if (!hook) return;
    st.chain.remove(hook.get());
    hook.reset();
}

void FaultInjector::apply_link(const FaultAction& action, sim::Link& link) {
    LinkState& st = state_for(link);
    bool ok = true;
    switch (action.kind) {
        case FaultKind::LinkDown:
            if (!st.down) {
                st.down = std::make_shared<LinkDownFault>();
                st.chain.add(st.down);
            }
            st.down->set_down(true);
            break;
        case FaultKind::LinkUp:
            drop_hook(st, st.down);
            break;
        case FaultKind::BurstLossOn: {
            GilbertElliottConfig cfg;
            // The action's rate scales how often the channel goes bad.
            if (action.rate > 0.0) cfg.p_good_to_bad = action.rate;
            drop_hook(st, st.burst);
            st.burst = std::make_shared<GilbertElliottLoss>(cfg, next_seed());
            st.chain.add(st.burst);
            break;
        }
        case FaultKind::BurstLossOff:
            drop_hook(st, st.burst);
            break;
        case FaultKind::CorruptionOn:
            drop_hook(st, st.corrupt);
            st.corrupt = std::make_shared<BitCorruptionFault>(action.rate, 3, next_seed());
            st.chain.add(st.corrupt);
            break;
        case FaultKind::CorruptionOff:
            drop_hook(st, st.corrupt);
            break;
        case FaultKind::DuplicationOn:
            drop_hook(st, st.duplicate);
            st.duplicate = std::make_shared<DuplicationFault>(action.rate, next_seed());
            st.chain.add(st.duplicate);
            break;
        case FaultKind::DuplicationOff:
            drop_hook(st, st.duplicate);
            break;
        case FaultKind::ReorderOn:
            drop_hook(st, st.reorder);
            st.reorder = std::make_shared<ReorderFault>(
                action.rate, action.duration > 0 ? action.duration : sim::milliseconds(20),
                next_seed());
            st.chain.add(st.reorder);
            break;
        case FaultKind::ReorderOff:
            drop_hook(st, st.reorder);
            break;
        case FaultKind::JitterOn:
            drop_hook(st, st.jitter);
            st.jitter = std::make_shared<JitterFault>(
                action.duration > 0 ? action.duration : sim::milliseconds(5), next_seed());
            st.chain.add(st.jitter);
            break;
        case FaultKind::JitterOff:
            drop_hook(st, st.jitter);
            break;
        default:
            ok = false;
            break;
    }
    sync_attachment(link, st);
    if (ok) {
        ++applied_;
        record(action, true, {});
    }
}

void FaultInjector::apply_agent(const FaultAction& action) {
    const bool crash = action.kind == FaultKind::AgentCrash;
    if (action.target == "home-agent") {
        if (crash) {
            world_.home_agent().crash();
        } else {
            world_.home_agent().restart();
        }
    } else if (action.target == "foreign-agent" && world_.has_foreign_agent()) {
        if (crash) {
            world_.foreign_agent().crash();
        } else {
            world_.foreign_agent().restart();
        }
    } else {
        ++skipped_;
        record(action, false, "no such agent");
        return;
    }
    ++applied_;
    record(action, true, {});
}

void FaultInjector::apply_filter(const FaultAction& action) {
    struct Boundary {
        stack::Router* router;
        const net::Prefix* inside;
    };
    Boundary b{nullptr, nullptr};
    if (action.target == "home-gw") {
        b = {&world_.home_gateway(), &world_.home_domain.prefix};
    } else if (action.target == "foreign-gw") {
        b = {&world_.foreign_gateway(), &world_.foreign_domain.prefix};
    } else if (action.target == "corr-gw") {
        b = {&world_.corr_gateway(), &world_.corr_domain.prefix};
    } else {
        ++skipped_;
        record(action, false, "no such router");
        return;
    }

    if (action.kind == FaultKind::FilterChurnOn) {
        // Idempotent: a second On replaces nothing, the rule is already up.
        if (churn_rules_.find(action.target) == churn_rules_.end()) {
            auto rule = std::make_shared<routing::ForeignSourceEgressRule>(*b.inside);
            b.router->add_egress_filter(1, rule);
            churn_rules_[action.target] = std::move(rule);
        }
    } else {
        auto it = churn_rules_.find(action.target);
        if (it != churn_rules_.end()) {
            b.router->remove_egress_filter(1, it->second.get());
            churn_rules_.erase(it);
        }
    }
    ++applied_;
    record(action, true, {});
}

void FaultInjector::record(const FaultAction& action, bool applied, std::string detail) {
    world_.metrics
        .counter("fault-injector", "fault",
                 is_clearing(action.kind) ? "cleared" : "injected")
        .add();
    obs::DecisionEvent ev;
    ev.when = world_.sim.now();
    ev.node = "fault-injector";
    ev.correspondent = action.target;
    ev.trigger = is_clearing(action.kind) ? "fault-clear" : "fault-inject";
    ev.test = to_string(action.kind);
    ev.input = action.describe();
    ev.passed = applied;
    ev.detail = std::move(detail);
    world_.decisions.record(std::move(ev));
}

}  // namespace mip::fault
