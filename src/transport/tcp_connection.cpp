#include "transport/tcp_connection.h"

#include "net/packet.h"
#include "transport/tcp_service.h"

namespace mip::transport {

std::string TcpEndpoints::to_string() const {
    return local_addr.to_string() + ":" + std::to_string(local_port) + " <-> " +
           remote_addr.to_string() + ":" + std::to_string(remote_port);
}

std::string to_string(TcpState s) {
    switch (s) {
        case TcpState::SynSent: return "syn-sent";
        case TcpState::SynReceived: return "syn-received";
        case TcpState::Established: return "established";
        case TcpState::FinWait: return "fin-wait";
        case TcpState::CloseWait: return "close-wait";
        case TcpState::LastAck: return "last-ack";
        case TcpState::Closed: return "closed";
        case TcpState::Reset: return "reset";
        case TcpState::Failed: return "failed";
    }
    return "?";
}

TcpConnection::TcpConnection(TcpService& service, TcpEndpoints endpoints, TcpConfig config,
                             bool active)
    : service_(service),
      endpoints_(endpoints),
      config_(config),
      state_(active ? TcpState::SynSent : TcpState::SynReceived) {
    snd_una_ = config_.initial_seq;
    snd_nxt_ = config_.initial_seq;
    snd_base_ = config_.initial_seq + 1;  // SYN consumes one sequence number
}

void TcpConnection::enter(TcpState next) {
    if (state_ == next) return;
    state_ = next;
    if (!alive()) {
        cancel_timer();
    }
    if (on_state_) on_state_(next);
}

std::uint32_t TcpConnection::snd_limit() const {
    return snd_base_ + static_cast<std::uint32_t>(sendbuf_.size()) + (fin_queued_ ? 1 : 0);
}

void TcpConnection::start_active_open() {
    send_segment(net::kTcpSyn, snd_nxt_, {}, false);
    snd_nxt_ += 1;
    arm_timer();
}

void TcpConnection::send(std::vector<std::uint8_t> data) {
    if (!alive() || fin_queued_) {
        return;  // sending after close() is a programming error; drop quietly
    }
    stats_.bytes_sent += data.size();
    sendbuf_.insert(sendbuf_.end(), data.begin(), data.end());
    if (state_ == TcpState::Established || state_ == TcpState::CloseWait) {
        pump();
    }
}

void TcpConnection::close() {
    if (!alive() || fin_queued_) return;
    fin_queued_ = true;
    if (state_ == TcpState::Established || state_ == TcpState::CloseWait) {
        pump();
    }
}

void TcpConnection::abort() {
    if (!alive()) return;
    send_segment(net::kTcpRst, snd_nxt_, {}, false);
    enter(TcpState::Reset);
}

void TcpConnection::pump() {
    // Transmit all queued data not yet sent (no congestion/flow control).
    while (snd_nxt_ < snd_base_ + sendbuf_.size()) {
        const std::uint32_t offset = snd_nxt_ - snd_base_;
        const std::size_t n =
            std::min<std::size_t>(config_.mss, sendbuf_.size() - offset);
        std::vector<std::uint8_t> chunk(sendbuf_.begin() + offset,
                                        sendbuf_.begin() + offset + static_cast<long>(n));
        send_segment(net::kTcpAck | net::kTcpPsh, snd_nxt_, chunk, false);
        snd_nxt_ += static_cast<std::uint32_t>(n);
    }
    if (fin_queued_ && !fin_sent_ && snd_nxt_ == snd_base_ + sendbuf_.size()) {
        send_segment(net::kTcpFin | net::kTcpAck, snd_nxt_, {}, false);
        snd_nxt_ += 1;
        fin_sent_ = true;
        if (state_ == TcpState::Established) enter(TcpState::FinWait);
        else if (state_ == TcpState::CloseWait) enter(TcpState::LastAck);
    }
    // The RTO timer tracks the *oldest* unacknowledged byte: if it is
    // already running, new transmissions must not restart it, or a steady
    // stream of fresh sends can postpone a backed-off retransmission
    // indefinitely (the connection then stalls while staying alive).
    if (snd_nxt_ > snd_una_ && !timer_armed_) {
        arm_timer();
    }
}

void TcpConnection::send_segment(std::uint8_t flags, std::uint32_t seq,
                                 std::span<const std::uint8_t> payload, bool retransmission) {
    net::TcpHeader seg;
    seg.src_port = endpoints_.local_port;
    seg.dst_port = endpoints_.remote_port;
    seg.seq = seq;
    seg.flags = flags;
    if (flags & net::kTcpAck) {
        seg.ack = rcv_nxt_;
    }

    net::BufferWriter w(net::kTcpHeaderSize + payload.size());
    seg.serialize(w, endpoints_.local_addr, endpoints_.remote_addr, payload);

    stack::FlowKey flow;
    flow.bound_src = endpoints_.local_addr;
    flow.dst = endpoints_.remote_addr;
    flow.proto = net::IpProto::Tcp;
    flow.src_port = endpoints_.local_port;
    flow.dst_port = endpoints_.remote_port;
    flow.retransmission = retransmission;

    ++stats_.segments_sent;
    if (retransmission) {
        ++stats_.retransmissions;
        service_.notify_retransmit(endpoints_, /*inbound=*/false);
    }

    net::Packet packet = net::make_packet(endpoints_.local_addr, endpoints_.remote_addr,
                                          net::IpProto::Tcp, w.take());
    service_.ip().send(std::move(packet), flow);
}

void TcpConnection::send_ack() {
    send_segment(net::kTcpAck, snd_nxt_, {}, false);
}

void TcpConnection::arm_timer() {
    cancel_timer();
    const sim::Duration timeout = config_.rto << std::min(backoff_, 16u);
    rto_timer_ = service_.ip().simulator().schedule_in(
        timeout,
        [this] {
            timer_armed_ = false;
            on_timeout();
        },
        "tcp-rto");
    timer_armed_ = true;
}

void TcpConnection::cancel_timer() {
    if (timer_armed_) {
        service_.ip().simulator().cancel(rto_timer_);
        timer_armed_ = false;
    }
}

void TcpConnection::on_timeout() {
    if (!alive() || snd_una_ == snd_nxt_) {
        return;  // everything acked in the meantime
    }
    ++backoff_;
    if (backoff_ > config_.max_retries) {
        enter(TcpState::Failed);
        return;
    }

    // Retransmit the oldest unacknowledged item.
    if (snd_una_ < snd_base_) {
        // The SYN (active) or SYN|ACK (passive) is outstanding.
        const std::uint8_t flags =
            state_ == TcpState::SynSent
                ? static_cast<std::uint8_t>(net::kTcpSyn)
                : static_cast<std::uint8_t>(net::kTcpSyn | net::kTcpAck);
        send_segment(flags, snd_una_, {}, true);
    } else if (snd_una_ < snd_base_ + sendbuf_.size()) {
        const std::uint32_t offset = snd_una_ - snd_base_;
        const std::size_t n =
            std::min<std::size_t>(config_.mss, sendbuf_.size() - offset);
        std::vector<std::uint8_t> chunk(sendbuf_.begin() + offset,
                                        sendbuf_.begin() + offset + static_cast<long>(n));
        send_segment(net::kTcpAck | net::kTcpPsh, snd_una_, chunk, true);
    } else if (fin_sent_) {
        send_segment(net::kTcpFin | net::kTcpAck, snd_una_, {}, true);
    }
    arm_timer();
}

void TcpConnection::on_segment(const net::TcpHeader& seg,
                               std::span<const std::uint8_t> payload) {
    if (!alive()) return;

    if (seg.rst()) {
        enter(TcpState::Reset);
        return;
    }

    // --- connection establishment ------------------------------------------
    if (state_ == TcpState::SynSent) {
        if (seg.syn() && seg.ack_set() && seg.ack == snd_nxt_) {
            rcv_nxt_ = seg.seq + 1;
            snd_una_ = seg.ack;
            backoff_ = 0;
            cancel_timer();
            enter(TcpState::Established);
            service_.notify_progress(endpoints_);
            send_ack();
            pump();
        }
        return;
    }
    if (state_ == TcpState::SynReceived) {
        if (seg.syn() && !seg.ack_set()) {
            // Duplicate SYN: our SYN|ACK was lost; resend via timer path.
            send_segment(net::kTcpSyn | net::kTcpAck, snd_una_, {}, true);
            return;
        }
        if (seg.ack_set() && seg.ack == snd_nxt_) {
            snd_una_ = seg.ack;
            backoff_ = 0;
            cancel_timer();
            enter(TcpState::Established);
            // fall through: the ACK may carry data
        } else {
            return;
        }
    }

    // --- acknowledgement processing ----------------------------------------
    if (seg.ack_set() && seg.ack > snd_una_ && seg.ack <= snd_nxt_) {
        snd_una_ = seg.ack;
        backoff_ = 0;
        service_.notify_progress(endpoints_);
        const std::uint32_t data_end = snd_base_ + static_cast<std::uint32_t>(sendbuf_.size());
        if (snd_una_ > snd_base_) {
            const std::uint32_t acked_data = std::min(snd_una_, data_end) - snd_base_;
            sendbuf_.erase(sendbuf_.begin(), sendbuf_.begin() + acked_data);
            snd_base_ += acked_data;
            stats_.bytes_acked += acked_data;
        }
        if (snd_una_ == snd_nxt_) {
            cancel_timer();
            if (fin_sent_) {
                if (state_ == TcpState::LastAck) {
                    enter(TcpState::Closed);
                } else if (state_ == TcpState::FinWait && fin_received_) {
                    enter(TcpState::Closed);
                }
            }
        } else {
            arm_timer();
        }
    }

    // --- inbound data / FIN --------------------------------------------------
    const bool has_fin = seg.fin();
    const std::uint32_t seg_len =
        static_cast<std::uint32_t>(payload.size()) + (has_fin ? 1u : 0u);
    if (seg_len == 0) {
        return;
    }

    if (seg.seq == rcv_nxt_) {
        if (!payload.empty()) {
            rcv_nxt_ += static_cast<std::uint32_t>(payload.size());
            stats_.bytes_received += payload.size();
            if (on_data_) on_data_(payload);
        }
        if (has_fin) {
            rcv_nxt_ += 1;
            fin_received_ = true;
            if (state_ == TcpState::Established) {
                enter(TcpState::CloseWait);
            } else if (state_ == TcpState::FinWait && fin_sent_ && snd_una_ == snd_nxt_) {
                enter(TcpState::Closed);
            }
        }
        send_ack();
    } else if (seg.seq < rcv_nxt_) {
        // Duplicate: the peer is retransmitting — our ACKs may be getting
        // lost. Surface the signal (paper §7.1.2) and re-ACK.
        ++stats_.duplicate_segments_received;
        service_.notify_retransmit(endpoints_, /*inbound=*/true);
        send_ack();
    } else {
        // Out of order (a gap): this simplified TCP does not buffer it.
        send_ack();
    }
}

}  // namespace mip::transport
