#include "transport/tcp_connection.h"

#include <algorithm>

#include "net/packet.h"
#include "net/pool.h"
#include "transport/tcp_service.h"

namespace mip::transport {

std::string TcpEndpoints::to_string() const {
    return local_addr.to_string() + ":" + std::to_string(local_port) + " <-> " +
           remote_addr.to_string() + ":" + std::to_string(remote_port);
}

std::string to_string(TcpState s) {
    switch (s) {
        case TcpState::SynSent: return "syn-sent";
        case TcpState::SynReceived: return "syn-received";
        case TcpState::Established: return "established";
        case TcpState::FinWait: return "fin-wait";
        case TcpState::CloseWait: return "close-wait";
        case TcpState::LastAck: return "last-ack";
        case TcpState::Closed: return "closed";
        case TcpState::Reset: return "reset";
        case TcpState::Failed: return "failed";
    }
    return "?";
}

TcpConnection::TcpConnection(TcpService& service, TcpEndpoints endpoints, const Config& config,
                             bool active)
    : service_(service),
      endpoints_(endpoints),
      config_(config),
      state_(active ? TcpState::SynSent : TcpState::SynReceived) {
    const cc::FactoryContext ctx{config_.mss, config_.rto};
    cc_ = config_.controller ? config_.controller(ctx)
                             : cc::static_factory()(ctx);
    pacer_.set_rate(cc_->state().pacing_rate_bps);
    snd_una_ = config_.initial_seq;
    snd_nxt_ = config_.initial_seq;
    snd_base_ = config_.initial_seq + 1;  // SYN consumes one sequence number
}

void TcpConnection::enter(TcpState next) {
    if (state_ == next) return;
    state_ = next;
    if (!alive()) {
        cancel_timer();
        cancel_pace_timer();
    }
    if (on_state_) on_state_(next);
}

std::uint32_t TcpConnection::snd_limit() const {
    return snd_base_ + static_cast<std::uint32_t>(sendbuf_.size()) + (fin_queued_ ? 1 : 0);
}

void TcpConnection::start_active_open() {
    send_segment(net::kTcpSyn, snd_nxt_, {}, false);
    snd_nxt_ += 1;
    arm_timer();
}

void TcpConnection::send(std::span<const std::uint8_t> data) {
    if (!alive() || fin_queued_) {
        return;  // sending after close() is a programming error; drop quietly
    }
    stats_.bytes_sent += data.size();
    sendbuf_.insert(sendbuf_.end(), data.begin(), data.end());
    if (state_ == TcpState::Established || state_ == TcpState::CloseWait) {
        pump();
    }
}

void TcpConnection::send(std::vector<std::uint8_t> data) {
    send(std::span<const std::uint8_t>(data));
    service_.ip().simulator().buffer_pool().release(std::move(data));
}

void TcpConnection::close() {
    if (!alive() || fin_queued_) return;
    fin_queued_ = true;
    if (state_ == TcpState::Established || state_ == TcpState::CloseWait) {
        pump();
    }
}

void TcpConnection::abort() {
    if (!alive()) return;
    send_segment(net::kTcpRst, snd_nxt_, {}, false);
    enter(TcpState::Reset);
}

void TcpConnection::pump() {
    // Transmit queued data as far as the congestion window and the pacer
    // allow. The default StaticController publishes an unlimited window
    // and no pacing rate, so this degenerates to the historical
    // "transmit everything immediately" loop.
    while (snd_nxt_ < snd_base_ + sendbuf_.size()) {
        const std::uint32_t offset = snd_nxt_ - snd_base_;
        const std::size_t n =
            std::min<std::size_t>(config_.mss, sendbuf_.size() - offset);
        const std::size_t in_flight = snd_nxt_ - snd_una_;
        if (in_flight + n > cc_->state().cwnd_bytes) break;
        if (pacing_active()) {
            const sim::TimePoint now = service_.ip().simulator().now();
            if (!pacer_.can_send(now)) {
                arm_pace_timer();
                break;
            }
            pacer_.on_sent(n, now);
        }
        net::BufferPool& pool = service_.ip().simulator().buffer_pool();
        std::vector<std::uint8_t> chunk = pool.acquire(n);
        chunk.assign(sendbuf_.begin() + offset,
                     sendbuf_.begin() + offset + static_cast<long>(n));
        send_segment(net::kTcpAck | net::kTcpPsh, snd_nxt_, chunk, false);
        pool.release(std::move(chunk));
        snd_nxt_ += static_cast<std::uint32_t>(n);
    }
    if (fin_queued_ && !fin_sent_ && snd_nxt_ == snd_base_ + sendbuf_.size()) {
        send_segment(net::kTcpFin | net::kTcpAck, snd_nxt_, {}, false);
        snd_nxt_ += 1;
        fin_sent_ = true;
        if (state_ == TcpState::Established) enter(TcpState::FinWait);
        else if (state_ == TcpState::CloseWait) enter(TcpState::LastAck);
    }
    // The RTO timer tracks the *oldest* unacknowledged byte: if it is
    // already running, new transmissions must not restart it, or a steady
    // stream of fresh sends can postpone a backed-off retransmission
    // indefinitely (the connection then stalls while staying alive).
    if (snd_nxt_ > snd_una_ && !timer_armed_) {
        arm_timer();
    }
}

void TcpConnection::record_sent(std::uint32_t end_seq, std::size_t payload_bytes,
                                bool retransmission) {
    const sim::TimePoint now = service_.ip().simulator().now();
    if (retransmission) {
        // Karn's algorithm: a retransmitted range can never yield a clean
        // RTT or timestamp sample — mark every record it covers.
        for (SentRecord& rec : sent_records_) {
            if (rec.end_seq > snd_una_ && rec.end_seq <= end_seq) {
                rec.retransmitted = true;
            }
        }
    } else {
        sent_records_.push_back(
            {end_seq, payload_bytes, now, false, delivered_bytes_});
    }
    cc::SentSample sample;
    sample.bytes = payload_bytes;
    sample.sent_at = now;
    sample.retransmission = retransmission;
    sample.in_flight_bytes = end_seq - snd_una_;
    cc_->on_packet_sent(sample);
}

void TcpConnection::send_segment(std::uint8_t flags, std::uint32_t seq,
                                 std::span<const std::uint8_t> payload, bool retransmission) {
    net::TcpHeader seg;
    seg.src_port = endpoints_.local_port;
    seg.dst_port = endpoints_.remote_port;
    seg.seq = seq;
    seg.flags = flags;
    if (flags & net::kTcpAck) {
        seg.ack = rcv_nxt_;
    }

    net::BufferPool& pool = service_.ip().simulator().buffer_pool();
    net::BufferWriter w(pool.acquire(net::kTcpHeaderSize + payload.size()));
    seg.serialize(w, endpoints_.local_addr, endpoints_.remote_addr, payload);

    stack::FlowKey flow;
    flow.bound_src = endpoints_.local_addr;
    flow.dst = endpoints_.remote_addr;
    flow.proto = net::IpProto::Tcp;
    flow.src_port = endpoints_.local_port;
    flow.dst_port = endpoints_.remote_port;
    flow.retransmission = retransmission;

    ++stats_.segments_sent;
    if (retransmission) {
        ++stats_.retransmissions;
        service_.notify_retransmit(endpoints_, /*inbound=*/false);
    }
    const std::uint32_t seq_consumed = static_cast<std::uint32_t>(payload.size()) +
                                       ((flags & (net::kTcpSyn | net::kTcpFin)) ? 1u : 0u);
    if (seq_consumed > 0) {
        record_sent(seq + seq_consumed, payload.size(), retransmission);
    }

    net::Packet packet = net::make_packet(endpoints_.local_addr, endpoints_.remote_addr,
                                          net::IpProto::Tcp, w.take());
    service_.ip().send(std::move(packet), flow);
}

void TcpConnection::send_ack() {
    send_segment(net::kTcpAck, snd_nxt_, {}, false);
}

void TcpConnection::arm_timer() {
    cancel_timer();
    const sim::Duration timeout = cc_->state().rto << std::min(backoff_, 16u);
    rto_timer_ = service_.ip().simulator().schedule_in(
        timeout,
        [this] {
            timer_armed_ = false;
            on_timeout();
        },
        "tcp-rto");
    timer_armed_ = true;
}

void TcpConnection::cancel_timer() {
    if (timer_armed_) {
        service_.ip().simulator().cancel(rto_timer_);
        timer_armed_ = false;
    }
}

void TcpConnection::arm_pace_timer() {
    if (pace_timer_armed_) return;
    pace_timer_ = service_.ip().simulator().schedule_at(
        pacer_.next_release(),
        [this] {
            pace_timer_armed_ = false;
            if (state_ == TcpState::Established || state_ == TcpState::CloseWait ||
                state_ == TcpState::FinWait) {
                pump();
            }
        },
        "tcp-pace");
    pace_timer_armed_ = true;
}

void TcpConnection::cancel_pace_timer() {
    if (pace_timer_armed_) {
        service_.ip().simulator().cancel(pace_timer_);
        pace_timer_armed_ = false;
    }
}

void TcpConnection::sync_controller_outputs() {
    pacer_.set_rate(cc_->state().pacing_rate_bps);
    for (cc::Transition& t : cc_->take_transitions()) {
        service_.notify_cc_transition(endpoints_, cc_->name(), t);
    }
}

void TcpConnection::notify_route_change() {
    if (!alive()) return;
    const sim::TimePoint now = service_.ip().simulator().now();
    const sim::Duration rto_before = cc_->state().rto;
    cc_->on_route_change(now);
    pacer_.reset(now);
    sync_controller_outputs();
    // Re-arm a pending retransmission with the controller's widened RTO
    // so the new path's RTT step doesn't fire a spurious timeout. Guarded
    // on an actual rto change: the static controller never moves it, and
    // its timer sequence must stay bit-identical to the seed transport.
    if (cc_->state().rto != rto_before && timer_armed_ && snd_una_ < snd_nxt_) {
        arm_timer();
    }
}

void TcpConnection::on_timeout() {
    if (!alive() || snd_una_ == snd_nxt_) {
        return;  // everything acked in the meantime
    }
    ++backoff_;
    if (backoff_ > config_.max_retries) {
        service_.notify_give_up(endpoints_, backoff_ - 1);
        enter(TcpState::Failed);
        return;
    }

    cc::LossSample loss;
    loss.bytes = std::min<std::size_t>(config_.mss, snd_nxt_ - snd_una_);
    loss.consecutive_timeouts = backoff_;
    loss.at = service_.ip().simulator().now();
    cc_->on_loss(loss);
    sync_controller_outputs();

    // Retransmit the oldest unacknowledged item.
    if (snd_una_ < snd_base_) {
        // The SYN (active) or SYN|ACK (passive) is outstanding.
        const std::uint8_t flags =
            state_ == TcpState::SynSent
                ? static_cast<std::uint8_t>(net::kTcpSyn)
                : static_cast<std::uint8_t>(net::kTcpSyn | net::kTcpAck);
        send_segment(flags, snd_una_, {}, true);
    } else if (snd_una_ < snd_base_ + sendbuf_.size()) {
        const std::uint32_t offset = snd_una_ - snd_base_;
        const std::size_t n =
            std::min<std::size_t>(config_.mss, sendbuf_.size() - offset);
        net::BufferPool& pool = service_.ip().simulator().buffer_pool();
        std::vector<std::uint8_t> chunk = pool.acquire(n);
        chunk.assign(sendbuf_.begin() + offset,
                     sendbuf_.begin() + offset + static_cast<long>(n));
        send_segment(net::kTcpAck | net::kTcpPsh, snd_una_, chunk, true);
        pool.release(std::move(chunk));
    } else if (fin_sent_) {
        send_segment(net::kTcpFin | net::kTcpAck, snd_una_, {}, true);
    }
    arm_timer();
}

void TcpConnection::process_ack_feedback(std::uint32_t ack, std::uint32_t acked_data) {
    const sim::TimePoint now = service_.ip().simulator().now();
    SentRecord newest{};
    bool have_newest = false;
    while (!sent_records_.empty() && sent_records_.front().end_seq <= ack) {
        newest = sent_records_.front();
        have_newest = true;
        sent_records_.pop_front();
    }
    delivered_bytes_ += acked_data;

    cc::AckSample sample;
    sample.acked_bytes = acked_data;
    sample.recv_time = now;
    sample.delivered_bytes = delivered_bytes_;
    if (have_newest && !newest.retransmitted) {
        const sim::Duration rtt = now - newest.sent_at;
        sample.send_time = newest.sent_at;
        sample.rtt = rtt;
        if (now > newest.sent_at) {
            sample.delivery_rate_bps =
                static_cast<double>(delivered_bytes_ - newest.delivered_at_send) * 8.0 *
                1e9 / static_cast<double>(now - newest.sent_at);
        }
        ++stats_.rtt_samples;
        cc_->on_rtt_sample(rtt, now);
        service_.notify_rtt(endpoints_, rtt, rtt - cc_->min_rtt());
    }
    cc_->on_ack(sample);
    sync_controller_outputs();
}

void TcpConnection::on_segment(const net::TcpHeader& seg,
                               std::span<const std::uint8_t> payload,
                               std::uint64_t journey) {
    if (!alive()) return;
    rx_journey_ = journey;

    if (seg.rst()) {
        enter(TcpState::Reset);
        return;
    }

    // --- connection establishment ------------------------------------------
    if (state_ == TcpState::SynSent) {
        if (seg.syn() && seg.ack_set() && seg.ack == snd_nxt_) {
            rcv_nxt_ = seg.seq + 1;
            snd_una_ = seg.ack;
            backoff_ = 0;
            cancel_timer();
            process_ack_feedback(seg.ack, 0);
            enter(TcpState::Established);
            service_.notify_progress(endpoints_);
            send_ack();
            pump();
        }
        return;
    }
    if (state_ == TcpState::SynReceived) {
        if (seg.syn() && !seg.ack_set()) {
            // Duplicate SYN: our SYN|ACK was lost; resend via timer path.
            send_segment(net::kTcpSyn | net::kTcpAck, snd_una_, {}, true);
            return;
        }
        if (seg.ack_set() && seg.ack == snd_nxt_) {
            snd_una_ = seg.ack;
            backoff_ = 0;
            cancel_timer();
            process_ack_feedback(seg.ack, 0);
            enter(TcpState::Established);
            // fall through: the ACK may carry data
        } else {
            return;
        }
    }

    // --- acknowledgement processing ----------------------------------------
    if (seg.ack_set() && seg.ack > snd_una_ && seg.ack <= snd_nxt_) {
        snd_una_ = seg.ack;
        backoff_ = 0;
        service_.notify_progress(endpoints_);
        const std::uint32_t data_end = snd_base_ + static_cast<std::uint32_t>(sendbuf_.size());
        std::uint32_t acked_data = 0;
        if (snd_una_ > snd_base_) {
            acked_data = std::min(snd_una_, data_end) - snd_base_;
            sendbuf_.erase(sendbuf_.begin(), sendbuf_.begin() + acked_data);
            snd_base_ += acked_data;
            stats_.bytes_acked += acked_data;
        }
        process_ack_feedback(seg.ack, acked_data);
        if (snd_una_ == snd_nxt_) {
            cancel_timer();
            if (fin_sent_) {
                if (state_ == TcpState::LastAck) {
                    enter(TcpState::Closed);
                } else if (state_ == TcpState::FinWait && fin_received_) {
                    enter(TcpState::Closed);
                }
            }
        } else {
            arm_timer();
        }
        // The ack may have opened the congestion window: release what it
        // admits. With the static controller everything admissible was
        // already sent, so this is a no-op (and must stay one — the seed
        // golden artifacts pin that event stream).
        if (state_ == TcpState::Established || state_ == TcpState::CloseWait) {
            pump();
        }
    }

    // --- inbound data / FIN --------------------------------------------------
    const bool has_fin = seg.fin();
    const std::uint32_t seg_len =
        static_cast<std::uint32_t>(payload.size()) + (has_fin ? 1u : 0u);
    if (seg_len == 0) {
        return;
    }

    if (seg.seq == rcv_nxt_) {
        if (!payload.empty()) {
            rcv_nxt_ += static_cast<std::uint32_t>(payload.size());
            stats_.bytes_received += payload.size();
            if (on_data_) {
                const RxMeta meta{endpoints_.remote(), endpoints_.local_addr, rx_journey_};
                on_data_(payload, meta);
            }
        }
        if (has_fin) {
            rcv_nxt_ += 1;
            fin_received_ = true;
            if (state_ == TcpState::Established) {
                enter(TcpState::CloseWait);
            } else if (state_ == TcpState::FinWait && fin_sent_ && snd_una_ == snd_nxt_) {
                enter(TcpState::Closed);
            }
        }
        send_ack();
    } else if (seg.seq < rcv_nxt_) {
        // Duplicate: the peer is retransmitting — our ACKs may be getting
        // lost. Surface the signal (paper §7.1.2) and re-ACK.
        ++stats_.duplicate_segments_received;
        service_.notify_retransmit(endpoints_, /*inbound=*/true);
        send_ack();
    } else {
        // Out of order (a gap): this simplified TCP does not buffer it.
        send_ack();
    }
}

}  // namespace mip::transport
