// Demultiplexer and factory for TcpConnection.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "obs/decision.h"
#include "obs/metrics.h"
#include "stack/ip_stack.h"
#include "transport/tcp_connection.h"

namespace mip::transport {

class TcpService {
public:
    /// Invoked when a listener accepts a new connection.
    using AcceptCallback = std::function<void(TcpConnection&)>;
    /// Invoked for every retransmission event: outbound (we re-sent) or
    /// inbound (we received a duplicate — the peer is re-sending, so our
    /// acknowledgements may not be getting through). The Mobile IP policy
    /// layer subscribes to this (paper §7.1.2).
    using RetransmitObserver = std::function<void(const TcpEndpoints&, bool inbound)>;
    /// Invoked whenever a connection makes forward progress (established,
    /// or new data acknowledged) — the positive counterpart of the
    /// retransmission signal, used to confirm a delivery method works.
    using ProgressObserver = std::function<void(const TcpEndpoints&)>;
    /// Invoked for every clean (Karn-filtered) RTT sample with the sample
    /// itself and its queueing component (sample minus the controller's
    /// min-RTT estimate). Benches use this to compare standing queues
    /// across congestion controllers.
    using RttObserver =
        std::function<void(const TcpEndpoints&, sim::Duration rtt, sim::Duration queue_delay)>;

    explicit TcpService(stack::IpStack& ip, Config config = {});
    TcpService(const TcpService&) = delete;
    TcpService& operator=(const TcpService&) = delete;

    /// Active open. @p bound_src pins the local endpoint address (§7.1.1);
    /// unspecified lets the stack's policy/source-selection decide.
    TcpConnection& connect(net::Ipv4Address remote, std::uint16_t remote_port,
                           net::Ipv4Address bound_src = {});

    /// Passive open on @p port for any local address this stack owns.
    void listen(std::uint16_t port, AcceptCallback on_accept);
    void stop_listening(std::uint16_t port);

    void set_retransmit_observer(RetransmitObserver obs) { retransmit_observer_ = std::move(obs); }
    void set_progress_observer(ProgressObserver obs) { progress_observer_ = std::move(obs); }
    void set_rtt_observer(RttObserver obs) { rtt_observer_ = std::move(obs); }

    /// Attaches audit sinks for congestion-control decisions (cc-*
    /// DecisionEvents, (node,"cc") counters/gauges, the transport give-up
    /// counter). Deliberately opt-in — World never wires it — so runs that
    /// pin metric snapshots byte-for-byte are unaffected. Either sink may
    /// be null.
    void set_observability(std::string node, obs::MetricsRegistry* metrics,
                           obs::DecisionLog* decisions);

    /// Signals every live connection that the path beneath it changed
    /// (handoff or connectivity loss) — see TcpConnection::notify_route_change.
    void notify_route_change();

    /// Destroys a dead connection's state (optional; the service also keeps
    /// finished connections around for inspection until cleared).
    void reap();

    std::size_t connection_count() const noexcept { return connections_.size(); }
    stack::IpStack& ip() noexcept { return ip_; }
    const Config& config() const noexcept { return config_; }

private:
    friend class TcpConnection;
    void on_packet(const net::Packet& packet);
    void notify_retransmit(const TcpEndpoints& ep, bool inbound);
    void notify_progress(const TcpEndpoints& ep);
    /// Audits a connection giving up (max_retries RTOs exhausted): a
    /// "cc-give-up" DecisionEvent plus the (node,"transport","give_ups")
    /// counter the chaos canary watches.
    void notify_give_up(const TcpEndpoints& ep, unsigned retries);
    void notify_cc_transition(const TcpEndpoints& ep, const char* controller,
                              const cc::Transition& t);
    void notify_rtt(const TcpEndpoints& ep, sim::Duration rtt, sim::Duration queue_delay);
    void send_rst(const net::Packet& packet, const net::TcpHeader& seg);
    std::uint16_t ephemeral_port();

    stack::IpStack& ip_;
    Config config_;
    std::map<TcpEndpoints, std::unique_ptr<TcpConnection>> connections_;
    std::map<std::uint16_t, AcceptCallback> listeners_;
    RetransmitObserver retransmit_observer_;
    ProgressObserver progress_observer_;
    RttObserver rtt_observer_;
    std::string obs_node_;
    obs::MetricsRegistry* metrics_ = nullptr;
    obs::DecisionLog* decisions_ = nullptr;
    std::uint16_t next_ephemeral_ = 40000;
};

}  // namespace mip::transport
