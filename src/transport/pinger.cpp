#include "transport/pinger.h"

namespace mip::transport {

// Echo identifiers are allocated by the simulator so that a pinger's
// identity depends only on construction order inside its own world — a
// process-global counter would race across parallel sweep jobs and make
// shard traces diverge from a serial run.
Pinger::Pinger(stack::IpStack& ip) : ip_(ip), ident_(ip.simulator().next_ping_ident()) {
    ip_.add_icmp_observer([this](const net::IcmpMessage& msg, const net::Packet& packet) {
        on_icmp(msg, packet);
    });
}

void Pinger::ping(net::Ipv4Address dst, Callback cb, sim::Duration timeout,
                  std::size_t payload_size, net::Ipv4Address src) {
    const std::uint16_t seq = next_seq_++;

    net::IcmpMessage msg;
    msg.type = net::IcmpType::EchoRequest;
    msg.rest_of_header = static_cast<std::uint32_t>(ident_) << 16 | seq;
    msg.body.assign(payload_size, 0xa5);

    Outstanding out;
    out.sent_at = ip_.simulator().now();
    out.callback = std::move(cb);
    out.dst = dst;
    out.payload_size = payload_size;
    out.timeout_event = ip_.simulator().schedule_in(
        timeout,
        [this, seq] {
            auto it = outstanding_.find(seq);
            if (it == outstanding_.end()) return;
            auto callback = std::move(it->second.callback);
            const RxMeta meta{Endpoint{it->second.dst, 0}, {}, 0};
            if (feedback_ != nullptr) {
                cc::LossSample loss;
                loss.bytes = it->second.payload_size;
                loss.consecutive_timeouts = 1;
                loss.at = ip_.simulator().now();
                feedback_->on_loss(loss);
            }
            outstanding_.erase(it);
            callback(std::nullopt, meta);
        },
        "ping-timeout");
    outstanding_[seq] = std::move(out);
    ++sent_;

    if (feedback_ != nullptr) {
        cc::SentSample sample;
        sample.bytes = payload_size;
        sample.sent_at = ip_.simulator().now();
        feedback_->on_packet_sent(sample);
    }

    ip_.send_icmp(dst, msg, src);
}

void Pinger::on_icmp(const net::IcmpMessage& msg, const net::Packet& packet) {
    if (msg.type != net::IcmpType::EchoReply) return;
    const std::uint16_t ident = static_cast<std::uint16_t>(msg.rest_of_header >> 16);
    const std::uint16_t seq = static_cast<std::uint16_t>(msg.rest_of_header & 0xffff);
    if (ident != ident_) return;
    auto it = outstanding_.find(seq);
    if (it == outstanding_.end()) return;
    ip_.simulator().cancel(it->second.timeout_event);
    const sim::Duration rtt = ip_.simulator().now() - it->second.sent_at;
    auto callback = std::move(it->second.callback);
    const RxMeta meta{Endpoint{packet.header().src, 0}, packet.header().dst, packet.journey()};
    outstanding_.erase(it);
    ++received_;
    if (feedback_ != nullptr) {
        feedback_->on_rtt_sample(rtt, ip_.simulator().now());
    }
    callback(rtt, meta);
}

}  // namespace mip::transport
