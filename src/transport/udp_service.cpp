#include "transport/udp_service.h"

#include "net/udp_header.h"

namespace mip::transport {

UdpSocket::~UdpSocket() {
    service_.close(port_);
}

void UdpSocket::send_to(net::Ipv4Address dst, std::uint16_t dst_port,
                        std::vector<std::uint8_t> data, bool retransmission) {
    stack::IpStack& ip = service_.ip();

    stack::FlowKey flow;
    flow.bound_src = bound_addr_;
    flow.dst = dst;
    flow.proto = net::IpProto::Udp;
    flow.src_port = port_;
    flow.dst_port = dst_port;
    flow.retransmission = retransmission;

    const net::Ipv4Address src =
        bound_addr_.is_unspecified() ? ip.select_source(flow) : bound_addr_;

    net::UdpHeader udp;
    udp.src_port = port_;
    udp.dst_port = dst_port;
    net::BufferWriter w(net::kUdpHeaderSize + data.size());
    udp.serialize(w, src, dst, data);

    if (feedback_ != nullptr) {
        cc::SentSample sample;
        sample.bytes = data.size();
        sample.sent_at = ip.simulator().now();
        sample.retransmission = retransmission;
        feedback_->on_packet_sent(sample);
    }

    net::Packet packet = net::make_packet(src, dst, net::IpProto::Udp, w.take());
    ip.send(std::move(packet), flow);
}

UdpService::UdpService(stack::IpStack& ip) : ip_(ip) {
    ip_.register_protocol(net::IpProto::Udp,
                          [this](const net::Packet& p, std::size_t) { on_packet(p); });
}

std::unique_ptr<UdpSocket> UdpService::open(std::uint16_t port) {
    if (port == 0) {
        while (sockets_.contains(next_ephemeral_)) {
            ++next_ephemeral_;
        }
        port = next_ephemeral_++;
    }
    if (sockets_.contains(port)) {
        throw std::invalid_argument("UDP port " + std::to_string(port) + " already bound");
    }
    auto socket = std::unique_ptr<UdpSocket>(new UdpSocket(*this, port));
    sockets_[port] = socket.get();
    return socket;
}

void UdpService::close(std::uint16_t port) {
    sockets_.erase(port);
}

void UdpService::on_packet(const net::Packet& packet) {
    net::UdpHeader udp;
    net::BufferReader r(packet.payload());
    try {
        udp = net::UdpHeader::parse(r, packet.header().src, packet.header().dst);
    } catch (const net::ParseError&) {
        return;
    }
    auto it = sockets_.find(udp.dst_port);
    if (it == sockets_.end() || !it->second->receiver_) {
        return;
    }
    const auto data = packet.payload().subspan(net::kUdpHeaderSize,
                                               udp.length - net::kUdpHeaderSize);
    const RxMeta meta{Endpoint{packet.header().src, udp.src_port}, packet.header().dst,
                      packet.journey()};
    it->second->receiver_(data, meta);
}

}  // namespace mip::transport
