#include "transport/cc/delay_gradient.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace mip::transport::cc {

namespace {

constexpr sim::Duration kMinRto = sim::milliseconds(150);
constexpr sim::Duration kMaxRto = sim::seconds(8);

std::string rate_detail(double bps) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "rate=%.0fkbps", bps / 1e3);
    return buf;
}

}  // namespace

DelayGradientController::DelayGradientController(const FactoryContext& ctx,
                                                 DelayGradientOptions opt)
    : mss_(ctx.mss), opt_(opt), rate_bps_(opt.initial_rate_bps),
      threshold_ms_(opt.initial_threshold_ms) {
    state_.rto = ctx.initial_rto;
    state_.pacing_rate_bps = rate_bps_;
    refresh_cwnd();
}

void DelayGradientController::refresh_cwnd() {
    // Allow a little more than one BDP in flight so pacing, not the
    // window, is the steady-state limiter.
    const double rtt_s =
        std::max(sim::to_seconds(min_rtt()), srtt_ms_ > 0 ? srtt_ms_ / 1e3 : 0.05);
    const double bdp = rate_bps_ * rtt_s / 8.0;
    state_.cwnd_bytes =
        static_cast<std::size_t>(bdp * opt_.cwnd_gain) + 3 * mss_;
    state_.pacing_rate_bps = rate_bps_;
}

void DelayGradientController::handle_rtt(sim::Duration rtt, sim::TimePoint) {
    const double ms = sim::to_milliseconds(rtt);
    if (srtt_ms_ == 0.0) {
        srtt_ms_ = ms;
        rttvar_ms_ = ms / 2.0;
    } else {
        rttvar_ms_ += 0.25 * (std::abs(srtt_ms_ - ms) - rttvar_ms_);
        srtt_ms_ += 0.125 * (ms - srtt_ms_);
    }
    const double rto_ms = srtt_ms_ + 4.0 * std::max(rttvar_ms_, 1.0);
    state_.rto = std::clamp(
        static_cast<sim::Duration>(rto_ms * 1e6), kMinRto, kMaxRto);
}

void DelayGradientController::handle_ack(const AckSample& s) {
    if (s.delivery_rate_bps > 0.0) {
        recent_delivery_bps_ = recent_delivery_bps_ == 0.0
                                   ? s.delivery_rate_bps
                                   : 0.8 * recent_delivery_bps_ + 0.2 * s.delivery_rate_bps;
    }
    if (s.send_time == 0) return;  // Karn-excluded: no timestamp pair

    if (!have_prev_) {
        have_prev_ = true;
        prev_send_ = s.send_time;
        prev_recv_ = s.recv_time;
        window_epoch_ = s.recv_time;
        return;
    }
    // Inter-arrival delay variation: how much more this segment queued
    // than the previous one.
    const double d_ms = sim::to_milliseconds((s.recv_time - prev_recv_) -
                                             (s.send_time - prev_send_));
    prev_send_ = s.send_time;
    prev_recv_ = s.recv_time;

    accum_delay_ms_ += d_ms;
    smoothed_delay_ms_ = 0.9 * smoothed_delay_ms_ + 0.1 * accum_delay_ms_;
    samples_.emplace_back(sim::to_milliseconds(s.recv_time - window_epoch_),
                          smoothed_delay_ms_);
    while (samples_.size() > opt_.window) samples_.pop_front();
    if (samples_.size() < 4) return;

    // Least-squares slope of smoothed delay over arrival time.
    double mx = 0, my = 0;
    for (const auto& [x, y] : samples_) {
        mx += x;
        my += y;
    }
    mx /= static_cast<double>(samples_.size());
    my /= static_cast<double>(samples_.size());
    double num = 0, den = 0;
    for (const auto& [x, y] : samples_) {
        num += (x - mx) * (y - my);
        den += (x - mx) * (x - mx);
    }
    const double slope = den > 0 ? num / den : 0.0;
    const double trend =
        slope * static_cast<double>(samples_.size()) * opt_.threshold_gain;
    last_trend_ms_ = trend;

    // Adaptive threshold (goog_cc): track |trend| slowly upward, fast
    // downward, so a persistent small offset doesn't desensitize the
    // detector.
    const double k = std::abs(trend) > threshold_ms_ ? 0.01 : 0.004;
    threshold_ms_ += k * (std::abs(trend) - threshold_ms_);
    threshold_ms_ = std::clamp(threshold_ms_, 3.0, 60.0);

    Signal next = Signal::Normal;
    if (trend > threshold_ms_) {
        if (overuse_since_ == 0) overuse_since_ = s.recv_time;
        if (s.recv_time - overuse_since_ >= opt_.overuse_time) next = Signal::Overuse;
    } else {
        overuse_since_ = 0;
        if (trend < -threshold_ms_) next = Signal::Underuse;
    }
    signal_ = next;
    update_rate(s.recv_time);
}

void DelayGradientController::update_rate(sim::TimePoint now) {
    switch (signal_) {
        case Signal::Overuse: {
            // Back off toward what the path actually delivered; rate-limit
            // backoffs to one per smoothed RTT so a single deep queue
            // doesn't collapse the rate to the floor.
            const sim::Duration spacing =
                std::max<sim::Duration>(sim::milliseconds(static_cast<std::int64_t>(srtt_ms_)),
                                        sim::milliseconds(50));
            if (now - last_backoff_ < spacing) return;
            last_backoff_ = now;
            const double target = recent_delivery_bps_ > 0 ? recent_delivery_bps_ : rate_bps_;
            const double next = std::max(opt_.min_rate_bps, opt_.beta * target);
            if (next < rate_bps_) {
                rate_bps_ = next;
                push_transition("overuse-backoff", rate_detail(rate_bps_));
            }
            // Restart the trendline: the backoff changes the process the
            // window was fitted to.
            samples_.clear();
            accum_delay_ms_ = 0;
            smoothed_delay_ms_ = 0;
            overuse_since_ = 0;
            break;
        }
        case Signal::Underuse:
            // Queues are draining; hold and let them empty.
            break;
        case Signal::Normal: {
            const sim::Duration interval =
                std::max<sim::Duration>(sim::milliseconds(static_cast<std::int64_t>(srtt_ms_)),
                                        sim::milliseconds(20));
            if (now - last_update_ < interval) return;
            last_update_ = now;
            rate_bps_ = std::min(opt_.max_rate_bps, rate_bps_ * opt_.eta);
            break;
        }
    }
    refresh_cwnd();
}

void DelayGradientController::handle_loss(const LossSample& s) {
    // An RTO under a delay-based controller usually means the path went
    // away (handoff gap) rather than overflow; halve once per event.
    rate_bps_ = std::max(opt_.min_rate_bps, rate_bps_ * 0.5);
    push_transition("rto-backoff",
                    rate_detail(rate_bps_) + " timeouts=" +
                        std::to_string(s.consecutive_timeouts));
    refresh_cwnd();
}

void DelayGradientController::handle_route_change(sim::TimePoint) {
    have_prev_ = false;
    samples_.clear();
    accum_delay_ms_ = 0;
    smoothed_delay_ms_ = 0;
    overuse_since_ = 0;
    signal_ = Signal::Normal;
    threshold_ms_ = opt_.initial_threshold_ms;
    // The RTT step on the new path must not fire the retransmission
    // timer before a fresh sample arrives: widen the variance term the
    // way a fresh connection would start.
    if (srtt_ms_ > 0) {
        rttvar_ms_ = std::max(rttvar_ms_, srtt_ms_);
        const double rto_ms = srtt_ms_ + 4.0 * std::max(rttvar_ms_, 1.0);
        state_.rto = std::clamp(
            static_cast<sim::Duration>(rto_ms * 1e6), kMinRto, kMaxRto);
    }
    push_transition("route-change-reset", rate_detail(rate_bps_));
}

Factory delay_gradient_factory(DelayGradientOptions opt) {
    return [opt](const FactoryContext& ctx) {
        return std::make_unique<DelayGradientController>(ctx, opt);
    };
}

Factory delay_gradient_factory() { return delay_gradient_factory(DelayGradientOptions{}); }

}  // namespace mip::transport::cc
