// Pluggable congestion control for mip::transport (ISSUE 10).
//
// A CongestionController consumes the transport's feedback stream —
// per-segment sends, acknowledgements carrying send/receive timestamps
// and delivery-rate samples, retransmission-timeout losses, clean RTT
// samples, and route-change signals from the mobility layer — and
// publishes a ControlState the connection obeys: how many bytes may be in
// flight, how fast the PacedSender may release segments, and the current
// retransmission timeout.
//
// The contract with determinism (DESIGN §14): controllers are pure
// functions of their feedback stream. They never schedule simulator
// events, draw randomness, or touch wall time — all timing flows in
// through the sample structs — so a sweep shard replaying the same
// feedback reproduces the same decisions byte for byte.
//
// State transitions worth auditing (overuse backoffs, loss backoffs,
// route-change resets) are queued as Transition records; the owning
// TcpConnection drains them after every feedback call and forwards them
// to the DecisionLog / MetricsRegistry when observability is attached —
// controllers themselves stay below obs in the link graph.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "sim/time.h"

namespace mip::transport::cc {

/// What the connection is allowed to do right now.
struct ControlState {
    /// Maximum bytes in flight (snd_nxt - snd_una). The static controller
    /// publishes "unlimited" — the pre-ISSUE-10 behaviour.
    std::size_t cwnd_bytes = std::numeric_limits<std::size_t>::max();
    /// Segment release rate for the PacedSender; <= 0 disables pacing.
    double pacing_rate_bps = 0.0;
    /// Base retransmission timeout (the connection still applies its
    /// exponential backoff shift on successive timeouts).
    sim::Duration rto = sim::milliseconds(200);
};

/// One segment handed to the IP layer.
struct SentSample {
    std::size_t bytes = 0;
    sim::TimePoint sent_at = 0;
    bool retransmission = false;
    std::size_t in_flight_bytes = 0;  ///< after this send
};

/// One acknowledgement that advanced snd_una.
struct AckSample {
    std::size_t acked_bytes = 0;        ///< newly acknowledged payload bytes
    sim::TimePoint send_time = 0;       ///< newest acked segment's send time (0 = Karn-excluded)
    sim::TimePoint recv_time = 0;       ///< ack arrival at the sender
    std::uint64_t delivered_bytes = 0;  ///< cumulative delivered, incl. this ack
    double delivery_rate_bps = 0.0;     ///< sampled delivery rate (0 = no sample)
    sim::Duration rtt = 0;              ///< clean RTT sample (0 = none)
};

/// A retransmission timeout fired.
struct LossSample {
    std::size_t bytes = 0;              ///< oldest outstanding segment's size
    unsigned consecutive_timeouts = 0;  ///< backoff level including this one
    sim::TimePoint at = 0;              ///< when the timeout fired
};

/// An audited controller state transition; rendered as a `cc-<kind>`
/// DecisionEvent and a (node,"cc",<kind>) counter by the connection.
struct Transition {
    const char* kind;    ///< stable identifier, e.g. "overuse-backoff"
    std::string detail;  ///< human-readable elaboration
};

class CongestionController {
public:
    virtual ~CongestionController() = default;

    /// Stable controller name ("static", "delay-gradient", "loss-rate").
    virtual const char* name() const = 0;

    const ControlState& state() const noexcept { return state_; }

    /// Smallest clean RTT observed so far (0 until the first sample) —
    /// rtt - min_rtt() is the queueing-delay estimate the ablation gates
    /// on.
    sim::Duration min_rtt() const noexcept { return min_rtt_; }

    // ---- feedback stream --------------------------------------------------

    void on_packet_sent(const SentSample& s) { handle_sent(s); }
    void on_ack(const AckSample& s) { handle_ack(s); }
    void on_loss(const LossSample& s) { handle_loss(s); }
    void on_rtt_sample(sim::Duration rtt, sim::TimePoint now) {
        if (min_rtt_ == 0 || rtt < min_rtt_) min_rtt_ = rtt;
        handle_rtt(rtt, now);
    }
    /// The path under this connection changed (handoff completed, or
    /// connectivity was lost and reacquired). Controllers must drop any
    /// path-specific estimator state: the old path's delay floor and
    /// inter-arrival history would otherwise read as overuse or trigger
    /// spurious RTOs on the new path's RTT step.
    void on_route_change(sim::TimePoint now) {
        min_rtt_ = 0;
        handle_route_change(now);
    }

    /// Drains transitions queued since the last call.
    std::vector<Transition> take_transitions() {
        std::vector<Transition> out;
        out.swap(transitions_);
        return out;
    }

protected:
    virtual void handle_sent(const SentSample&) {}
    virtual void handle_ack(const AckSample&) {}
    virtual void handle_loss(const LossSample&) {}
    virtual void handle_rtt(sim::Duration, sim::TimePoint) {}
    virtual void handle_route_change(sim::TimePoint) {}

    void push_transition(const char* kind, std::string detail) {
        transitions_.push_back({kind, std::move(detail)});
    }

    ControlState state_{};

private:
    sim::Duration min_rtt_ = 0;
    std::vector<Transition> transitions_;
};

/// What a controller factory gets to see of the connection's config.
struct FactoryContext {
    std::size_t mss = 1000;
    sim::Duration initial_rto = sim::milliseconds(200);
};

/// Factory named by transport::Config. A null factory means "the default
/// StaticController built from the config's deprecated rto field".
using Factory = std::function<std::unique_ptr<CongestionController>(const FactoryContext&)>;

/// Factories for the three stock controllers (see the sibling headers for
/// their tuning structs).
Factory static_factory();
Factory delay_gradient_factory();
Factory loss_rate_factory();

/// Bench/CLI convenience: "static" | "delay" | "loss" -> factory.
/// Throws std::invalid_argument on anything else.
Factory factory_by_name(const std::string& name);

}  // namespace mip::transport::cc
