// Delay-gradient controller (ISSUE 10): the structure of WebRTC's
// goog_cc ported to this transport's ack stream. An inter-arrival
// estimator turns each (send_time, recv_time) pair into a one-way delay
// variation sample; a least-squares trendline over the recent samples
// estimates the queue-growth slope; an adaptive-threshold overuse
// detector turns a sustained positive slope into a multiplicative rate
// backoff *before* the queue grows deep enough to cost latency — which is
// exactly what the abl_cc_handoff congested rows measure against the
// loss-rate controller.
//
// Handoffs: a route change discards the estimator history and delay
// floor. The old path's inter-arrival baseline is meaningless on the new
// path, and feeding the RTT step into the trendline would read as a
// (spurious) overuse; the regression test in test_cc.cpp pins this.
#pragma once

#include <deque>

#include "transport/cc/controller.h"

namespace mip::transport::cc {

struct DelayGradientOptions {
    double initial_rate_bps = 600e3;
    double min_rate_bps = 80e3;
    double max_rate_bps = 100e6;
    /// Trendline window (delay-variation samples).
    std::size_t window = 20;
    /// Gain applied to the raw slope before the threshold compare.
    double threshold_gain = 4.0;
    /// Initial adaptive threshold, in ms of modified trend.
    double initial_threshold_ms = 12.5;
    /// Multiplicative increase per update interval while the path is calm.
    double eta = 1.08;
    /// Backoff factor applied to the measured delivery rate on overuse.
    double beta = 0.85;
    /// Overuse must persist this long before the detector fires.
    sim::Duration overuse_time = sim::milliseconds(10);
    /// cwnd = pacing_rate * rtt * this slack factor (plus a few mss).
    double cwnd_gain = 1.25;
};

class DelayGradientController final : public CongestionController {
public:
    DelayGradientController(const FactoryContext& ctx, DelayGradientOptions opt = {});

    const char* name() const override { return "delay-gradient"; }

    /// Detector state, exposed for the unit tests.
    enum class Signal { Normal, Overuse, Underuse };
    Signal signal() const noexcept { return signal_; }
    double trend_ms() const noexcept { return last_trend_ms_; }
    double threshold_ms() const noexcept { return threshold_ms_; }

protected:
    void handle_ack(const AckSample& s) override;
    void handle_loss(const LossSample& s) override;
    void handle_rtt(sim::Duration rtt, sim::TimePoint now) override;
    void handle_route_change(sim::TimePoint now) override;

private:
    void update_rate(sim::TimePoint now);
    void refresh_cwnd();

    std::size_t mss_;
    DelayGradientOptions opt_;
    double rate_bps_;

    // Inter-arrival estimator: previous ack's (send, recv) pair and the
    // accumulated/smoothed delay variation.
    bool have_prev_ = false;
    sim::TimePoint prev_send_ = 0;
    sim::TimePoint prev_recv_ = 0;
    double accum_delay_ms_ = 0.0;
    double smoothed_delay_ms_ = 0.0;

    /// (arrival ms since first sample in window, smoothed delay ms).
    std::deque<std::pair<double, double>> samples_;
    sim::TimePoint window_epoch_ = 0;

    double threshold_ms_;
    double last_trend_ms_ = 0.0;
    Signal signal_ = Signal::Normal;
    sim::TimePoint overuse_since_ = 0;   ///< first sample of the current run
    sim::TimePoint last_update_ = 0;     ///< last rate increase
    sim::TimePoint last_backoff_ = 0;
    double recent_delivery_bps_ = 0.0;   ///< EMA of delivery-rate samples

    // Jacobson RTT estimation for the adaptive RTO.
    double srtt_ms_ = 0.0;
    double rttvar_ms_ = 0.0;
};

Factory delay_gradient_factory(DelayGradientOptions opt);

}  // namespace mip::transport::cc
