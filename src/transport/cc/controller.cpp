#include "transport/cc/controller.h"

#include <stdexcept>

#include "transport/cc/delay_gradient.h"
#include "transport/cc/loss_rate.h"
#include "transport/cc/static_controller.h"

namespace mip::transport::cc {

Factory static_factory() {
    return [](const FactoryContext& ctx) {
        return std::make_unique<StaticController>(ctx.initial_rto);
    };
}

Factory factory_by_name(const std::string& name) {
    if (name == "static") return static_factory();
    if (name == "delay") return delay_gradient_factory();
    if (name == "loss") return loss_rate_factory();
    throw std::invalid_argument("unknown congestion controller: " + name);
}

}  // namespace mip::transport::cc
