// The pre-ISSUE-10 transport behaviour as a CongestionController: a fixed
// RTO, no congestion window, no pacing. This is the default controller —
// a connection driving it produces a bit-identical event stream to the
// seed transport (bench/golden/cc_static.txt pins this), so every golden
// artifact in the repo survives the refactor.
#pragma once

#include "transport/cc/controller.h"

namespace mip::transport::cc {

class StaticController final : public CongestionController {
public:
    explicit StaticController(sim::Duration rto) {
        state_.rto = rto;
        // cwnd stays "unlimited", pacing stays off: ControlState defaults.
    }

    const char* name() const override { return "static"; }
};

}  // namespace mip::transport::cc
