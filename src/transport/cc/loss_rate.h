// Loss/delivery-rate controller (ISSUE 10): BBR's skeleton — a windowed
// max filter over delivery-rate samples estimates the bottleneck
// bandwidth; pacing runs at that estimate with a small periodic probe;
// the congestion window is a multiple of the estimated BDP. Loss feeds in
// two ways: a windowed loss-rate filter dampens the pacing gain when
// losses are frequent, and a retransmission timeout backs the bandwidth
// estimate off multiplicatively.
//
// Because it ignores delay entirely, this controller keeps a standing
// queue at the bottleneck (cwnd_gain x BDP of it) — the congested rows of
// abl_cc_handoff show it paying ~2x the p95 queueing delay of the
// delay-gradient controller — and it mistakes Gilbert-Elliott wireless
// burst loss for congestion, which the GE-vs-queue-loss unit test pins.
#pragma once

#include <deque>

#include "transport/cc/controller.h"

namespace mip::transport::cc {

struct LossRateOptions {
    double initial_rate_bps = 600e3;
    double min_rate_bps = 80e3;
    double max_rate_bps = 100e6;
    /// Max-filter window over delivery-rate samples.
    sim::Duration bw_window = sim::seconds(2);
    /// Loss-rate filter window (acks and losses).
    sim::Duration loss_window = sim::seconds(1);
    /// Loss rate above which the pacing gain is reduced.
    double loss_threshold = 0.10;
    /// Pacing gain while probing (every probe_period-th update) and the
    /// dampened gain under heavy loss.
    double probe_gain = 1.25;
    double loss_gain = 0.7;
    /// Updates between bandwidth probes.
    unsigned probe_period = 8;
    /// cwnd = cwnd_gain x estimated BDP.
    double cwnd_gain = 2.0;
    /// Bandwidth-estimate backoff on a retransmission timeout.
    double rto_beta = 0.7;
};

class LossRateController final : public CongestionController {
public:
    LossRateController(const FactoryContext& ctx, LossRateOptions opt = {});

    const char* name() const override { return "loss-rate"; }

    double max_bandwidth_bps() const noexcept { return max_bw_bps_; }
    double loss_rate() const noexcept;

protected:
    void handle_ack(const AckSample& s) override;
    void handle_loss(const LossSample& s) override;
    void handle_rtt(sim::Duration rtt, sim::TimePoint now) override;
    void handle_route_change(sim::TimePoint now) override;

private:
    void refresh(sim::TimePoint now);
    void trim_loss_window(sim::TimePoint now);

    std::size_t mss_;
    LossRateOptions opt_;

    /// (sample time, delivery rate) — max over the window is the estimate.
    std::deque<std::pair<sim::TimePoint, double>> bw_samples_;
    double max_bw_bps_ = 0.0;

    /// (event time, was_loss) for the loss-rate filter.
    std::deque<std::pair<sim::TimePoint, bool>> loss_events_;
    bool lossy_ = false;  ///< last refresh crossed loss_threshold

    unsigned update_count_ = 0;
    sim::TimePoint last_update_ = 0;

    double srtt_ms_ = 0.0;
    double rttvar_ms_ = 0.0;
};

Factory loss_rate_factory(LossRateOptions opt);

}  // namespace mip::transport::cc
