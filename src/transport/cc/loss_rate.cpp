#include "transport/cc/loss_rate.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace mip::transport::cc {

namespace {

constexpr sim::Duration kMinRto = sim::milliseconds(150);
constexpr sim::Duration kMaxRto = sim::seconds(8);

std::string bw_detail(double bps, double loss) {
    char buf[80];
    std::snprintf(buf, sizeof buf, "bw=%.0fkbps loss=%.1f%%", bps / 1e3, loss * 100.0);
    return buf;
}

}  // namespace

LossRateController::LossRateController(const FactoryContext& ctx, LossRateOptions opt)
    : mss_(ctx.mss), opt_(opt) {
    state_.rto = ctx.initial_rto;
    state_.pacing_rate_bps = opt_.initial_rate_bps;
    state_.cwnd_bytes = 10 * mss_;
}

double LossRateController::loss_rate() const noexcept {
    if (loss_events_.empty()) return 0.0;
    std::size_t losses = 0;
    for (const auto& [when, was_loss] : loss_events_) {
        if (was_loss) ++losses;
    }
    return static_cast<double>(losses) / static_cast<double>(loss_events_.size());
}

void LossRateController::trim_loss_window(sim::TimePoint now) {
    while (!loss_events_.empty() && now - loss_events_.front().first > opt_.loss_window) {
        loss_events_.pop_front();
    }
}

void LossRateController::handle_rtt(sim::Duration rtt, sim::TimePoint) {
    const double ms = sim::to_milliseconds(rtt);
    if (srtt_ms_ == 0.0) {
        srtt_ms_ = ms;
        rttvar_ms_ = ms / 2.0;
    } else {
        rttvar_ms_ += 0.25 * (std::abs(srtt_ms_ - ms) - rttvar_ms_);
        srtt_ms_ += 0.125 * (ms - srtt_ms_);
    }
    const double rto_ms = srtt_ms_ + 4.0 * std::max(rttvar_ms_, 1.0);
    state_.rto = std::clamp(
        static_cast<sim::Duration>(rto_ms * 1e6), kMinRto, kMaxRto);
}

void LossRateController::handle_ack(const AckSample& s) {
    loss_events_.emplace_back(s.recv_time, false);
    trim_loss_window(s.recv_time);
    if (s.delivery_rate_bps > 0.0) {
        bw_samples_.emplace_back(s.recv_time, s.delivery_rate_bps);
        while (!bw_samples_.empty() &&
               s.recv_time - bw_samples_.front().first > opt_.bw_window) {
            bw_samples_.pop_front();
        }
        double mx = 0.0;
        for (const auto& [when, rate] : bw_samples_) mx = std::max(mx, rate);
        max_bw_bps_ = mx;
    }
    refresh(s.recv_time);
}

void LossRateController::refresh(sim::TimePoint now) {
    // One gain decision per smoothed RTT.
    const sim::Duration interval =
        std::max<sim::Duration>(sim::milliseconds(static_cast<std::int64_t>(srtt_ms_)),
                                sim::milliseconds(20));
    if (now - last_update_ < interval) return;
    last_update_ = now;
    ++update_count_;

    const double bw = max_bw_bps_ > 0 ? max_bw_bps_ : opt_.initial_rate_bps;
    const double lr = loss_rate();
    const bool lossy = lr > opt_.loss_threshold;
    if (lossy != lossy_) {
        lossy_ = lossy;
        if (lossy) push_transition("loss-dampen", bw_detail(bw, lr));
    }

    double gain = 1.0;
    if (lossy) {
        gain = opt_.loss_gain;
    } else if (update_count_ % opt_.probe_period == 0) {
        gain = opt_.probe_gain;
    }
    state_.pacing_rate_bps =
        std::clamp(gain * bw, opt_.min_rate_bps, opt_.max_rate_bps);

    const double rtt_s =
        std::max(sim::to_seconds(min_rtt()), srtt_ms_ > 0 ? srtt_ms_ / 1e3 : 0.05);
    const double bdp = bw * rtt_s / 8.0;
    state_.cwnd_bytes =
        std::max<std::size_t>(static_cast<std::size_t>(bdp * opt_.cwnd_gain), 4 * mss_);
}

void LossRateController::handle_loss(const LossSample& s) {
    // The windowed filter sees the loss; the estimate itself also backs
    // off — an RTO means the pipe estimate was wrong, wireless or not.
    // (On GE burst loss this is the controller being *wrong*, and the
    // point of the ablation's wireless rows.)
    if (s.at > 0) {
        loss_events_.emplace_back(s.at, true);
        trim_loss_window(s.at);
    }
    if (max_bw_bps_ > 0) {
        max_bw_bps_ = std::max(opt_.min_rate_bps, max_bw_bps_ * opt_.rto_beta);
        for (auto& [when, rate] : bw_samples_) rate = std::min(rate, max_bw_bps_);
    }
    state_.pacing_rate_bps =
        std::max(opt_.min_rate_bps,
                 std::min(state_.pacing_rate_bps, max_bw_bps_ > 0 ? max_bw_bps_
                                                                  : opt_.initial_rate_bps));
    push_transition("rto-backoff",
                    bw_detail(max_bw_bps_, loss_rate()) + " timeouts=" +
                        std::to_string(s.consecutive_timeouts));
}

void LossRateController::handle_route_change(sim::TimePoint) {
    bw_samples_.clear();
    loss_events_.clear();
    lossy_ = false;
    // Keep the last bandwidth estimate as a starting point but widen the
    // RTO the way a fresh path deserves.
    if (srtt_ms_ > 0) {
        rttvar_ms_ = std::max(rttvar_ms_, srtt_ms_);
        const double rto_ms = srtt_ms_ + 4.0 * std::max(rttvar_ms_, 1.0);
        state_.rto = std::clamp(
            static_cast<sim::Duration>(rto_ms * 1e6), kMinRto, kMaxRto);
    }
    push_transition("route-change-reset", bw_detail(max_bw_bps_, 0.0));
}

Factory loss_rate_factory(LossRateOptions opt) {
    return [opt](const FactoryContext& ctx) {
        return std::make_unique<LossRateController>(ctx, opt);
    };
}

Factory loss_rate_factory() { return loss_rate_factory(LossRateOptions{}); }

}  // namespace mip::transport::cc
