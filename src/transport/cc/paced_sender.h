// Segment release pacing (ISSUE 10): instead of bursting every segment
// the window allows in one simulator timestamp, a paced connection
// releases them on a token-time schedule at the controller's pacing
// rate. PacedSender is pure policy — it computes *when* the next segment
// may go; the owning TcpConnection schedules the actual release through
// the Simulator event queue ("tcp-pace" events), keeping this class
// trivially unit-testable and the determinism contract intact.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace mip::transport::cc {

class PacedSender {
public:
    /// How far the release schedule may lag behind `now` before the debt
    /// is forgiven — permits a small catch-up burst after an idle period
    /// instead of an artificial post-idle rate spike.
    static constexpr sim::Duration kMaxBurstDebt = sim::milliseconds(5);

    void set_rate(double bps) noexcept { rate_bps_ = bps; }
    double rate() const noexcept { return rate_bps_; }
    bool enabled() const noexcept { return rate_bps_ > 0.0; }

    /// May a segment be released at @p now?
    bool can_send(sim::TimePoint now) const noexcept {
        return !enabled() || next_release_ <= now;
    }

    /// Earliest time the next segment may be released.
    sim::TimePoint next_release() const noexcept { return next_release_; }

    /// Accounts a released segment of @p bytes at @p now, advancing the
    /// schedule by its serialization time at the pacing rate.
    void on_sent(std::size_t bytes, sim::TimePoint now) noexcept {
        if (!enabled()) return;
        const sim::TimePoint base =
            next_release_ < now - kMaxBurstDebt ? now - kMaxBurstDebt : next_release_;
        const auto serialize_ns = static_cast<sim::Duration>(
            static_cast<double>(bytes) * 8.0 * 1e9 / rate_bps_);
        next_release_ = base + serialize_ns;
    }

    /// Forgives accumulated debt (e.g. after a handoff gap).
    void reset(sim::TimePoint now) noexcept { next_release_ = now; }

private:
    double rate_bps_ = 0.0;
    sim::TimePoint next_release_ = 0;
};

}  // namespace mip::transport::cc
