#include "transport/tcp_service.h"

#include "net/tcp_header.h"

namespace mip::transport {

TcpService::TcpService(stack::IpStack& ip, Config config) : ip_(ip), config_(std::move(config)) {
    ip_.register_protocol(net::IpProto::Tcp,
                          [this](const net::Packet& p, std::size_t) { on_packet(p); });
}

std::uint16_t TcpService::ephemeral_port() {
    // Linear probe: fine at simulation scale.
    for (;;) {
        const std::uint16_t port = next_ephemeral_++;
        if (next_ephemeral_ == 0) next_ephemeral_ = 40000;
        bool in_use = false;
        for (const auto& [ep, conn] : connections_) {
            if (ep.local_port == port) {
                in_use = true;
                break;
            }
        }
        if (!in_use) return port;
    }
}

TcpConnection& TcpService::connect(net::Ipv4Address remote, std::uint16_t remote_port,
                                   net::Ipv4Address bound_src) {
    TcpEndpoints ep;
    ep.remote_addr = remote;
    ep.remote_port = remote_port;
    ep.local_port = ephemeral_port();

    // The endpoint-identifier decision (paper §7): an explicit bind wins;
    // otherwise the policy layer / source selection chooses, and that
    // address is the connection's identity for its whole lifetime.
    if (!bound_src.is_unspecified()) {
        ep.local_addr = bound_src;
    } else {
        stack::FlowKey flow;
        flow.dst = remote;
        flow.proto = net::IpProto::Tcp;
        flow.src_port = ep.local_port;
        flow.dst_port = remote_port;
        ep.local_addr = ip_.select_source(flow);
    }

    auto conn = std::unique_ptr<TcpConnection>(
        new TcpConnection(*this, ep, config_, /*active=*/true));
    TcpConnection& ref = *conn;
    connections_[ep] = std::move(conn);
    ref.start_active_open();
    return ref;
}

void TcpService::listen(std::uint16_t port, AcceptCallback on_accept) {
    listeners_[port] = std::move(on_accept);
}

void TcpService::stop_listening(std::uint16_t port) {
    listeners_.erase(port);
}

void TcpService::reap() {
    std::erase_if(connections_, [](const auto& kv) { return !kv.second->alive(); });
}

void TcpService::set_observability(std::string node, obs::MetricsRegistry* metrics,
                                   obs::DecisionLog* decisions) {
    obs_node_ = std::move(node);
    metrics_ = metrics;
    decisions_ = decisions;
    if (metrics_ == nullptr) return;
    // Create the audited counters eagerly so monitors can watch them from
    // time zero, and publish the controller outputs as polled gauges.
    metrics_->counter(obs_node_, "transport", "give_ups");
    metrics_->register_gauge(obs_node_, "cc", "connections_alive", [this] {
        double n = 0;
        for (const auto& [ep, conn] : connections_) n += conn->alive() ? 1 : 0;
        return n;
    });
    metrics_->register_gauge(obs_node_, "cc", "cwnd_bytes", [this] {
        double total = 0;
        for (const auto& [ep, conn] : connections_) {
            if (!conn->alive()) continue;
            const std::size_t cwnd = conn->controller().state().cwnd_bytes;
            if (cwnd != std::numeric_limits<std::size_t>::max()) {
                total += static_cast<double>(cwnd);
            }
        }
        return total;
    });
    metrics_->register_gauge(obs_node_, "cc", "pacing_rate_bps", [this] {
        double total = 0;
        for (const auto& [ep, conn] : connections_) {
            if (conn->alive()) total += conn->controller().state().pacing_rate_bps;
        }
        return total;
    });
}

void TcpService::notify_route_change() {
    for (auto& [ep, conn] : connections_) {
        conn->notify_route_change();
    }
}

void TcpService::notify_retransmit(const TcpEndpoints& ep, bool inbound) {
    if (retransmit_observer_) {
        retransmit_observer_(ep, inbound);
    }
}

void TcpService::notify_progress(const TcpEndpoints& ep) {
    if (progress_observer_) {
        progress_observer_(ep);
    }
}

void TcpService::notify_give_up(const TcpEndpoints& ep, unsigned retries) {
    if (metrics_ != nullptr) {
        metrics_->counter(obs_node_, "transport", "give_ups").add();
    }
    if (decisions_ != nullptr) {
        obs::DecisionEvent ev;
        ev.when = ip_.simulator().now();
        ev.node = obs_node_;
        ev.correspondent = ep.remote().to_string();
        ev.trigger = "failure";
        ev.test = "cc-give-up";
        ev.input = "retries=" + std::to_string(retries);
        ev.passed = false;
        ev.detail = ep.to_string();
        decisions_->record(std::move(ev));
    }
}

void TcpService::notify_cc_transition(const TcpEndpoints& ep, const char* controller,
                                      const cc::Transition& t) {
    if (metrics_ != nullptr) {
        metrics_->counter(obs_node_, "cc", t.kind).add();
    }
    if (decisions_ != nullptr) {
        obs::DecisionEvent ev;
        ev.when = ip_.simulator().now();
        ev.node = obs_node_;
        ev.correspondent = ep.remote().to_string();
        ev.trigger = "cc";
        ev.test = std::string("cc-") + t.kind;
        ev.input = t.detail;
        ev.passed = true;
        ev.detail = controller;
        decisions_->record(std::move(ev));
    }
}

void TcpService::notify_rtt(const TcpEndpoints& ep, sim::Duration rtt, sim::Duration queue_delay) {
    if (rtt_observer_) {
        rtt_observer_(ep, rtt, queue_delay);
    }
    if (metrics_ != nullptr) {
        metrics_->histogram(obs_node_, "cc", "queue_delay_ms")
            .observe(sim::to_milliseconds(queue_delay));
    }
}

void TcpService::send_rst(const net::Packet& packet, const net::TcpHeader& seg) {
    net::TcpHeader rst;
    rst.src_port = seg.dst_port;
    rst.dst_port = seg.src_port;
    rst.seq = seg.ack_set() ? seg.ack : 0;
    rst.ack = seg.seq + 1;
    rst.flags = net::kTcpRst | net::kTcpAck;

    net::BufferWriter w(net::kTcpHeaderSize);
    rst.serialize(w, packet.header().dst, packet.header().src, {});
    net::Packet out = net::make_packet(packet.header().dst, packet.header().src,
                                       net::IpProto::Tcp, w.take());
    ip_.send(std::move(out));
}

void TcpService::on_packet(const net::Packet& packet) {
    net::TcpHeader seg;
    net::BufferReader r(packet.payload());
    try {
        seg = net::TcpHeader::parse(r, packet.header().src, packet.header().dst);
    } catch (const net::ParseError&) {
        return;
    }
    const auto payload = r.rest();

    TcpEndpoints ep;
    ep.local_addr = packet.header().dst;
    ep.local_port = seg.dst_port;
    ep.remote_addr = packet.header().src;
    ep.remote_port = seg.src_port;

    if (auto it = connections_.find(ep); it != connections_.end()) {
        it->second->on_segment(seg, payload, packet.journey());
        return;
    }

    // New connection? Only a bare SYN to a listening port qualifies.
    if (seg.syn() && !seg.ack_set()) {
        auto lit = listeners_.find(seg.dst_port);
        if (lit != listeners_.end()) {
            auto conn = std::unique_ptr<TcpConnection>(
                new TcpConnection(*this, ep, config_, /*active=*/false));
            TcpConnection& ref = *conn;
            ref.rcv_nxt_ = seg.seq + 1;
            connections_[ep] = std::move(conn);
            // Let the application install callbacks before any data flows.
            lit->second(ref);
            ref.send_segment(net::kTcpSyn | net::kTcpAck, ref.snd_una_, {}, false);
            ref.snd_nxt_ = ref.snd_una_ + 1;
            ref.arm_timer();
            return;
        }
    }
    if (!seg.rst()) {
        send_rst(packet, seg);
    }
}

}  // namespace mip::transport
