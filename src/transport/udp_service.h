// UDP sockets over an IpStack.
//
// Bind semantics follow the paper's §7.1.1: "mobile-aware applications
// indicate their preferences to the networking software by binding their
// sockets to specific addresses." A socket bound to a physical interface
// address sends with that exact source (Out-DT); an unbound socket (or one
// bound to the home address) lets the policy layer decide.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "stack/ip_stack.h"
#include "transport/cc/controller.h"
#include "transport/endpoint.h"

namespace mip::transport {

class UdpService;

/// Deprecated name for transport::Endpoint (pre-ISSUE-10). Will be
/// removed next release.
using UdpEndpoint = Endpoint;

class UdpSocket {
public:
    /// Unified receive contract (transport/endpoint.h): payload first,
    /// delivery metadata second. meta.peer is the sender, meta.local_addr
    /// the *destination address the datagram carried* (so services can see
    /// which of their addresses was used), meta.journey its trace journey.
    using Receiver = std::function<void(std::span<const std::uint8_t> data, const RxMeta& meta)>;

    ~UdpSocket();
    UdpSocket(const UdpSocket&) = delete;
    UdpSocket& operator=(const UdpSocket&) = delete;

    void set_receiver(Receiver r) { receiver_ = std::move(r); }

    /// Explicitly binds the source address for outgoing datagrams.
    void bind_address(net::Ipv4Address addr) { bound_addr_ = addr; }
    net::Ipv4Address bound_address() const noexcept { return bound_addr_; }

    /// @p retransmission implements the paper's §7.1.2 proposal that "all
    /// IP clients could indicate, for every IP packet they send ...
    /// whether the packet is an 'original' packet or a retransmission" —
    /// an application-level resend flagged here feeds the mobility
    /// policy's delivery-failure detection.
    void send_to(net::Ipv4Address dst, std::uint16_t dst_port,
                 std::vector<std::uint8_t> data, bool retransmission = false);

    /// Optional congestion-feedback tap (ISSUE 10): when set, every
    /// datagram this socket sends is reported to the controller as a sent
    /// sample. UDP has no acks, so this is send-side-only telemetry; the
    /// caller owns the controller's lifetime.
    void set_feedback(cc::CongestionController* cc) noexcept { feedback_ = cc; }

    std::uint16_t port() const noexcept { return port_; }

private:
    friend class UdpService;
    UdpSocket(UdpService& service, std::uint16_t port) : service_(service), port_(port) {}

    UdpService& service_;
    std::uint16_t port_;
    net::Ipv4Address bound_addr_;
    Receiver receiver_;
    cc::CongestionController* feedback_ = nullptr;
};

class UdpService {
public:
    explicit UdpService(stack::IpStack& ip);
    UdpService(const UdpService&) = delete;
    UdpService& operator=(const UdpService&) = delete;

    /// Opens a socket on @p port (0 = pick an ephemeral port). The returned
    /// socket is owned by the caller; destroying it closes the port.
    std::unique_ptr<UdpSocket> open(std::uint16_t port = 0);

    stack::IpStack& ip() noexcept { return ip_; }

private:
    friend class UdpSocket;
    void close(std::uint16_t port);
    void on_packet(const net::Packet& packet);

    stack::IpStack& ip_;
    std::map<std::uint16_t, UdpSocket*> sockets_;
    std::uint16_t next_ephemeral_ = 49152;
};

}  // namespace mip::transport
