// ICMP echo ("ping") client used by examples, tests, and the latency
// benchmarks: measures real simulated round-trip times through whatever
// delivery path the policy layer chooses.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "stack/ip_stack.h"

namespace mip::transport {

class Pinger {
public:
    /// Called with the round-trip time, or nullopt on timeout.
    using Callback = std::function<void(std::optional<sim::Duration> rtt)>;

    explicit Pinger(stack::IpStack& ip);

    /// Sends one echo request of @p payload_size bytes.
    /// @p src pins the source address (e.g. a mobile host pinging "as" its
    /// home address); unspecified uses normal source selection.
    void ping(net::Ipv4Address dst, Callback cb,
              sim::Duration timeout = sim::seconds(2), std::size_t payload_size = 56,
              net::Ipv4Address src = {});

    std::size_t sent() const noexcept { return sent_; }
    std::size_t received() const noexcept { return received_; }

private:
    struct Outstanding {
        sim::TimePoint sent_at;
        Callback callback;
        sim::EventId timeout_event;
    };

    void on_icmp(const net::IcmpMessage& msg, const net::Packet& packet);

    stack::IpStack& ip_;
    std::uint16_t ident_;
    std::uint16_t next_seq_ = 1;
    std::map<std::uint16_t, Outstanding> outstanding_;  ///< keyed by sequence
    std::size_t sent_ = 0;
    std::size_t received_ = 0;
};

}  // namespace mip::transport
