// ICMP echo ("ping") client used by examples, tests, and the latency
// benchmarks: measures real simulated round-trip times through whatever
// delivery path the policy layer chooses.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "stack/ip_stack.h"
#include "transport/cc/controller.h"
#include "transport/endpoint.h"

namespace mip::transport {

class Pinger {
public:
    /// Called with the round-trip time (nullopt on timeout) and the
    /// unified delivery metadata (transport/endpoint.h): meta.peer is the
    /// echo target (port 0), meta.local_addr/journey describe the reply
    /// datagram — both unset on timeout.
    using Callback = std::function<void(std::optional<sim::Duration> rtt, const RxMeta& meta)>;

    explicit Pinger(stack::IpStack& ip);

    /// Sends one echo request of @p payload_size bytes.
    /// @p src pins the source address (e.g. a mobile host pinging "as" its
    /// home address); unspecified uses normal source selection.
    void ping(net::Ipv4Address dst, Callback cb,
              sim::Duration timeout = sim::seconds(2), std::size_t payload_size = 56,
              net::Ipv4Address src = {});

    /// Optional congestion-feedback tap (ISSUE 10): when set, replies feed
    /// the controller RTT samples and timeouts feed it loss samples — an
    /// out-of-band probe stream for a controller whose connection idles.
    /// The caller owns the controller's lifetime.
    void set_feedback(cc::CongestionController* cc) noexcept { feedback_ = cc; }

    std::size_t sent() const noexcept { return sent_; }
    std::size_t received() const noexcept { return received_; }

private:
    struct Outstanding {
        sim::TimePoint sent_at;
        Callback callback;
        sim::EventId timeout_event;
        net::Ipv4Address dst;
        std::size_t payload_size = 0;
    };

    void on_icmp(const net::IcmpMessage& msg, const net::Packet& packet);

    stack::IpStack& ip_;
    std::uint16_t ident_;
    std::uint16_t next_seq_ = 1;
    std::map<std::uint16_t, Outstanding> outstanding_;  ///< keyed by sequence
    std::size_t sent_ = 0;
    std::size_t received_ = 0;
    cc::CongestionController* feedback_ = nullptr;
};

}  // namespace mip::transport
