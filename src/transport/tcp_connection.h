// A TCP-like reliable, connection-oriented transport.
//
// Deliberately simplified where the paper doesn't need fidelity (no
// window scaling, in-order-only reassembly) but faithful where it does:
//
//  * Connection endpoints are (address, port) pairs fixed at setup — so a
//    connection carried on a temporary care-of address breaks when the
//    host moves (Row D / Out-DT), while one carried on the home address
//    survives any number of moves.
//  * Lost segments are retransmitted on an RTO with exponential backoff,
//    and every retransmitted segment is flagged in its FlowKey — the
//    §7.1.2 "original packet or retransmission" signal the paper proposes
//    adding to the IP interface.
//  * Duplicate inbound segments are detected and surfaced, implementing
//    the paper's "repeated retransmissions *from* a particular address
//    suggest that acknowledgements are not getting through".
//
// Congestion control (ISSUE 10, DESIGN §14) is pluggable: every send,
// ack, loss and RTT sample is routed through a cc::CongestionController
// named by transport::Config, and the connection obeys its ControlState
// (cwnd gate, pacing rate, adaptive RTO). The default StaticController
// reproduces the pre-ISSUE-10 behaviour bit for bit.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/tcp_header.h"
#include "sim/simulator.h"
#include "stack/route_resolver.h"
#include "transport/cc/controller.h"
#include "transport/cc/paced_sender.h"
#include "transport/endpoint.h"

namespace mip::transport {

class TcpService;

struct TcpEndpoints {
    net::Ipv4Address local_addr;
    std::uint16_t local_port = 0;
    net::Ipv4Address remote_addr;
    std::uint16_t remote_port = 0;

    Endpoint local() const { return {local_addr, local_port}; }
    Endpoint remote() const { return {remote_addr, remote_port}; }

    auto operator<=>(const TcpEndpoints&) const = default;
    std::string to_string() const;
};

/// Transport configuration (ISSUE 10 API redesign): the canonical knobs
/// are the congestion-controller factory and the pacing toggle; mss and
/// initial_seq parameterize the wire format.
struct Config {
    std::size_t mss = 1000;  ///< app bytes per segment
    std::uint32_t initial_seq = 1000;

    /// Names the congestion controller for every connection this service
    /// creates. Null = StaticController(rto): the fixed-RTO, uncapped,
    /// unpaced pre-ISSUE-10 transport.
    cc::Factory controller;
    /// Route segment release through the PacedSender at the controller's
    /// pacing rate (no-op while the controller publishes rate <= 0, so it
    /// is safe to leave on with the static controller).
    bool paced = false;

    // ---- deprecated aliases (kept for one release) ------------------------
    // Migration: `rto` and `max_retries` were TcpConnection::Config's only
    // knobs. `rto` is now the *initial/static* RTO — the parameter of the
    // default StaticController and the seed for adaptive controllers,
    // which take over rto scheduling entirely. `max_retries` remains the
    // connection give-up threshold (controller-independent). New code
    // should set `controller`/`paced` and treat these two as the legacy
    // spelling; they will fold into the factory context next release.
    sim::Duration rto = sim::milliseconds(200);  ///< deprecated: initial RTO
    unsigned max_retries = 8;                    ///< deprecated: give up after this many RTOs
};
static_assert(sizeof(Config::rto) > 0,
              "transport::Config::rto / max_retries are deprecated aliases "
              "(see the migration note above): configure a controller "
              "factory + paced flag instead.");

/// Deprecated name for transport::Config (pre-ISSUE-10). Will be removed
/// next release.
using TcpConfig = Config;

enum class TcpState {
    SynSent,
    SynReceived,
    Established,
    FinWait,     ///< we sent FIN, awaiting its ack (and possibly peer FIN)
    CloseWait,   ///< peer sent FIN; we may still send, then close
    LastAck,     ///< peer closed first and we've now sent our FIN
    Closed,      ///< orderly shutdown complete
    Reset,       ///< peer sent RST
    Failed,      ///< retransmissions exhausted — the connection timed out
};

std::string to_string(TcpState s);

class TcpConnection {
public:
    /// Unified receive contract (transport/endpoint.h): payload first,
    /// delivery metadata second.
    using DataCallback = std::function<void(std::span<const std::uint8_t>, const RxMeta&)>;
    using StateCallback = std::function<void(TcpState)>;

    const TcpEndpoints& endpoints() const noexcept { return endpoints_; }
    TcpState state() const noexcept { return state_; }
    bool established() const noexcept { return state_ == TcpState::Established; }
    bool alive() const noexcept {
        return state_ != TcpState::Closed && state_ != TcpState::Reset &&
               state_ != TcpState::Failed;
    }

    void set_data_callback(DataCallback cb) { on_data_ = std::move(cb); }
    void set_state_callback(StateCallback cb) { on_state_ = std::move(cb); }

    /// Queues application data for reliable delivery.
    void send(std::span<const std::uint8_t> data);
    /// Vector overload: recycles the storage through the per-Simulator
    /// net::BufferPool after copying (ISSUE 10 satellite — send used to
    /// burn a fresh allocation per call).
    void send(std::vector<std::uint8_t> data);

    /// Initiates an orderly close once all queued data is acknowledged.
    void close();

    /// Drops the connection immediately with a RST to the peer.
    void abort();

    /// The congestion controller steering this connection.
    const cc::CongestionController& controller() const noexcept { return *cc_; }

    /// Signals that the path under this connection changed (handoff
    /// completed or connectivity was lost); forwards to the controller
    /// and forgives any pacing debt accumulated across the gap.
    void notify_route_change();

    struct Stats {
        std::size_t bytes_sent = 0;        ///< app bytes handed to send()
        std::size_t bytes_acked = 0;
        std::size_t bytes_received = 0;
        std::size_t segments_sent = 0;     ///< includes retransmissions
        std::size_t retransmissions = 0;
        std::size_t duplicate_segments_received = 0;
        std::size_t rtt_samples = 0;       ///< clean (Karn) samples taken
    };
    const Stats& stats() const noexcept { return stats_; }

private:
    friend class TcpService;

    TcpConnection(TcpService& service, TcpEndpoints endpoints, const Config& config,
                  bool active);

    void start_active_open();
    void on_segment(const net::TcpHeader& seg, std::span<const std::uint8_t> payload,
                    std::uint64_t journey);
    void send_segment(std::uint8_t flags, std::uint32_t seq,
                      std::span<const std::uint8_t> payload, bool retransmission);
    void send_ack();
    void pump();  ///< transmit whatever the window/pacer/state allows
    void arm_timer();
    void cancel_timer();
    void on_timeout();
    void arm_pace_timer();
    void cancel_pace_timer();
    void enter(TcpState next);
    /// Sequence number one past everything we have ever queued (incl. FIN).
    std::uint32_t snd_limit() const;
    bool pacing_active() const noexcept {
        return config_.paced && pacer_.enabled();
    }
    /// Feedback bookkeeping around a seq-consuming transmission.
    void record_sent(std::uint32_t end_seq, std::size_t payload_bytes, bool retransmission);
    void process_ack_feedback(std::uint32_t ack, std::uint32_t acked_data);
    /// Forwards queued controller transitions to the service's audit
    /// sinks and re-applies the pacing rate.
    void sync_controller_outputs();

    TcpService& service_;
    TcpEndpoints endpoints_;
    Config config_;
    TcpState state_;
    Stats stats_;

    std::unique_ptr<cc::CongestionController> cc_;
    cc::PacedSender pacer_;

    // Send side. sendbuf_ holds unacknowledged + unsent app bytes starting
    // at sequence snd_base_.
    std::deque<std::uint8_t> sendbuf_;
    std::uint32_t snd_base_ = 0;  ///< seq of sendbuf_[0]
    std::uint32_t snd_una_ = 0;
    std::uint32_t snd_nxt_ = 0;
    bool fin_queued_ = false;
    bool fin_sent_ = false;
    bool fin_received_ = false;

    /// Per-transmission bookkeeping for the controller's feedback stream
    /// (send timestamps, Karn exclusion, delivery-rate sampling). Pure
    /// memory: maintaining it never touches the event queue.
    struct SentRecord {
        std::uint32_t end_seq = 0;
        std::size_t bytes = 0;
        sim::TimePoint sent_at = 0;
        bool retransmitted = false;
        std::uint64_t delivered_at_send = 0;
    };
    std::deque<SentRecord> sent_records_;
    std::uint64_t delivered_bytes_ = 0;

    // Receive side.
    std::uint32_t rcv_nxt_ = 0;

    sim::EventId rto_timer_ = 0;
    bool timer_armed_ = false;
    unsigned backoff_ = 0;

    sim::EventId pace_timer_ = 0;
    bool pace_timer_armed_ = false;

    DataCallback on_data_;
    StateCallback on_state_;
    std::uint64_t rx_journey_ = 0;  ///< journey id of the segment being processed
};

}  // namespace mip::transport
