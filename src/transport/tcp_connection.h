// A TCP-like reliable, connection-oriented transport.
//
// Deliberately simplified where the paper doesn't need fidelity (no
// congestion control, no window management, in-order-only reassembly) but
// faithful where it does:
//
//  * Connection endpoints are (address, port) pairs fixed at setup — so a
//    connection carried on a temporary care-of address breaks when the
//    host moves (Row D / Out-DT), while one carried on the home address
//    survives any number of moves.
//  * Lost segments are retransmitted on an RTO with exponential backoff,
//    and every retransmitted segment is flagged in its FlowKey — the
//    §7.1.2 "original packet or retransmission" signal the paper proposes
//    adding to the IP interface.
//  * Duplicate inbound segments are detected and surfaced, implementing
//    the paper's "repeated retransmissions *from* a particular address
//    suggest that acknowledgements are not getting through".
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "net/tcp_header.h"
#include "sim/simulator.h"
#include "stack/route_resolver.h"

namespace mip::transport {

class TcpService;

struct TcpEndpoints {
    net::Ipv4Address local_addr;
    std::uint16_t local_port = 0;
    net::Ipv4Address remote_addr;
    std::uint16_t remote_port = 0;

    auto operator<=>(const TcpEndpoints&) const = default;
    std::string to_string() const;
};

struct TcpConfig {
    std::size_t mss = 1000;                       ///< app bytes per segment
    sim::Duration rto = sim::milliseconds(200);   ///< initial retransmission timeout
    unsigned max_retries = 8;                     ///< give up after this many RTOs
    std::uint32_t initial_seq = 1000;
};

enum class TcpState {
    SynSent,
    SynReceived,
    Established,
    FinWait,     ///< we sent FIN, awaiting its ack (and possibly peer FIN)
    CloseWait,   ///< peer sent FIN; we may still send, then close
    LastAck,     ///< peer closed first and we've now sent our FIN
    Closed,      ///< orderly shutdown complete
    Reset,       ///< peer sent RST
    Failed,      ///< retransmissions exhausted — the connection timed out
};

std::string to_string(TcpState s);

class TcpConnection {
public:
    using DataCallback = std::function<void(std::span<const std::uint8_t>)>;
    using StateCallback = std::function<void(TcpState)>;

    const TcpEndpoints& endpoints() const noexcept { return endpoints_; }
    TcpState state() const noexcept { return state_; }
    bool established() const noexcept { return state_ == TcpState::Established; }
    bool alive() const noexcept {
        return state_ != TcpState::Closed && state_ != TcpState::Reset &&
               state_ != TcpState::Failed;
    }

    void set_data_callback(DataCallback cb) { on_data_ = std::move(cb); }
    void set_state_callback(StateCallback cb) { on_state_ = std::move(cb); }

    /// Queues application data for reliable delivery.
    void send(std::vector<std::uint8_t> data);

    /// Initiates an orderly close once all queued data is acknowledged.
    void close();

    /// Drops the connection immediately with a RST to the peer.
    void abort();

    struct Stats {
        std::size_t bytes_sent = 0;        ///< app bytes handed to send()
        std::size_t bytes_acked = 0;
        std::size_t bytes_received = 0;
        std::size_t segments_sent = 0;     ///< includes retransmissions
        std::size_t retransmissions = 0;
        std::size_t duplicate_segments_received = 0;
    };
    const Stats& stats() const noexcept { return stats_; }

private:
    friend class TcpService;

    TcpConnection(TcpService& service, TcpEndpoints endpoints, TcpConfig config, bool active);

    void start_active_open();
    void on_segment(const net::TcpHeader& seg, std::span<const std::uint8_t> payload);
    void send_segment(std::uint8_t flags, std::uint32_t seq,
                      std::span<const std::uint8_t> payload, bool retransmission);
    void send_ack();
    void pump();  ///< transmit whatever the window/state allows
    void arm_timer();
    void cancel_timer();
    void on_timeout();
    void enter(TcpState next);
    /// Sequence number one past everything we have ever queued (incl. FIN).
    std::uint32_t snd_limit() const;

    TcpService& service_;
    TcpEndpoints endpoints_;
    TcpConfig config_;
    TcpState state_;
    Stats stats_;

    // Send side. sendbuf_ holds unacknowledged + unsent app bytes starting
    // at sequence snd_base_.
    std::deque<std::uint8_t> sendbuf_;
    std::uint32_t snd_base_ = 0;  ///< seq of sendbuf_[0]
    std::uint32_t snd_una_ = 0;
    std::uint32_t snd_nxt_ = 0;
    bool fin_queued_ = false;
    bool fin_sent_ = false;
    bool fin_received_ = false;

    // Receive side.
    std::uint32_t rcv_nxt_ = 0;

    sim::EventId rto_timer_ = 0;
    bool timer_armed_ = false;
    unsigned backoff_ = 0;

    DataCallback on_data_;
    StateCallback on_state_;
};

}  // namespace mip::transport
