// The one endpoint shape every transport receive callback speaks (ISSUE
// 10 satellite): TcpConnection, UdpSocket and Pinger used to hand their
// consumers three different argument lists; they now all deliver
// (payload-first, RxMeta-second) with the peer and the packet's journey
// id in the same place.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "net/ipv4_address.h"

namespace mip::transport {

/// An (address, port) pair. Port 0 means "not applicable" (e.g. ICMP).
struct Endpoint {
    net::Ipv4Address addr;
    std::uint16_t port = 0;

    auto operator<=>(const Endpoint&) const = default;
    std::string to_string() const {
        return addr.to_string() + ":" + std::to_string(port);
    }
};

/// Delivery metadata passed to every transport receive callback.
struct RxMeta {
    /// Who sent it (the remote endpoint as seen in the packet).
    Endpoint peer;
    /// The destination address the packet actually carried — which of this
    /// host's addresses was used (a mobile host owns several).
    net::Ipv4Address local_addr;
    /// Trace journey id of the delivering datagram (0 = untraced /
    /// unknown, e.g. a locally synthesized timeout).
    std::uint64_t journey = 0;
};

}  // namespace mip::transport
