#include "sim/trace.h"

#include <atomic>
#include <cmath>

#include "net/ipv4_address.h"
#include "sim/node.h"

namespace mip::sim {

namespace {

/// Recorder serial numbers for the NodeInternCache handshake. Process-wide
/// and monotonically increasing, so a cache slot written by one recorder
/// can never be mistaken as valid by another (including a recorder later
/// constructed at the same address). Does not affect artifact bytes —
/// only cache validity.
std::uint64_t next_recorder_serial() {
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

std::string ip(std::uint32_t host_order) {
    return net::Ipv4Address(host_order).to_string();
}

}  // namespace

const char* to_string(TraceKind kind) {
    switch (kind) {
        case TraceKind::FrameTx: return "FrameTx";
        case TraceKind::FrameRx: return "FrameRx";
        case TraceKind::FrameLost: return "FrameLost";
        case TraceKind::FrameTooBig: return "FrameTooBig";
        case TraceKind::FilterDrop: return "FilterDrop";
        case TraceKind::TtlExpired: return "TtlExpired";
        case TraceKind::NoRoute: return "NoRoute";
        case TraceKind::PacketSent: return "PacketSent";
        case TraceKind::PacketForwarded: return "PacketForwarded";
        case TraceKind::PacketDelivered: return "PacketDelivered";
        case TraceKind::Encapsulated: return "Encapsulated";
        case TraceKind::Decapsulated: return "Decapsulated";
    }
    return "?";
}

TraceRecorder::TraceRecorder(RecordArena* arena)
    : arena_(arena != nullptr ? arena : &owned_arena_),
      records_(*arena_),
      serial_(next_recorder_serial()) {}

void TraceRecorder::record(TraceKind kind, TimePoint when, std::uint32_t node_id,
                           const Link* link, std::uint32_t bytes, std::uint16_t ethertype,
                           std::uint64_t packet_id, const TraceDetail& detail) {
    // Aggregates stay exact whatever the sampling rate: they are what the
    // figure benches and metrics gauges read.
    ++counts_[static_cast<std::size_t>(kind)];
    if (kind == TraceKind::FrameTx) {
        total_tx_bytes_ += bytes;
        if (ethertype == 0x0800) {
            ++ip_hops_;
            ip_tx_bytes_ += bytes;
        }
    }
    if (!keeps(packet_id)) {
        ++sampled_out_;
        return;
    }
    TraceRecord rec;
    rec.when = when;
    rec.packet_id = packet_id;
    rec.link = link;
    rec.node = node_id;
    rec.bytes = bytes;
    rec.a = detail.a;
    rec.b = detail.b;
    rec.c = detail.c;
    rec.text = detail.text.empty() ? 0 : names_.intern(detail.text);
    rec.ethertype = ethertype;
    rec.kind = static_cast<std::uint8_t>(kind);
    rec.detail_kind = static_cast<std::uint8_t>(detail.kind);
    records_.push_back(rec);
}

std::uint32_t TraceRecorder::node_id(const Node& node) {
    NodeInternCache& cache = node.trace_cache();
    if (cache.owner != serial_) {
        cache.owner = serial_;
        cache.id = names_.intern(node.name());
    }
    return cache.id;
}

void TraceRecorder::set_sampling(double rate, std::uint64_t seed) {
    sample_rate_ = rate;
    sample_seed_ = seed;
    // keeps() compares the top 53 bits of the journey hash (uniform in
    // [0, 2^53)) against rate * 2^53; 53 bits because that is the double
    // mantissa, so every representable rate maps to a distinct threshold.
    const double clamped = rate < 0.0 ? 0.0 : (rate > 1.0 ? 1.0 : rate);
    sample_threshold_ = static_cast<std::uint64_t>(std::ldexp(clamped, 53));
}

const std::vector<TraceEvent>& TraceRecorder::events() const {
    for (; materialized_upto_ < records_.size(); ++materialized_upto_) {
        const TraceRecord& rec = records_[materialized_upto_];
        TraceEvent ev;
        ev.kind = static_cast<TraceKind>(rec.kind);
        ev.when = rec.when;
        ev.node = names_.text(rec.node);
        ev.link = rec.link;
        ev.bytes = rec.bytes;
        ev.ethertype = rec.ethertype;
        ev.packet_id = rec.packet_id;
        ev.detail = format_detail(rec);
        materialized_.push_back(std::move(ev));
    }
    return materialized_;
}

std::string TraceRecorder::format_detail(const TraceRecord& rec) const {
    // Renders exactly the strings the pre-refactor eager path built at the
    // call sites (tests/golden/ holds the byte-identity proof).
    switch (static_cast<TraceDetailKind>(rec.detail_kind)) {
        case TraceDetailKind::None:
            return {};
        case TraceDetailKind::Text:
            return names_.text(rec.text);
        case TraceDetailKind::PayloadExceedsMtu:
            return "payload " + std::to_string(rec.a) + " > mtu " + std::to_string(rec.b);
        case TraceDetailKind::ProtoSrcDst:
            return "proto " + std::to_string(rec.a) + " " + ip(rec.b) + " -> " +
                   ip(rec.c);
        case TraceDetailKind::Proto:
            return "proto " + std::to_string(rec.a);
        case TraceDetailKind::Dst:
            return "dst " + ip(rec.a);
        case TraceDetailKind::DstVia:
            return "dst " + ip(rec.a) + " via " + ip(rec.b);
        case TraceDetailKind::NoRouteSend:
            return "send: no route to " + ip(rec.a);
        case TraceDetailKind::NoRouteForward:
            return "forward: no route to " + ip(rec.a);
        case TraceDetailKind::InterfaceDown:
            return "transmit: interface down";
        case TraceDetailKind::ArpFailed:
            return "ARP resolution failed";
        case TraceDetailKind::DfExceedsMtu:
            return "DF set and packet exceeds MTU";
        case TraceDetailKind::FilterRule:
            return names_.text(rec.text) + " [src " + ip(rec.a) + " dst " + ip(rec.b) +
                   "]";
        case TraceDetailKind::EncapTo:
            return names_.text(rec.text) + " -> " + ip(rec.a);
        case TraceDetailKind::EncapRelayTo:
            return names_.text(rec.text) + " relay -> " + ip(rec.a);
        case TraceDetailKind::EncapReverseTo:
            return names_.text(rec.text) + " reverse -> " + ip(rec.a);
        case TraceDetailKind::DecapForVisitor:
            return names_.text(rec.text) + " for visitor " + ip(rec.a);
        case TraceDetailKind::DecapReverseTunnel:
            return names_.text(rec.text) + " reverse tunnel";
    }
    return {};
}

void TraceRecorder::clear() {
    records_.clear();
    materialized_.clear();
    materialized_upto_ = 0;
    sampled_out_ = 0;
    counts_.fill(0);
    total_tx_bytes_ = 0;
    ip_hops_ = 0;
    ip_tx_bytes_ = 0;
}

std::vector<std::string> TraceRecorder::ip_tx_nodes() const {
    std::vector<std::string> out;
    for (std::size_t i = 0; i < records_.size(); ++i) {
        const TraceRecord& rec = records_[i];
        if (static_cast<TraceKind>(rec.kind) == TraceKind::FrameTx &&
            rec.ethertype == 0x0800) {
            out.push_back(names_.text(rec.node));
        }
    }
    return out;
}

std::string TraceRecorder::ip_path_string() const {
    std::string out;
    for (const auto& node : ip_tx_nodes()) {
        if (!out.empty()) out += " -> ";
        out += node;
    }
    return out;
}

}  // namespace mip::sim
