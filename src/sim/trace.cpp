#include "sim/trace.h"

namespace mip::sim {

const char* to_string(TraceKind kind) {
    switch (kind) {
        case TraceKind::FrameTx: return "FrameTx";
        case TraceKind::FrameRx: return "FrameRx";
        case TraceKind::FrameLost: return "FrameLost";
        case TraceKind::FrameTooBig: return "FrameTooBig";
        case TraceKind::FilterDrop: return "FilterDrop";
        case TraceKind::TtlExpired: return "TtlExpired";
        case TraceKind::NoRoute: return "NoRoute";
        case TraceKind::PacketSent: return "PacketSent";
        case TraceKind::PacketForwarded: return "PacketForwarded";
        case TraceKind::PacketDelivered: return "PacketDelivered";
        case TraceKind::Encapsulated: return "Encapsulated";
        case TraceKind::Decapsulated: return "Decapsulated";
    }
    return "?";
}

TraceSink TraceRecorder::sink() {
    return [this](const TraceEvent& ev) { record(ev); };
}

void TraceRecorder::record(const TraceEvent& ev) {
    events_.push_back(ev);
    ++counts_[static_cast<std::size_t>(ev.kind)];
    if (ev.kind == TraceKind::FrameTx) {
        total_tx_bytes_ += ev.bytes;
        if (ev.ethertype == 0x0800) {
            ++ip_hops_;
            ip_tx_bytes_ += ev.bytes;
        }
    }
}

void TraceRecorder::clear() {
    events_.clear();
    counts_.fill(0);
    total_tx_bytes_ = 0;
    ip_hops_ = 0;
    ip_tx_bytes_ = 0;
}

std::vector<std::string> TraceRecorder::ip_tx_nodes() const {
    std::vector<std::string> out;
    for (const auto& ev : events_) {
        if (ev.kind == TraceKind::FrameTx && ev.ethertype == 0x0800) {
            out.push_back(ev.node);
        }
    }
    return out;
}

std::string TraceRecorder::ip_path_string() const {
    std::string out;
    for (const auto& node : ip_tx_nodes()) {
        if (!out.empty()) out += " -> ";
        out += node;
    }
    return out;
}

}  // namespace mip::sim
