#include "sim/trace.h"

#include <algorithm>

namespace mip::sim {

const char* to_string(TraceKind kind) {
    switch (kind) {
        case TraceKind::FrameTx: return "FrameTx";
        case TraceKind::FrameRx: return "FrameRx";
        case TraceKind::FrameLost: return "FrameLost";
        case TraceKind::FrameTooBig: return "FrameTooBig";
        case TraceKind::FilterDrop: return "FilterDrop";
        case TraceKind::TtlExpired: return "TtlExpired";
        case TraceKind::NoRoute: return "NoRoute";
        case TraceKind::PacketSent: return "PacketSent";
        case TraceKind::PacketForwarded: return "PacketForwarded";
        case TraceKind::PacketDelivered: return "PacketDelivered";
        case TraceKind::Encapsulated: return "Encapsulated";
        case TraceKind::Decapsulated: return "Decapsulated";
    }
    return "?";
}

TraceSink TraceRecorder::sink() {
    return [this](const TraceEvent& ev) { events_.push_back(ev); };
}

std::size_t TraceRecorder::count(TraceKind kind) const {
    return static_cast<std::size_t>(
        std::count_if(events_.begin(), events_.end(),
                      [kind](const TraceEvent& ev) { return ev.kind == kind; }));
}

std::size_t TraceRecorder::total_tx_bytes() const {
    std::size_t total = 0;
    for (const auto& ev : events_) {
        if (ev.kind == TraceKind::FrameTx) total += ev.bytes;
    }
    return total;
}

std::size_t TraceRecorder::ip_hops() const {
    std::size_t n = 0;
    for (const auto& ev : events_) {
        if (ev.kind == TraceKind::FrameTx && ev.ethertype == 0x0800) ++n;
    }
    return n;
}

std::size_t TraceRecorder::ip_tx_bytes() const {
    std::size_t total = 0;
    for (const auto& ev : events_) {
        if (ev.kind == TraceKind::FrameTx && ev.ethertype == 0x0800) total += ev.bytes;
    }
    return total;
}

std::vector<std::string> TraceRecorder::ip_tx_nodes() const {
    std::vector<std::string> out;
    for (const auto& ev : events_) {
        if (ev.kind == TraceKind::FrameTx && ev.ethertype == 0x0800) {
            out.push_back(ev.node);
        }
    }
    return out;
}

std::string TraceRecorder::ip_path_string() const {
    std::string out;
    for (const auto& node : ip_tx_nodes()) {
        if (!out.empty()) out += " -> ";
        out += node;
    }
    return out;
}

}  // namespace mip::sim
