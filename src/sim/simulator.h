// Single-threaded discrete-event simulator.
//
// Every link transmission, protocol timer and host action in this library
// is an event on one Simulator's queue. Events scheduled for the same
// instant fire in scheduling order (a monotonically increasing sequence
// number breaks ties), which makes whole-network runs bit-reproducible.
//
// The queue behind that contract is selectable at construction (see
// event_queue.h): the default is the indexed calendar queue, which keeps
// enqueue/dequeue ~O(1) when a city-scale scenario parks tens of
// thousands of host timers in flight; SchedulerKind::BinaryHeap is the
// seed std::priority_queue, kept for equivalence tests and before/after
// benchmarking. Both dispatch the identical event sequence.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "net/pool.h"
#include "sim/event_queue.h"
#include "sim/record_arena.h"
#include "sim/time.h"

namespace mip::sim {

class SimProfiler;

/// Which priority structure orders the event queue. The choice never
/// changes behaviour — (when, id) is a total order — only speed.
enum class SchedulerKind {
    BinaryHeap,  ///< seed scheduler: std::priority_queue, O(log n)
    Calendar,    ///< indexed calendar queue, amortized O(1) (default)
};

class Simulator {
public:
    explicit Simulator(SchedulerKind scheduler = SchedulerKind::Calendar)
        : kind_(scheduler) {}
    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    TimePoint now() const noexcept { return now_; }
    SchedulerKind scheduler() const noexcept { return kind_; }

    /// Schedules @p action to run at absolute time @p when (>= now).
    /// @p kind tags the event for the self-profiler ("frame-delivery",
    /// "tcp-rto", ...); it must be a string literal or otherwise outlive
    /// the event. Untagged events profile under "event".
    EventId schedule_at(TimePoint when, std::function<void()> action,
                        const char* kind = nullptr);

    /// Schedules @p action to run @p delay from now.
    EventId schedule_in(Duration delay, std::function<void()> action,
                        const char* kind = nullptr) {
        return schedule_at(now_ + delay, std::move(action), kind);
    }

    /// Cancels a pending event. Cancelling an already-fired or unknown id
    /// is a harmless no-op (timers race with the events that cancel them).
    /// Stale ids — cancelled after their event fired — are swept whenever
    /// the queue drains, so the set cannot grow without bound.
    void cancel(EventId id) {
        if (id == 0 || id >= next_id_) return;  // never scheduled
        cancelled_.insert(id);
    }

    /// Runs until the queue drains or @p max_events fire. Returns the
    /// number of events executed.
    std::size_t run(std::size_t max_events = kDefaultEventLimit);

    /// Runs events with timestamps <= @p until.
    std::size_t run_until(TimePoint until);

    /// Hands out the next packet-journey id (1, 2, 3, ...). Every IP stack
    /// in a simulation draws from this one counter, so ids are unique
    /// network-wide and — the scheduler being deterministic — reproducible
    /// run to run.
    std::uint64_t next_packet_id() noexcept { return next_packet_id_++; }

    /// Hands out the next NIC MAC id (1, 2, 3, ...). Scoped to this
    /// simulator — not process-global — so a World's MAC addresses depend
    /// only on its own construction order, never on how many other worlds
    /// this process (or a parallel sweep job on another thread) built
    /// first. That scoping is what makes sweep shards byte-identical to a
    /// serial run.
    std::uint32_t next_mac_id() noexcept { return next_mac_id_++; }

    /// Hands out the next ICMP echo identifier. Per-simulator for the same
    /// reproducibility reason as next_mac_id().
    std::uint16_t next_ping_ident() noexcept { return next_ping_ident_++; }

    /// The world's packet-payload recycler (see net::BufferPool): the link
    /// layer and the IP serialization path draw payload storage from here
    /// and return it after delivery. Single-threaded like the simulator.
    net::BufferPool& buffer_pool() noexcept { return buffer_pool_; }
    const net::BufferPool& buffer_pool() const noexcept { return buffer_pool_; }

    /// The world's observability-record arena (see sim::RecordArena): the
    /// trace recorder and decision log draw their chunk storage from here,
    /// so clearing a window recycles storage instead of freeing it.
    /// Single-threaded like the simulator and the buffer pool.
    RecordArena& record_arena() noexcept { return record_arena_; }
    const RecordArena& record_arena() const noexcept { return record_arena_; }

    std::size_t pending_events() const noexcept {
        return kind_ == SchedulerKind::Calendar ? calendar_.size() : heap_.size();
    }
    /// Cancellations not yet matched to their event (pending or stale).
    /// Observability hook for the leak regression tests.
    std::size_t cancelled_backlog() const noexcept { return cancelled_.size(); }

    /// Cumulative count of events dispatched over the simulator's lifetime
    /// (bench_perf's events/sec numerator; monotone, never reset).
    std::uint64_t events_fired() const noexcept { return events_fired_; }

    /// Attaches (or, with nullptr, detaches) a self-profiler. Off by
    /// default; when detached the per-event cost is one pointer compare.
    /// The profiler must outlive its attachment.
    void set_profiler(SimProfiler* profiler) noexcept { profiler_ = profiler; }
    SimProfiler* profiler() const noexcept { return profiler_; }

    static constexpr std::size_t kDefaultEventLimit = 10'000'000;

private:
    struct Later {
        bool operator()(const SchedEvent& a, const SchedEvent& b) const noexcept {
            return fires_before(b, a);
        }
    };

    /// Moves the earliest event with timestamp <= @p limit into @p out,
    /// whichever queue holds it. False when none qualifies.
    bool pop_next(TimePoint limit, SchedEvent& out);

    /// Fires the next non-cancelled event with timestamp <= @p limit.
    /// Returns false when none qualifies (cancelled events up to the limit
    /// are purged either way).
    bool fire_next(TimePoint limit);

    TimePoint now_ = 0;
    EventId next_id_ = 1;
    std::uint64_t next_packet_id_ = 1;
    std::uint32_t next_mac_id_ = 1;
    std::uint16_t next_ping_ident_ = 1;
    net::BufferPool buffer_pool_;
    RecordArena record_arena_;
    std::uint64_t events_fired_ = 0;
    SimProfiler* profiler_ = nullptr;
    SchedulerKind kind_;
    std::priority_queue<SchedEvent, std::vector<SchedEvent>, Later> heap_;
    CalendarQueue calendar_;
    std::unordered_set<EventId> cancelled_;
};

}  // namespace mip::sim
