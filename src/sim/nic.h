// A network interface card: the attachment point between a Node and a Link.
//
// Mobility in this simulator is literal: a mobile host detaches its NIC
// from one segment and attaches it to another, then re-runs address
// configuration — just as a laptop unplugs from one Ethernet and plugs
// into another.
#pragma once

#include <functional>
#include <string>

#include "sim/frame.h"
#include "sim/mac_address.h"

namespace mip::sim {

class Link;
class Node;

class Nic {
public:
    Nic(Node& owner, MacAddress mac, std::string name);
    Nic(const Nic&) = delete;
    Nic& operator=(const Nic&) = delete;
    ~Nic();

    /// Handler invoked (at simulated delivery time) for each frame this NIC
    /// accepts. Installed by the IP stack.
    using FrameHandler = std::function<void(const Frame&)>;
    void set_handler(FrameHandler handler) { handler_ = std::move(handler); }

    void connect(Link& link);
    void disconnect();
    bool connected() const noexcept { return link_ != nullptr; }
    Link* link() const noexcept { return link_; }

    /// Transmits a frame (no-op with a trace drop if disconnected).
    void send(Frame frame);

    /// Called by Link at delivery time.
    void deliver(const Frame& frame);

    MacAddress mac() const noexcept { return mac_; }
    Node& owner() const noexcept { return owner_; }
    const std::string& name() const noexcept { return name_; }

    /// Promiscuous NICs accept unicast frames for other MACs too (routers
    /// do not need this; it exists for debugging and packet capture).
    void set_promiscuous(bool on) noexcept { promiscuous_ = on; }
    bool promiscuous() const noexcept { return promiscuous_; }

    /// Installs a raw-frame observer (see obs::PcapWriter): fires for every
    /// frame this NIC transmits onto a connected link and every frame it
    /// accepts — the view tcpdump would give on this interface. One tap per
    /// NIC; the tap's owner must outlive the NIC's traffic.
    void set_tap(FrameTap tap) { tap_ = std::move(tap); }

private:
    friend class Link;  // clears link_ when the segment is destroyed first

    Node& owner_;
    MacAddress mac_;
    std::string name_;
    Link* link_ = nullptr;
    FrameHandler handler_;
    FrameTap tap_;
    bool promiscuous_ = false;
};

}  // namespace mip::sim
