// Base class for everything that sits on the network: hosts, routers,
// agents. Owns its NICs (stable addresses — NICs are referenced by Links).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/nic.h"
#include "sim/simulator.h"

namespace mip::sim {

class Node {
public:
    Node(Simulator& simulator, std::string name);
    virtual ~Node() = default;
    Node(const Node&) = delete;
    Node& operator=(const Node&) = delete;

    const std::string& name() const noexcept { return name_; }
    Simulator& simulator() const noexcept { return simulator_; }

    /// Creates a NIC owned by this node. The returned reference stays valid
    /// for the node's lifetime.
    Nic& add_nic(std::string nic_name = {});

    std::size_t nic_count() const noexcept { return nics_.size(); }
    Nic& nic(std::size_t index) { return *nics_.at(index); }
    const Nic& nic(std::size_t index) const { return *nics_.at(index); }

private:
    Simulator& simulator_;
    std::string name_;
    std::vector<std::unique_ptr<Nic>> nics_;
};

}  // namespace mip::sim
