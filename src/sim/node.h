// Base class for everything that sits on the network: hosts, routers,
// agents. Owns its NICs (stable addresses — NICs are referenced by Links).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/nic.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace mip::sim {

class Node {
public:
    Node(Simulator& simulator, std::string name);
    virtual ~Node() = default;
    Node(const Node&) = delete;
    Node& operator=(const Node&) = delete;

    const std::string& name() const noexcept { return name_; }
    Simulator& simulator() const noexcept { return simulator_; }

    /// Creates a NIC owned by this node. The returned reference stays valid
    /// for the node's lifetime.
    Nic& add_nic(std::string nic_name = {});

    std::size_t nic_count() const noexcept { return nics_.size(); }
    Nic& nic(std::size_t index) { return *nics_.at(index); }
    const Nic& nic(std::size_t index) const { return *nics_.at(index); }

    /// Scratch slot used by TraceRecorder::node_id() to cache this node's
    /// interned-name id: a hot-path trace event resolves the node name
    /// with one u64 compare instead of a hash lookup. Owned logically by
    /// the tracing layer; mutable because tracing never changes the node.
    NodeInternCache& trace_cache() const noexcept { return trace_cache_; }

private:
    Simulator& simulator_;
    std::string name_;
    std::vector<std::unique_ptr<Nic>> nics_;
    mutable NodeInternCache trace_cache_;
};

}  // namespace mip::sim
