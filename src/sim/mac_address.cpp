#include "sim/mac_address.h"

#include <cstdio>

namespace mip::sim {

MacAddress MacAddress::from_id(std::uint32_t id) {
    // 0x02 prefix: locally administered, unicast.
    return MacAddress({0x02, 0x00, static_cast<std::uint8_t>(id >> 24),
                       static_cast<std::uint8_t>(id >> 16), static_cast<std::uint8_t>(id >> 8),
                       static_cast<std::uint8_t>(id)});
}

std::string MacAddress::to_string() const {
    char buf[18];
    std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", octets_[0], octets_[1],
                  octets_[2], octets_[3], octets_[4], octets_[5]);
    return buf;
}

}  // namespace mip::sim
