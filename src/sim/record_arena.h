// Per-simulator arena for observability records (ISSUE 7 tentpole).
//
// The BufferPool (net/pool.h) recycles packet payload storage; this is
// the same idea one layer up, for the fixed-size binary records the
// trace recorder and decision log append on the hot path. Records live
// in 64 KiB chunks drawn from the arena; clearing a log returns its
// chunks to the freelist, so the steady state of a bench loop (record a
// window, clear, record the next) allocates nothing after warm-up.
//
// One arena per Simulator, like the buffer pool: single-threaded by
// construction, nothing shared across parallel sweep jobs. A RecordLog
// may also be given no arena, in which case its owner provides one (see
// TraceRecorder's owned fallback) — either way the log must not outlive
// the arena it borrows.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <vector>

namespace mip::sim {

class RecordArena {
public:
    /// Chunk size in bytes. 64 KiB holds ~1100 trace records; small runs
    /// never need a second chunk, city-scale runs amortize the allocation
    /// over a thousand appends.
    static constexpr std::size_t kChunkBytes = 64 * 1024;
    /// Freelist bound, after which released chunks are simply freed.
    static constexpr std::size_t kMaxFreeChunks = 64;

    using Chunk = std::unique_ptr<std::byte[]>;

    /// A chunk from the freelist when one is available, else fresh.
    Chunk acquire() {
        ++stats_.acquires;
        if (!free_.empty()) {
            ++stats_.reuses;
            Chunk chunk = std::move(free_.back());
            free_.pop_back();
            return chunk;
        }
        ++stats_.allocations;
        return std::make_unique<std::byte[]>(kChunkBytes);
    }

    /// Retires a chunk; its storage feeds the next acquire().
    void release(Chunk chunk) {
        if (chunk == nullptr) return;
        ++stats_.releases;
        if (free_.size() >= kMaxFreeChunks) {
            ++stats_.discarded;
            return;
        }
        free_.push_back(std::move(chunk));
    }

    struct Stats {
        std::uint64_t acquires = 0;     ///< total acquire() calls
        std::uint64_t reuses = 0;       ///< acquires served from the freelist
        std::uint64_t allocations = 0;  ///< acquires that hit the heap
        std::uint64_t releases = 0;     ///< total release() calls
        std::uint64_t discarded = 0;    ///< releases dropped (freelist full)
    };
    const Stats& stats() const noexcept { return stats_; }
    std::size_t free_count() const noexcept { return free_.size(); }

private:
    std::vector<Chunk> free_;
    Stats stats_;
};

/// Append-only sequence of trivially-copyable records backed by arena
/// chunks. No per-record allocation, no reallocation-and-copy growth the
/// way std::vector grows; clear() hands every chunk back to the arena.
template <typename T>
class RecordLog {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "RecordLog records are raw POD stored in byte chunks");

public:
    static constexpr std::size_t kPerChunk = RecordArena::kChunkBytes / sizeof(T);

    explicit RecordLog(RecordArena& arena) : arena_(&arena) {}
    RecordLog(const RecordLog&) = delete;
    RecordLog& operator=(const RecordLog&) = delete;
    ~RecordLog() { clear(); }

    void push_back(const T& value) {
        if (size_ == chunks_.size() * kPerChunk) {
            chunks_.push_back(arena_->acquire());
        }
        ::new (chunks_[size_ / kPerChunk].get() + (size_ % kPerChunk) * sizeof(T))
            T(value);
        ++size_;
    }

    const T& operator[](std::size_t i) const {
        return *std::launder(reinterpret_cast<const T*>(
            chunks_[i / kPerChunk].get() + (i % kPerChunk) * sizeof(T)));
    }

    std::size_t size() const noexcept { return size_; }
    bool empty() const noexcept { return size_ == 0; }

    void clear() {
        for (auto& chunk : chunks_) {
            arena_->release(std::move(chunk));
        }
        chunks_.clear();
        size_ = 0;
    }

private:
    RecordArena* arena_;
    std::vector<RecordArena::Chunk> chunks_;
    std::size_t size_ = 0;
};

/// String interning table shared by the trace recorder and the decision
/// log: stores each distinct string once, hands out stable dense ids.
/// Id 0 is always the empty string, so zero-initialized records read
/// back as "".
class StringInterner {
public:
    StringInterner() { texts_.emplace_back(); }

    std::uint32_t intern(std::string_view text) {
        if (text.empty()) return 0;
        const auto it = ids_.find(text);
        if (it != ids_.end()) return it->second;
        const auto id = static_cast<std::uint32_t>(texts_.size());
        texts_.emplace_back(text);
        ids_.emplace(texts_.back(), id);
        return id;
    }

    const std::string& text(std::uint32_t id) const { return texts_.at(id); }
    std::size_t size() const noexcept { return texts_.size(); }

private:
    struct Hash {
        using is_transparent = void;
        std::size_t operator()(std::string_view s) const noexcept {
            return std::hash<std::string_view>{}(s);
        }
    };
    struct Eq {
        using is_transparent = void;
        bool operator()(std::string_view a, std::string_view b) const noexcept {
            return a == b;
        }
    };

    /// id -> text. The map stores its own key copies in node-stable
    /// storage, so vector growth moving the texts_ entries is harmless;
    /// the duplication is cheap because the interned set is tiny (node
    /// names, encapsulation-scheme names, filter-rule descriptions).
    std::vector<std::string> texts_;
    std::unordered_map<std::string, std::uint32_t, Hash, Eq> ids_;
};

}  // namespace mip::sim
