#include "sim/event_queue.h"

#include <algorithm>

namespace mip::sim {

namespace {
/// Bucket storage order: descending (when, id), so back() is earliest.
bool stored_before(const SchedEvent& a, const SchedEvent& b) noexcept {
    return fires_before(b, a);
}
}  // namespace

CalendarQueue::CalendarQueue() : buckets_(kMinBuckets) {}

void CalendarQueue::push(SchedEvent ev) {
    if (count_ == 0 || ev.when < cur_top_ - width_) {
        // First event, or one scheduled before the scan's current day
        // (possible during setup, when a near event follows a far one):
        // park the scan on it so nothing later is popped first.
        aim_at(ev.when);
    }
    std::vector<SchedEvent>& b = buckets_[bucket_of(ev.when)];
    b.insert(std::upper_bound(b.begin(), b.end(), ev, stored_before), std::move(ev));
    ++count_;
    if (count_ > buckets_.size() * 2 && buckets_.size() < kMaxBuckets) {
        rebuild(buckets_.size() * 2);
    }
}

bool CalendarQueue::pop_if(TimePoint limit, SchedEvent& out) {
    if (count_ == 0) return false;
    std::size_t scanned = 0;
    while (true) {
        std::vector<SchedEvent>& b = buckets_[cur_];
        // The year guard: only events inside the current one-day window
        // belong to this visit; a far-future event hashing into this
        // bucket waits for its own year.
        if (!b.empty() && b.back().when < cur_top_) {
            if (b.back().when > limit) return false;
            out = std::move(b.back());
            b.pop_back();
            --count_;
            if (count_ > 0 && count_ * 4 < buckets_.size() &&
                buckets_.size() > kMinBuckets) {
                rebuild(buckets_.size() / 2);
            }
            return true;
        }
        ++scanned;
        cur_ = (cur_ + 1) & mask_;
        cur_top_ += width_;
        if (scanned >= buckets_.size()) {
            // A whole year scanned dry: the next event is over a year
            // away. Find it directly (each bucket's back() is its
            // earliest, so the minimum over backs is the global one)
            // and jump the scan straight to its day.
            const SchedEvent* min = nullptr;
            for (const std::vector<SchedEvent>& bucket : buckets_) {
                if (!bucket.empty() &&
                    (min == nullptr || fires_before(bucket.back(), *min))) {
                    min = &bucket.back();
                }
            }
            aim_at(min->when);
            scanned = 0;
        }
    }
}

void CalendarQueue::rebuild(std::size_t nbuckets) {
    std::vector<SchedEvent> all;
    all.reserve(count_);
    TimePoint min_when = 0, max_when = 0;
    bool first = true;
    for (std::vector<SchedEvent>& b : buckets_) {
        for (SchedEvent& ev : b) {
            if (first || ev.when < min_when) min_when = ev.when;
            if (first || ev.when > max_when) max_when = ev.when;
            first = false;
            all.push_back(std::move(ev));
        }
    }
    buckets_.assign(nbuckets, {});
    mask_ = nbuckets - 1;
    // Width ~ the average gap between consecutive pending events keeps
    // roughly one event per bucket-day. A bad estimate costs speed, not
    // correctness: ordering never depends on the width.
    width_ = std::max<Duration>(
        1, (max_when - min_when) / static_cast<Duration>(count_) + 1);
    for (SchedEvent& ev : all) {
        std::vector<SchedEvent>& b = buckets_[bucket_of(ev.when)];
        b.insert(std::upper_bound(b.begin(), b.end(), ev, stored_before),
                 std::move(ev));
    }
    aim_at(min_when);
}

}  // namespace mip::sim
