#include "sim/simulator.h"

#include <chrono>
#include <limits>
#include <stdexcept>

#include "sim/profiler.h"

namespace mip::sim {

EventId Simulator::schedule_at(TimePoint when, std::function<void()> action,
                               const char* kind) {
    if (when < now_) {
        throw std::logic_error("Simulator::schedule_at in the past");
    }
    const EventId id = next_id_++;
    if (kind_ == SchedulerKind::Calendar) {
        calendar_.push(SchedEvent{when, id, std::move(action), kind});
    } else {
        heap_.push(SchedEvent{when, id, std::move(action), kind});
    }
    return id;
}

bool Simulator::pop_next(TimePoint limit, SchedEvent& out) {
    if (kind_ == SchedulerKind::Calendar) {
        return calendar_.pop_if(limit, out);
    }
    if (heap_.empty() || heap_.top().when > limit) return false;
    out = heap_.top();
    heap_.pop();
    return true;
}

bool Simulator::fire_next(TimePoint limit) {
    SchedEvent ev;
    while (pop_next(limit, ev)) {
        if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
            cancelled_.erase(it);
            continue;
        }
        now_ = ev.when;
        ++events_fired_;
        if (profiler_ != nullptr) {
            // Attach-time guard: the disabled path above pays only the
            // nullptr compare. Queue/cancelled sizes are read after the
            // handler so the gauges see what the handler scheduled.
            const auto t0 = std::chrono::steady_clock::now();
            ev.action();
            const auto t1 = std::chrono::steady_clock::now();
            profiler_->record(
                ev.kind,
                static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()),
                pending_events(), cancelled_.size());
        } else {
            ev.action();
        }
        return true;
    }
    // Queue drained: every surviving cancellation is stale (its event
    // already fired before cancel() was called) and can never match again.
    if (pending_events() == 0) cancelled_.clear();
    return false;
}

std::size_t Simulator::run(std::size_t max_events) {
    std::size_t fired = 0;
    while (fired < max_events && fire_next(std::numeric_limits<TimePoint>::max())) {
        ++fired;
    }
    return fired;
}

std::size_t Simulator::run_until(TimePoint until) {
    std::size_t fired = 0;
    while (fire_next(until)) {
        ++fired;
    }
    if (now_ < until) now_ = until;
    return fired;
}

}  // namespace mip::sim
