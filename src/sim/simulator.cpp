#include "sim/simulator.h"

#include <limits>
#include <stdexcept>

namespace mip::sim {

EventId Simulator::schedule_at(TimePoint when, std::function<void()> action) {
    if (when < now_) {
        throw std::logic_error("Simulator::schedule_at in the past");
    }
    const EventId id = next_id_++;
    queue_.push(Event{when, id, std::move(action)});
    return id;
}

bool Simulator::fire_next(TimePoint limit) {
    while (!queue_.empty() && queue_.top().when <= limit) {
        Event ev = queue_.top();
        queue_.pop();
        if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
            cancelled_.erase(it);
            continue;
        }
        now_ = ev.when;
        ev.action();
        return true;
    }
    // Queue drained: every surviving cancellation is stale (its event
    // already fired before cancel() was called) and can never match again.
    if (queue_.empty()) cancelled_.clear();
    return false;
}

std::size_t Simulator::run(std::size_t max_events) {
    std::size_t fired = 0;
    while (fired < max_events && fire_next(std::numeric_limits<TimePoint>::max())) {
        ++fired;
    }
    return fired;
}

std::size_t Simulator::run_until(TimePoint until) {
    std::size_t fired = 0;
    while (fire_next(until)) {
        ++fired;
    }
    if (now_ < until) now_ = until;
    return fired;
}

}  // namespace mip::sim
