// Simulator self-profiler (ISSUE: time-resolved observability, part c).
//
// The ROADMAP's north star is a simulator that runs as fast as the
// hardware allows — which requires measuring the simulator *itself*, not
// just the network it simulates. A SimProfiler, when attached via
// Simulator::set_profiler(), records for every dispatched event:
//
//   * per-event-kind dispatch counts and wall-clock time (events are
//     tagged at their schedule site: "frame-delivery", "tcp-rto",
//     "handoff-sample", ...; untagged events fall under "event")
//   * high-water marks for the event-queue depth and the cancelled-set
//     size (the two structures whose growth governs memory and the
//     O(log n) push/pop cost)
//
// Cost model: when no profiler is attached (the default) the simulator
// pays a single pointer comparison per event — the guard is at attach
// time, and bench_perf verifies the disabled overhead is unmeasurable.
// When attached, each dispatch adds two steady_clock reads and one map
// lookup; that is the price of the data.
//
// Wall-clock readings are inherently non-deterministic; everything else
// in this library is bit-reproducible, so profiler output is kept out of
// the deterministic trace/metrics paths and exported separately
// (obs::publish_profiler bridges it into a MetricsRegistry on demand).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "sim/time.h"

namespace mip::sim {

/// Aggregate for one event kind.
struct EventKindProfile {
    std::uint64_t dispatches = 0;
    std::uint64_t wall_ns = 0;      ///< total wall-clock time in the handlers
    std::uint64_t max_wall_ns = 0;  ///< slowest single dispatch

    double mean_wall_ns() const noexcept {
        return dispatches == 0 ? 0.0
                               : static_cast<double>(wall_ns) / static_cast<double>(dispatches);
    }
};

class SimProfiler {
public:
    /// Called by the Simulator after each dispatch (only when attached).
    void record(const char* kind, std::uint64_t wall_ns, std::size_t queue_depth,
                std::size_t cancelled_size);

    const std::map<std::string, EventKindProfile>& by_kind() const noexcept {
        return by_kind_;
    }

    std::uint64_t total_dispatches() const noexcept { return total_dispatches_; }
    std::uint64_t total_wall_ns() const noexcept { return total_wall_ns_; }
    std::size_t max_queue_depth() const noexcept { return max_queue_depth_; }
    std::size_t max_cancelled_size() const noexcept { return max_cancelled_size_; }

    /// Dispatches per wall-clock second over everything recorded so far.
    double events_per_second() const noexcept;

    /// Multi-line human-readable table, kinds sorted by total wall time.
    std::string summary() const;

    void reset();

private:
    std::map<std::string, EventKindProfile> by_kind_;
    std::uint64_t total_dispatches_ = 0;
    std::uint64_t total_wall_ns_ = 0;
    std::size_t max_queue_depth_ = 0;
    std::size_t max_cancelled_size_ = 0;
};

}  // namespace mip::sim
