// Packet tracing: every frame transmission, delivery and drop — and every
// IP-layer milestone (send, forward, deliver, encapsulate, decapsulate,
// filter) — is reported to an optional TraceRecorder. The benchmark
// harnesses use traces to count hops and bytes; tests and
// obs::JourneyIndex use them to follow individual packets through the
// network.
//
// Hot-path contract (ISSUE 7): producers hold a raw TraceRecorder* —
// detached (the default outside a World) an event costs one pointer
// compare, exactly like the simulator's profiler and the link fault
// hooks. Attached, an event is one fixed-size binary TraceRecord
// appended into an arena chunk: no strings are built, no JSON is shaped,
// no per-event allocation happens. All formatting is deferred to
// events(), which materializes classic TraceEvents on demand at export
// time and is byte-identical to what the old eager path produced.
//
// The full event schema, including the per-kind meaning of every field
// and the binary record layout, is documented in docs/TRACE_FORMAT.md
// (§1 event schema, §9 binary record).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/record_arena.h"
#include "sim/time.h"

namespace mip::sim {

class Link;
class Node;

enum class TraceKind {
    // ---- link layer (emitted by Link) ------------------------------------
    FrameTx,      ///< a NIC put a frame on a link
    FrameRx,      ///< a NIC accepted a frame
    FrameLost,    ///< link-level loss (random loss model)
    FrameTooBig,  ///< frame exceeded the link MTU and was dropped
    // ---- IP layer drops (emitted by IpStack) -----------------------------
    FilterDrop,   ///< a router's policy filter discarded a packet
    TtlExpired,   ///< a router dropped a packet with exhausted TTL
    NoRoute,      ///< no forwarding entry for destination
    // ---- IP layer milestones (emitted by IpStack and the tunnel layer) ---
    PacketSent,       ///< origin stack assigned a fresh journey id and sent
    PacketForwarded,  ///< a router forwarded the packet at the IP layer
    PacketDelivered,  ///< local delivery to a protocol handler (post-reassembly)
    Encapsulated,     ///< a tunnel entry wrapped the packet in an outer datagram
    Decapsulated,     ///< a tunnel exit recovered the inner datagram
};

/// Number of TraceKind enumerators — sizes the per-kind counter array.
inline constexpr std::size_t kTraceKindCount =
    static_cast<std::size_t>(TraceKind::Decapsulated) + 1;

const char* to_string(TraceKind kind);

/// How a record's detail field renders at export time. Producers pick the
/// shape and pass raw arguments (addresses as host-order u32, sizes,
/// interned text); TraceRecorder::events() formats the exact strings the
/// eager path used to build inline. docs/TRACE_FORMAT.md §9 is normative.
enum class TraceDetailKind : std::uint8_t {
    None,                ///< ""
    Text,                ///< interned text, verbatim
    PayloadExceedsMtu,   ///< "payload <a> > mtu <b>"
    ProtoSrcDst,         ///< "proto <a> <ip:b> -> <ip:c>"
    Proto,               ///< "proto <a>"
    Dst,                 ///< "dst <ip:a>"
    DstVia,              ///< "dst <ip:a> via <ip:b>"
    NoRouteSend,         ///< "send: no route to <ip:a>"
    NoRouteForward,      ///< "forward: no route to <ip:a>"
    InterfaceDown,       ///< "transmit: interface down"
    ArpFailed,           ///< "ARP resolution failed"
    DfExceedsMtu,        ///< "DF set and packet exceeds MTU"
    FilterRule,          ///< "<text> [src <ip:a> dst <ip:b>]"
    EncapTo,             ///< "<text> -> <ip:a>"
    EncapRelayTo,        ///< "<text> relay -> <ip:a>"
    EncapReverseTo,      ///< "<text> reverse -> <ip:a>"
    DecapForVisitor,     ///< "<text> for visitor <ip:a>"
    DecapReverseTunnel,  ///< "<text> reverse tunnel"
};

/// Deferred detail argument pack. Building one is allocation-free — the
/// text member is a view interned by the recorder only when an attached
/// recorder actually retains the record.
struct TraceDetail {
    TraceDetailKind kind = TraceDetailKind::None;
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    std::uint32_t c = 0;
    std::string_view text{};

    static TraceDetail none() { return {}; }
    static TraceDetail txt(std::string_view t) {
        return {TraceDetailKind::Text, 0, 0, 0, t};
    }
    static TraceDetail args(TraceDetailKind kind, std::uint32_t a, std::uint32_t b = 0,
                            std::uint32_t c = 0) {
        return {kind, a, b, c, {}};
    }
    static TraceDetail with_text(TraceDetailKind kind, std::string_view t,
                                 std::uint32_t a = 0, std::uint32_t b = 0) {
        return {kind, a, b, 0, t};
    }
};

/// The compact binary record (docs/TRACE_FORMAT.md §9): 56 bytes, POD,
/// written once into an arena chunk and never touched again until export.
struct TraceRecord {
    TimePoint when = 0;
    std::uint64_t packet_id = 0;
    const Link* link = nullptr;
    std::uint32_t node = 0;   ///< interned node name (0 = "")
    std::uint32_t bytes = 0;
    std::uint32_t a = 0;      ///< detail args, meaning per TraceDetailKind
    std::uint32_t b = 0;
    std::uint32_t c = 0;
    std::uint32_t text = 0;   ///< interned detail text (0 = none)
    std::uint16_t ethertype = 0;
    std::uint8_t kind = 0;         ///< TraceKind
    std::uint8_t detail_kind = 0;  ///< TraceDetailKind
};

/// The classic eagerly-formatted event, materialized on demand from
/// TraceRecords. Export-time only — nothing on the hot path builds one.
struct TraceEvent {
    TraceKind kind;
    TimePoint when = 0;
    std::string node;          ///< node name where the event occurred
    const Link* link = nullptr;
    std::size_t bytes = 0;     ///< frame wire size (frame events) or datagram size
    /// Raw ethertype of the frame (0 for non-frame events). Lets analyses
    /// separate IP traffic from ARP chatter.
    std::uint16_t ethertype = 0;
    /// Journey id of the datagram involved (0 = none/unknown, e.g. ARP
    /// frames). Groups every event one datagram generates anywhere in the
    /// network — across hops, fragmentation and encapsulation — into one
    /// obs::PacketJourney.
    std::uint64_t packet_id = 0;
    std::string detail;        ///< free-form context (e.g. filter rule hit)
};

/// Per-Node cache slot for the recorder's name interning: the owner field
/// carries the recorder's serial number, so a node's id is resolved with
/// one u64 compare per event instead of a hash lookup. See
/// TraceRecorder::node_id().
struct NodeInternCache {
    std::uint64_t owner = 0;
    std::uint32_t id = 0;
};

/// Collects trace records and answers the questions the benches ask
/// (hop counts, total bytes on the wire, drop counts by kind). For
/// per-packet questions, feed events() to an obs::JourneyIndex.
///
/// Ownership and lifetime contract: producers (Link, stack::IpStack) hold
/// a raw TraceRecorder*, so the recorder must outlive every producer it
/// is attached to — World satisfies this by declaring its TraceRecorder
/// before any node. To stop recording, attach nullptr on the producers
/// instead of destroying the recorder. A recorder given an external
/// RecordArena (the per-Simulator one) must not outlive that arena.
/// events() returns a reference that is invalidated by the next recorded
/// event or clear(); copy what you need before resuming the simulation.
///
/// Sampling (ISSUE 7): set_sampling(rate, seed) retains each journey's
/// records with probability ~rate, decided by hashing the journey id —
/// deterministic for a given (rate, seed) no matter the thread count or
/// recording order, and all-or-nothing per journey so retained journeys
/// are always complete. Events with packet_id 0 (ARP chatter) are always
/// retained. Rate 1.0 (the default) retains everything and is
/// byte-identical to the historical eager path. The aggregate counters
/// below are EXACT regardless of the sampling rate: sampling trades
/// journey coverage for speed, never metric accuracy.
class TraceRecorder {
public:
    explicit TraceRecorder(RecordArena* arena = nullptr);
    TraceRecorder(const TraceRecorder&) = delete;
    TraceRecorder& operator=(const TraceRecorder&) = delete;

    // ---- hot path ---------------------------------------------------------

    /// Appends one binary record. Aggregates update unconditionally; the
    /// record itself is retained only if the journey passes sampling.
    void record(TraceKind kind, TimePoint when, std::uint32_t node_id, const Link* link,
                std::uint32_t bytes, std::uint16_t ethertype, std::uint64_t packet_id,
                const TraceDetail& detail);

    /// Interned id for @p node's name, cached in the node (one u64
    /// compare on the hot path after the first event per node).
    std::uint32_t node_id(const Node& node);

    /// Interned id for an arbitrary string (rarely needed directly).
    std::uint32_t intern(std::string_view text) { return names_.intern(text); }

    // ---- sampling ---------------------------------------------------------

    /// Sets the journey sampling rate in [0,1] and the hash seed. Rate
    /// >= 1 keeps everything (and short-circuits the hash entirely).
    void set_sampling(double rate, std::uint64_t seed = 0);
    double sample_rate() const noexcept { return sample_rate_; }
    std::uint64_t sample_seed() const noexcept { return sample_seed_; }
    /// The retention decision for a journey id (exposed for the
    /// determinism property tests and the exporters' metadata).
    bool keeps(std::uint64_t packet_id) const noexcept {
        return packet_id == 0 || sample_rate_ >= 1.0 ||
               (splitmix64(packet_id ^ sample_seed_) >> 11) < sample_threshold_;
    }
    /// Records dropped by sampling since construction/clear().
    std::uint64_t records_sampled_out() const noexcept { return sampled_out_; }

    // ---- export-time access ----------------------------------------------

    /// The retained records, materialized as classic TraceEvents (strings
    /// formatted here, lazily, and cached until the next record/clear).
    const std::vector<TraceEvent>& events() const;
    /// Retained binary records without materialization.
    std::size_t record_count() const noexcept { return records_.size(); }
    const TraceRecord& record_at(std::size_t i) const { return records_[i]; }
    /// Formats one record's detail string (what events() fills in).
    std::string format_detail(const TraceRecord& record) const;
    const std::string& node_name(std::uint32_t id) const { return names_.text(id); }

    void clear();

    // The aggregate queries below are O(1): record() maintains running
    // totals as events arrive (and clear() resets them). They are polled
    // as gauges by every MetricsSampler tick, so a per-query scan of the
    // records would make sampling quadratic in run length. They count
    // every event offered, including ones sampling did not retain.
    std::size_t count(TraceKind kind) const noexcept {
        return counts_[static_cast<std::size_t>(kind)];
    }
    /// Sum of frame bytes over all FrameTx events — total load offered to
    /// the network ("load on the shared resources of the Internet", §3.2).
    std::size_t total_tx_bytes() const noexcept { return total_tx_bytes_; }

    /// FrameTx events carrying IPv4 (= link-level hops taken by IP packets,
    /// excluding ARP chatter).
    std::size_t ip_hops() const noexcept { return ip_hops_; }
    /// Total bytes of those IPv4 frames.
    std::size_t ip_tx_bytes() const noexcept { return ip_tx_bytes_; }

    /// The sequence of nodes that transmitted IPv4 frames, in time order —
    /// for a single request/response exchange this reads as the packet's
    /// path through the network (e.g. "ch0 -> corr-gw -> bb-r3 -> ...").
    /// Covers retained records only (sampling applies).
    std::vector<std::string> ip_tx_nodes() const;
    /// ip_tx_nodes() joined with " -> ".
    std::string ip_path_string() const;

    /// This recorder's arena (the injected one or the owned fallback) —
    /// bench_perf reports its reuse stats as hot-path evidence.
    const RecordArena& arena() const noexcept { return *arena_; }

    static std::uint64_t splitmix64(std::uint64_t x) noexcept {
        x += 0x9e3779b97f4a7c15ULL;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
        return x ^ (x >> 31);
    }

private:
    RecordArena owned_arena_;  ///< used when no arena is injected
    RecordArena* arena_;
    RecordLog<TraceRecord> records_;
    StringInterner names_;
    std::uint64_t serial_;  ///< distinguishes recorders for NodeInternCache

    double sample_rate_ = 1.0;
    std::uint64_t sample_seed_ = 0;
    /// keeps() compares the top 53 bits of the journey hash against this.
    std::uint64_t sample_threshold_ = 0;
    std::uint64_t sampled_out_ = 0;

    mutable std::vector<TraceEvent> materialized_;
    mutable std::size_t materialized_upto_ = 0;

    std::array<std::size_t, kTraceKindCount> counts_{};
    std::size_t total_tx_bytes_ = 0;
    std::size_t ip_hops_ = 0;
    std::size_t ip_tx_bytes_ = 0;
};

}  // namespace mip::sim
