// Packet tracing: every frame transmission, delivery and drop — and every
// IP-layer milestone (send, forward, deliver, encapsulate, decapsulate,
// filter) — is reported to an optional TraceSink. The benchmark harnesses
// use traces to count hops and bytes; tests and obs::JourneyIndex use them
// to follow individual packets through the network.
//
// The full event schema, including the per-kind meaning of every field,
// is documented in docs/TRACE_FORMAT.md.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.h"

namespace mip::sim {

class Link;

enum class TraceKind {
    // ---- link layer (emitted by Link) ------------------------------------
    FrameTx,      ///< a NIC put a frame on a link
    FrameRx,      ///< a NIC accepted a frame
    FrameLost,    ///< link-level loss (random loss model)
    FrameTooBig,  ///< frame exceeded the link MTU and was dropped
    // ---- IP layer drops (emitted by IpStack) -----------------------------
    FilterDrop,   ///< a router's policy filter discarded a packet
    TtlExpired,   ///< a router dropped a packet with exhausted TTL
    NoRoute,      ///< no forwarding entry for destination
    // ---- IP layer milestones (emitted by IpStack and the tunnel layer) ---
    PacketSent,       ///< origin stack assigned a fresh journey id and sent
    PacketForwarded,  ///< a router forwarded the packet at the IP layer
    PacketDelivered,  ///< local delivery to a protocol handler (post-reassembly)
    Encapsulated,     ///< a tunnel entry wrapped the packet in an outer datagram
    Decapsulated,     ///< a tunnel exit recovered the inner datagram
};

/// Number of TraceKind enumerators — sizes the per-kind counter array.
inline constexpr std::size_t kTraceKindCount =
    static_cast<std::size_t>(TraceKind::Decapsulated) + 1;

const char* to_string(TraceKind kind);

struct TraceEvent {
    TraceKind kind;
    TimePoint when = 0;
    std::string node;          ///< node name where the event occurred
    const Link* link = nullptr;
    std::size_t bytes = 0;     ///< frame wire size (frame events) or datagram size
    /// Raw ethertype of the frame (0 for non-frame events). Lets analyses
    /// separate IP traffic from ARP chatter.
    std::uint16_t ethertype = 0;
    /// Journey id of the datagram involved (0 = none/unknown, e.g. ARP
    /// frames). Groups every event one datagram generates anywhere in the
    /// network — across hops, fragmentation and encapsulation — into one
    /// obs::PacketJourney.
    std::uint64_t packet_id = 0;
    std::string detail;        ///< free-form context (e.g. filter rule hit)
};

using TraceSink = std::function<void(const TraceEvent&)>;

/// Collects trace events and answers the questions the benches ask
/// (hop counts, total bytes on the wire, drop counts by kind). For
/// per-packet questions, feed events() to an obs::JourneyIndex.
///
/// Ownership and lifetime contract: sink() returns a closure that captures
/// a raw `this`. The recorder therefore must outlive every Link and
/// IpStack holding one of its sinks — World satisfies this by declaring
/// its TraceRecorder before any node and handing sinks out only to objects
/// it owns. A recorder is not copyable or movable once sinks exist (the
/// closures would keep pointing at the old object); to stop recording,
/// install an empty TraceSink on the producers instead of destroying the
/// recorder. events() returns a reference that is invalidated by the next
/// recorded event or clear(); copy what you need before resuming the
/// simulation.
class TraceRecorder {
public:
    /// Returns a sink bound to this recorder; hand it to Links/Routers.
    /// See the class comment for the lifetime contract.
    TraceSink sink();

    const std::vector<TraceEvent>& events() const noexcept { return events_; }
    void clear();

    // The aggregate queries below are O(1): the sink maintains running
    // totals as events arrive (and clear() resets them). They are polled
    // as gauges by every MetricsSampler tick, so a per-query scan of the
    // event vector would make sampling quadratic in run length.
    std::size_t count(TraceKind kind) const noexcept {
        return counts_[static_cast<std::size_t>(kind)];
    }
    /// Sum of frame bytes over all FrameTx events — total load offered to
    /// the network ("load on the shared resources of the Internet", §3.2).
    std::size_t total_tx_bytes() const noexcept { return total_tx_bytes_; }

    /// FrameTx events carrying IPv4 (= link-level hops taken by IP packets,
    /// excluding ARP chatter).
    std::size_t ip_hops() const noexcept { return ip_hops_; }
    /// Total bytes of those IPv4 frames.
    std::size_t ip_tx_bytes() const noexcept { return ip_tx_bytes_; }

    /// The sequence of nodes that transmitted IPv4 frames, in time order —
    /// for a single request/response exchange this reads as the packet's
    /// path through the network (e.g. "ch0 -> corr-gw -> bb-r3 -> ...").
    std::vector<std::string> ip_tx_nodes() const;
    /// ip_tx_nodes() joined with " -> ".
    std::string ip_path_string() const;

private:
    void record(const TraceEvent& ev);

    std::vector<TraceEvent> events_;
    std::array<std::size_t, kTraceKindCount> counts_{};
    std::size_t total_tx_bytes_ = 0;
    std::size_t ip_hops_ = 0;
    std::size_t ip_tx_bytes_ = 0;
};

}  // namespace mip::sim
