// Packet tracing: every frame transmission, delivery and drop in the
// simulator is reported to an optional TraceSink. The benchmark harnesses
// use traces to count hops and bytes; tests use them to assert paths.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.h"

namespace mip::sim {

class Link;

enum class TraceKind {
    FrameTx,      ///< a NIC put a frame on a link
    FrameRx,      ///< a NIC accepted a frame
    FrameLost,    ///< link-level loss (random loss model)
    FrameTooBig,  ///< frame exceeded the link MTU and was dropped
    FilterDrop,   ///< a router's policy filter discarded a packet
    TtlExpired,   ///< a router dropped a packet with exhausted TTL
    NoRoute,      ///< no forwarding entry for destination
};

struct TraceEvent {
    TraceKind kind;
    TimePoint when = 0;
    std::string node;          ///< node name where the event occurred
    const Link* link = nullptr;
    std::size_t bytes = 0;     ///< frame wire size (Tx/Rx/loss events)
    /// Raw ethertype of the frame (0 for non-frame events). Lets analyses
    /// separate IP traffic from ARP chatter.
    std::uint16_t ethertype = 0;
    std::string detail;        ///< free-form context (e.g. filter rule hit)
};

using TraceSink = std::function<void(const TraceEvent&)>;

/// Collects trace events and answers the questions the benches ask
/// (hop counts, total bytes on the wire, drop counts by kind).
class TraceRecorder {
public:
    /// Returns a sink bound to this recorder; hand it to Links/Routers.
    TraceSink sink();

    const std::vector<TraceEvent>& events() const noexcept { return events_; }
    void clear() { events_.clear(); }

    std::size_t count(TraceKind kind) const;
    /// Sum of frame bytes over all FrameTx events — total load offered to
    /// the network ("load on the shared resources of the Internet", §3.2).
    std::size_t total_tx_bytes() const;

    /// FrameTx events carrying IPv4 (= link-level hops taken by IP packets,
    /// excluding ARP chatter).
    std::size_t ip_hops() const;
    /// Total bytes of those IPv4 frames.
    std::size_t ip_tx_bytes() const;

    /// The sequence of nodes that transmitted IPv4 frames, in time order —
    /// for a single request/response exchange this reads as the packet's
    /// path through the network (e.g. "ch0 -> corr-gw -> bb-r3 -> ...").
    std::vector<std::string> ip_tx_nodes() const;
    /// ip_tx_nodes() joined with " -> ".
    std::string ip_path_string() const;

private:
    std::vector<TraceEvent> events_;
};

}  // namespace mip::sim
