// A shared link-layer segment (Ethernet-like broadcast domain, or a
// two-endpoint point-to-point circuit — the same abstraction covers both).
//
// Transmission delay = propagation latency + size/bandwidth. Random frame
// loss uses a deterministic, per-link seeded PRNG so simulations are
// reproducible.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "sim/frame.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace mip::sim {

class Nic;

/// Verdict a LinkFault returns for one frame offered to the wire. The hook
/// may additionally have mutated the frame in place (bit corruption).
struct FaultVerdict {
    bool drop = false;                  ///< discard instead of delivering
    const char* drop_reason = nullptr;  ///< trace detail when dropped
    bool duplicate = false;             ///< deliver a second copy back-to-back
    Duration extra_delay = 0;           ///< added latency (jitter / reordering)
};

/// Fault-injection hook on a Link (implementations live in src/fault/).
/// Same contract as the simulator's profiler attachment: detached — the
/// default — the per-frame cost is one pointer compare; attached, the hook
/// sees every frame after the MTU check and capture tap, before the
/// config-level loss model. Implementations own their PRNGs, so an
/// unattached link's random-loss draw sequence is untouched and replay
/// stays bit-identical whether or not the fault library is even linked.
class LinkFault {
public:
    virtual ~LinkFault() = default;
    /// Called once per transmit; @p frame may be mutated (corruption).
    virtual FaultVerdict on_transmit(Frame& frame, TimePoint now) = 0;
};

struct LinkConfig {
    std::string name = "link";
    Duration latency = microseconds(100);
    double bandwidth_bps = 10e6;  ///< 10 Mb/s Ethernet by default
    std::size_t mtu = 1500;       ///< maximum frame *payload* (IP datagram) size
    double loss_rate = 0.0;       ///< independent per-frame loss probability
    std::uint64_t seed = 1;
};

class Link {
public:
    Link(Simulator& simulator, LinkConfig config);
    /// Unplugs every still-attached NIC so their back-pointers can't
    /// dangle if a segment is torn down before the hosts on it.
    ~Link();
    Link(const Link&) = delete;
    Link& operator=(const Link&) = delete;

    const std::string& name() const noexcept { return config_.name; }
    std::size_t mtu() const noexcept { return config_.mtu; }
    const LinkConfig& config() const noexcept { return config_; }

    /// Attaches (or, with nullptr, detaches) the trace recorder. Off by
    /// default; when detached the per-frame cost is one pointer compare,
    /// matching the fault-hook contract below. The recorder must outlive
    /// its attachment.
    void set_trace(TraceRecorder* trace) noexcept { trace_ = trace; }
    TraceRecorder* trace() const noexcept { return trace_; }

    /// Installs a raw-frame observer (see obs::PcapWriter). The tap sees
    /// every frame offered to the wire — including frames the loss model
    /// subsequently drops, exactly like a physical-layer capture. One tap
    /// per link; the tap's owner must outlive the link's traffic.
    void set_tap(FrameTap tap) { tap_ = std::move(tap); }

    /// Attaches (or, with nullptr, detaches) a fault-injection hook. Off by
    /// default; when detached the per-frame cost is one pointer compare.
    /// The hook must outlive its attachment.
    void set_fault(LinkFault* fault) noexcept { fault_ = fault; }
    LinkFault* fault() const noexcept { return fault_; }

    /// Registers/unregisters an endpoint. Nic::connect/disconnect call these.
    void attach(Nic& nic);
    void detach(Nic& nic);

    /// Puts @p frame on the wire. Unicast frames are delivered only to the
    /// NIC owning the destination MAC; broadcast frames reach every other
    /// attached NIC.
    void transmit(const Nic& sender, Frame frame);

    std::size_t attached_count() const noexcept { return nics_.size(); }

    /// True if both NICs are currently attached to this segment — the test
    /// behind the paper's Row C ("Both Hosts on Same Network Segment").
    bool connects(const Nic& a, const Nic& b) const;

private:
    Duration transmission_delay(std::size_t bytes) const;
    void emit(TraceKind kind, const Nic* at, const Frame& frame,
              const TraceDetail& detail = {}) const;

    Simulator& simulator_;
    LinkConfig config_;
    std::vector<Nic*> nics_;
    mutable std::mt19937_64 rng_;
    TraceRecorder* trace_ = nullptr;
    FrameTap tap_;
    LinkFault* fault_ = nullptr;
    /// The shared medium serializes transmissions: the time until which the
    /// wire is occupied. Keeps small frames from overtaking large ones.
    TimePoint busy_until_ = 0;
};

}  // namespace mip::sim
