// Link-layer (Ethernet-style) 48-bit addresses.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

namespace mip::sim {

class MacAddress {
public:
    constexpr MacAddress() = default;
    constexpr explicit MacAddress(std::array<std::uint8_t, 6> octets) : octets_(octets) {}

    /// Locally-administered address derived from a small integer id; the
    /// simulator hands these out sequentially.
    static MacAddress from_id(std::uint32_t id);

    static constexpr MacAddress broadcast() {
        return MacAddress({0xff, 0xff, 0xff, 0xff, 0xff, 0xff});
    }

    /// The Ethernet multicast MAC for an IPv4 group address (RFC 1112
    /// §6.4: 01:00:5e + low 23 bits of the group).
    static constexpr MacAddress multicast_for(std::uint32_t group_host_order) {
        return MacAddress({0x01, 0x00, 0x5e,
                           static_cast<std::uint8_t>((group_host_order >> 16) & 0x7f),
                           static_cast<std::uint8_t>((group_host_order >> 8) & 0xff),
                           static_cast<std::uint8_t>(group_host_order & 0xff)});
    }

    constexpr const std::array<std::uint8_t, 6>& octets() const noexcept { return octets_; }
    constexpr bool is_broadcast() const noexcept { return *this == broadcast(); }
    /// True for group-addressed MACs (I/G bit set), including broadcast.
    constexpr bool is_group() const noexcept { return (octets_[0] & 0x01) != 0; }

    std::string to_string() const;

    friend constexpr auto operator<=>(const MacAddress&, const MacAddress&) = default;

private:
    std::array<std::uint8_t, 6> octets_{};
};

}  // namespace mip::sim

template <>
struct std::hash<mip::sim::MacAddress> {
    std::size_t operator()(const mip::sim::MacAddress& m) const noexcept {
        std::size_t h = 0;
        for (auto b : m.octets()) h = h * 131 + b;
        return h;
    }
};
