// Simulated time. Integer nanoseconds keep event ordering deterministic
// across platforms (no floating-point accumulation).
#pragma once

#include <cstdint>

namespace mip::sim {

/// Nanoseconds since simulation start.
using TimePoint = std::int64_t;
/// Nanoseconds.
using Duration = std::int64_t;

constexpr Duration nanoseconds(std::int64_t n) { return n; }
constexpr Duration microseconds(std::int64_t n) { return n * 1'000; }
constexpr Duration milliseconds(std::int64_t n) { return n * 1'000'000; }
constexpr Duration seconds(std::int64_t n) { return n * 1'000'000'000; }

constexpr double to_seconds(Duration d) { return static_cast<double>(d) / 1e9; }
constexpr double to_milliseconds(Duration d) { return static_cast<double>(d) / 1e6; }

}  // namespace mip::sim
