// Event-queue structures behind sim::Simulator (ISSUE 6: the city-scale
// scenario forces an indexed calendar queue).
//
// The simulator's ordering contract is a *total* order — (when, id)
// ascending, ids unique — so any correct priority structure dispatches
// the exact same event sequence and every artifact stays byte-identical.
// That is what lets the queue implementation be swapped for speed:
//
//   BinaryHeap  the seed scheduler: std::priority_queue, O(log n) per
//               operation. Fine for hundreds of pending events, but a
//               city-scale run keeps tens of thousands of host timers
//               pending and the percolation (moving std::function
//               closures up and down the heap) starts to dominate.
//
//   Calendar    Brown's indexed calendar queue (CACM 1988): a hash of
//               time-ordered buckets, one "day" wide each, scanned like
//               a desk calendar. Enqueue hashes the timestamp to a
//               bucket (amortized O(1)); dequeue pops the current
//               bucket's earliest event or advances to the next day.
//               Bucket count and width resize from the live event
//               population, keeping ~O(1) events per bucket.
//
// CalendarQueue preserves the (when, id) total order exactly — each
// bucket is kept sorted, and the year guard (`when < cur_top_`) defers
// far-future events that hash into a near bucket — so BinaryHeap and
// Calendar runs are interchangeable bit for bit (asserted by
// tests/test_sim.cpp and the scheduler-equivalence suite).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.h"

namespace mip::sim {

/// Handle for cancelling a scheduled event.
using EventId = std::uint64_t;

/// One scheduled callback, as stored by whichever queue is active.
struct SchedEvent {
    TimePoint when = 0;
    EventId id = 0;
    std::function<void()> action;
    const char* kind = nullptr;  ///< profiler tag; nullptr = generic "event"
};

/// True when @p a must fire before @p b (the simulator's total order).
inline bool fires_before(const SchedEvent& a, const SchedEvent& b) noexcept {
    return a.when != b.when ? a.when < b.when : a.id < b.id;
}

/// Indexed calendar queue over SchedEvents. Not a template: the
/// simulator is its only client, and a concrete type keeps the hot
/// push/pop paths inlineable without header-spraying the bucket logic.
class CalendarQueue {
public:
    CalendarQueue();

    void push(SchedEvent ev);

    /// Moves the earliest event into @p out if its timestamp is <= @p
    /// limit; returns false (leaving the queue untouched) otherwise.
    bool pop_if(TimePoint limit, SchedEvent& out);

    std::size_t size() const noexcept { return count_; }
    bool empty() const noexcept { return count_ == 0; }

    /// Bucket count right now (resize observability for the tests).
    std::size_t buckets() const noexcept { return buckets_.size(); }
    Duration bucket_width() const noexcept { return width_; }

private:
    static constexpr std::size_t kMinBuckets = 16;
    static constexpr std::size_t kMaxBuckets = 1 << 20;

    std::size_t bucket_of(TimePoint when) const noexcept {
        return static_cast<std::size_t>(when / width_) & mask_;
    }

    /// Re-buckets every event into @p nbuckets buckets with a width set
    /// to the live population's average inter-event gap.
    void rebuild(std::size_t nbuckets);

    /// Points the scan at @p when's bucket and year.
    void aim_at(TimePoint when) noexcept {
        cur_ = bucket_of(when);
        cur_top_ = (when / width_ + 1) * width_;
    }

    // Each bucket is sorted DESCENDING by (when, id): back() is the
    // bucket's earliest event, so the common dequeue is a pop_back.
    std::vector<std::vector<SchedEvent>> buckets_;
    std::size_t mask_ = kMinBuckets - 1;
    Duration width_ = milliseconds(1);
    std::size_t count_ = 0;
    std::size_t cur_ = 0;        ///< bucket the scan is parked on
    TimePoint cur_top_ = 0;      ///< end of cur_'s active one-day window
};

}  // namespace mip::sim
