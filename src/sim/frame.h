// Ethernet-style link-layer frame.
#pragma once

#include <cstdint>
#include <vector>

#include "net/protocol.h"
#include "sim/mac_address.h"

namespace mip::sim {

/// 14-byte Ethernet header (dst MAC, src MAC, ethertype). The 4-byte FCS
/// and preamble are not modelled; the benches report IP-layer bytes plus
/// this constant header, which is sufficient for relative comparisons.
inline constexpr std::size_t kFrameHeaderSize = 14;

struct Frame {
    MacAddress dst;
    MacAddress src;
    net::EtherType type = net::EtherType::Ipv4;
    std::vector<std::uint8_t> payload;

    std::size_t wire_size() const noexcept { return kFrameHeaderSize + payload.size(); }
};

}  // namespace mip::sim
