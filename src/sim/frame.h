// Ethernet-style link-layer frame.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/protocol.h"
#include "sim/mac_address.h"

namespace mip::sim {

/// 14-byte Ethernet header (dst MAC, src MAC, ethertype). The 4-byte FCS
/// and preamble are not modelled; the benches report IP-layer bytes plus
/// this constant header, which is sufficient for relative comparisons.
inline constexpr std::size_t kFrameHeaderSize = 14;

struct Frame {
    MacAddress dst;
    MacAddress src;
    net::EtherType type = net::EtherType::Ipv4;
    std::vector<std::uint8_t> payload;

    /// Journey id of the IP datagram (or fragment) this frame carries;
    /// 0 for ARP and other non-IP frames. Simulation metadata riding next
    /// to the bytes — never serialized — so trace events on both ends of a
    /// link correlate to the same obs::PacketJourney.
    std::uint64_t journey = 0;

    std::size_t wire_size() const noexcept { return kFrameHeaderSize + payload.size(); }
};

/// Observer for raw frames at a capture point (obs::PcapWriter installs
/// these on Links and Nics). Called synchronously at the simulated time
/// the frame passes the tap.
using FrameTap = std::function<void(const Frame&)>;

}  // namespace mip::sim
