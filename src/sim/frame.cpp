#include "sim/frame.h"

// Frame is a plain aggregate; this translation unit exists so the target
// has a definition anchor for the header.
namespace mip::sim {}
