#include "sim/link.h"

#include <algorithm>

#include "sim/nic.h"
#include "sim/node.h"

namespace mip::sim {

Link::Link(Simulator& simulator, LinkConfig config)
    : simulator_(simulator), config_(std::move(config)), rng_(config_.seed) {}

Link::~Link() {
    for (Nic* nic : nics_) {
        nic->link_ = nullptr;
    }
}

void Link::attach(Nic& nic) {
    if (std::find(nics_.begin(), nics_.end(), &nic) == nics_.end()) {
        nics_.push_back(&nic);
    }
}

void Link::detach(Nic& nic) {
    std::erase(nics_, &nic);
}

bool Link::connects(const Nic& a, const Nic& b) const {
    const bool has_a = std::find(nics_.begin(), nics_.end(), &a) != nics_.end();
    const bool has_b = std::find(nics_.begin(), nics_.end(), &b) != nics_.end();
    return has_a && has_b;
}

Duration Link::transmission_delay(std::size_t bytes) const {
    const double seconds = static_cast<double>(bytes) * 8.0 / config_.bandwidth_bps;
    return static_cast<Duration>(seconds * 1e9);
}

void Link::emit(TraceKind kind, const Nic* at, const Frame& frame,
                std::string detail) const {
    if (!trace_) return;
    TraceEvent ev;
    ev.kind = kind;
    ev.when = simulator_.now();
    ev.node = at != nullptr ? at->owner().name() : std::string{};
    ev.link = this;
    ev.bytes = frame.wire_size();
    ev.ethertype = static_cast<std::uint16_t>(frame.type);
    ev.packet_id = frame.journey;
    ev.detail = std::move(detail);
    trace_(ev);
}

void Link::transmit(const Nic& sender, Frame frame) {
    if (frame.payload.size() > config_.mtu) {
        emit(TraceKind::FrameTooBig, &sender, frame,
             "payload " + std::to_string(frame.payload.size()) + " > mtu " +
                 std::to_string(config_.mtu));
        return;
    }
    emit(TraceKind::FrameTx, &sender, frame);
    if (tap_) {
        tap_(frame);
    }

    Duration fault_delay = 0;
    bool fault_duplicate = false;
    if (fault_ != nullptr) {
        const FaultVerdict verdict = fault_->on_transmit(frame, simulator_.now());
        if (verdict.drop) {
            emit(TraceKind::FrameLost, &sender, frame,
                 verdict.drop_reason != nullptr ? verdict.drop_reason : "fault");
            return;
        }
        fault_delay = verdict.extra_delay;
        fault_duplicate = verdict.duplicate;
    }

    if (config_.loss_rate > 0.0) {
        std::bernoulli_distribution lost(config_.loss_rate);
        if (lost(rng_)) {
            emit(TraceKind::FrameLost, &sender, frame);
            return;
        }
    }

    // One talker at a time on the shared medium: serialization starts when
    // the wire frees up, so frames never overtake each other.
    const TimePoint start = std::max(simulator_.now(), busy_until_);
    busy_until_ = start + transmission_delay(frame.wire_size());
    const Duration delay = (busy_until_ - simulator_.now()) + config_.latency + fault_delay;
    for (Nic* nic : nics_) {
        if (nic == &sender) continue;
        // Group-addressed frames (broadcast and multicast) reach every
        // station; the IP layer filters multicast by joined groups.
        const bool addressed_here = frame.dst.is_group() || frame.dst == nic->mac();
        if (!addressed_here && !nic->promiscuous()) continue;
        // Copy per receiver; delivery happens at simulated arrival time. A
        // NIC that detached (or moved to another segment) while the frame
        // was in flight must not receive it.
        simulator_.schedule_in(delay, [nic, frame, this] {
            if (nic->link() != this) return;
            emit(TraceKind::FrameRx, nic, frame);
            nic->deliver(frame);
        },
        "frame-delivery");
        if (fault_duplicate) {
            // The duplicate trails the original by one serialization time,
            // as if the frame had been put on the wire twice back-to-back.
            simulator_.schedule_in(delay + transmission_delay(frame.wire_size()),
                                   [nic, frame, this] {
                if (nic->link() != this) return;
                emit(TraceKind::FrameRx, nic, frame);
                nic->deliver(frame);
            },
            "frame-delivery");
        }
    }
}

}  // namespace mip::sim
