#include "sim/link.h"

#include <algorithm>

#include "sim/nic.h"
#include "sim/node.h"

namespace mip::sim {

Link::Link(Simulator& simulator, LinkConfig config)
    : simulator_(simulator), config_(std::move(config)), rng_(config_.seed) {}

Link::~Link() {
    for (Nic* nic : nics_) {
        nic->link_ = nullptr;
    }
}

void Link::attach(Nic& nic) {
    if (std::find(nics_.begin(), nics_.end(), &nic) == nics_.end()) {
        nics_.push_back(&nic);
    }
}

void Link::detach(Nic& nic) {
    std::erase(nics_, &nic);
}

bool Link::connects(const Nic& a, const Nic& b) const {
    const bool has_a = std::find(nics_.begin(), nics_.end(), &a) != nics_.end();
    const bool has_b = std::find(nics_.begin(), nics_.end(), &b) != nics_.end();
    return has_a && has_b;
}

Duration Link::transmission_delay(std::size_t bytes) const {
    const double seconds = static_cast<double>(bytes) * 8.0 / config_.bandwidth_bps;
    return static_cast<Duration>(seconds * 1e9);
}

void Link::emit(TraceKind kind, const Nic* at, const Frame& frame,
                const TraceDetail& detail) const {
    if (trace_ == nullptr) return;
    trace_->record(kind, simulator_.now(),
                   at != nullptr ? trace_->node_id(at->owner()) : 0, this,
                   static_cast<std::uint32_t>(frame.wire_size()),
                   static_cast<std::uint16_t>(frame.type), frame.journey, detail);
}

void Link::transmit(const Nic& sender, Frame frame) {
    if (frame.payload.size() > config_.mtu) {
        emit(TraceKind::FrameTooBig, &sender, frame,
             TraceDetail::args(TraceDetailKind::PayloadExceedsMtu,
                               static_cast<std::uint32_t>(frame.payload.size()),
                               static_cast<std::uint32_t>(config_.mtu)));
        return;
    }
    emit(TraceKind::FrameTx, &sender, frame);
    if (tap_) {
        tap_(frame);
    }

    Duration fault_delay = 0;
    bool fault_duplicate = false;
    if (fault_ != nullptr) {
        const FaultVerdict verdict = fault_->on_transmit(frame, simulator_.now());
        if (verdict.drop) {
            emit(TraceKind::FrameLost, &sender, frame,
                 TraceDetail::txt(verdict.drop_reason != nullptr ? verdict.drop_reason
                                                                 : "fault"));
            simulator_.buffer_pool().release(std::move(frame.payload));
            return;
        }
        fault_delay = verdict.extra_delay;
        fault_duplicate = verdict.duplicate;
    }

    if (config_.loss_rate > 0.0) {
        std::bernoulli_distribution lost(config_.loss_rate);
        if (lost(rng_)) {
            emit(TraceKind::FrameLost, &sender, frame);
            simulator_.buffer_pool().release(std::move(frame.payload));
            return;
        }
    }

    // One talker at a time on the shared medium: serialization starts when
    // the wire frees up, so frames never overtake each other.
    const TimePoint start = std::max(simulator_.now(), busy_until_);
    busy_until_ = start + transmission_delay(frame.wire_size());
    const Duration delay = (busy_until_ - simulator_.now()) + config_.latency + fault_delay;

    // Group-addressed frames (broadcast and multicast) reach every
    // station; the IP layer filters multicast by joined groups. First find
    // the last receiver so the original frame can be moved to it.
    const auto receives = [&frame, &sender](const Nic* nic) {
        if (nic == &sender) return false;
        return frame.dst.is_group() || frame.dst == nic->mac() || nic->promiscuous();
    };
    const Nic* last_receiver = nullptr;
    for (const Nic* nic : nics_) {
        if (receives(nic)) last_receiver = nic;
    }

    // Delivery happens at simulated arrival time; each receiver needs its
    // own copy of the frame because a NIC that detached (or moved to
    // another segment) while the frame was in flight must not receive it
    // and the others still must. Copies draw their payload storage from
    // the simulator's buffer pool and return it right after delivery, so
    // steady-state traffic recycles instead of allocating; the final
    // receiver takes the original frame by move (the unicast common case
    // never copies at all).
    const auto schedule_delivery = [this](Nic* nic, Duration after, Frame&& f) {
        simulator_.schedule_in(after, [nic, this, f = std::move(f)]() mutable {
            if (nic->link() == this) {
                emit(TraceKind::FrameRx, nic, f);
                nic->deliver(f);
            }
            simulator_.buffer_pool().release(std::move(f.payload));
        },
        "frame-delivery");
    };
    const auto pooled_copy = [this](const Frame& f) {
        Frame c;
        c.dst = f.dst;
        c.src = f.src;
        c.type = f.type;
        c.journey = f.journey;
        c.payload = simulator_.buffer_pool().acquire(f.payload.size());
        c.payload.assign(f.payload.begin(), f.payload.end());
        return c;
    };

    if (last_receiver == nullptr) {
        simulator_.buffer_pool().release(std::move(frame.payload));
        return;
    }
    const Duration dup_delay = delay + transmission_delay(frame.wire_size());
    for (Nic* nic : nics_) {
        if (!receives(nic)) continue;
        if (fault_duplicate) {
            // The duplicate trails the original by one serialization
            // time, as if the frame had been put on the wire twice
            // back-to-back.
            schedule_delivery(nic, dup_delay, pooled_copy(frame));
        }
        schedule_delivery(nic, delay,
                          nic == last_receiver ? std::move(frame) : pooled_copy(frame));
    }
}

}  // namespace mip::sim
