#include "sim/profiler.h"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace mip::sim {

void SimProfiler::record(const char* kind, std::uint64_t wall_ns, std::size_t queue_depth,
                         std::size_t cancelled_size) {
    EventKindProfile& p = by_kind_[kind != nullptr ? kind : "event"];
    ++p.dispatches;
    p.wall_ns += wall_ns;
    p.max_wall_ns = std::max(p.max_wall_ns, wall_ns);
    ++total_dispatches_;
    total_wall_ns_ += wall_ns;
    max_queue_depth_ = std::max(max_queue_depth_, queue_depth);
    max_cancelled_size_ = std::max(max_cancelled_size_, cancelled_size);
}

double SimProfiler::events_per_second() const noexcept {
    if (total_wall_ns_ == 0) return 0.0;
    return static_cast<double>(total_dispatches_) * 1e9 /
           static_cast<double>(total_wall_ns_);
}

std::string SimProfiler::summary() const {
    std::vector<const std::map<std::string, EventKindProfile>::value_type*> rows;
    rows.reserve(by_kind_.size());
    for (const auto& kv : by_kind_) rows.push_back(&kv);
    std::sort(rows.begin(), rows.end(),
              [](const auto* a, const auto* b) { return a->second.wall_ns > b->second.wall_ns; });

    std::string out;
    char line[160];
    std::snprintf(line, sizeof line, "%-24s %12s %12s %10s %10s\n", "kind", "dispatches",
                  "wall(us)", "mean(ns)", "max(ns)");
    out += line;
    for (const auto* row : rows) {
        const EventKindProfile& p = row->second;
        std::snprintf(line, sizeof line, "%-24s %12llu %12.1f %10.0f %10llu\n",
                      row->first.c_str(), static_cast<unsigned long long>(p.dispatches),
                      static_cast<double>(p.wall_ns) / 1e3, p.mean_wall_ns(),
                      static_cast<unsigned long long>(p.max_wall_ns));
        out += line;
    }
    std::snprintf(line, sizeof line,
                  "total: %llu dispatches, %.1f ms wall, %.0f events/s, "
                  "queue high-water %zu, cancelled high-water %zu\n",
                  static_cast<unsigned long long>(total_dispatches_),
                  static_cast<double>(total_wall_ns_) / 1e6, events_per_second(),
                  max_queue_depth_, max_cancelled_size_);
    out += line;
    return out;
}

void SimProfiler::reset() {
    by_kind_.clear();
    total_dispatches_ = 0;
    total_wall_ns_ = 0;
    max_queue_depth_ = 0;
    max_cancelled_size_ = 0;
}

}  // namespace mip::sim
