#include "sim/nic.h"

#include "sim/link.h"

namespace mip::sim {

Nic::Nic(Node& owner, MacAddress mac, std::string name)
    : owner_(owner), mac_(mac), name_(std::move(name)) {}

Nic::~Nic() {
    disconnect();
}

void Nic::connect(Link& link) {
    disconnect();
    link_ = &link;
    link.attach(*this);
}

void Nic::disconnect() {
    if (link_ != nullptr) {
        link_->detach(*this);
        link_ = nullptr;
    }
}

void Nic::send(Frame frame) {
    if (link_ == nullptr) {
        return;  // unplugged: the wire eats the frame, as in real life
    }
    frame.src = mac_;
    if (tap_) {
        tap_(frame);
    }
    link_->transmit(*this, std::move(frame));
}

void Nic::deliver(const Frame& frame) {
    // A NIC that moved to a different link between scheduling and delivery
    // must not receive frames from the old segment.
    if (tap_) {
        tap_(frame);
    }
    if (handler_) {
        handler_(frame);
    }
}

}  // namespace mip::sim
