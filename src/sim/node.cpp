#include "sim/node.h"

#include "sim/simulator.h"

namespace mip::sim {

Node::Node(Simulator& simulator, std::string name)
    : simulator_(simulator), name_(std::move(name)) {}

Nic& Node::add_nic(std::string nic_name) {
    if (nic_name.empty()) {
        nic_name = name_ + "-eth" + std::to_string(nics_.size());
    }
    // MAC ids come from the simulator, so they are deterministic per world
    // and race-free when sweep jobs build worlds on several threads.
    nics_.push_back(std::make_unique<Nic>(
        *this, MacAddress::from_id(simulator_.next_mac_id()), std::move(nic_name)));
    return *nics_.back();
}

}  // namespace mip::sim
