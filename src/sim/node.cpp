#include "sim/node.h"

namespace mip::sim {

std::uint32_t Node::next_mac_id_ = 1;

Node::Node(Simulator& simulator, std::string name)
    : simulator_(simulator), name_(std::move(name)) {}

Nic& Node::add_nic(std::string nic_name) {
    if (nic_name.empty()) {
        nic_name = name_ + "-eth" + std::to_string(nics_.size());
    }
    nics_.push_back(
        std::make_unique<Nic>(*this, MacAddress::from_id(next_mac_id_++), std::move(nic_name)));
    return *nics_.back();
}

}  // namespace mip::sim
