#include "tunnel/gre.h"

#include "net/checksum.h"

namespace mip::tunnel {

namespace {
constexpr std::uint16_t kFlagChecksum = 0x8000;
constexpr std::uint16_t kFlagKey = 0x2000;
constexpr std::uint16_t kFlagSequence = 0x1000;
constexpr std::uint16_t kProtoIpv4 = 0x0800;
}  // namespace

std::size_t GreEncapsulator::header_size() const noexcept {
    std::size_t n = 4;
    if (options_.checksum) n += 4;
    if (options_.key) n += 4;
    if (options_.sequence) n += 4;
    return n;
}

net::Packet GreEncapsulator::do_encapsulate(const net::Packet& inner, net::Ipv4Address outer_src,
                                         net::Ipv4Address outer_dst,
                                         std::uint8_t outer_ttl) const {
    std::uint16_t flags = 0;
    if (options_.checksum) flags |= kFlagChecksum;
    if (options_.key) flags |= kFlagKey;
    if (options_.sequence) flags |= kFlagSequence;

    const auto inner_wire = inner.to_wire();

    net::BufferWriter w(header_size() + inner_wire.size());
    w.u16(flags);
    w.u16(kProtoIpv4);
    std::size_t checksum_offset = 0;
    if (options_.checksum) {
        checksum_offset = w.size();
        w.u32(0);  // checksum(16) + offset(16), patched below
    }
    if (options_.key) {
        w.u32(options_.key_value);
    }
    if (options_.sequence) {
        w.u32(sequence_++);
    }
    w.bytes(inner_wire);
    if (options_.checksum) {
        // RFC 1701: checksum over the GRE header and payload.
        w.patch_u16(checksum_offset, net::internet_checksum(w.view()));
    }

    net::Ipv4Header outer;
    outer.src = outer_src;
    outer.dst = outer_dst;
    outer.protocol = net::IpProto::Gre;
    outer.ttl = outer_ttl;
    outer.identification = inner.header().identification;
    return net::Packet(outer, w.take());
}

net::Packet GreEncapsulator::do_decapsulate(const net::Packet& outer) const {
    if (outer.header().protocol != net::IpProto::Gre) {
        throw net::ParseError("not a GRE packet");
    }
    net::BufferReader r(outer.payload());
    const std::uint16_t flags = r.u16();
    if ((flags & 0x0007) != 0) {
        throw net::ParseError("unsupported GRE version");
    }
    const std::uint16_t proto = r.u16();
    if (proto != kProtoIpv4) {
        throw net::ParseError("GRE payload is not IPv4");
    }
    if (flags & kFlagChecksum) {
        if (net::internet_checksum(outer.payload()) != 0) {
            throw net::ParseError("GRE checksum mismatch");
        }
        r.skip(4);
    }
    if (flags & kFlagKey) {
        const std::uint32_t key = r.u32();
        if (options_.key && key != options_.key_value) {
            throw net::ParseError("GRE key mismatch");
        }
    }
    if (flags & kFlagSequence) {
        r.skip(4);
    }
    return net::Packet::from_wire(r.rest());
}

}  // namespace mip::tunnel
