#include "tunnel/ipip.h"

namespace mip::tunnel {

net::Packet IpIpEncapsulator::do_encapsulate(const net::Packet& inner, net::Ipv4Address outer_src,
                                          net::Ipv4Address outer_dst,
                                          std::uint8_t outer_ttl) const {
    net::Ipv4Header outer;
    outer.src = outer_src;
    outer.dst = outer_dst;
    outer.protocol = net::IpProto::IpInIp;
    outer.ttl = outer_ttl;
    outer.identification = inner.header().identification;
    return net::Packet(outer, inner.to_wire());
}

net::Packet IpIpEncapsulator::do_decapsulate(const net::Packet& outer) const {
    if (outer.header().protocol != net::IpProto::IpInIp) {
        throw net::ParseError("not an IP-in-IP packet");
    }
    return net::Packet::from_wire(outer.payload());
}

}  // namespace mip::tunnel
