#include "tunnel/encapsulator.h"

#include "tunnel/gre.h"
#include "tunnel/ipip.h"
#include "tunnel/minimal_encap.h"

namespace mip::tunnel {

std::unique_ptr<Encapsulator> make_encapsulator(EncapScheme scheme) {
    switch (scheme) {
        case EncapScheme::IpInIp:
            return std::make_unique<IpIpEncapsulator>();
        case EncapScheme::Minimal:
            return std::make_unique<MinimalEncapsulator>();
        case EncapScheme::Gre:
            return std::make_unique<GreEncapsulator>();
    }
    return nullptr;
}

std::string to_string(EncapScheme scheme) {
    switch (scheme) {
        case EncapScheme::IpInIp:
            return "ip-in-ip";
        case EncapScheme::Minimal:
            return "minimal-encap";
        case EncapScheme::Gre:
            return "gre";
    }
    return "?";
}

}  // namespace mip::tunnel
