// IP-in-IP encapsulation: the full inner datagram (header included) is the
// payload of the outer datagram. Protocol 4.
#pragma once

#include "tunnel/encapsulator.h"

namespace mip::tunnel {

class IpIpEncapsulator final : public Encapsulator {
public:
    std::size_t overhead(const net::Packet&) const override { return net::kIpv4HeaderSize; }
    net::IpProto protocol() const override { return net::IpProto::IpInIp; }
    std::string name() const override { return "ip-in-ip"; }

protected:
    net::Packet do_encapsulate(const net::Packet& inner, net::Ipv4Address outer_src,
                               net::Ipv4Address outer_dst,
                               std::uint8_t outer_ttl) const override;
    net::Packet do_decapsulate(const net::Packet& outer) const override;
};

}  // namespace mip::tunnel
