#include "tunnel/minimal_encap.h"

#include "net/checksum.h"

namespace mip::tunnel {

namespace {
constexpr std::uint8_t kSourcePresentFlag = 0x80;
}

std::size_t MinimalEncapsulator::overhead(const net::Packet& inner) const {
    // The source must be preserved whenever the tunnel changes it; Mobile IP
    // always does (home address inside, care-of address outside), so callers
    // will normally see 12. We compute it exactly in encapsulate().
    (void)inner;
    return kMinimalHeaderWithSource;
}

net::Packet MinimalEncapsulator::do_encapsulate(const net::Packet& inner,
                                             net::Ipv4Address outer_src,
                                             net::Ipv4Address outer_dst,
                                             std::uint8_t outer_ttl) const {
    if (inner.header().is_fragment()) {
        // RFC 2004 §3: minimal encapsulation must not be used on fragments
        // (the forwarding header has no room for a second fragmentation
        // context).
        throw net::ParseError("minimal encapsulation cannot carry fragments");
    }
    const bool keep_source = inner.header().src != outer_src;

    net::BufferWriter w(kMinimalHeaderWithSource + inner.payload().size());
    w.u8(static_cast<std::uint8_t>(inner.header().protocol));
    w.u8(keep_source ? kSourcePresentFlag : 0);
    w.u16(0);  // checksum placeholder
    w.u32(inner.header().dst.value());
    if (keep_source) {
        w.u32(inner.header().src.value());
    }
    const std::size_t header_len = w.size();
    const std::uint16_t csum = net::internet_checksum(w.view());
    w.patch_u16(2, csum);
    w.bytes(inner.payload());

    net::Ipv4Header outer = inner.header();
    outer.protocol = net::IpProto::MinEnc;
    outer.src = outer_src;
    outer.dst = outer_dst;
    outer.ttl = outer_ttl;
    (void)header_len;
    return net::Packet(outer, w.take());
}

net::Packet MinimalEncapsulator::do_decapsulate(const net::Packet& outer) const {
    if (outer.header().protocol != net::IpProto::MinEnc) {
        throw net::ParseError("not a minimal-encapsulation packet");
    }
    net::BufferReader r(outer.payload());
    if (r.remaining() < kMinimalHeaderBase) {
        throw net::ParseError("minimal encapsulation header truncated");
    }
    const std::uint8_t original_proto = r.u8();
    const std::uint8_t flags = r.u8();
    const bool has_source = (flags & kSourcePresentFlag) != 0;
    const std::size_t header_len = has_source ? kMinimalHeaderWithSource : kMinimalHeaderBase;
    if (outer.payload().size() < header_len) {
        throw net::ParseError("minimal encapsulation header truncated");
    }
    if (net::internet_checksum(outer.payload().subspan(0, header_len)) != 0) {
        throw net::ParseError("minimal encapsulation checksum mismatch");
    }
    r.skip(2);  // checksum (verified above)
    const net::Ipv4Address original_dst(r.u32());
    const net::Ipv4Address original_src =
        has_source ? net::Ipv4Address(r.u32()) : outer.header().src;

    net::Ipv4Header inner = outer.header();
    inner.protocol = static_cast<net::IpProto>(original_proto);
    inner.src = original_src;
    inner.dst = original_dst;
    const auto rest = r.rest();
    return net::Packet(inner, std::vector<std::uint8_t>(rest.begin(), rest.end()));
}

}  // namespace mip::tunnel
