// Minimal encapsulation [Per95 / RFC 2004].
//
// Instead of nesting a second full IP header, the original header is
// *modified in place* (protocol number and addresses swapped for the tunnel
// endpoints) and a small forwarding header preserves the displaced fields:
//
//   byte 0      original protocol
//   byte 1      S flag (original source address present) | 7 reserved bits
//   bytes 2-3   header checksum (over the minimal forwarding header)
//   bytes 4-7   original destination address
//   bytes 8-11  original source address (present iff S == 1)
//
// Overhead is 12 bytes when the outer source differs from the original
// source (always true for Mobile IP's care-of addressing) and 8 bytes when
// they coincide.
#pragma once

#include "tunnel/encapsulator.h"

namespace mip::tunnel {

inline constexpr std::size_t kMinimalHeaderBase = 8;
inline constexpr std::size_t kMinimalHeaderWithSource = 12;

class MinimalEncapsulator final : public Encapsulator {
public:
    std::size_t overhead(const net::Packet& inner) const override;
    net::IpProto protocol() const override { return net::IpProto::MinEnc; }
    std::string name() const override { return "minimal-encap"; }

protected:
    net::Packet do_encapsulate(const net::Packet& inner, net::Ipv4Address outer_src,
                               net::Ipv4Address outer_dst,
                               std::uint8_t outer_ttl) const override;
    net::Packet do_decapsulate(const net::Packet& outer) const override;
};

}  // namespace mip::tunnel
