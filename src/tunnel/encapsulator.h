// Encapsulation ("tunneling") schemes.
//
// The paper (§2, §3.3) notes that encapsulation overhead "can be minimized
// by use of Generic Routing Encapsulation [RFC1702] or Minimal
// Encapsulation [Per95]". All three schemes the paper references are
// implemented with wire-accurate headers so the size benchmarks (F6–F9,
// A2) report real byte counts:
//
//   IP-in-IP           [Per96c / RFC 2003]  +20 bytes
//   Minimal Encap      [Per95  / RFC 2004]  +8 or +12 bytes
//   GRE                [RFC 1701/1702]      +4 (base) .. +12 bytes
#pragma once

#include <memory>
#include <string>

#include "net/packet.h"

namespace mip::tunnel {

enum class EncapScheme {
    IpInIp,
    Minimal,
    Gre,
};

class Encapsulator {
public:
    virtual ~Encapsulator() = default;

    /// Wraps @p inner in an outer datagram from @p outer_src to
    /// @p outer_dst. The inner datagram is carried bit-exactly (IP-in-IP,
    /// GRE) or reversibly compressed (minimal encapsulation). The outer
    /// datagram continues the inner one's journey id, so a packet can be
    /// traced through any number of tunnel layers.
    net::Packet encapsulate(const net::Packet& inner, net::Ipv4Address outer_src,
                            net::Ipv4Address outer_dst,
                            std::uint8_t outer_ttl = net::kDefaultTtl) const {
        net::Packet outer = do_encapsulate(inner, outer_src, outer_dst, outer_ttl);
        outer.set_journey(inner.journey());
        return outer;
    }

    /// Recovers the inner datagram (which continues the outer's journey
    /// id); throws net::ParseError on malformed input or if @p outer does
    /// not carry this scheme's protocol number.
    net::Packet decapsulate(const net::Packet& outer) const {
        net::Packet inner = do_decapsulate(outer);
        inner.set_journey(outer.journey());
        return inner;
    }

    /// Extra wire bytes this scheme adds to @p inner.
    virtual std::size_t overhead(const net::Packet& inner) const = 0;

    /// The IP protocol number carried in the outer header.
    virtual net::IpProto protocol() const = 0;

    virtual std::string name() const = 0;

protected:
    /// Scheme-specific wrapping/unwrapping. Journey-id propagation is
    /// handled once by the public non-virtual wrappers above; overrides
    /// deal purely in wire bytes.
    virtual net::Packet do_encapsulate(const net::Packet& inner, net::Ipv4Address outer_src,
                                       net::Ipv4Address outer_dst,
                                       std::uint8_t outer_ttl) const = 0;
    virtual net::Packet do_decapsulate(const net::Packet& outer) const = 0;
};

/// Factory for the scheme enum (GRE built with no optional fields).
std::unique_ptr<Encapsulator> make_encapsulator(EncapScheme scheme);

std::string to_string(EncapScheme scheme);

}  // namespace mip::tunnel
