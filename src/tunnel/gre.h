// Generic Routing Encapsulation [RFC 1701/1702].
//
//   bytes 0-1   C R K S s Recur(3) Flags(5) Ver(3)
//   bytes 2-3   protocol type (0x0800 for IPv4 payload)
//   +4 bytes    checksum + offset   (iff C)
//   +4 bytes    key                 (iff K)
//   +4 bytes    sequence number     (iff S)
//
// Base overhead 4 bytes; each enabled option adds 4.
#pragma once

#include "tunnel/encapsulator.h"

namespace mip::tunnel {

struct GreOptions {
    bool checksum = false;
    bool key = false;
    std::uint32_t key_value = 0;
    bool sequence = false;
};

class GreEncapsulator final : public Encapsulator {
public:
    explicit GreEncapsulator(GreOptions options = {}) : options_(options) {}

    std::size_t overhead(const net::Packet&) const override { return header_size(); }
    net::IpProto protocol() const override { return net::IpProto::Gre; }
    std::string name() const override { return "gre"; }

    std::size_t header_size() const noexcept;

    /// Sequence counter of the next packet to be sent (when enabled).
    std::uint32_t next_sequence() const noexcept { return sequence_; }

protected:
    net::Packet do_encapsulate(const net::Packet& inner, net::Ipv4Address outer_src,
                               net::Ipv4Address outer_dst,
                               std::uint8_t outer_ttl) const override;
    net::Packet do_decapsulate(const net::Packet& outer) const override;

private:
    GreOptions options_;
    mutable std::uint32_t sequence_ = 0;
};

}  // namespace mip::tunnel
