// Mobility bindings: home address -> current care-of address, with expiry.
// Used by the home agent (authoritative, from registrations) and by
// mobile-aware correspondent hosts (a cache, from ICMP care-of adverts or
// DNS TA lookups).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/flat_map.h"
#include "net/ipv4_address.h"
#include "sim/time.h"

namespace mip::core {

struct Binding {
    net::Ipv4Address home_address;
    net::Ipv4Address care_of_address;
    sim::TimePoint expires = 0;
};

class BindingTable {
public:
    void set(net::Ipv4Address home, net::Ipv4Address care_of, sim::TimePoint expires);
    void remove(net::Ipv4Address home);
    void clear() { bindings_.clear(); }

    /// Current care-of address for @p home, if registered and unexpired.
    std::optional<Binding> lookup(net::Ipv4Address home, sim::TimePoint now) const;

    /// Drops expired entries; returns how many were removed.
    std::size_t expire(sim::TimePoint now);

    /// Soonest expiry over all entries (nullopt when empty). The home
    /// agent's lazy GC timer re-arms from this instead of polling.
    std::optional<sim::TimePoint> earliest_expiry() const;

    std::size_t size() const noexcept { return bindings_.size(); }
    /// Every live binding, sorted by home address (the order the old
    /// std::map storage iterated in, preserved so exported artifacts and
    /// relay fan-out stay byte-identical across the flat-map refactor).
    std::vector<Binding> snapshot() const;

private:
    /// Flat hash map (ISSUE 6): O(1) lookup with insertion-ordered,
    /// hash-independent iteration — the city-scale registration storm
    /// hits this table millions of times per run.
    FlatAddressMap<Binding> bindings_;
};

}  // namespace mip::core
