// Mobility bindings: home address -> current care-of address, with expiry.
// Used by the home agent (authoritative, from registrations) and by
// mobile-aware correspondent hosts (a cache, from ICMP care-of adverts or
// DNS TA lookups).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/flat_map.h"
#include "net/ipv4_address.h"
#include "sim/time.h"

namespace mip::core {

struct Binding {
    net::Ipv4Address home_address;
    net::Ipv4Address care_of_address;
    sim::TimePoint expires = 0;
};

class BindingTable {
public:
    void set(net::Ipv4Address home, net::Ipv4Address care_of, sim::TimePoint expires);
    void remove(net::Ipv4Address home);
    void clear() {
        bindings_.clear();
        cached_min_.reset();
        cache_valid_ = true;
    }

    /// Current care-of address for @p home, if registered and unexpired.
    std::optional<Binding> lookup(net::Ipv4Address home, sim::TimePoint now) const;

    /// Drops expired entries; returns how many were removed.
    std::size_t expire(sim::TimePoint now);

    /// Single-pass variant (ISSUE 9, GC thundering herd): invokes
    /// @p on_expired for every entry it drops, so the caller can undo
    /// side state (proxy-ARP captures) without a second full snapshot of
    /// the table — 10k simultaneous expiries are one O(n) sweep.
    std::size_t expire(sim::TimePoint now,
                       const std::function<void(const Binding&)>& on_expired);

    /// Soonest expiry over all entries (nullopt when empty). The home
    /// agent's lazy GC timer re-arms from this instead of polling.
    ///
    /// O(1) amortized: the minimum is cached and maintained incrementally
    /// by set(), and only recomputed (one linear scan) after an operation
    /// that may have removed the minimum's holder. Without the cache the
    /// agent's per-registration re-arm was an O(n) scan — O(n^2) across a
    /// city-scale registration storm.
    std::optional<sim::TimePoint> earliest_expiry() const;

    std::size_t size() const noexcept { return bindings_.size(); }
    /// Every live binding, sorted by home address (the order the old
    /// std::map storage iterated in, preserved so exported artifacts and
    /// relay fan-out stay byte-identical across the flat-map refactor).
    std::vector<Binding> snapshot() const;

private:
    /// Flat hash map (ISSUE 6): O(1) lookup with insertion-ordered,
    /// hash-independent iteration — the city-scale registration storm
    /// hits this table millions of times per run.
    FlatAddressMap<Binding> bindings_;
    /// Cached earliest expiry; meaningful only when cache_valid_. nullopt
    /// with a valid cache means the table is empty.
    mutable std::optional<sim::TimePoint> cached_min_;
    mutable bool cache_valid_ = true;
};

}  // namespace mip::core
