#include "core/modes.h"

namespace mip::core {

GridCensus census() {
    GridCensus c;
    for (InMode in : kAllInModes) {
        for (OutMode out : kAllOutModes) {
            switch (classify_combo(in, out)) {
                case ComboClass::Useful: ++c.useful; break;
                case ComboClass::ValidUnused: ++c.valid_unused; break;
                case ComboClass::Broken: ++c.broken; break;
            }
        }
    }
    return c;
}

std::string to_string(OutMode m) {
    switch (m) {
        case OutMode::IE: return "Out-IE";
        case OutMode::DE: return "Out-DE";
        case OutMode::DH: return "Out-DH";
        case OutMode::DT: return "Out-DT";
    }
    return "?";
}

std::string to_string(InMode m) {
    switch (m) {
        case InMode::IE: return "In-IE";
        case InMode::DE: return "In-DE";
        case InMode::DH: return "In-DH";
        case InMode::DT: return "In-DT";
    }
    return "?";
}

std::string to_string(ComboClass c) {
    switch (c) {
        case ComboClass::Useful: return "useful";
        case ComboClass::ValidUnused: return "valid-unused";
        case ComboClass::Broken: return "broken";
    }
    return "?";
}

std::string describe(OutMode m) {
    switch (m) {
        case OutMode::IE: return "Outgoing, Indirect, Encapsulated";
        case OutMode::DE: return "Outgoing, Direct, Encapsulated";
        case OutMode::DH: return "Outgoing, Direct, Home Address";
        case OutMode::DT: return "Outgoing, Direct, Temporary Address";
    }
    return "?";
}

std::string describe(InMode m) {
    switch (m) {
        case InMode::IE: return "Incoming, Indirect, Encapsulated";
        case InMode::DE: return "Incoming, Direct, Encapsulated";
        case InMode::DH: return "Incoming, Direct, Home Address";
        case InMode::DT: return "Incoming, Direct, Temporary Address";
    }
    return "?";
}

}  // namespace mip::core
