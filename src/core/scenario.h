// Canned topology for every figure in the paper: a home domain (with home
// agent and boundary router), a foreign (visited) domain, a correspondent
// domain, and a configurable linear backbone between them.
//
//   home 10.1/16 --[home-gw]--R0--R1--...--Rn--[foreign-gw]-- foreign 10.2/16
//                               \---------[corr-gw]-- correspondent 10.3/16
//
// Attachment points on the backbone are configurable so scenarios like
// Figure 4 ("CH close to MH, HA far away") are one-line changes.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/correspondent.h"
#include "core/foreign_agent.h"
#include "core/home_agent.h"
#include "core/mobile_host.h"
#include "dns/server.h"
#include "mobility/handoff.h"
#include "obs/decision.h"
#include "obs/metrics.h"
#include "routing/domain.h"
#include "stack/router.h"

namespace mip::core {

struct WorldConfig {
    /// Number of backbone routers (>= 1).
    int backbone_routers = 4;
    /// Backbone router index each domain's gateway hangs off (-1 = last).
    int home_attach = 0;
    int foreign_attach = -1;
    int corr_attach = -1;

    /// Figure 2: the home boundary drops packets arriving from outside with
    /// a source address claiming to be inside.
    bool home_ingress_spoof_filter = true;
    /// The home boundary drops packets leaving with a non-home source.
    bool home_egress_antispoof = true;
    /// The visited network's boundary drops packets leaving with a source
    /// that isn't one of its own ("most end-user networks have a policy
    /// forbidding transit traffic") — this is what kills Out-DH.
    bool foreign_egress_antispoof = false;
    /// Alternative formulation of the same policy as a transit filter.
    bool foreign_no_transit = false;
    /// Boundary routers answer filtered packets with ICMP administratively-
    /// prohibited instead of dropping silently (off by default, matching
    /// the paper's assumption).
    bool filter_feedback = false;
    /// §3.1 last paragraph: a strict firewall at the home boundary that
    /// admits *only* packets addressed to the home agent — "the firewall
    /// itself would be set up to act as the mobile user's home agent,
    /// sitting as it does on the boundary between the untrusted outside
    /// world and the trusted world inside."
    bool home_firewall = false;

    sim::Duration lan_latency = sim::microseconds(100);
    sim::Duration backbone_latency = sim::milliseconds(5);
    double lan_bandwidth_bps = 10e6;
    double backbone_bandwidth_bps = 45e6;
    std::size_t lan_mtu = 1500;
    std::size_t backbone_mtu = 1500;
    double loss_rate = 0.0;
    std::uint64_t seed = 1;

    /// Event-queue structure for this world's simulator. Either kind
    /// dispatches the identical event sequence (sim/event_queue.h); the
    /// BinaryHeap seed scheduler is kept selectable for the equivalence
    /// tests and before/after benchmarks.
    sim::SchedulerKind scheduler = sim::SchedulerKind::Calendar;

    /// Observability knobs (docs/OBSERVABILITY.md). With tracing off,
    /// links and stacks get no recorder attached and every trace seam in
    /// the hot path is a single pointer compare — the "untraced" leg of
    /// bench_perf's overhead block. Sampling (rate < 1) retains only a
    /// deterministic, seeded subset of journeys while keeping the wire
    /// aggregates exact; rate 1.0 is byte-identical to full tracing.
    bool tracing = true;
    double trace_sample_rate = 1.0;
    std::uint64_t trace_sample_seed = 0;

    HomeAgentConfig home_agent;
};

/// Where to place a correspondent host.
enum class Placement {
    HomeLan,     ///< inside the mobile host's own institution
    ForeignLan,  ///< on the segment the mobile host is visiting (Row C)
    CorrLan,     ///< a third-party site across the backbone
};

class World {
public:
    explicit World(WorldConfig config = {});
    World(const World&) = delete;
    World& operator=(const World&) = delete;

    sim::Simulator sim;
    /// Backed by sim.record_arena() — declared right after `sim` so records
    /// die before their chunks' arena. Attached to links and stacks only
    /// when config.tracing is on.
    sim::TraceRecorder trace;
    /// Every node the world creates publishes its counters here (gauges
    /// mirroring the node Stats structs, grouped into "ip", "tunnel",
    /// "mobileip", "handoff" and "wire" layers — see docs/TRACE_FORMAT.md
    /// §4). Benches snapshot it at the end of a run; tests query it
    /// directly. Declared after `trace` and before any node so it outlives
    /// every registered provider.
    obs::MetricsRegistry metrics;
    /// Delivery-decision audit trail (docs/TRACE_FORMAT.md §6): the mobile
    /// host's method cache and any CapabilityProber record here once
    /// enabled. Recording is off by default; call enable_decision_log()
    /// (or wire create_mobile_host with one) to attach. Declared before
    /// any node so it outlives every producer holding a pointer to it.
    obs::DecisionLog decisions;

    const WorldConfig& config() const noexcept { return config_; }

    // ---- well-known addresses ------------------------------------------------

    routing::Domain home_domain{"home", net::Prefix::must_parse("10.1.0.0/16")};
    routing::Domain foreign_domain{"foreign", net::Prefix::must_parse("10.2.0.0/16")};
    routing::Domain corr_domain{"corr", net::Prefix::must_parse("10.3.0.0/16")};

    net::Ipv4Address home_gateway_addr() const { return home_domain.host(1); }
    net::Ipv4Address foreign_gateway_addr() const { return foreign_domain.host(1); }
    net::Ipv4Address corr_gateway_addr() const { return corr_domain.host(1); }
    net::Ipv4Address home_agent_addr() const { return home_domain.host(2); }
    net::Ipv4Address dns_server_addr() const { return home_domain.host(53); }
    net::Ipv4Address mh_home_addr() const { return home_domain.host(10); }
    net::Ipv4Address mh_care_of_addr() const { return foreign_domain.host(10); }
    net::Ipv4Address foreign_agent_addr() const { return foreign_domain.host(3); }

    // ---- topology handles ------------------------------------------------------

    sim::Link& home_lan() { return *home_lan_; }
    sim::Link& foreign_lan() { return *foreign_lan_; }
    sim::Link& corr_lan() { return *corr_lan_; }
    HomeAgent& home_agent() { return *ha_; }
    stack::Router& home_gateway() { return *home_gw_; }
    stack::Router& foreign_gateway() { return *foreign_gw_; }
    stack::Router& corr_gateway() { return *corr_gw_; }
    std::size_t backbone_size() const { return backbone_.size(); }
    stack::Router& backbone_router(std::size_t i) { return *backbone_.at(i); }
    bool has_foreign_agent() const noexcept { return fa_ != nullptr; }
    bool has_mobile_host() const noexcept { return mh_ != nullptr; }

    /// Looks a link up by its configured name ("home-lan", "foreign-lan",
    /// "bb-link0", "home-gw-uplink", ...); nullptr when absent. The fault
    /// injector resolves FaultPlan targets through this. O(1): backed by
    /// the name index make_link maintains (ISSUE 6 — the O(n) scan this
    /// replaces is benchmarked against it in bench_city).
    sim::Link* find_link(const std::string& name);
    /// Every link in the world, in creation order.
    std::vector<sim::Link*> all_links();

    // ---- population helpers ----------------------------------------------------

    /// A MobileHostConfig pre-filled with this world's addresses. The caller
    /// may override the strategy, encapsulation scheme, heuristics, etc.
    MobileHostConfig mobile_config() const;

    /// Creates the world's mobile host (owned by the world).
    MobileHost& create_mobile_host(MobileHostConfig config);
    MobileHost& create_mobile_host() { return create_mobile_host(mobile_config()); }
    MobileHost& mobile_host() { return *mh_; }

    /// Attaches `decisions` to the mobile host's method cache so every
    /// delivery-method decision is audited (off by default; requires
    /// create_mobile_host() first).
    void enable_decision_log();

    /// Creates a correspondent host at @p placement (owned by the world).
    /// @p host_index picks the address within the domain (default .20 on
    /// LANs, .2 in the correspondent domain).
    CorrespondentHost& create_correspondent(CorrespondentConfig config, Placement placement,
                                            std::uint32_t host_index = 0);

    /// How long the attach_mobile_* helpers drive the simulation while
    /// waiting for a registration outcome.
    static constexpr sim::Duration kDefaultAttachTimeout = sim::seconds(10);

    /// Plugs the world's mobile host into its home segment.
    void attach_mobile_home();

    /// Plugs the world's mobile host into the foreign segment and runs the
    /// simulation until registration completes (or @p timeout). Returns
    /// whether registration was accepted.
    bool attach_mobile_foreign(sim::Duration timeout = kDefaultAttachTimeout);

    /// Places a foreign agent on the foreign LAN (owned by the world).
    ForeignAgent& create_foreign_agent(ForeignAgentConfig config = {});
    ForeignAgent& foreign_agent() { return *fa_; }

    /// Plugs the world's mobile host into the foreign segment *via the
    /// foreign agent* and runs until registration completes (or timeout).
    bool attach_mobile_via_agent(sim::Duration timeout = kDefaultAttachTimeout);

    // ---- physical mobility ----------------------------------------------------

    /// Installs the physical-mobility layer: @p model drives the mobile
    /// host's position, @p map binds regions to this world's segments, and
    /// the returned HandoffController (started, owned by the world)
    /// performs every attach/detach from then on — no manual attach_*
    /// calls. Requires create_mobile_host() first. Unless overridden,
    /// config.gap_loss_probe counts packets the home agent tunnels while
    /// the host is between attachments.
    mobility::HandoffController& with_mobility(
        std::unique_ptr<mobility::MobilityModel> model, mobility::CoverageMap map,
        mobility::HandoffConfig config = {});
    mobility::HandoffController& handoff() { return *handoff_controller_; }
    bool has_mobility() const noexcept { return handoff_controller_ != nullptr; }

    /// Cell builders pre-wired to this world's segments and addresses (the
    /// caller picks the region; link/addresses/gateway are filled in).
    mobility::CoverageCell home_cell(mobility::Region region, int priority = 0);
    /// Foreign LAN with a co-located care-of address (the usual COA).
    mobility::CoverageCell foreign_cell(mobility::Region region, int priority = 0);
    /// Foreign LAN joined through its foreign agent (create_foreign_agent
    /// first, or registrations will go unanswered until retries expire).
    mobility::CoverageCell foreign_agent_cell(mobility::Region region, int priority = 0);
    /// The correspondent-domain LAN treated as a third visited network.
    mobility::CoverageCell corr_cell(mobility::Region region, int priority = 0);

    /// Enables a DNS server (in the home domain) preloaded with an A record
    /// for the mobile host under @p mh_name.
    void enable_dns(const std::string& mh_name = "mh.home.example");
    dns::Zone& dns_zone() { return *dns_zone_; }
    const std::string& mh_dns_name() const { return mh_dns_name_; }

    /// Advances simulated time by @p d.
    void run_for(sim::Duration d) { sim.run_until(sim.now() + d); }
    /// Lets all in-flight activity settle: advances one minute of simulated
    /// time. (A registered mobile host re-registers periodically, so the
    /// event queue never literally drains; a bounded window is the
    /// meaningful notion of "run everything".)
    void run_all() { run_for(sim::seconds(10)); }

private:
    sim::Link& make_link(std::string name, sim::Duration latency, double bandwidth_bps,
                         std::size_t mtu);
    /// Shared attach-and-poll loop behind attach_mobile_foreign /
    /// attach_mobile_via_agent: @p initiate kicks off the attachment with a
    /// registration callback; we drive the simulation until it reports.
    bool attach_and_wait(
        sim::Duration timeout,
        const std::function<void(MobileHost::RegistrationCallback)>& initiate);
    void connect_gateway(stack::Router& gw, std::size_t backbone_index,
                         net::Ipv4Address inside_addr, net::Prefix inside_prefix,
                         sim::Link& inside_lan);
    void install_backbone_routes();
    /// Installs this world's trace sink on @p stack and registers the
    /// standard "ip"-layer gauges for its Stats under the node's name.
    void adopt_stack(stack::IpStack& stack);

    WorldConfig config_;
    std::vector<std::unique_ptr<sim::Link>> links_;
    /// name -> index into links_, maintained by make_link. all_links()
    /// still reports creation order, so iteration stays deterministic.
    std::unordered_map<std::string, std::size_t> link_index_;
    sim::Link* home_lan_ = nullptr;
    sim::Link* foreign_lan_ = nullptr;
    sim::Link* corr_lan_ = nullptr;
    std::vector<std::unique_ptr<stack::Router>> backbone_;
    std::unique_ptr<stack::Router> home_gw_;
    std::unique_ptr<stack::Router> foreign_gw_;
    std::unique_ptr<stack::Router> corr_gw_;
    std::unique_ptr<HomeAgent> ha_;
    std::unique_ptr<ForeignAgent> fa_;
    std::unique_ptr<MobileHost> mh_;
    std::vector<std::unique_ptr<CorrespondentHost>> correspondents_;
    std::unique_ptr<mobility::MobilityModel> mobility_model_;
    std::unique_ptr<mobility::Attachable> mobility_adapter_;
    std::unique_ptr<mobility::HandoffController> handoff_controller_;
    std::unique_ptr<stack::Host> dns_host_;
    std::unique_ptr<transport::UdpService> dns_udp_;
    std::unique_ptr<dns::Zone> dns_zone_;
    std::unique_ptr<dns::DnsServer> dns_server_;
    std::string mh_dns_name_;

    // Topology graph for static route computation.
    struct Edge {
        stack::IpStack* from;
        std::size_t from_iface;
        stack::IpStack* to;
        net::Ipv4Address to_addr;  ///< neighbour's address on the shared link
    };
    std::vector<Edge> edges_;
    void add_edge_pair(stack::IpStack& a, std::size_t a_iface, net::Ipv4Address a_addr,
                       stack::IpStack& b, std::size_t b_iface, net::Ipv4Address b_addr);
    std::uint32_t next_p2p_net_ = 0;
};

}  // namespace mip::core
