#include "core/correspondent.h"

namespace mip::core {

std::string to_string(Awareness a) {
    switch (a) {
        case Awareness::Conventional: return "conventional";
        case Awareness::DecapCapable: return "decap-capable";
        case Awareness::MobileAware: return "mobile-aware";
    }
    return "?";
}

CorrespondentHost::CorrespondentHost(sim::Simulator& simulator, std::string name,
                                     CorrespondentConfig config)
    : stack::Host(simulator, std::move(name)),
      config_(config),
      encap_(tunnel::make_encapsulator(config.encap_scheme)) {
    udp_ = std::make_unique<transport::UdpService>(stack());
    tcp_ = std::make_unique<transport::TcpService>(stack());

    if (config_.awareness != Awareness::Conventional) {
        // Automatic decapsulation (paper §6.1 warns this weakens firewall
        // protection, which is why it is opt-in via the awareness level).
        for (auto scheme : {tunnel::EncapScheme::IpInIp, tunnel::EncapScheme::Minimal,
                            tunnel::EncapScheme::Gre}) {
            decapsulators_.push_back(tunnel::make_encapsulator(scheme));
            const tunnel::Encapsulator& decap = *decapsulators_.back();
            stack().register_protocol(decap.protocol(),
                                      [this, &decap](const net::Packet& p, std::size_t) {
                                          net::Packet inner;
                                          try {
                                              inner = decap.decapsulate(p);
                                          } catch (const net::ParseError&) {
                                              return;
                                          }
                                          ++stats_.decapsulated;
                                          stack().trace_packet(
                                              sim::TraceKind::Decapsulated, inner,
                                              sim::TraceDetail::txt(decap.name()));
                                          stack().deliver_local(
                                              inner, stack::IpStack::kNoInterface);
                                      });
        }
    }

    if (config_.awareness == Awareness::MobileAware) {
        // Route optimization: learn bindings from the home agent's ICMP
        // care-of adverts (paper §3.2 mechanism 1).
        stack().add_icmp_observer([this](const net::IcmpMessage& msg, const net::Packet&) {
            if (msg.type != net::IcmpType::MobileCareOfAdvert) return;
            try {
                const net::Ipv4Address home = msg.advertised_home_address();
                const net::Ipv4Address care_of = msg.advertised_care_of();
                ++stats_.adverts_learned;
                learn_binding(home, care_of, config_.advert_binding_ttl);
            } catch (const net::ParseError&) {
            }
        });

        // Virtual interface performing the In-DE encapsulation.
        vif_direct_ = stack().add_virtual_interface("tun-ch", [this](net::Packet inner) {
            const auto binding =
                binding_cache_.lookup(inner.header().dst, this->simulator().now());
            if (!binding) {
                // Binding expired between route decision and transmission:
                // fall back to the plain (In-IE) path.
                stack().send(std::move(inner));
                return;
            }
            // A locally-originated packet may reach us with an open source
            // address (e.g. an ICMP reply): pin it to the address the route
            // toward the care-of address would use.
            if (inner.header().src.is_unspecified()) {
                stack::FlowKey flow;
                flow.dst = binding->care_of_address;
                inner.header().src = stack().select_source(flow);
            }
            ++stats_.in_de_sent;
            net::Packet outer = encap_->encapsulate(inner, inner.header().src,
                                                    binding->care_of_address);
            stack().trace_packet(
                sim::TraceKind::Encapsulated, outer,
                sim::TraceDetail::with_text(sim::TraceDetailKind::EncapTo,
                                            encap_->name(),
                                            binding->care_of_address.value()));
            stack().send(std::move(outer));
        });

        stack().set_policy_resolver(this);
    }
}

CorrespondentHost::~CorrespondentHost() {
    stack().set_policy_resolver(nullptr);
}

void CorrespondentHost::learn_binding(net::Ipv4Address home, net::Ipv4Address care_of,
                                      sim::Duration ttl) {
    binding_cache_.set(home, care_of, simulator().now() + ttl);
}

void CorrespondentHost::discover_via_dns(dns::Resolver& resolver, const std::string& name,
                                         std::function<void(net::Ipv4Address)> done) {
    resolver.resolve(name, dns::RecordType::A, [this, &resolver, name,
                                                done = std::move(done)](
                                                   std::vector<dns::Record> a_records) {
        if (a_records.empty()) {
            if (done) done(net::Ipv4Address{});
            return;
        }
        const net::Ipv4Address home = a_records.front().addr;
        resolver.resolve(name, dns::RecordType::TA,
                         [this, home, done = std::move(done)](std::vector<dns::Record> tas) {
                             if (!tas.empty()) {
                                 learn_binding(home, tas.front().addr,
                                               sim::seconds(tas.front().ttl_seconds));
                             }
                             if (done) done(home);
                         });
    });
}

std::optional<std::size_t> CorrespondentHost::on_link_interface(net::Ipv4Address addr) const {
    for (std::size_t i = 0; i < stack().interface_count(); ++i) {
        const stack::Interface& ifc = stack().iface(i);
        if (ifc.is_physical() && ifc.configured() && ifc.subnet().contains(addr)) {
            return i;
        }
    }
    return std::nullopt;
}

InMode CorrespondentHost::mode_for(net::Ipv4Address mobile_home) const {
    if (config_.awareness != Awareness::MobileAware) {
        return InMode::IE;
    }
    const auto binding = binding_cache_.lookup(mobile_home, simulator().now());
    if (!binding) {
        return InMode::IE;
    }
    if (on_link_interface(binding->care_of_address)) {
        return InMode::DH;
    }
    return InMode::DE;
}

std::optional<stack::Resolution> CorrespondentHost::resolve(const stack::FlowKey& flow) {
    const auto binding = binding_cache_.lookup(flow.dst, simulator().now());
    if (!binding) {
        return std::nullopt;
    }
    // Row C: the mobile host is on one of our own segments — deliver the
    // plain packet in a single link-layer hop, addressed (at the link
    // layer) to the care-of address's MAC (paper §5 In-DH, §6.3).
    if (auto ifc = on_link_interface(binding->care_of_address)) {
        ++stats_.in_dh_sent;
        return stack::Resolution::via_interface(*ifc, binding->care_of_address);
    }
    // Row B: encapsulate it ourselves (In-DE).
    return stack::Resolution::via_interface(vif_direct_);
}

}  // namespace mip::core
