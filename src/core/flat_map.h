// FlatAddressMap — an insertion-ordered open-addressing hash map keyed
// by net::Ipv4Address (ISSUE 6: std::map-style agent registries become
// flat maps for the city-scale scenario).
//
// The node-based std::map behind the home agent's binding table costs an
// allocation plus pointer-chasing per operation; a city-scale run doing
// millions of registrations against tables holding thousands of bindings
// turns that into the dominant cost. This map keeps entries contiguous:
//
//   entries_   the live (key, value) pairs, in strict insertion order —
//              which is what "stable iteration order" means here: the
//              order never depends on hash seeding or capacity, so any
//              artifact derived from a walk is deterministic
//   slots_     power-of-two open-addressing index (linear probing) of
//              entry positions, value = index + 1, 0 = empty
//
// Lookups are one hash + a short linear probe over a contiguous array;
// insertions amortize O(1). Erase preserves insertion order by erasing
// from entries_ and rebuilding the index — O(n), the right trade for
// tables whose removals (deregistration, crash wipe, lifetime GC) are
// rare next to their lookups.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "net/ipv4_address.h"

namespace mip::core {

template <typename Value>
class FlatAddressMap {
public:
    struct Entry {
        net::Ipv4Address key;
        Value value;
    };

    Value* find(net::Ipv4Address key) noexcept {
        const std::size_t e = slot_of(key);
        return e == kNone ? nullptr : &entries_[e].value;
    }
    const Value* find(net::Ipv4Address key) const noexcept {
        const std::size_t e = slot_of(key);
        return e == kNone ? nullptr : &entries_[e].value;
    }
    bool contains(net::Ipv4Address key) const noexcept { return slot_of(key) != kNone; }

    /// Inserts or overwrites; returns the stored value. A new key is
    /// appended to the iteration order, an existing key keeps its place.
    Value& insert_or_assign(net::Ipv4Address key, Value value) {
        if (Value* existing = find(key)) {
            *existing = std::move(value);
            return *existing;
        }
        if ((entries_.size() + 1) * 4 > slots_.size() * 3) {
            grow(slots_.empty() ? kMinSlots : slots_.size() * 2);
        }
        entries_.push_back(Entry{key, std::move(value)});
        place(key, entries_.size() - 1);
        return entries_.back().value;
    }

    /// Removes @p key; returns whether it was present. Later entries keep
    /// their relative order.
    bool erase(net::Ipv4Address key) {
        const std::size_t e = slot_of(key);
        if (e == kNone) return false;
        entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(e));
        reindex();
        return true;
    }

    /// Removes every entry for which @p pred(key, value) is true, keeping
    /// the survivors' order; returns how many were removed.
    template <typename Pred>
    std::size_t erase_if(Pred pred) {
        const std::size_t before = entries_.size();
        std::erase_if(entries_, [&](const Entry& e) { return pred(e.key, e.value); });
        if (entries_.size() != before) reindex();
        return before - entries_.size();
    }

    void clear() {
        entries_.clear();
        slots_.assign(slots_.size(), 0);
    }

    std::size_t size() const noexcept { return entries_.size(); }
    bool empty() const noexcept { return entries_.empty(); }

    /// The live entries in insertion order. Stable across rehashes; the
    /// reference invalidates on any mutation, like a vector's.
    const std::vector<Entry>& entries() const noexcept { return entries_; }

private:
    static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
    static constexpr std::size_t kMinSlots = 16;

    static std::size_t hash(net::Ipv4Address key) noexcept {
        // Multiplicative (Fibonacci) hash; IPv4 keys differing only in
        // low bits spread across the table.
        return static_cast<std::size_t>(key.value() * 0x9E3779B9u);
    }

    std::size_t slot_of(net::Ipv4Address key) const noexcept {
        if (slots_.empty()) return kNone;
        const std::size_t mask = slots_.size() - 1;
        for (std::size_t i = hash(key) & mask;; i = (i + 1) & mask) {
            const std::uint32_t s = slots_[i];
            if (s == 0) return kNone;
            const std::size_t e = s - 1;
            if (entries_[e].key == key) return e;
        }
    }

    void place(net::Ipv4Address key, std::size_t entry_index) noexcept {
        const std::size_t mask = slots_.size() - 1;
        std::size_t i = hash(key) & mask;
        while (slots_[i] != 0) i = (i + 1) & mask;
        slots_[i] = static_cast<std::uint32_t>(entry_index + 1);
    }

    void grow(std::size_t nslots) {
        slots_.assign(nslots, 0);
        for (std::size_t e = 0; e < entries_.size(); ++e) {
            place(entries_[e].key, e);
        }
    }

    void reindex() { grow(slots_.empty() ? kMinSlots : slots_.size()); }

    std::vector<Entry> entries_;
    std::vector<std::uint32_t> slots_;
};

}  // namespace mip::core
