#include "core/capability_probe.h"

#include <cstdio>

#include "obs/decision.h"

namespace mip::core {

namespace {
constexpr std::array<OutMode, 4> kProbeOrder{OutMode::IE, OutMode::DE, OutMode::DH,
                                             OutMode::DT};
}

struct CapabilityProber::Session {
    net::Ipv4Address dst;
    std::size_t next_mode = 0;
    unsigned attempt = 0;  ///< retries already burned on the current mode
    /// Seeded decorrelated-jitter stream for retry backoff (ISSUE 9);
    /// empty when retry_jitter is off (legacy synchronized doubling).
    std::optional<DecorrelatedBackoff> jitter;
    ProbeReport report;
    Callback done;
    bool apply_to_cache = false;
    /// Whether the cache had an entry before probing (so we can restore a
    /// clean slate afterwards).
    bool had_entry = false;
    DeliveryMethodCache::Entry saved_entry;
};

std::string ProbeReport::summary() const {
    std::string out = correspondent.to_string() + ":";
    for (OutMode m : kAllOutModes) {
        out += " " + to_string(m) + "=";
        out += works(m) ? "ok" : "no";
    }
    out += " -> " + to_string(recommended);
    return out;
}

CapabilityProber::CapabilityProber(MobileHost& mh, ProbeConfig config)
    : mh_(mh), config_(config), pinger_(mh.stack()) {}

void CapabilityProber::note(net::Ipv4Address dst, const char* test, std::string input,
                            bool passed, OutMode mode, std::string detail) {
    obs::DecisionLog* log = mh_.method_cache().decision_log();
    if (log == nullptr) return;
    obs::DecisionEvent ev;
    ev.when = mh_.simulator().now();
    ev.node = mh_.name();
    ev.correspondent = dst.to_string();
    ev.trigger = "probe";
    ev.test = test;
    ev.input = std::move(input);
    ev.passed = passed;
    ev.from_mode = to_string(mode);
    ev.to_mode = to_string(mode);
    ev.detail = std::move(detail);
    log->record(std::move(ev));
}

void CapabilityProber::probe(net::Ipv4Address correspondent, Callback done,
                             bool apply_to_cache) {
    if (mh_.registration_circuit_open()) {
        // The registration retry budget is exhausted and the host is
        // parked: the control plane is the thing that is down, so adding
        // probe echoes to it only feeds the storm. Refuse immediately.
        ++suppressed_;
        ProbeReport empty;
        empty.correspondent = correspondent;
        note(correspondent, "circuit-suppressed", "registration circuit open", false,
             empty.recommended, "probe refused while parked; no traffic sent");
        if (done) done(empty);
        return;
    }
    auto s = std::make_shared<Session>();
    s->dst = correspondent;
    s->report.correspondent = correspondent;
    s->done = std::move(done);
    s->apply_to_cache = apply_to_cache;
    if (config_.retry_jitter && config_.retries_per_mode > 0) {
        const std::uint64_t seed =
            config_.retry_jitter_seed != 0
                ? config_.retry_jitter_seed
                : mix64(0x70726f62656a6974ull ^ mh_.home_address().value());
        s->jitter.emplace(mix64(seed ^ correspondent.value()), config_.retry_backoff,
                          config_.retry_backoff * 8);
    }
    if (const auto* entry = mh_.method_cache().find(correspondent)) {
        s->had_entry = true;
        s->saved_entry = *entry;
    }
    ++in_flight_;
    // The session advances itself mode by mode through ping callbacks.
    advance(std::move(s));
}

void CapabilityProber::advance(std::shared_ptr<Session> s) {
    if (s->next_mode >= kProbeOrder.size()) {
        // All probes done: recommend the most aggressive working home mode.
        s->report.any_home_mode_works = s->report.works(OutMode::IE) ||
                                        s->report.works(OutMode::DE) ||
                                        s->report.works(OutMode::DH);
        if (s->report.works(OutMode::DH)) {
            s->report.recommended = OutMode::DH;
        } else if (s->report.works(OutMode::DE)) {
            s->report.recommended = OutMode::DE;
        } else {
            s->report.recommended = OutMode::IE;
        }
        note(s->dst, "recommendation", s->report.summary(),
             s->report.any_home_mode_works, s->report.recommended,
             s->apply_to_cache ? "applying recommendation to cache"
                               : "report only; cache restored");
        if (s->apply_to_cache) {
            mh_.force_mode(s->dst, s->report.recommended);
        } else if (s->had_entry && s->saved_entry.forced) {
            mh_.force_mode(s->dst, s->saved_entry.mode);
        } else {
            mh_.method_cache().reset(s->dst);
        }
        --in_flight_;
        if (s->done) s->done(s->report);
        return;
    }

    const OutMode mode = kProbeOrder[s->next_mode];
    ++s->next_mode;
    s->attempt = 0;

    net::Ipv4Address src;
    if (mode == OutMode::DT) {
        src = mh_.care_of_address();
        if (src.is_unspecified()) {
            // No care-of address of our own (e.g. attached via a foreign
            // agent): Out-DT is structurally unavailable.
            note(s->dst, "availability", "care-of address unspecified", false, mode,
                 "Out-DT structurally unavailable; skipped");
            advance(std::move(s));
            return;
        }
    } else {
        src = mh_.home_address();
    }
    launch(std::move(s), mode, src);
}

void CapabilityProber::launch(std::shared_ptr<Session> s, OutMode mode,
                              net::Ipv4Address src) {
    if (mode != OutMode::DT) {
        mh_.force_mode(s->dst, mode);
    }
    pinger_.ping(
        s->dst,
        [this, s, mode, src](std::optional<sim::Duration> rtt,
                             const transport::RxMeta&) mutable {
            const auto idx = static_cast<std::size_t>(mode);
            if (rtt) {
                s->report.mode_works[idx] = true;
                s->report.mode_rtt_ms[idx] = sim::to_milliseconds(*rtt);
                char input[48];
                std::snprintf(input, sizeof input, "rtt=%.3fms",
                              s->report.mode_rtt_ms[idx]);
                note(s->dst, "probe-ping", input, true, mode, "echo reply received");
                advance(std::move(s));
                return;
            }
            if (s->attempt < config_.retries_per_mode) {
                // One lost echo is weak evidence during a loss burst: back
                // off and try the same mode again before condemning it.
                ++s->attempt;
                sim::Duration delay;
                if (s->jitter) {
                    delay = s->jitter->next();
                } else {
                    delay = config_.retry_backoff;
                    for (unsigned i = 1; i < s->attempt; ++i) delay *= 2;
                }
                note(s->dst, "probe-retry",
                     "attempt=" + std::to_string(s->attempt) + "/" +
                         std::to_string(config_.retries_per_mode),
                     false, mode, "echo timed out; backing off and retrying");
                mh_.simulator().schedule_in(
                    delay,
                    [this, s, mode, src]() mutable { launch(std::move(s), mode, src); },
                    "probe-retry");
                return;
            }
            s->report.mode_works[idx] = false;
            note(s->dst, "probe-ping", "timeout", false, mode, "no echo reply");
            advance(std::move(s));
        },
        config_.per_mode_timeout, config_.payload, src);
}

}  // namespace mip::core
