#include "core/capability_probe.h"

namespace mip::core {

namespace {
constexpr std::array<OutMode, 4> kProbeOrder{OutMode::IE, OutMode::DE, OutMode::DH,
                                             OutMode::DT};
}

struct CapabilityProber::Session {
    net::Ipv4Address dst;
    std::size_t next_mode = 0;
    ProbeReport report;
    Callback done;
    bool apply_to_cache = false;
    /// Whether the cache had an entry before probing (so we can restore a
    /// clean slate afterwards).
    bool had_entry = false;
    DeliveryMethodCache::Entry saved_entry;
};

std::string ProbeReport::summary() const {
    std::string out = correspondent.to_string() + ":";
    for (OutMode m : kAllOutModes) {
        out += " " + to_string(m) + "=";
        out += works(m) ? "ok" : "no";
    }
    out += " -> " + to_string(recommended);
    return out;
}

CapabilityProber::CapabilityProber(MobileHost& mh, ProbeConfig config)
    : mh_(mh), config_(config), pinger_(mh.stack()) {}

void CapabilityProber::probe(net::Ipv4Address correspondent, Callback done,
                             bool apply_to_cache) {
    auto s = std::make_shared<Session>();
    s->dst = correspondent;
    s->report.correspondent = correspondent;
    s->done = std::move(done);
    s->apply_to_cache = apply_to_cache;
    if (const auto* entry = mh_.method_cache().find(correspondent)) {
        s->had_entry = true;
        s->saved_entry = *entry;
    }
    ++in_flight_;
    // The session advances itself mode by mode through ping callbacks.
    advance(std::move(s));
}

void CapabilityProber::advance(std::shared_ptr<Session> s) {
    if (s->next_mode >= kProbeOrder.size()) {
        // All probes done: recommend the most aggressive working home mode.
        s->report.any_home_mode_works = s->report.works(OutMode::IE) ||
                                        s->report.works(OutMode::DE) ||
                                        s->report.works(OutMode::DH);
        if (s->report.works(OutMode::DH)) {
            s->report.recommended = OutMode::DH;
        } else if (s->report.works(OutMode::DE)) {
            s->report.recommended = OutMode::DE;
        } else {
            s->report.recommended = OutMode::IE;
        }
        if (s->apply_to_cache) {
            mh_.force_mode(s->dst, s->report.recommended);
        } else if (s->had_entry && s->saved_entry.forced) {
            mh_.force_mode(s->dst, s->saved_entry.mode);
        } else {
            mh_.method_cache().reset(s->dst);
        }
        --in_flight_;
        if (s->done) s->done(s->report);
        return;
    }

    const OutMode mode = kProbeOrder[s->next_mode];
    ++s->next_mode;

    net::Ipv4Address src;
    if (mode == OutMode::DT) {
        src = mh_.care_of_address();
        if (src.is_unspecified()) {
            // No care-of address of our own (e.g. attached via a foreign
            // agent): Out-DT is structurally unavailable.
            advance(std::move(s));
            return;
        }
    } else {
        src = mh_.home_address();
        mh_.force_mode(s->dst, mode);
    }

    const auto started = mh_.simulator().now();
    pinger_.ping(
        s->dst,
        [this, s, mode, started](std::optional<sim::Duration> rtt) mutable {
            (void)started;
            const auto idx = static_cast<std::size_t>(mode);
            s->report.mode_works[idx] = rtt.has_value();
            if (rtt) {
                s->report.mode_rtt_ms[idx] = sim::to_milliseconds(*rtt);
            }
            advance(std::move(s));
        },
        config_.per_mode_timeout, config_.payload, src);
}

}  // namespace mip::core
