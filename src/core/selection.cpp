#include "core/selection.h"

namespace mip::core {

std::optional<OutMode> ConservativeFirstStrategy::upgrade(net::Ipv4Address,
                                                          OutMode current) const {
    // Probe in the paper's order: Out-IE -> Out-DE -> Out-DH (§7.1.2:
    // "tentatively try each of the more aggressive options (Out-DE and
    // Out-DH)").
    switch (current) {
        case OutMode::IE: return OutMode::DE;
        case OutMode::DE: return OutMode::DH;
        default: return std::nullopt;
    }
}

OutMode AggressiveFirstStrategy::after_failure(net::Ipv4Address, OutMode failed) const {
    // "start with the most aggressive (Out-DH). If this fails it can then
    // try the more conservative options (Out-DE and then Out-IE)".
    switch (failed) {
        case OutMode::DH: return OutMode::DE;
        case OutMode::DE: return OutMode::IE;
        default: return OutMode::IE;
    }
}

RuleBasedStrategy::RuleBasedStrategy(std::vector<SelectionRule> rules, bool default_optimistic)
    : rules_(std::move(rules)), default_optimistic_(default_optimistic) {}

bool RuleBasedStrategy::optimistic_for(net::Ipv4Address dst) const {
    const SelectionRule* best = nullptr;
    for (const auto& rule : rules_) {
        if (!rule.prefix.contains(dst)) continue;
        if (best == nullptr || rule.prefix.length() > best->prefix.length()) {
            best = &rule;
        }
    }
    return best != nullptr ? best->optimistic : default_optimistic_;
}

OutMode RuleBasedStrategy::initial(net::Ipv4Address dst) const {
    return optimistic_for(dst) ? aggressive_.initial(dst) : conservative_.initial(dst);
}

OutMode RuleBasedStrategy::after_failure(net::Ipv4Address dst, OutMode failed) const {
    return optimistic_for(dst) ? aggressive_.after_failure(dst, failed)
                               : conservative_.after_failure(dst, failed);
}

std::optional<OutMode> RuleBasedStrategy::upgrade(net::Ipv4Address dst,
                                                  OutMode current) const {
    return optimistic_for(dst) ? aggressive_.upgrade(dst, current)
                               : conservative_.upgrade(dst, current);
}

DeliveryMethodCache::DeliveryMethodCache(std::unique_ptr<SelectionStrategy> strategy,
                                         MethodCacheConfig config)
    : strategy_(std::move(strategy)), config_(config) {}

const DeliveryMethodCache::Entry* DeliveryMethodCache::find(net::Ipv4Address dst) const {
    auto it = entries_.find(dst);
    return it != entries_.end() ? &it->second : nullptr;
}

DeliveryMethodCache::Entry& DeliveryMethodCache::entry_for(net::Ipv4Address dst,
                                                           sim::TimePoint now) {
    auto [it, inserted] = entries_.try_emplace(dst);
    if (inserted) {
        it->second.mode = strategy_->initial(dst);
        it->second.last_good = OutMode::IE;
        (void)now;
    }
    return it->second;
}

bool DeliveryMethodCache::blacklisted(const Entry& e, OutMode m, sim::TimePoint now) const {
    auto it = e.blacklist_until.find(m);
    return it != e.blacklist_until.end() && it->second > now;
}

OutMode DeliveryMethodCache::mode_for(net::Ipv4Address dst, sim::TimePoint now) {
    return entry_for(dst, now).mode;
}

void DeliveryMethodCache::force_mode(net::Ipv4Address dst, OutMode mode) {
    Entry& e = entry_for(dst, 0);
    e.mode = mode;
    e.forced = true;
    e.probing = false;
    e.consecutive_failures = 0;
    e.consecutive_successes = 0;
}

void DeliveryMethodCache::report_success(net::Ipv4Address dst, sim::TimePoint now) {
    Entry& e = entry_for(dst, now);
    e.consecutive_failures = 0;
    if (e.forced) return;
    ++e.consecutive_successes;

    if (e.probing && e.consecutive_successes >= config_.upgrade_after) {
        // The probed mode held up: adopt it as the new baseline.
        e.probing = false;
        e.last_good = e.mode;
        ++stats_.probes_confirmed;
    }
    if (!e.probing && e.consecutive_successes >= config_.upgrade_after) {
        if (auto next = strategy_->upgrade(dst, e.mode);
            next && !blacklisted(e, *next, now)) {
            e.last_good = e.mode;
            e.mode = *next;
            e.probing = true;
            e.consecutive_successes = 0;
            ++stats_.upgrades_probed;
        }
    }
}

void DeliveryMethodCache::report_failure(net::Ipv4Address dst, sim::TimePoint now) {
    Entry& e = entry_for(dst, now);
    e.consecutive_successes = 0;
    if (e.forced) return;

    if (e.probing) {
        // Tentative modes are abandoned on the first sign of trouble
        // ("being prepared to return to the conservative method if the more
        // aggressive method fails").
        e.blacklist_until[e.mode] = now + config_.blacklist_ttl;
        e.mode = e.last_good;
        e.probing = false;
        e.consecutive_failures = 0;
        ++stats_.probes_reverted;
        return;
    }

    ++e.consecutive_failures;
    if (e.consecutive_failures < config_.failure_threshold) {
        return;
    }
    e.consecutive_failures = 0;
    if (e.mode == OutMode::IE) {
        return;  // the floor: nothing more conservative exists
    }
    e.blacklist_until[e.mode] = now + config_.blacklist_ttl;
    OutMode next = strategy_->after_failure(dst, e.mode);
    // Skip over blacklisted fallbacks (e.g. DH failed before, DE failed
    // now: go straight to IE).
    while (next != OutMode::IE && blacklisted(e, next, now)) {
        next = strategy_->after_failure(dst, next);
    }
    e.mode = next;
    ++stats_.downgrades;
}

}  // namespace mip::core
