#include "core/selection.h"

namespace mip::core {

std::optional<OutMode> ConservativeFirstStrategy::upgrade(net::Ipv4Address,
                                                          OutMode current) const {
    // Probe in the paper's order: Out-IE -> Out-DE -> Out-DH (§7.1.2:
    // "tentatively try each of the more aggressive options (Out-DE and
    // Out-DH)").
    switch (current) {
        case OutMode::IE: return OutMode::DE;
        case OutMode::DE: return OutMode::DH;
        default: return std::nullopt;
    }
}

OutMode AggressiveFirstStrategy::after_failure(net::Ipv4Address, OutMode failed) const {
    // "start with the most aggressive (Out-DH). If this fails it can then
    // try the more conservative options (Out-DE and then Out-IE)".
    switch (failed) {
        case OutMode::DH: return OutMode::DE;
        case OutMode::DE: return OutMode::IE;
        default: return OutMode::IE;
    }
}

RuleBasedStrategy::RuleBasedStrategy(std::vector<SelectionRule> rules, bool default_optimistic)
    : rules_(std::move(rules)), default_optimistic_(default_optimistic) {}

bool RuleBasedStrategy::optimistic_for(net::Ipv4Address dst) const {
    const SelectionRule* best = nullptr;
    for (const auto& rule : rules_) {
        if (!rule.prefix.contains(dst)) continue;
        if (best == nullptr || rule.prefix.length() > best->prefix.length()) {
            best = &rule;
        }
    }
    return best != nullptr ? best->optimistic : default_optimistic_;
}

OutMode RuleBasedStrategy::initial(net::Ipv4Address dst) const {
    return optimistic_for(dst) ? aggressive_.initial(dst) : conservative_.initial(dst);
}

OutMode RuleBasedStrategy::after_failure(net::Ipv4Address dst, OutMode failed) const {
    return optimistic_for(dst) ? aggressive_.after_failure(dst, failed)
                               : conservative_.after_failure(dst, failed);
}

std::optional<OutMode> RuleBasedStrategy::upgrade(net::Ipv4Address dst,
                                                  OutMode current) const {
    return optimistic_for(dst) ? aggressive_.upgrade(dst, current)
                               : conservative_.upgrade(dst, current);
}

DeliveryMethodCache::DeliveryMethodCache(std::unique_ptr<SelectionStrategy> strategy,
                                         MethodCacheConfig config)
    : strategy_(std::move(strategy)), config_(config) {}

void DeliveryMethodCache::set_decision_log(obs::DecisionLog* log, std::string node) {
    log_ = log;
    node_ = std::move(node);
}

void DeliveryMethodCache::note(sim::TimePoint now, net::Ipv4Address dst,
                               const char* trigger, const char* test,
                               std::string input, bool passed, OutMode from,
                               OutMode to, std::string detail) const {
    if (log_ == nullptr) return;
    obs::DecisionEvent ev;
    ev.when = now;
    ev.node = node_;
    ev.correspondent = dst.to_string();
    ev.trigger = trigger;
    ev.test = test;
    ev.input = std::move(input);
    ev.passed = passed;
    ev.from_mode = to_string(from);
    ev.to_mode = to_string(to);
    ev.detail = std::move(detail);
    log_->record(std::move(ev));
}

const DeliveryMethodCache::Entry* DeliveryMethodCache::find(net::Ipv4Address dst) const {
    auto it = entries_.find(dst);
    return it != entries_.end() ? &it->second : nullptr;
}

DeliveryMethodCache::Entry& DeliveryMethodCache::entry_for(net::Ipv4Address dst,
                                                           sim::TimePoint now) {
    auto [it, inserted] = entries_.try_emplace(dst);
    if (inserted) {
        it->second.mode = strategy_->initial(dst);
        it->second.last_good = OutMode::IE;
        it->second.validated_at = now;
        if (log_ != nullptr) {
            note(now, dst, "initial", "strategy", strategy_->name(), true,
                 it->second.mode, it->second.mode, "first packet to correspondent");
        }
    }
    return it->second;
}

bool DeliveryMethodCache::blacklisted(const Entry& e, OutMode m, sim::TimePoint now) const {
    auto it = e.blacklist_until.find(m);
    return it != e.blacklist_until.end() && it->second > now;
}

OutMode DeliveryMethodCache::mode_for(net::Ipv4Address dst, sim::TimePoint now) {
    Entry& e = entry_for(dst, now);
    maybe_expire(dst, e, now);
    return e.mode;
}

void DeliveryMethodCache::maybe_expire(net::Ipv4Address dst, Entry& e, sim::TimePoint now) {
    if (config_.mode_ttl <= 0 || e.forced) return;
    const sim::Duration age = now - e.validated_at;
    if (age < config_.mode_ttl) return;
    e.validated_at = now;
    // Re-probe the strategy's initial mode tentatively: the existing probe
    // machinery reverts to the current mode on the first failure.
    const OutMode fresh = strategy_->initial(dst);
    if (fresh == e.mode || blacklisted(e, fresh, now)) return;
    const OutMode previous = e.mode;
    e.last_good = previous;
    e.mode = fresh;
    e.probing = true;
    e.consecutive_failures = 0;
    e.consecutive_successes = 0;
    ++stats_.ttl_expiries;
    if (log_ != nullptr) {
        note(now, dst, "ttl", "mode-ttl",
             "age=" + std::to_string(age / 1'000'000) + "ms", true,
             previous, fresh, "cached mode stale; re-probing strategy initial");
    }
}

void DeliveryMethodCache::force_mode(net::Ipv4Address dst, OutMode mode,
                                     sim::TimePoint now) {
    Entry& e = entry_for(dst, now);
    const OutMode previous = e.mode;
    e.mode = mode;
    e.forced = true;
    e.probing = false;
    e.consecutive_failures = 0;
    e.consecutive_successes = 0;
    if (log_ != nullptr) {
        note(now, dst, "forced", "override", "", true, previous, mode,
             "mode pinned; automatic selection disabled");
    }
}

void DeliveryMethodCache::report_success(net::Ipv4Address dst, sim::TimePoint now) {
    Entry& e = entry_for(dst, now);
    e.validated_at = now;
    e.consecutive_failures = 0;
    if (e.forced) return;
    ++e.consecutive_successes;

    if (e.probing && e.consecutive_successes >= config_.upgrade_after) {
        // The probed mode held up: adopt it as the new baseline.
        e.probing = false;
        e.last_good = e.mode;
        ++stats_.probes_confirmed;
        if (log_ != nullptr) {
            note(now, dst, "upgrade", "probe",
                 "successes=" + std::to_string(e.consecutive_successes) + "/" +
                     std::to_string(config_.upgrade_after),
                 true, e.mode, e.mode, "probed mode confirmed as new baseline");
        }
    }
    if (!e.probing && e.consecutive_successes >= config_.upgrade_after) {
        if (auto next = strategy_->upgrade(dst, e.mode);
            next && !blacklisted(e, *next, now)) {
            const OutMode previous = e.mode;
            e.last_good = e.mode;
            e.mode = *next;
            e.probing = true;
            e.consecutive_successes = 0;
            ++stats_.upgrades_probed;
            if (log_ != nullptr) {
                note(now, dst, "upgrade", "success-streak",
                     "successes=" + std::to_string(config_.upgrade_after) + "/" +
                         std::to_string(config_.upgrade_after),
                     true, previous, e.mode, "tentatively probing more aggressive mode");
            }
        }
    }
}

void DeliveryMethodCache::report_failure(net::Ipv4Address dst, sim::TimePoint now,
                                         const std::string& reason) {
    Entry& e = entry_for(dst, now);
    e.validated_at = now;
    e.consecutive_successes = 0;
    if (e.forced) return;

    if (e.probing) {
        // Tentative modes are abandoned on the first sign of trouble
        // ("being prepared to return to the conservative method if the more
        // aggressive method fails").
        const OutMode probed = e.mode;
        e.blacklist_until[e.mode] = now + config_.blacklist_ttl;
        e.mode = e.last_good;
        e.probing = false;
        e.consecutive_failures = 0;
        ++stats_.probes_reverted;
        if (log_ != nullptr) {
            note(now, dst, "failure", "probe", reason, false, probed, e.mode,
                 "probe reverted; " + to_string(probed) + " blacklisted");
        }
        return;
    }

    ++e.consecutive_failures;
    if (e.consecutive_failures < config_.failure_threshold) {
        if (log_ != nullptr) {
            note(now, dst, "failure", "failure-threshold",
                 reason + ", failures=" + std::to_string(e.consecutive_failures) +
                     "/" + std::to_string(config_.failure_threshold),
                 true, e.mode, e.mode, "below threshold; mode kept");
        }
        return;
    }
    const unsigned failures = e.consecutive_failures;
    e.consecutive_failures = 0;
    if (e.mode == OutMode::IE) {
        if (log_ != nullptr) {
            note(now, dst, "failure", "failure-threshold",
                 reason + ", failures=" + std::to_string(failures) + "/" +
                     std::to_string(config_.failure_threshold),
                 false, OutMode::IE, OutMode::IE,
                 "at the Out-IE floor; nothing more conservative exists");
        }
        return;  // the floor: nothing more conservative exists
    }
    const OutMode failed = e.mode;
    e.blacklist_until[e.mode] = now + config_.blacklist_ttl;
    OutMode next = strategy_->after_failure(dst, e.mode);
    // Skip over blacklisted fallbacks (e.g. DH failed before, DE failed
    // now: go straight to IE).
    while (next != OutMode::IE && blacklisted(e, next, now)) {
        next = strategy_->after_failure(dst, next);
    }
    e.mode = next;
    ++stats_.downgrades;
    if (log_ != nullptr) {
        note(now, dst, "failure", "failure-threshold",
             reason + ", failures=" + std::to_string(failures) + "/" +
                 std::to_string(config_.failure_threshold),
             false, failed, next, to_string(failed) + " blacklisted");
    }
}

}  // namespace mip::core
