// Control-plane overload protection (ISSUE 9): the paper's 4x4 grid
// assumes the home agent always has capacity for every registration, but
// at city scale a handoff storm turns UDP 434 into a thundering herd.
// This header holds the building blocks both sides of that fight use:
//
//   server side   RegistrationQueue — a bounded two-class work queue with
//                 a fixed service time, renewal-over-new priority, drop-
//                 oldest-within-class shedding and a token-bucket
//                 admission limiter for the new-registration class. An
//                 overloaded agent keeps serving existing bindings (the
//                 renewal fast-path bypasses the token bucket) while
//                 shedding new arrivals — graceful degradation instead of
//                 collapse.
//
//   client side   DecorrelatedBackoff — deterministic seeded decorrelated
//                 jitter (delay = uniform(base, 3 x previous), capped), so
//                 10k hosts orphaned by the same agent crash do NOT retry
//                 in lockstep. Every draw is a pure function of (seed,
//                 monotone draw counter): byte-identical per seed, at any
//                 sweep --jobs.
//
// Shedding is silent by design: a denial reply would itself cost a send
// on the saturated path, and the client's retry timeout already covers
// the loss. Every shed and queue deferral is audited as a DecisionEvent
// (trigger "overload") and exported as counters/gauges, so the decision
// to drop is observable even though the dropped packet is not.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "sim/simulator.h"
#include "sim/time.h"

namespace mip::obs {
class MetricsRegistry;
class DecisionLog;
class HealthMonitor;
}  // namespace mip::obs

namespace mip::core {

/// splitmix64 finalizer: the same cheap avalanche mix the mobility seeds
/// use. Pure, stateless — the determinism contract (DESIGN §10) leans on
/// every "random" draw being a function of values like this.
inline std::uint64_t mix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/// Deterministic seeded decorrelated jitter (the "decorrelated jitter"
/// variant of exponential backoff): each delay is drawn uniformly from
/// [base, 3 x previous), clamped to [base, cap]. The first draw after a
/// reset uses previous = base. The draw counter is monotone across
/// resets so a host's whole retry history is one reproducible stream.
class DecorrelatedBackoff {
public:
    DecorrelatedBackoff(std::uint64_t seed, sim::Duration base, sim::Duration cap)
        : seed_(seed), base_(base), cap_(cap) {}

    /// Next delay in the stream; advances the internal state.
    sim::Duration next();
    /// Restart the ramp (previous := base). Does NOT rewind the draw
    /// counter — determinism requires the stream to stay monotone.
    void reset() noexcept { prev_ = 0; }

    std::uint64_t draws() const noexcept { return draws_; }

private:
    std::uint64_t seed_;
    sim::Duration base_;
    sim::Duration cap_;
    sim::Duration prev_ = 0;  ///< 0 = fresh ramp (previous := base)
    std::uint64_t draws_ = 0;
};

/// Token bucket refilled in simulated time. Fractional tokens accrue as
/// doubles; the arithmetic is pure over (rate, burst, timestamps), so
/// refill order — and therefore admission — is deterministic.
class TokenBucket {
public:
    TokenBucket(double rate_per_sec, double burst)
        : rate_(rate_per_sec), burst_(burst), tokens_(burst) {}

    /// Take one token if available. Refills lazily from @p now.
    bool try_take(sim::TimePoint now);
    /// Current level (after lazy refill) — exported as a gauge.
    double tokens(sim::TimePoint now);

private:
    void refill(sim::TimePoint now);

    double rate_;
    double burst_;
    double tokens_;
    sim::TimePoint last_ = 0;
};

/// Registration work classes, in priority order. Renewals of existing
/// bindings outrank new registrations: losing a renewal breaks a host
/// that is currently working, losing a new arrival merely delays one
/// that is not yet served.
enum class RequestClass : std::uint8_t { Renewal = 0, New = 1 };

const char* to_string(RequestClass c) noexcept;

/// Overload-protection knobs for an agent's registration path. The
/// default-constructed config is the *protected* shape; set
/// queue_capacity = 0 for an unbounded queue (the ablation's
/// protection-off leg) and new_tokens_per_sec = 0 to disable admission
/// control.
struct OverloadConfig {
    /// Fixed per-request service time — the agent's modeled processing
    /// cost (authentication, binding write, ARP update). Queue depth in
    /// requests x service_time = queueing delay.
    sim::Duration service_time = sim::milliseconds(10);
    /// Total queued requests across both classes. 0 = unbounded (no
    /// shedding — the collapse leg).
    std::size_t queue_capacity = 16;
    /// Token-bucket admission rate for the New class only — renewals
    /// always bypass the bucket (the renewal fast-path). 0 = no bucket.
    double new_tokens_per_sec = 0.0;
    /// Bucket burst size (also the initial level).
    double new_token_burst = 8.0;
};

/// Bounded priority work queue for an agent's registration path.
///
/// submit() classifies, admits and enqueues (or sheds); a self-scheduled
/// service loop pops one request per service_time, renewals first.
/// Shedding policy when the queue is full:
///   - an arriving Renewal evicts the oldest queued New (priority), or
///     failing that the oldest queued Renewal (drop-oldest within class);
///   - an arriving New evicts the oldest queued New — never a Renewal.
/// Every shed is audited (DecisionEvent, trigger "overload") and counted.
class RegistrationQueue {
public:
    RegistrationQueue(sim::Simulator& sim, OverloadConfig config)
        : sim_(sim), config_(config),
          bucket_(config.new_tokens_per_sec, config.new_token_burst) {}

    /// Admit-or-shed. @p who names the requester (home address) for the
    /// audit trail; @p work runs when the request reaches the head of the
    /// queue. Returns false when the request was shed (silently — no
    /// reply is sent for it).
    bool submit(RequestClass cls, const std::string& who, std::function<void()> work);

    /// Drops everything queued and stops the service loop (agent crash).
    void clear();

    std::size_t depth() const noexcept { return renewals_.size() + fresh_.size(); }

    struct Stats {
        std::size_t served_renewal = 0;
        std::size_t served_new = 0;
        std::size_t shed_new_bucket = 0;    ///< denied by the token bucket
        std::size_t shed_new_queue = 0;     ///< evicted from / refused a full queue
        std::size_t shed_renewal_queue = 0; ///< renewal dropped (queue all-renewal)
        std::size_t deferred = 0;           ///< admitted behind >= 1 waiter
        std::size_t queue_peak = 0;         ///< high-water depth
    };
    const Stats& stats() const noexcept { return stats_; }
    std::size_t shed_total() const noexcept {
        return stats_.shed_new_bucket + stats_.shed_new_queue + stats_.shed_renewal_queue;
    }

    const OverloadConfig& config() const noexcept { return config_; }

    /// Registers the queue's gauges under (node, "overload"): queue_depth,
    /// queue_peak, shed_* by class, served_* by class, deferred, tokens.
    void attach_metrics(obs::MetricsRegistry& metrics, const std::string& node);
    /// Audits sheds/deferrals into @p log (nullptr detaches) as node @p node.
    void set_decision_log(obs::DecisionLog* log, std::string node);

private:
    struct Item {
        std::string who;
        std::function<void()> work;
    };

    void audit(RequestClass cls, const std::string& who, const char* test,
               bool passed, std::string input, std::string detail);
    void ensure_service_scheduled();
    void service_one();

    sim::Simulator& sim_;
    OverloadConfig config_;
    TokenBucket bucket_;
    std::deque<Item> renewals_;
    std::deque<Item> fresh_;  ///< the New class ("new" is reserved)
    bool service_armed_ = false;
    sim::EventId service_timer_ = 0;
    Stats stats_;
    obs::DecisionLog* decisions_ = nullptr;
    std::string node_;
};

/// Arms the standard overload detectors for @p node on @p monitor:
///   "<node>-shed-spike"       rate spike on the total shed gauge — trips
///                             while the storm sheds, clears after;
///   "<node>-queue-watermark"  absolute depth watermark at @p depth_trip
///                             (collapse evidence: a protected queue can
///                             never reach it, an unbounded one does).
void arm_overload_monitors(obs::HealthMonitor& monitor, const std::string& node,
                           double depth_trip, double shed_min_rate = 4.0);

}  // namespace mip::core
