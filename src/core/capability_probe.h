// The abstract's "series of tests": "This makes it easier for a mobile
// host, through a series of tests, to determine which of the currently
// available optimizations is the best to use for any given correspondent
// host."
//
// CapabilityProber actively probes a correspondent with ICMP echoes forced
// through each outgoing mode, observes which return, and recommends the
// best available mode (most efficient working one, by the aggressive
// ordering DH > DE > IE). The result can seed the delivery-method cache so
// conversations start in the right mode instead of discovering it through
// retransmissions.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "core/mobile_host.h"
#include "transport/pinger.h"

namespace mip::core {

struct ProbeConfig {
    sim::Duration per_mode_timeout = sim::seconds(2);
    /// Echo payload used for probes.
    std::size_t payload = 32;
    /// Extra attempts per mode after a timeout, so one unlucky loss burst
    /// doesn't misclassify a working mode as broken. 0 = single shot (the
    /// pre-fault-subsystem behaviour).
    unsigned retries_per_mode = 0;
    /// Base delay before the first retry.
    sim::Duration retry_backoff = sim::milliseconds(500);
    /// Seeded decorrelated jitter on probe retries (ISSUE 9): each delay
    /// is drawn from [retry_backoff, 3 x previous), capped at 8x the
    /// base, so a fleet probing through the same loss burst doesn't
    /// re-synchronize. false = the legacy synchronized doubling.
    bool retry_jitter = true;
    /// Jitter seed; 0 derives one from the host's home address.
    std::uint64_t retry_jitter_seed = 0;
};

struct ProbeReport {
    net::Ipv4Address correspondent;
    /// Indexed by OutMode (IE, DE, DH, DT).
    std::array<bool, 4> mode_works{};
    std::array<double, 4> mode_rtt_ms{};
    /// The best working home-address mode (DH > DE > IE); IE when nothing
    /// was confirmed (the only mode that never needs probing).
    OutMode recommended = OutMode::IE;
    bool any_home_mode_works = false;

    bool works(OutMode m) const { return mode_works[static_cast<std::size_t>(m)]; }
    double rtt_ms(OutMode m) const { return mode_rtt_ms[static_cast<std::size_t>(m)]; }

    /// One-line human-readable summary.
    std::string summary() const;
};

class CapabilityProber {
public:
    using Callback = std::function<void(const ProbeReport&)>;

    explicit CapabilityProber(MobileHost& mh, ProbeConfig config = {});

    /// Probes @p correspondent through Out-IE, Out-DE, Out-DH and Out-DT in
    /// parallel; invokes @p done once all probes conclude.
    /// @p apply_to_cache seeds the delivery-method cache with the
    /// recommendation (force-pinning it).
    /// While the host's registration circuit is open (retry budget
    /// exhausted, agent unreachable) the probe is suppressed: @p done
    /// fires immediately with an empty report and the cache is left
    /// untouched — probe traffic must not pile onto a control plane that
    /// is already failing (ISSUE 9).
    void probe(net::Ipv4Address correspondent, Callback done, bool apply_to_cache = false);

    std::size_t probes_in_flight() const noexcept { return in_flight_; }
    /// Probes refused because the registration circuit was open.
    std::size_t probes_suppressed() const noexcept { return suppressed_; }

private:
    struct Session;
    /// Launches the next unprobed mode, or finalizes the report.
    void advance(std::shared_ptr<Session> s);
    /// Sends one echo through @p mode; a timeout retries with backoff up
    /// to config_.retries_per_mode before conceding the mode is broken.
    void launch(std::shared_ptr<Session> s, OutMode mode, net::Ipv4Address src);
    /// Records one per-mode probe step into the host's decision log (via
    /// the method cache's attached obs::DecisionLog; no-op when detached).
    void note(net::Ipv4Address dst, const char* test, std::string input, bool passed,
              OutMode mode, std::string detail);

    MobileHost& mh_;
    ProbeConfig config_;
    transport::Pinger pinger_;
    std::size_t in_flight_ = 0;
    std::size_t suppressed_ = 0;
};

}  // namespace mip::core
