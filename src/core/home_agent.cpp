#include "core/home_agent.h"

#include "net/icmp.h"
#include "net/protocol.h"

namespace mip::core {

HomeAgent::HomeAgent(sim::Simulator& simulator, std::string name, HomeAgentConfig config)
    : stack::Host(simulator, std::move(name)),
      config_(config),
      encap_(tunnel::make_encapsulator(config.encap_scheme)) {
    if (config_.overload) {
        overload_queue_ =
            std::make_unique<RegistrationQueue>(simulator, *config_.overload);
    }
    udp_ = std::make_unique<transport::UdpService>(stack());
    reg_socket_ = udp_->open(net::ports::kMobileIpRegistration);
    reg_socket_->set_receiver([this](std::span<const std::uint8_t> data,
                                     const transport::RxMeta& meta) {
        on_registration(data, meta.peer);
    });

    // Captured packets (proxy-ARP'd to us but addressed to a mobile host)
    // arrive on the forwarding path.
    stack().set_forward_interceptor(
        [this](const net::Packet& p, std::size_t in_iface) {
            return intercept_forward(p, in_iface);
        });

    // Reverse tunnel: decapsulate packets mobile hosts send us (Out-IE).
    stack().register_protocol(encap_->protocol(), [this](const net::Packet& p, std::size_t) {
        on_encapsulated(p);
    });
}

std::size_t HomeAgent::attach_home(sim::Link& link, net::Ipv4Address addr,
                                   net::Prefix subnet,
                                   std::optional<net::Ipv4Address> gateway) {
    home_interface_ = attach(link, addr, subnet, gateway);

    // §6.4 relay: join the configured groups on the home segment and
    // re-tunnel everything heard to each registered mobile host.
    if (!config_.multicast_relay_groups.empty()) {
        for (const auto group : config_.multicast_relay_groups) {
            stack().join_group(group);
        }
        stack().set_multicast_observer([this](const net::Packet& packet) {
            bindings_.expire(simulator().now());
            const net::Ipv4Address our_addr = stack().iface(home_interface_).address();
            for (const auto& binding : bindings_.snapshot()) {
                ++stats_.multicast_relayed;
                net::Packet outer =
                    encap_->encapsulate(packet, our_addr, binding.care_of_address);
                stack().trace_packet(
                    sim::TraceKind::Encapsulated, outer,
                    sim::TraceDetail::with_text(sim::TraceDetailKind::EncapRelayTo,
                                                encap_->name(),
                                                binding.care_of_address.value()));
                stack().send(std::move(outer));
            }
        });
    }
    return home_interface_;
}

bool HomeAgent::is_registered(net::Ipv4Address home_addr) const {
    return bindings_.lookup(home_addr, simulator().now()).has_value();
}

void HomeAgent::crash() {
    crashed_ = true;
    ++stats_.crashes;
    arp::ArpEngine* arp = home_interface_ != stack::IpStack::kNoInterface
                              ? stack().iface(home_interface_).arp()
                              : nullptr;
    for (const auto& binding : bindings_.snapshot()) {
        if (arp != nullptr) arp->remove_proxy(binding.home_address);
    }
    bindings_.clear();
    last_advert_.clear();
    if (overload_queue_) overload_queue_->clear();
    if (gc_armed_) {
        simulator().cancel(gc_timer_);
        gc_armed_ = false;
    }
}

void HomeAgent::restore_binding(net::Ipv4Address home, net::Ipv4Address care_of,
                                std::uint16_t lifetime_seconds) {
    bindings_.set(home, care_of, simulator().now() + sim::seconds(lifetime_seconds));
    if (home_interface_ != stack::IpStack::kNoInterface) {
        if (arp::ArpEngine* arp = stack().iface(home_interface_).arp()) {
            arp->add_proxy(home);
        }
    }
    arm_binding_gc();
}

void HomeAgent::restart() {
    crashed_ = false;
}

void HomeAgent::arm_binding_gc() {
    const auto next = bindings_.earliest_expiry();
    if (!next) return;
    if (gc_armed_ && gc_at_ <= *next) return;
    if (gc_armed_) simulator().cancel(gc_timer_);
    gc_at_ = *next;
    gc_armed_ = true;
    ++stats_.gc_rearms;
    gc_timer_ = simulator().schedule_at(*next, [this] {
        gc_armed_ = false;
        expire_bindings();
        arm_binding_gc();
    },
    "mip-binding-gc");
}

void HomeAgent::expire_bindings() {
    const sim::TimePoint now = simulator().now();
    arp::ArpEngine* arp = home_interface_ != stack::IpStack::kNoInterface
                              ? stack().iface(home_interface_).arp()
                              : nullptr;
    // Stop answering ARP for hosts whose registration lapsed — a mobile
    // host that went silent must become reachable again the moment it
    // walks back in the door unregistered. One pass over the table does
    // both the erase and the proxy teardown (ISSUE 9: a city-scale mass
    // expiry used to snapshot + sort the whole table first).
    stats_.bindings_expired += bindings_.expire(now, [arp](const Binding& b) {
        if (arp != nullptr) arp->remove_proxy(b.home_address);
    });
}

void HomeAgent::on_registration(std::span<const std::uint8_t> data,
                                transport::UdpEndpoint from) {
    if (crashed_) return;
    RegistrationRequest req;
    try {
        net::BufferReader r(data);
        req = RegistrationRequest::parse(r);
    } catch (const net::ParseError&) {
        return;
    }
    if (!overload_queue_) {
        // Historical synchronous path: serve inline, unbounded.
        process_registration(req, data, from);
        return;
    }
    // Classify before admission: a request touching a live binding (a
    // refresh or an explicit deregistration) is a Renewal — shedding it
    // breaks a host that is currently working — while a first contact is
    // New and bears the brunt of overload. Classification is a cheap
    // table lookup; the expensive work (authentication, table mutation,
    // the reply send) is deferred into the queue as the serviced work.
    const bool renewal =
        req.is_deregistration() ||
        bindings_.lookup(req.home_address, simulator().now()).has_value();
    std::vector<std::uint8_t> raw(data.begin(), data.end());
    overload_queue_->submit(
        renewal ? RequestClass::Renewal : RequestClass::New,
        req.home_address.to_string(),
        [this, req, raw = std::move(raw), from] {
            // The agent may have crashed between admission and service.
            if (crashed_) return;
            process_registration(req, raw, from);
        });
}

void HomeAgent::process_registration(const RegistrationRequest& req,
                                     std::span<const std::uint8_t> data,
                                     transport::UdpEndpoint from) {
    const bool authentic =
        RegistrationRequest::authenticate(data, config_.registration_key);

    RegistrationReply reply;
    reply.home_address = req.home_address;
    reply.home_agent = stack().iface(home_interface_).address();
    reply.id = req.id;

    arp::ArpEngine* arp = stack().iface(home_interface_).arp();

    if (!authentic) {
        ++stats_.registrations_denied_auth;
        reply.code = RegistrationCode::DeniedBadAuthenticator;
    } else if (home_interface_ == stack::IpStack::kNoInterface ||
               !stack().iface(home_interface_).subnet().contains(req.home_address)) {
        reply.code = RegistrationCode::DeniedBadRequest;
    } else if (req.is_deregistration()) {
        bindings_.remove(req.home_address);
        if (arp != nullptr) {
            arp->remove_proxy(req.home_address);
        }
        ++stats_.deregistrations;
        reply.code = RegistrationCode::Accepted;
        reply.lifetime = 0;
    } else {
        const std::uint16_t granted = std::min(req.lifetime, config_.max_lifetime_seconds);
        if (bindings_.lookup(req.home_address, simulator().now())) {
            ++stats_.registrations_renewed;
        }
        bindings_.set(req.home_address, req.care_of_address,
                      simulator().now() + sim::seconds(granted));
        if (arp != nullptr) {
            arp->add_proxy(req.home_address);
            // Gratuitous ARP so hosts on the home segment immediately remap
            // the mobile host's address to us (RFC 1027 style capture).
            arp->announce(req.home_address);
        }
        ++stats_.registrations_accepted;
        reply.code = RegistrationCode::Accepted;
        reply.lifetime = granted;
        arm_binding_gc();
    }

    net::BufferWriter w;
    reply.serialize(w, config_.registration_key);
    reg_socket_->send_to(from.addr, from.port, w.take());
}

bool HomeAgent::intercept_forward(const net::Packet& packet, std::size_t) {
    if (crashed_) return false;
    const auto binding = bindings_.lookup(packet.header().dst, simulator().now());
    if (!binding) {
        return false;  // not one of our mobile hosts: normal handling
    }
    // In-IE second half: encapsulate and send to the care-of address.
    const net::Ipv4Address our_addr = stack().iface(home_interface_).address();
    net::Packet outer =
        encap_->encapsulate(packet, our_addr, binding->care_of_address);
    ++stats_.packets_tunneled;
    stack().trace_packet(
        sim::TraceKind::Encapsulated, outer,
        sim::TraceDetail::with_text(sim::TraceDetailKind::EncapTo, encap_->name(),
                                    binding->care_of_address.value()));
    stack().send(std::move(outer));

    if (config_.send_care_of_adverts) {
        maybe_send_advert(packet.header().src, *binding);
    }
    return true;
}

void HomeAgent::maybe_send_advert(net::Ipv4Address correspondent, const Binding& binding) {
    // Never advertise to another of our own mobile hosts' home addresses or
    // to ourselves; rate-limit per correspondent.
    if (correspondent.is_unspecified()) return;
    auto it = last_advert_.find(correspondent);
    if (it != last_advert_.end() &&
        simulator().now() - it->second < config_.advert_interval) {
        return;
    }
    last_advert_[correspondent] = simulator().now();
    ++stats_.adverts_sent;
    stack().send_icmp(correspondent, net::IcmpMessage::care_of_advert(
                                         binding.home_address, binding.care_of_address));
}

void HomeAgent::on_encapsulated(const net::Packet& packet) {
    if (crashed_) return;
    net::Packet inner;
    try {
        inner = encap_->decapsulate(packet);
    } catch (const net::ParseError&) {
        return;
    }
    // Only relay for mobile hosts that are actually registered, and only
    // when the outer source matches their registered care-of address —
    // otherwise the reverse tunnel would be an open relay for spoofing.
    const auto binding = bindings_.lookup(inner.header().src, simulator().now());
    if (!binding || binding->care_of_address != packet.header().src) {
        return;
    }
    ++stats_.packets_reverse_forwarded;
    stack().trace_packet(
        sim::TraceKind::Decapsulated, inner,
        sim::TraceDetail::with_text(sim::TraceDetailKind::DecapReverseTunnel,
                                    encap_->name()));
    stack().send(std::move(inner));
}

}  // namespace mip::core
