// Delivery-method selection (paper §7.1.2).
//
// The mobile host "keeps a cache of the currently selected delivery method
// associated with each target IP address ... allows it to build up a
// history, for each correspondent host, of which communication methods
// have proven to be successful and which have not."
//
// Three strategies from the paper:
//  * ConservativeFirst — start Out-IE, tentatively probe Out-DE then
//    Out-DH after sustained success, reverting on failure.
//  * AggressiveFirst — start Out-DH, fall back Out-DE then Out-IE on
//    failure.
//  * RuleBased — address/mask rules decide per destination whether to
//    start optimistic (aggressive) or pessimistic (conservative), "similar
//    to the way routing table entries are currently specified".
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/modes.h"
#include "net/ipv4_address.h"
#include "obs/decision.h"
#include "sim/time.h"

namespace mip::core {

class SelectionStrategy {
public:
    virtual ~SelectionStrategy() = default;

    /// The mode a brand-new conversation with @p dst starts in.
    virtual OutMode initial(net::Ipv4Address dst) const = 0;

    /// The mode to fall back to after @p failed proved undeliverable
    /// (Out-IE is the floor: it never fails while the home agent is
    /// reachable, so falling back from it returns Out-IE again).
    virtual OutMode after_failure(net::Ipv4Address dst, OutMode failed) const = 0;

    /// The next more aggressive mode worth probing once @p current has been
    /// working for a while; nullopt when the strategy never probes upward.
    virtual std::optional<OutMode> upgrade(net::Ipv4Address dst, OutMode current) const = 0;

    virtual std::string name() const = 0;
};

class ConservativeFirstStrategy final : public SelectionStrategy {
public:
    OutMode initial(net::Ipv4Address) const override { return OutMode::IE; }
    OutMode after_failure(net::Ipv4Address, OutMode) const override { return OutMode::IE; }
    std::optional<OutMode> upgrade(net::Ipv4Address, OutMode current) const override;
    std::string name() const override { return "conservative-first"; }
};

class AggressiveFirstStrategy final : public SelectionStrategy {
public:
    OutMode initial(net::Ipv4Address) const override { return OutMode::DH; }
    OutMode after_failure(net::Ipv4Address, OutMode failed) const override;
    std::optional<OutMode> upgrade(net::Ipv4Address, OutMode) const override {
        return std::nullopt;
    }
    std::string name() const override { return "aggressive-first"; }
};

/// One address/mask rule: destinations in @p prefix start @p optimistic
/// (aggressive) or pessimistic (conservative).
struct SelectionRule {
    net::Prefix prefix;
    bool optimistic = false;
};

class RuleBasedStrategy final : public SelectionStrategy {
public:
    /// @p default_optimistic governs destinations matching no rule.
    explicit RuleBasedStrategy(std::vector<SelectionRule> rules,
                               bool default_optimistic = true);

    OutMode initial(net::Ipv4Address dst) const override;
    OutMode after_failure(net::Ipv4Address dst, OutMode failed) const override;
    std::optional<OutMode> upgrade(net::Ipv4Address dst, OutMode current) const override;
    std::string name() const override { return "rule-based"; }

private:
    bool optimistic_for(net::Ipv4Address dst) const;

    std::vector<SelectionRule> rules_;
    bool default_optimistic_;
    ConservativeFirstStrategy conservative_;
    AggressiveFirstStrategy aggressive_;
};

struct MethodCacheConfig {
    /// Consecutive delivery-failure signals before abandoning a mode.
    unsigned failure_threshold = 2;
    /// Consecutive successes before probing the next more aggressive mode.
    unsigned upgrade_after = 4;
    /// How long a failed mode stays blacklisted for a destination.
    sim::Duration blacklist_ttl = sim::seconds(300);
    /// TTL on the cached decision itself: a mode that has not been
    /// validated (by a success/failure signal) for this long is stale, and
    /// the next lookup tentatively re-probes the strategy's initial mode —
    /// so a host that downgraded during a transient network fault finds
    /// its way back up after the fault clears. 0 disables (the default:
    /// cached modes never age, the pre-fault-subsystem behaviour).
    sim::Duration mode_ttl = 0;
};

/// Per-correspondent delivery-method state machine.
class DeliveryMethodCache {
public:
    DeliveryMethodCache(std::unique_ptr<SelectionStrategy> strategy,
                        MethodCacheConfig config = {});

    /// Current mode for @p dst (initializing from the strategy on first use).
    OutMode mode_for(net::Ipv4Address dst, sim::TimePoint now);

    /// Signal that delivery with the current mode appears to be working.
    void report_success(net::Ipv4Address dst, sim::TimePoint now);

    /// Signal that delivery appears to be failing. @p reason names the
    /// failure signal for the audit trail ("tcp-inbound-retransmission",
    /// "icmp-admin-prohibited", ...).
    void report_failure(net::Ipv4Address dst, sim::TimePoint now,
                        const std::string& reason = "delivery-failure");

    /// Pins @p dst to @p mode (user override / privacy requirements).
    /// @p now only timestamps the audit event.
    void force_mode(net::Ipv4Address dst, OutMode mode, sim::TimePoint now = 0);

    /// Attaches a delivery-decision audit log (ISSUE: observability
    /// part b); nullptr detaches. @p node names the owning host in the
    /// recorded events. Detached — the default — every decision costs one
    /// pointer compare; attached, each state change appends one
    /// obs::DecisionEvent, so fig10_grid and abl_selection_strategy can
    /// print the causal chain behind every cell and mode flip.
    void set_decision_log(obs::DecisionLog* log, std::string node = "mobile-host");
    obs::DecisionLog* decision_log() const noexcept { return log_; }

    /// Forgets everything about @p dst (next use re-initializes from the
    /// strategy). Used by the capability prober to leave no trace.
    void reset(net::Ipv4Address dst) { entries_.erase(dst); }

    void clear() { entries_.clear(); }

    const SelectionStrategy& strategy() const noexcept { return *strategy_; }

    struct Stats {
        std::size_t downgrades = 0;
        std::size_t upgrades_probed = 0;
        std::size_t probes_reverted = 0;
        std::size_t probes_confirmed = 0;
        std::size_t ttl_expiries = 0;  ///< stale cached modes re-probed
    };
    const Stats& stats() const noexcept { return stats_; }

    struct Entry {
        OutMode mode = OutMode::IE;
        OutMode last_good = OutMode::IE;
        bool probing = false;
        bool forced = false;
        unsigned consecutive_failures = 0;
        unsigned consecutive_successes = 0;
        std::map<OutMode, sim::TimePoint> blacklist_until;
        /// When the cached mode last received evidence (any report_*).
        sim::TimePoint validated_at = 0;
    };
    /// Introspection for tests/benches; nullptr when never seen.
    const Entry* find(net::Ipv4Address dst) const;

private:
    Entry& entry_for(net::Ipv4Address dst, sim::TimePoint now);
    bool blacklisted(const Entry& e, OutMode m, sim::TimePoint now) const;
    /// Applies the mode TTL (no-op when disabled/forced/fresh).
    void maybe_expire(net::Ipv4Address dst, Entry& e, sim::TimePoint now);
    /// Appends to the audit log; no-op (and no string work) when detached.
    void note(sim::TimePoint now, net::Ipv4Address dst, const char* trigger,
              const char* test, std::string input, bool passed, OutMode from,
              OutMode to, std::string detail) const;

    std::unique_ptr<SelectionStrategy> strategy_;
    MethodCacheConfig config_;
    std::map<net::Ipv4Address, Entry> entries_;
    Stats stats_;
    obs::DecisionLog* log_ = nullptr;
    std::string node_;
};

}  // namespace mip::core
