// Correspondent hosts at the paper's three levels of mobile-awareness (§5,
// §7.2):
//
//  * Conventional — ordinary IP software; everything it sends to a mobile
//    host travels In-IE via the home agent, and it needs no changes.
//  * DecapCapable — "some operating systems, such as recent versions of
//    Linux, have this capability built-in": can receive encapsulated
//    packets (enabling the mobile host's Out-DE), but makes no routing
//    decisions of its own.
//  * MobileAware — additionally keeps a binding cache (fed by ICMP care-of
//    adverts and/or DNS TA lookups) and encapsulates directly to the
//    care-of address (In-DE); when it sees the mobile host is on the same
//    segment it delivers in one link-layer hop instead (In-DH).
#pragma once

#include <memory>

#include "core/binding.h"
#include "core/modes.h"
#include "dns/resolver.h"
#include "stack/host.h"
#include "transport/tcp_service.h"
#include "transport/udp_service.h"
#include "tunnel/encapsulator.h"

namespace mip::core {

enum class Awareness {
    Conventional,
    DecapCapable,
    MobileAware,
};

std::string to_string(Awareness a);

struct CorrespondentConfig {
    Awareness awareness = Awareness::Conventional;
    tunnel::EncapScheme encap_scheme = tunnel::EncapScheme::IpInIp;
    /// Lifetime of bindings learned from ICMP care-of adverts.
    sim::Duration advert_binding_ttl = sim::seconds(60);
};

class CorrespondentHost final : public stack::Host, private stack::RouteResolver {
public:
    CorrespondentHost(sim::Simulator& simulator, std::string name,
                      CorrespondentConfig config = {});
    ~CorrespondentHost() override;

    Awareness awareness() const noexcept { return config_.awareness; }

    // ---- binding cache (MobileAware only) ----------------------------------

    BindingTable& binding_cache() noexcept { return binding_cache_; }
    /// Installs a binding manually (e.g. from a DNS TA lookup the
    /// application performed).
    void learn_binding(net::Ipv4Address home, net::Ipv4Address care_of,
                       sim::Duration ttl = sim::seconds(60));
    void forget_binding(net::Ipv4Address home) { binding_cache_.remove(home); }

    /// Resolves @p name through @p resolver, installing A->TA bindings —
    /// the paper's DNS discovery path. @p done fires with the home address
    /// (unspecified on failure).
    void discover_via_dns(dns::Resolver& resolver, const std::string& name,
                          std::function<void(net::Ipv4Address home)> done);

    /// The In-mode this host would currently use toward @p mobile_home.
    InMode mode_for(net::Ipv4Address mobile_home) const;

    // ---- services -----------------------------------------------------------

    transport::UdpService& udp() noexcept { return *udp_; }
    transport::TcpService& tcp() noexcept { return *tcp_; }

    struct Stats {
        std::size_t in_de_sent = 0;       ///< packets tunneled to a care-of address
        std::size_t in_dh_sent = 0;       ///< packets sent by link-layer same-segment delivery
        std::size_t decapsulated = 0;     ///< encapsulated packets accepted (Out-DE)
        std::size_t adverts_learned = 0;  ///< bindings learned from ICMP
    };
    const Stats& stats() const noexcept { return stats_; }

private:
    std::optional<stack::Resolution> resolve(const stack::FlowKey& flow) override;

    /// Interface index whose connected subnet contains @p addr, if any —
    /// the Row C same-segment test.
    std::optional<std::size_t> on_link_interface(net::Ipv4Address addr) const;

    CorrespondentConfig config_;
    std::unique_ptr<tunnel::Encapsulator> encap_;
    std::vector<std::unique_ptr<tunnel::Encapsulator>> decapsulators_;
    BindingTable binding_cache_;
    std::unique_ptr<transport::UdpService> udp_;
    std::unique_ptr<transport::TcpService> tcp_;
    std::size_t vif_direct_ = stack::IpStack::kNoInterface;
    Stats stats_;
};

}  // namespace mip::core
