#include "core/scenario.h"

#include <map>
#include <queue>
#include <stdexcept>

namespace mip::core {

namespace {
int resolve_attach(int requested, int backbone_len) {
    const int idx = requested < 0 ? backbone_len - 1 : requested;
    if (idx < 0 || idx >= backbone_len) {
        throw std::invalid_argument("backbone attach index out of range");
    }
    return idx;
}
}  // namespace

World::World(WorldConfig config)
    : sim(config.scheduler),
      trace(&sim.record_arena()),
      decisions(&sim.record_arena()),
      config_(std::move(config)) {
    if (config_.backbone_routers < 1) {
        throw std::invalid_argument("backbone needs at least one router");
    }
    trace.set_sampling(config_.trace_sample_rate, config_.trace_sample_seed);

    home_lan_ = &make_link("home-lan", config_.lan_latency, config_.lan_bandwidth_bps,
                           config_.lan_mtu);
    foreign_lan_ = &make_link("foreign-lan", config_.lan_latency, config_.lan_bandwidth_bps,
                              config_.lan_mtu);
    corr_lan_ = &make_link("corr-lan", config_.lan_latency, config_.lan_bandwidth_bps,
                           config_.lan_mtu);

    // Backbone chain.
    for (int i = 0; i < config_.backbone_routers; ++i) {
        backbone_.push_back(
            std::make_unique<stack::Router>(sim, "bb-r" + std::to_string(i)));
        adopt_stack(backbone_.back()->stack());
    }
    for (int i = 0; i + 1 < config_.backbone_routers; ++i) {
        sim::Link& l = make_link("bb-link" + std::to_string(i), config_.backbone_latency,
                                 config_.backbone_bandwidth_bps, config_.backbone_mtu);
        const std::uint32_t net = next_p2p_net_++;
        const net::Prefix p2p(net::Ipv4Address(0xc0a80000u + net * 4), 30);
        const net::Ipv4Address a(p2p.base().value() + 1);
        const net::Ipv4Address b(p2p.base().value() + 2);
        const std::size_t ia = backbone_[i]->attach(l, a, p2p);
        const std::size_t ib = backbone_[i + 1]->attach(l, b, p2p);
        add_edge_pair(backbone_[i]->stack(), ia, a, backbone_[i + 1]->stack(), ib, b);
    }

    // Domain gateways.
    home_gw_ = std::make_unique<stack::Router>(sim, "home-gw");
    foreign_gw_ = std::make_unique<stack::Router>(sim, "foreign-gw");
    corr_gw_ = std::make_unique<stack::Router>(sim, "corr-gw");
    for (auto* gw : {home_gw_.get(), foreign_gw_.get(), corr_gw_.get()}) {
        adopt_stack(gw->stack());
    }

    connect_gateway(*home_gw_, resolve_attach(config_.home_attach, config_.backbone_routers),
                    home_gateway_addr(), home_domain.prefix, *home_lan_);
    connect_gateway(*foreign_gw_,
                    resolve_attach(config_.foreign_attach, config_.backbone_routers),
                    foreign_gateway_addr(), foreign_domain.prefix, *foreign_lan_);
    connect_gateway(*corr_gw_, resolve_attach(config_.corr_attach, config_.backbone_routers),
                    corr_gateway_addr(), corr_domain.prefix, *corr_lan_);

    // Boundary filter policy (paper §3.1). Interface 1 of each gateway is
    // the outside-facing one (see connect_gateway).
    if (config_.home_ingress_spoof_filter) {
        home_gw_->add_ingress_filter(
            1, std::make_shared<routing::SourceSpoofIngressRule>(home_domain.prefix));
    }
    if (config_.home_egress_antispoof) {
        home_gw_->add_egress_filter(
            1, std::make_shared<routing::ForeignSourceEgressRule>(home_domain.prefix));
    }
    if (config_.foreign_egress_antispoof) {
        foreign_gw_->add_egress_filter(
            1, std::make_shared<routing::ForeignSourceEgressRule>(foreign_domain.prefix));
    }
    if (config_.foreign_no_transit) {
        foreign_gw_->add_egress_filter(
            1, std::make_shared<routing::NoTransitRule>(foreign_domain.prefix));
        foreign_gw_->add_ingress_filter(
            1, std::make_shared<routing::NoTransitRule>(foreign_domain.prefix));
    }

    if (config_.home_firewall) {
        auto firewall = std::make_shared<routing::FirewallRule>();
        firewall->allow_destination(home_agent_addr());
        home_gw_->add_ingress_filter(1, std::move(firewall));
    }
    if (config_.filter_feedback) {
        home_gw_->stack().set_filter_feedback(true);
        foreign_gw_->stack().set_filter_feedback(true);
        corr_gw_->stack().set_filter_feedback(true);
    }

    install_backbone_routes();

    // The home agent.
    ha_ = std::make_unique<HomeAgent>(sim, "home-agent", config_.home_agent);
    adopt_stack(ha_->stack());
    ha_->attach_home(*home_lan_, home_agent_addr(), home_domain.prefix,
                     home_gateway_addr());
    {
        const HomeAgent* ha = ha_.get();
        const auto gauge = [&](const char* name, auto field) {
            metrics.register_gauge("home-agent", "tunnel", name,
                                   [ha, field] { return double(ha->stats().*field); });
        };
        gauge("packets_tunneled", &HomeAgent::Stats::packets_tunneled);
        gauge("packets_reverse_forwarded", &HomeAgent::Stats::packets_reverse_forwarded);
        gauge("multicast_relayed", &HomeAgent::Stats::multicast_relayed);
        gauge("registrations_accepted", &HomeAgent::Stats::registrations_accepted);
        gauge("registrations_renewed", &HomeAgent::Stats::registrations_renewed);
        gauge("registrations_denied_auth", &HomeAgent::Stats::registrations_denied_auth);
        gauge("adverts_sent", &HomeAgent::Stats::adverts_sent);
        gauge("crashes", &HomeAgent::Stats::crashes);
        gauge("bindings_expired", &HomeAgent::Stats::bindings_expired);
        gauge("gc_rearms", &HomeAgent::Stats::gc_rearms);
        // Overload protection (ISSUE 9): when the agent runs a
        // registration queue, export its depth/shed/token gauges and
        // audit its sheds into the World's decision log.
        if (RegistrationQueue* q = ha_->overload_queue()) {
            q->attach_metrics(metrics, "home-agent");
            q->set_decision_log(&decisions, "home-agent");
        }
    }

    // Network-wide wire-layer aggregates, derived from the trace recorder.
    const auto wire = [&](const char* name, auto fn) {
        metrics.register_gauge("network", "wire", name, [this, fn] { return double(fn(trace)); });
    };
    wire("frames_tx", [](const sim::TraceRecorder& t) { return t.count(sim::TraceKind::FrameTx); });
    wire("frames_lost",
         [](const sim::TraceRecorder& t) { return t.count(sim::TraceKind::FrameLost); });
    wire("filter_drops",
         [](const sim::TraceRecorder& t) { return t.count(sim::TraceKind::FilterDrop); });
    wire("ip_hops", [](const sim::TraceRecorder& t) { return t.ip_hops(); });
    wire("ip_tx_bytes", [](const sim::TraceRecorder& t) { return t.ip_tx_bytes(); });
    wire("total_tx_bytes", [](const sim::TraceRecorder& t) { return t.total_tx_bytes(); });
}

void World::adopt_stack(stack::IpStack& stack) {
    stack.set_trace(config_.tracing ? &trace : nullptr);
    const std::string node = stack.node().name();
    const stack::IpStack* s = &stack;
    const auto gauge = [&](const char* name, auto field) {
        metrics.register_gauge(node, "ip", name,
                               [s, field] { return double(s->stats().*field); });
    };
    gauge("packets_sent", &stack::IpStack::Stats::packets_sent);
    gauge("packets_received", &stack::IpStack::Stats::packets_received);
    gauge("packets_forwarded", &stack::IpStack::Stats::packets_forwarded);
    gauge("packets_delivered", &stack::IpStack::Stats::packets_delivered);
    gauge("ingress_filter_drops", &stack::IpStack::Stats::ingress_filter_drops);
    gauge("egress_filter_drops", &stack::IpStack::Stats::egress_filter_drops);
    gauge("no_route_drops", &stack::IpStack::Stats::no_route_drops);
    gauge("ttl_drops", &stack::IpStack::Stats::ttl_drops);
    gauge("arp_failures", &stack::IpStack::Stats::arp_failures);
    gauge("fragments_sent", &stack::IpStack::Stats::fragments_sent);
    gauge("reassembled", &stack::IpStack::Stats::reassembled);
}

sim::Link& World::make_link(std::string name, sim::Duration latency, double bandwidth_bps,
                            std::size_t mtu) {
    sim::LinkConfig cfg;
    cfg.name = std::move(name);
    cfg.latency = latency;
    cfg.bandwidth_bps = bandwidth_bps;
    cfg.mtu = mtu;
    cfg.loss_rate = config_.loss_rate;
    cfg.seed = config_.seed + links_.size();
    links_.push_back(std::make_unique<sim::Link>(sim, cfg));
    links_.back()->set_trace(config_.tracing ? &trace : nullptr);
    link_index_.emplace(links_.back()->name(), links_.size() - 1);
    return *links_.back();
}

sim::Link* World::find_link(const std::string& name) {
    const auto it = link_index_.find(name);
    return it == link_index_.end() ? nullptr : links_[it->second].get();
}

std::vector<sim::Link*> World::all_links() {
    std::vector<sim::Link*> out;
    out.reserve(links_.size());
    for (const auto& link : links_) out.push_back(link.get());
    return out;
}

void World::add_edge_pair(stack::IpStack& a, std::size_t a_iface, net::Ipv4Address a_addr,
                          stack::IpStack& b, std::size_t b_iface, net::Ipv4Address b_addr) {
    edges_.push_back(Edge{&a, a_iface, &b, b_addr});
    edges_.push_back(Edge{&b, b_iface, &a, a_addr});
}

void World::connect_gateway(stack::Router& gw, std::size_t backbone_index,
                            net::Ipv4Address inside_addr, net::Prefix inside_prefix,
                            sim::Link& inside_lan) {
    // Interface 0: inside LAN. Interface 1: uplink to the backbone.
    gw.attach(inside_lan, inside_addr, inside_prefix);

    sim::Link& uplink = make_link(gw.name() + "-uplink", config_.backbone_latency,
                                  config_.backbone_bandwidth_bps, config_.backbone_mtu);
    const std::uint32_t net = next_p2p_net_++;
    const net::Prefix p2p(net::Ipv4Address(0xc0a80000u + net * 4), 30);
    const net::Ipv4Address gw_addr(p2p.base().value() + 1);
    const net::Ipv4Address bb_addr(p2p.base().value() + 2);
    const std::size_t gw_iface = gw.attach(uplink, gw_addr, p2p);
    const std::size_t bb_iface = backbone_[backbone_index]->attach(uplink, bb_addr, p2p);
    add_edge_pair(gw.stack(), gw_iface, gw_addr, backbone_[backbone_index]->stack(), bb_iface,
                  bb_addr);
}

void World::install_backbone_routes() {
    // Static shortest-path routes: BFS from each domain gateway over the
    // router graph; every other router points its route for that domain's
    // prefix at the neighbour one hop closer.
    std::map<stack::IpStack*, std::vector<const Edge*>> adjacency;
    for (const Edge& e : edges_) {
        adjacency[e.from].push_back(&e);
    }

    struct Anchor {
        stack::IpStack* stack;
        net::Prefix prefix;
    };
    const std::vector<Anchor> anchors = {
        {&home_gw_->stack(), home_domain.prefix},
        {&foreign_gw_->stack(), foreign_domain.prefix},
        {&corr_gw_->stack(), corr_domain.prefix},
    };

    for (const Anchor& anchor : anchors) {
        std::map<stack::IpStack*, const Edge*> via;  // node -> edge toward anchor
        std::queue<stack::IpStack*> frontier;
        via[anchor.stack] = nullptr;
        frontier.push(anchor.stack);
        while (!frontier.empty()) {
            stack::IpStack* u = frontier.front();
            frontier.pop();
            for (const Edge* e : adjacency[u]) {
                if (via.contains(e->to)) continue;
                // e runs u -> v; v's route toward the anchor goes back
                // through u, i.e. v uses its reverse edge.
                for (const Edge* back : adjacency[e->to]) {
                    if (back->to == u) {
                        via[e->to] = back;
                        break;
                    }
                }
                frontier.push(e->to);
            }
        }
        for (const auto& [node, edge] : via) {
            if (edge == nullptr) continue;  // the anchor itself
            node->routes().add({anchor.prefix, edge->to_addr, edge->from_iface, 0});
        }
    }
}

MobileHostConfig World::mobile_config() const {
    MobileHostConfig cfg;
    cfg.home_address = mh_home_addr();
    cfg.home_subnet = home_domain.prefix;
    cfg.home_agent = home_agent_addr();
    return cfg;
}

MobileHost& World::create_mobile_host(MobileHostConfig config) {
    mh_ = std::make_unique<MobileHost>(sim, "mobile-host", std::move(config));
    adopt_stack(mh_->stack());
    const MobileHost* mh = mh_.get();
    const auto gauge = [&](const char* name, auto field) {
        metrics.register_gauge("mobile-host", "mobileip", name,
                               [mh, field] { return double(mh->stats().*field); });
    };
    gauge("out_ie", &MobileHost::Stats::out_ie);
    gauge("out_de", &MobileHost::Stats::out_de);
    gauge("out_dh", &MobileHost::Stats::out_dh);
    gauge("out_dt", &MobileHost::Stats::out_dt);
    gauge("registrations_sent", &MobileHost::Stats::registrations_sent);
    gauge("registration_backoffs", &MobileHost::Stats::registration_backoffs);
    gauge("registration_circuit_opens", &MobileHost::Stats::registration_circuit_opens);
    gauge("registration_circuit_probes", &MobileHost::Stats::registration_circuit_probes);
    gauge("binding_expiries", &MobileHost::Stats::binding_expiries);
    gauge("failure_signals", &MobileHost::Stats::failure_signals);
    gauge("success_signals", &MobileHost::Stats::success_signals);
    gauge("icmp_feedback_signals", &MobileHost::Stats::icmp_feedback_signals);
    return *mh_;
}

void World::enable_decision_log() {
    mh_->method_cache().set_decision_log(&decisions, mh_->name());
}

CorrespondentHost& World::create_correspondent(CorrespondentConfig config,
                                               Placement placement,
                                               std::uint32_t host_index) {
    correspondents_.push_back(std::make_unique<CorrespondentHost>(
        sim, "ch" + std::to_string(correspondents_.size()), config));
    CorrespondentHost& ch = *correspondents_.back();
    adopt_stack(ch.stack());
    {
        const CorrespondentHost* chp = &ch;
        const auto gauge = [&](const char* name, auto field) {
            metrics.register_gauge(ch.name(), "mobileip", name,
                                   [chp, field] { return double(chp->stats().*field); });
        };
        gauge("in_de_sent", &CorrespondentHost::Stats::in_de_sent);
        gauge("in_dh_sent", &CorrespondentHost::Stats::in_dh_sent);
        gauge("decapsulated", &CorrespondentHost::Stats::decapsulated);
        gauge("adverts_learned", &CorrespondentHost::Stats::adverts_learned);
    }
    switch (placement) {
        case Placement::HomeLan:
            ch.attach(*home_lan_, home_domain.host(host_index ? host_index : 20),
                      home_domain.prefix, home_gateway_addr());
            break;
        case Placement::ForeignLan:
            ch.attach(*foreign_lan_, foreign_domain.host(host_index ? host_index : 20),
                      foreign_domain.prefix, foreign_gateway_addr());
            break;
        case Placement::CorrLan:
            ch.attach(*corr_lan_, corr_domain.host(host_index ? host_index : 2),
                      corr_domain.prefix, corr_gateway_addr());
            break;
    }
    return ch;
}

void World::attach_mobile_home() {
    mh_->attach_home(*home_lan_, home_gateway_addr());
}

bool World::attach_and_wait(
    sim::Duration timeout,
    const std::function<void(MobileHost::RegistrationCallback)>& initiate) {
    bool done = false;
    bool accepted = false;
    initiate([&](bool ok) {
        done = true;
        accepted = ok;
    });
    const sim::TimePoint deadline = sim.now() + timeout;
    while (!done && sim.now() < deadline && sim.pending_events() > 0) {
        sim.run_until(sim.now() + sim::milliseconds(10));
    }
    return done && accepted;
}

bool World::attach_mobile_foreign(sim::Duration timeout) {
    return attach_and_wait(timeout, [&](MobileHost::RegistrationCallback done) {
        mh_->attach_foreign(*foreign_lan_, mh_care_of_addr(), foreign_domain.prefix,
                            foreign_gateway_addr(), std::move(done));
    });
}

ForeignAgent& World::create_foreign_agent(ForeignAgentConfig config) {
    fa_ = std::make_unique<ForeignAgent>(sim, "foreign-agent", config);
    adopt_stack(fa_->stack());
    fa_->attach_serving(*foreign_lan_, foreign_agent_addr(), foreign_domain.prefix,
                        foreign_gateway_addr());
    const ForeignAgent* fa = fa_.get();
    const auto gauge = [&](const char* name, auto field) {
        metrics.register_gauge("foreign-agent", "mobileip", name,
                               [fa, field] { return double(fa->stats().*field); });
    };
    gauge("adverts_sent", &ForeignAgent::Stats::adverts_sent);
    gauge("registrations_relayed", &ForeignAgent::Stats::registrations_relayed);
    gauge("replies_relayed", &ForeignAgent::Stats::replies_relayed);
    gauge("packets_delivered_final_hop", &ForeignAgent::Stats::packets_delivered_final_hop);
    gauge("packets_reverse_tunneled", &ForeignAgent::Stats::packets_reverse_tunneled);
    gauge("crashes", &ForeignAgent::Stats::crashes);
    if (RegistrationQueue* q = fa_->overload_queue()) {
        q->attach_metrics(metrics, "foreign-agent");
        q->set_decision_log(&decisions, "foreign-agent");
    }
    return *fa_;
}

bool World::attach_mobile_via_agent(sim::Duration timeout) {
    return attach_and_wait(timeout, [&](MobileHost::RegistrationCallback done) {
        mh_->attach_via_foreign_agent(*foreign_lan_, std::move(done));
    });
}

// ---- physical mobility ------------------------------------------------------

namespace {
/// Binds the handoff controller's Attachable interface to this world's
/// mobile host: each coverage-cell entry becomes the matching attach call.
class MobileHostAttachable final : public mobility::Attachable {
public:
    explicit MobileHostAttachable(MobileHost& mh) : mh_(mh) {}

    void attach_home(const mobility::CoverageCell& cell) override {
        mh_.attach_home(*cell.link, cell.gateway);
    }
    void attach_foreign(const mobility::CoverageCell& cell, Done done) override {
        mh_.attach_foreign(*cell.link, cell.care_of, cell.subnet, cell.gateway,
                           std::move(done));
    }
    void attach_via_agent(const mobility::CoverageCell& cell, Done done) override {
        mh_.attach_via_foreign_agent(*cell.link, std::move(done));
    }
    void detach() override { mh_.detach_current(); }

private:
    MobileHost& mh_;
};
}  // namespace

mobility::HandoffController& World::with_mobility(
    std::unique_ptr<mobility::MobilityModel> model, mobility::CoverageMap map,
    mobility::HandoffConfig config) {
    if (!mh_) {
        throw std::logic_error("with_mobility: create_mobile_host() first");
    }
    if (!config.gap_loss_probe) {
        // Packets the home agent tunnels while the host is between
        // attachments go to a stale care-of address and are lost.
        config.gap_loss_probe = [this] { return ha_->stats().packets_tunneled; };
    }
    mobility_model_ = std::move(model);
    mobility_adapter_ = std::make_unique<MobileHostAttachable>(*mh_);
    handoff_controller_ = std::make_unique<mobility::HandoffController>(
        sim, *mobility_adapter_, *mobility_model_, std::move(map), std::move(config));
    const mobility::HandoffController* hc = handoff_controller_.get();
    const auto gauge = [&](const char* name, auto fn) {
        metrics.register_gauge("mobile-host", "handoff", name,
                               [hc, fn] { return double(fn(hc->stats())); });
    };
    gauge("handoffs", [](const mobility::HandoffStats& s) { return s.handoff_count(); });
    gauge("suppressed_flaps",
          [](const mobility::HandoffStats& s) { return s.suppressed_flaps; });
    gauge("dead_zone_entries",
          [](const mobility::HandoffStats& s) { return s.dead_zone_entries; });
    gauge("failed_attaches",
          [](const mobility::HandoffStats& s) { return s.failed_attaches; });
    gauge("forced_reattaches",
          [](const mobility::HandoffStats& s) { return s.forced_reattaches; });
    gauge("avg_registration_ms",
          [](const mobility::HandoffStats& s) { return s.avg_registration_ms(); });
    gauge("total_gap_loss",
          [](const mobility::HandoffStats& s) { return s.total_gap_loss(); });
    handoff_controller_->start();
    return *handoff_controller_;
}

mobility::CoverageCell World::home_cell(mobility::Region region, int priority) {
    mobility::CoverageCell cell;
    cell.name = "home";
    cell.region = region;
    cell.kind = mobility::AttachKind::Home;
    cell.link = home_lan_;
    cell.subnet = home_domain.prefix;
    cell.gateway = home_gateway_addr();
    cell.priority = priority;
    return cell;
}

mobility::CoverageCell World::foreign_cell(mobility::Region region, int priority) {
    mobility::CoverageCell cell;
    cell.name = "foreign";
    cell.region = region;
    cell.kind = mobility::AttachKind::Foreign;
    cell.link = foreign_lan_;
    cell.care_of = mh_care_of_addr();
    cell.subnet = foreign_domain.prefix;
    cell.gateway = foreign_gateway_addr();
    cell.priority = priority;
    return cell;
}

mobility::CoverageCell World::foreign_agent_cell(mobility::Region region, int priority) {
    mobility::CoverageCell cell;
    cell.name = "foreign-agent";
    cell.region = region;
    cell.kind = mobility::AttachKind::ForeignAgent;
    cell.link = foreign_lan_;
    cell.subnet = foreign_domain.prefix;
    cell.gateway = foreign_gateway_addr();
    cell.priority = priority;
    return cell;
}

mobility::CoverageCell World::corr_cell(mobility::Region region, int priority) {
    mobility::CoverageCell cell;
    cell.name = "corr";
    cell.region = region;
    cell.kind = mobility::AttachKind::Foreign;
    cell.link = corr_lan_;
    cell.care_of = corr_domain.host(10);
    cell.subnet = corr_domain.prefix;
    cell.gateway = corr_gateway_addr();
    cell.priority = priority;
    return cell;
}

void World::enable_dns(const std::string& mh_name) {
    mh_dns_name_ = mh_name;
    dns_host_ = std::make_unique<stack::Host>(sim, "dns-server");
    dns_host_->attach(*home_lan_, dns_server_addr(), home_domain.prefix,
                      home_gateway_addr());
    adopt_stack(dns_host_->stack());
    dns_udp_ = std::make_unique<transport::UdpService>(dns_host_->stack());
    dns_zone_ = std::make_unique<dns::Zone>();
    dns_zone_->add_a(mh_name, mh_home_addr());
    dns_server_ = std::make_unique<dns::DnsServer>(*dns_udp_, *dns_zone_);
}

}  // namespace mip::core
