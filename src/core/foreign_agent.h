// The foreign agent (paper §2): an agent "placed on the network expressly
// for the purpose of supporting visiting mobile hosts".
//
// A visiting mobile host that registers *through* a foreign agent needs no
// address of its own on the visited network: the agent's address is the
// care-of address. The home agent tunnels to the foreign agent, "which
// decapsulates them and delivers the enclosed packet to the mobile host"
// over the final link-layer hop (the In-DH delivery technique, §5).
//
// The paper's caveat is reproduced too: agents "restrict the freedom of
// the mobile host to choose from the full range of possible optimizations"
// — a mobile host attached via an agent cannot use Out-DT (it has no
// address of its own) and all its traffic funnels through the agent. The
// abl_foreign_agent bench quantifies this.
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "core/binding.h"
#include "core/overload.h"
#include "core/registration.h"
#include "stack/host.h"
#include "transport/udp_service.h"
#include "tunnel/encapsulator.h"

namespace mip::core {

struct ForeignAgentConfig {
    tunnel::EncapScheme encap_scheme = tunnel::EncapScheme::IpInIp;
    /// Interval between unsolicited agent advertisements.
    sim::Duration advert_interval = sim::seconds(1);
    /// Lifetime bound offered in advertisements / granted to visitors.
    std::uint16_t max_lifetime_seconds = 600;
    /// RFC 2344-style reverse tunneling: encapsulate visitors' outbound
    /// home-sourced packets back to their home agents, so they survive
    /// egress anti-spoofing at the visited network's boundary.
    bool reverse_tunnel = false;

    /// Overload protection for the registration relay path (ISSUE 9):
    /// same contract as HomeAgentConfig::overload — refreshes from
    /// current visitors outrank first-contact registrations, a bounded
    /// queue sheds, a token bucket admission-limits the new class.
    /// nullopt = the historical synchronous relay.
    std::optional<OverloadConfig> overload;
};

class ForeignAgent : public stack::Host, private stack::RouteResolver {
public:
    ForeignAgent(sim::Simulator& simulator, std::string name, ForeignAgentConfig config = {});

    /// Attach to the segment the agent serves, and (optionally) a default
    /// route toward the rest of the Internet. Starts advertising.
    std::size_t attach_serving(sim::Link& link, net::Ipv4Address addr, net::Prefix subnet,
                               std::optional<net::Ipv4Address> gateway = std::nullopt);

    /// The care-of address the agent offers (its own serving address).
    net::Ipv4Address care_of_address() const;

    struct Visitor {
        net::Ipv4Address home_address;
        net::Ipv4Address home_agent;
        std::uint16_t reply_port = 0;  ///< visitor's registration socket port
        sim::TimePoint expires = 0;
    };
    bool has_visitor(net::Ipv4Address home_address) const;
    std::size_t visitor_count() const noexcept { return visitors_.size(); }

    /// Simulated fail-stop crash: wipes the visitor list and every pending
    /// relayed registration, and goes silent (no adverts, no relaying, no
    /// final-hop delivery) until restart(). Visitors recover by
    /// re-registering when their binding refresh goes unanswered.
    void crash();
    void restart();
    bool crashed() const noexcept { return crashed_; }

    struct Stats {
        std::size_t adverts_sent = 0;
        std::size_t solicitations_answered = 0;
        std::size_t registrations_relayed = 0;
        std::size_t replies_relayed = 0;
        std::size_t packets_delivered_final_hop = 0;  ///< decapsulated, handed to MH
        std::size_t packets_forwarded_for_visitors = 0;
        std::size_t packets_reverse_tunneled = 0;
        std::size_t crashes = 0;
    };
    const Stats& stats() const noexcept { return stats_; }
    const ForeignAgentConfig& config() const noexcept { return config_; }

    /// The overload-protection queue, or nullptr when config.overload is
    /// unset (synchronous relay).
    RegistrationQueue* overload_queue() noexcept { return overload_queue_.get(); }

    ~ForeignAgent() override;

private:
    std::optional<stack::Resolution> resolve(const stack::FlowKey& flow) override;
    void send_advertisement(bool solicited);
    void on_registration_frame(std::span<const std::uint8_t> data,
                               transport::UdpEndpoint from, net::Ipv4Address local_dst);
    /// The actual relay work for an inbound registration request (record
    /// the pending visitor, forward verbatim to the home agent).
    void relay_request(const RegistrationRequest& req, std::uint16_t reply_port,
                       std::vector<std::uint8_t> raw);
    void on_tunneled(const net::Packet& outer);
    bool intercept_forward(const net::Packet& packet, std::size_t in_interface);
    /// Final-hop delivery: the inner packet goes out in one link-layer
    /// frame addressed to the visitor's MAC (In-DH).
    void deliver_to_visitor(const net::Packet& inner, const Visitor& visitor);

    ForeignAgentConfig config_;
    std::unique_ptr<tunnel::Encapsulator> encap_;
    std::unique_ptr<transport::UdpService> udp_;
    std::unique_ptr<transport::UdpSocket> reg_socket_;
    std::unique_ptr<RegistrationQueue> overload_queue_;  ///< null = synchronous
    std::size_t serving_interface_ = stack::IpStack::kNoInterface;
    std::map<net::Ipv4Address, Visitor> visitors_;  ///< keyed by home address
    /// Registrations in flight: home address -> requesting visitor.
    std::map<net::Ipv4Address, Visitor> pending_;
    bool crashed_ = false;
    Stats stats_;
};

}  // namespace mip::core
