#include "core/foreign_agent.h"

#include "net/protocol.h"

namespace mip::core {

ForeignAgent::ForeignAgent(sim::Simulator& simulator, std::string name,
                           ForeignAgentConfig config)
    : stack::Host(simulator, std::move(name)),
      config_(config),
      encap_(tunnel::make_encapsulator(config.encap_scheme)) {
    if (config_.overload) {
        overload_queue_ =
            std::make_unique<RegistrationQueue>(simulator, *config_.overload);
    }
    stack().set_forwarding(true);  // the agent routes for its visitors
    udp_ = std::make_unique<transport::UdpService>(stack());
    reg_socket_ = udp_->open(net::ports::kMobileIpRegistration);
    reg_socket_->set_receiver([this](std::span<const std::uint8_t> data,
                                     const transport::RxMeta& meta) {
        on_registration_frame(data, meta.peer, meta.local_addr);
    });

    // The home agent tunnels captured packets to us for final-hop delivery.
    stack().register_protocol(encap_->protocol(), [this](const net::Packet& p, std::size_t) {
        on_tunneled(p);
    });

    // Answer solicitations from newly arrived mobile hosts.
    stack().add_icmp_observer([this](const net::IcmpMessage& msg, const net::Packet&) {
        if (msg.type == net::IcmpType::AgentSolicitation &&
            serving_interface_ != stack::IpStack::kNoInterface) {
            ++stats_.solicitations_answered;
            send_advertisement(/*solicited=*/true);
        }
    });

    stack().set_forward_interceptor(
        [this](const net::Packet& p, std::size_t in_iface) {
            return intercept_forward(p, in_iface);
        });

    stack().set_policy_resolver(this);
}

ForeignAgent::~ForeignAgent() {
    stack().set_policy_resolver(nullptr);
}

std::size_t ForeignAgent::attach_serving(sim::Link& link, net::Ipv4Address addr,
                                         net::Prefix subnet,
                                         std::optional<net::Ipv4Address> gateway) {
    serving_interface_ = attach(link, addr, subnet, gateway);
    // Unsolicited advertisement beacon: a self-rescheduling event.
    struct Beacon {
        ForeignAgent* fa;
        void operator()() const {
            fa->send_advertisement(/*solicited=*/false);
            fa->simulator().schedule_in(fa->config_.advert_interval, Beacon{fa},
                                        "agent-beacon");
        }
    };
    simulator().schedule_in(config_.advert_interval, Beacon{this}, "agent-beacon");
    return serving_interface_;
}

net::Ipv4Address ForeignAgent::care_of_address() const {
    if (serving_interface_ == stack::IpStack::kNoInterface) return {};
    return stack().iface(serving_interface_).address();
}

bool ForeignAgent::has_visitor(net::Ipv4Address home_address) const {
    auto it = visitors_.find(home_address);
    return it != visitors_.end() && it->second.expires > simulator().now();
}

void ForeignAgent::crash() {
    crashed_ = true;
    ++stats_.crashes;
    visitors_.clear();
    pending_.clear();
    if (overload_queue_) overload_queue_->clear();
}

void ForeignAgent::restart() {
    crashed_ = false;
}

void ForeignAgent::send_advertisement(bool solicited) {
    (void)solicited;
    if (crashed_) return;  // the beacon keeps ticking, silently
    ++stats_.adverts_sent;
    const net::Ipv4Address self = care_of_address();
    const auto msg =
        net::IcmpMessage::agent_advertisement(self, self, config_.max_lifetime_seconds);
    net::BufferWriter w;
    msg.serialize(w);
    net::Packet packet = net::make_packet(self, net::Ipv4Address(0xffffffffu),
                                          net::IpProto::Icmp, w.take(), /*ttl=*/1);
    stack().send_direct(std::move(packet), serving_interface_);
}

std::optional<stack::Resolution> ForeignAgent::resolve(const stack::FlowKey& flow) {
    // Traffic addressed to a current (or registering) visitor's home
    // address is delivered in one link-layer hop on the serving segment.
    if (visitors_.contains(flow.dst) || pending_.contains(flow.dst)) {
        return stack::Resolution::via_interface(serving_interface_, flow.dst);
    }
    return std::nullopt;
}

void ForeignAgent::on_registration_frame(std::span<const std::uint8_t> data,
                                         transport::UdpEndpoint from,
                                         net::Ipv4Address local_dst) {
    (void)local_dst;
    if (crashed_ || data.empty()) return;
    net::BufferReader peek(data);
    const auto type = static_cast<RegistrationMessageType>(data[0]);

    if (type == RegistrationMessageType::Request) {
        RegistrationRequest req;
        try {
            req = RegistrationRequest::parse(peek);
        } catch (const net::ParseError&) {
            return;
        }
        // Only relay requests from hosts on our segment that name us as the
        // care-of address.
        if (req.care_of_address != care_of_address()) return;
        std::vector<std::uint8_t> raw(data.begin(), data.end());
        if (!overload_queue_) {
            relay_request(req, from.port, std::move(raw));
            return;
        }
        // A refresh (or deregistration) from a current visitor is a
        // Renewal; a first contact is New and bears the overload.
        const bool renewal =
            req.is_deregistration() || has_visitor(req.home_address) ||
            pending_.contains(req.home_address);
        const std::uint16_t reply_port = from.port;
        overload_queue_->submit(
            renewal ? RequestClass::Renewal : RequestClass::New,
            req.home_address.to_string(),
            [this, req, reply_port, raw = std::move(raw)]() mutable {
                if (crashed_) return;
                relay_request(req, reply_port, std::move(raw));
            });
        return;
    }

    if (type == RegistrationMessageType::Reply) {
        // Replies ride the home agent's acceptance straight through: the
        // expensive admission decision already happened on the request
        // path, and delaying the reply would only widen the visitor's
        // retry window.
        RegistrationReply reply;
        try {
            reply = RegistrationReply::parse(peek);
        } catch (const net::ParseError&) {
            return;
        }
        auto it = pending_.find(reply.home_address);
        if (it == pending_.end()) return;
        Visitor v = it->second;
        if (reply.accepted() && reply.lifetime > 0) {
            v.expires = simulator().now() + sim::seconds(reply.lifetime);
            visitors_[v.home_address] = v;
        }
        pending_.erase(it);
        ++stats_.replies_relayed;
        // Relay the reply to the visitor over the serving link (the policy
        // resolver routes the visitor's home address on-link).
        reg_socket_->send_to(v.home_address, v.reply_port,
                             std::vector<std::uint8_t>(data.begin(), data.end()));
    }
}

void ForeignAgent::relay_request(const RegistrationRequest& req,
                                 std::uint16_t reply_port,
                                 std::vector<std::uint8_t> raw) {
    Visitor v;
    v.home_address = req.home_address;
    v.home_agent = req.home_agent;
    v.reply_port = reply_port;
    pending_[req.home_address] = v;
    ++stats_.registrations_relayed;
    // Relay the request (verbatim) to the home agent from our address.
    reg_socket_->send_to(req.home_agent, net::ports::kMobileIpRegistration,
                         std::move(raw));
}

void ForeignAgent::on_tunneled(const net::Packet& outer) {
    if (crashed_) return;
    net::Packet inner;
    try {
        inner = encap_->decapsulate(outer);
    } catch (const net::ParseError&) {
        return;
    }
    auto it = visitors_.find(inner.header().dst);
    if (it == visitors_.end() || it->second.expires <= simulator().now()) {
        return;  // not (or no longer) one of our visitors
    }
    stack().trace_packet(
        sim::TraceKind::Decapsulated, inner,
        sim::TraceDetail::with_text(sim::TraceDetailKind::DecapForVisitor,
                                    encap_->name(), inner.header().dst.value()));
    deliver_to_visitor(inner, it->second);
}

void ForeignAgent::deliver_to_visitor(const net::Packet& inner, const Visitor& visitor) {
    ++stats_.packets_delivered_final_hop;
    // In-DH over the final hop: the IP packet is addressed to the home
    // address, but the frame goes straight to the visitor on this segment.
    stack().send_direct(inner, serving_interface_, visitor.home_address);
}

bool ForeignAgent::intercept_forward(const net::Packet& packet, std::size_t in_interface) {
    if (crashed_ || in_interface != serving_interface_) return false;
    auto it = visitors_.find(packet.header().src);
    if (it == visitors_.end() || it->second.expires <= simulator().now()) {
        return false;
    }
    ++stats_.packets_forwarded_for_visitors;
    if (config_.reverse_tunnel) {
        // RFC 2344-style: wrap the visitor's packet so the visited
        // network's egress filters see our (topologically valid) address.
        ++stats_.packets_reverse_tunneled;
        net::Packet outer =
            encap_->encapsulate(packet, care_of_address(), it->second.home_agent);
        stack().trace_packet(
            sim::TraceKind::Encapsulated, outer,
            sim::TraceDetail::with_text(sim::TraceDetailKind::EncapReverseTo,
                                        encap_->name(),
                                        it->second.home_agent.value()));
        stack().send(std::move(outer));
        return true;
    }
    return false;  // plain forwarding via the normal route table
}

}  // namespace mip::core
