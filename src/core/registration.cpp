#include "core/registration.h"

namespace mip::core {

std::uint64_t registration_mac(std::span<const std::uint8_t> body, std::uint64_t key) {
    // FNV-1a over the body, then mixed with the key through two xor-fold
    // rounds. Deterministic and collision-decent; NOT cryptographic.
    std::uint64_t h = 0xcbf29ce484222325ULL ^ key;
    for (const std::uint8_t b : body) {
        h ^= b;
        h *= 0x100000001b3ULL;
    }
    h ^= key * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 29;
    return h;
}

namespace {
void append_mac(net::BufferWriter& w, std::size_t body_start, std::uint64_t key) {
    const auto body = w.view().subspan(body_start);
    const std::uint64_t mac = registration_mac(body, key);
    w.u32(static_cast<std::uint32_t>(mac >> 32));
    w.u32(static_cast<std::uint32_t>(mac & 0xffffffff));
}
}  // namespace

void RegistrationRequest::serialize(net::BufferWriter& w, std::uint64_t key) const {
    const std::size_t start = w.size();
    w.u8(static_cast<std::uint8_t>(RegistrationMessageType::Request));
    w.u8(0);  // flags (S|B|D|M|G|V in RFC 2002; unused here)
    w.u16(lifetime);
    w.u32(home_address.value());
    w.u32(home_agent.value());
    w.u32(care_of_address.value());
    w.u32(static_cast<std::uint32_t>(id >> 32));
    w.u32(static_cast<std::uint32_t>(id & 0xffffffff));
    append_mac(w, start, key);
}

RegistrationRequest RegistrationRequest::parse(net::BufferReader& r) {
    if (r.remaining() < kRegistrationRequestSize) {
        throw net::ParseError("registration request truncated");
    }
    if (r.u8() != static_cast<std::uint8_t>(RegistrationMessageType::Request)) {
        throw net::ParseError("not a registration request");
    }
    r.skip(1);  // flags
    RegistrationRequest req;
    req.lifetime = r.u16();
    req.home_address = net::Ipv4Address(r.u32());
    req.home_agent = net::Ipv4Address(r.u32());
    req.care_of_address = net::Ipv4Address(r.u32());
    req.id = static_cast<std::uint64_t>(r.u32()) << 32 | r.u32();
    r.skip(8);  // authenticator (verified separately over the raw datagram)
    return req;
}

bool RegistrationRequest::authenticate(std::span<const std::uint8_t> datagram,
                                       std::uint64_t key) {
    if (datagram.size() < 8) return false;
    const auto body = datagram.subspan(0, datagram.size() - 8);
    const auto mac_bytes = datagram.subspan(datagram.size() - 8);
    net::BufferReader r(mac_bytes);
    const std::uint64_t mac = static_cast<std::uint64_t>(r.u32()) << 32 | r.u32();
    return mac == registration_mac(body, key);
}

void RegistrationReply::serialize(net::BufferWriter& w, std::uint64_t key) const {
    const std::size_t start = w.size();
    w.u8(static_cast<std::uint8_t>(RegistrationMessageType::Reply));
    w.u8(static_cast<std::uint8_t>(code));
    w.u16(lifetime);
    w.u32(home_address.value());
    w.u32(home_agent.value());
    w.u32(static_cast<std::uint32_t>(id >> 32));
    w.u32(static_cast<std::uint32_t>(id & 0xffffffff));
    append_mac(w, start, key);
}

RegistrationReply RegistrationReply::parse(net::BufferReader& r) {
    if (r.remaining() < kRegistrationReplySize) {
        throw net::ParseError("registration reply truncated");
    }
    if (r.u8() != static_cast<std::uint8_t>(RegistrationMessageType::Reply)) {
        throw net::ParseError("not a registration reply");
    }
    RegistrationReply rep;
    rep.code = static_cast<RegistrationCode>(r.u8());
    rep.lifetime = r.u16();
    rep.home_address = net::Ipv4Address(r.u32());
    rep.home_agent = net::Ipv4Address(r.u32());
    rep.id = static_cast<std::uint64_t>(r.u32()) << 32 | r.u32();
    r.skip(8);  // authenticator
    return rep;
}

}  // namespace mip::core
