// The mobile host (paper §4, §7.1): a self-sufficient Mobile IP node that
// operates without foreign agents, choosing among the four outgoing modes
// per correspondent, per connection, or per packet.
//
// The mobility policy is installed as the stack's RouteResolver — the
// paper's "override the IP route lookup routine" — so it captures every
// decision point, including TCP's endpoint-address choice, automatically.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>

#include "core/overload.h"
#include "core/registration.h"
#include "core/selection.h"
#include "dns/resolver.h"
#include "stack/host.h"
#include "transport/tcp_service.h"
#include "transport/udp_service.h"
#include "tunnel/encapsulator.h"

namespace mip::core {

struct MobileHostConfig {
    net::Ipv4Address home_address;
    net::Prefix home_subnet;
    net::Ipv4Address home_agent;

    tunnel::EncapScheme encap_scheme = tunnel::EncapScheme::IpInIp;

    /// nullptr = AggressiveFirstStrategy.
    std::unique_ptr<SelectionStrategy> strategy;
    MethodCacheConfig cache;

    /// §7.1.1 port heuristics: flows to these destination ports use Out-DT
    /// ("connections to port 80 are likely to be HTTP requests and can
    /// safely use Out-DT ... UDP packets addressed to UDP port 53 are
    /// likely to be DNS requests").
    bool enable_port_heuristics = true;
    std::set<std::uint16_t> temporary_address_ports{80, 53};

    /// Privacy mode: always tunnel via the home agent so correspondents
    /// never see the current location (paper §4, Out-IE motivation).
    bool privacy_mode = false;

    /// Shared key for the mobility security association with the home
    /// agent; must match the agent's configuration.
    std::uint64_t registration_key = 0;

    std::uint16_t registration_lifetime = 300;  ///< seconds requested
    sim::Duration registration_retry = sim::milliseconds(500);
    unsigned registration_max_retries = 10;
    /// Retries back off up to this cap — so a mobile host orphaned by a
    /// home-agent crash keeps probing at a polite rate until the agent
    /// returns.
    sim::Duration registration_backoff_cap = sim::seconds(8);

    /// Deterministic seeded decorrelated jitter on the retry backoff
    /// (ISSUE 9). The synchronized-retry bug: plain doubling makes every
    /// host orphaned by the same crash retry at identical offsets, so the
    /// whole population hammers the recovering agent in lockstep. With
    /// jitter each delay is drawn uniformly from [retry, 3 x previous)
    /// (capped), seeded per host — byte-identical per seed, at any sweep
    /// --jobs. false = the legacy synchronized doubling.
    bool registration_jitter = true;
    /// Jitter stream seed; 0 derives one from the home address, so a
    /// fleet sharing a config still de-correlates host by host.
    std::uint64_t registration_jitter_seed = 0;

    /// Retry budget for background refreshes (ISSUE 9): after this many
    /// consecutive unanswered retries the host opens its registration
    /// circuit — it parks and probes at ~registration_circuit_probe
    /// intervals instead of retrying on the backoff ramp forever. A
    /// successful reply closes the circuit. 0 = no budget (retry forever,
    /// the historical behaviour). Initial attaches are unaffected (they
    /// give up after registration_max_retries as before).
    unsigned registration_retry_budget = 0;
    /// Park-and-probe re-arm interval while the circuit is open; each
    /// probe is jittered to +-25% so parked fleets stay de-correlated.
    sim::Duration registration_circuit_probe = sim::seconds(8);

    /// Parameters for the host's TCP service (timeouts matter to how fast
    /// the §7.1.2 failure signals arrive).
    transport::TcpConfig tcp;
};

class MobileHost final : public stack::Host, private stack::RouteResolver {
public:
    using RegistrationCallback = std::function<void(bool accepted)>;

    MobileHost(sim::Simulator& simulator, std::string name, MobileHostConfig config);
    ~MobileHost() override;

    // ---- mobility ---------------------------------------------------------

    /// Plug into the home segment: configures the home address, reclaims it
    /// with gratuitous ARP, and deregisters from the home agent if needed.
    void attach_home(sim::Link& link, std::optional<net::Ipv4Address> gateway = std::nullopt);

    /// Plug into a foreign segment with care-of address @p care_of, then
    /// register with the home agent (retrying until accepted or out of
    /// retries; @p done fires either way).
    void attach_foreign(sim::Link& link, net::Ipv4Address care_of, net::Prefix subnet,
                        std::optional<net::Ipv4Address> gateway = std::nullopt,
                        RegistrationCallback done = {});

    /// Plug into a foreign segment served by a foreign agent (paper §2):
    /// no address of our own is acquired. The host solicits an agent
    /// advertisement, adopts the advertised care-of address, and registers
    /// *through* the agent. While attached this way, all traffic funnels
    /// through the agent (the paper's noted loss of optimization freedom).
    void attach_via_foreign_agent(sim::Link& link, RegistrationCallback done = {});

    /// True when attached through a foreign agent.
    bool via_foreign_agent() const noexcept { return fa_mode_; }
    net::Ipv4Address foreign_agent_address() const noexcept { return fa_addr_; }

    /// Unplug from the current segment.
    void detach_current();

    bool at_home() const noexcept { return at_home_; }
    bool registered() const noexcept { return registered_; }
    /// True while the registration retry budget is exhausted and the host
    /// is parked, probing slowly (see registration_retry_budget). Active
    /// probing (CapabilityProber) is suppressed in this state — the
    /// control plane is the thing that is down, so adding probe traffic
    /// to it only feeds the storm.
    bool registration_circuit_open() const noexcept { return circuit_open_; }
    net::Ipv4Address home_address() const noexcept { return config_.home_address; }
    net::Ipv4Address care_of_address() const noexcept { return care_of_; }

    // ---- policy -----------------------------------------------------------

    DeliveryMethodCache& method_cache() noexcept { return method_cache_; }
    /// Current outgoing mode the policy would pick for @p dst's home-address
    /// traffic.
    OutMode mode_for(net::Ipv4Address dst);
    /// Pins all home-address traffic to @p dst to one mode.
    void force_mode(net::Ipv4Address dst, OutMode mode);

    // ---- discovery publication ---------------------------------------------

    /// Publishes the current care-of address as a DNS TA record under
    /// @p name (paper §3.2: "a mobile host that is away from home, but not
    /// currently changing location frequently, could register its care-of
    /// address with the extended DNS service"). No-op when at home or
    /// unregistered.
    void publish_care_of_dns(dns::Resolver& resolver, const std::string& name,
                             std::uint32_t ttl_seconds = 60);

    /// Withdraws the TA record (e.g. on returning home).
    void withdraw_care_of_dns(dns::Resolver& resolver, const std::string& name);

    // ---- services ---------------------------------------------------------

    transport::UdpService& udp() noexcept { return *udp_; }
    transport::TcpService& tcp() noexcept { return *tcp_; }

    struct Stats {
        std::size_t out_ie = 0;  ///< packets routed into the home tunnel
        std::size_t out_de = 0;  ///< packets routed into the direct tunnel
        std::size_t out_dh = 0;  ///< packets sent plain with home source
        std::size_t out_dt = 0;  ///< packets sent plain with care-of source
        std::size_t registrations_sent = 0;
        std::size_t registration_backoffs = 0;  ///< retries beyond the first send
        std::size_t registration_circuit_opens = 0;  ///< budget exhaustions
        std::size_t registration_circuit_probes = 0;  ///< slow probes while parked
        std::size_t binding_expiries = 0;  ///< lifetimes that lapsed unrefreshed
        std::size_t failure_signals = 0;
        std::size_t success_signals = 0;
        std::size_t icmp_feedback_signals = 0;  ///< admin-prohibited notices
    };
    const Stats& stats() const noexcept { return stats_; }

    const MobileHostConfig& config() const noexcept { return config_; }

private:
    // RouteResolver
    std::optional<stack::Resolution> resolve(const stack::FlowKey& flow) override;

    void send_tunneled(net::Packet inner, net::Ipv4Address outer_dst);
    void on_decap_packet(const net::Packet& outer, const tunnel::Encapsulator& decap);
    void send_registration(std::uint16_t lifetime, unsigned attempt, RegistrationCallback done);
    void on_registration_reply(std::span<const std::uint8_t> data, RegistrationCallback& done);
    void schedule_reregistration(std::uint16_t granted_lifetime);
    /// Tracks the granted lifetime locally: when it lapses without a
    /// successful refresh (home agent down, link flapping), the host marks
    /// itself unregistered instead of believing a binding the agent no
    /// longer holds.
    void arm_binding_expiry(std::uint16_t granted_lifetime);
    /// Cancels the retry/refresh/expiry timers and abandons any pending
    /// registration (every attach/detach transition starts from here).
    void cancel_registration_timers();
    /// Next retry delay for @p attempt: the seeded decorrelated-jitter
    /// stream when registration_jitter is on, the legacy synchronized
    /// doubling otherwise.
    sim::Duration retry_delay(unsigned attempt);
    /// Jittered park-and-probe interval while the circuit is open.
    sim::Duration circuit_probe_delay();

    MobileHostConfig config_;
    std::unique_ptr<tunnel::Encapsulator> encap_;
    std::vector<std::unique_ptr<tunnel::Encapsulator>> decapsulators_;
    DeliveryMethodCache method_cache_;

    std::unique_ptr<transport::UdpService> udp_;
    std::unique_ptr<transport::TcpService> tcp_;
    std::unique_ptr<transport::UdpSocket> reg_socket_;

    std::size_t physical_interface_ = stack::IpStack::kNoInterface;
    std::size_t vif_home_ = stack::IpStack::kNoInterface;    ///< Out-IE tunnel
    std::size_t vif_direct_ = stack::IpStack::kNoInterface;  ///< Out-DE tunnel

    bool at_home_ = true;
    bool registered_ = false;
    bool home_local_added_ = false;
    bool fa_mode_ = false;          ///< attached via a foreign agent
    bool fa_waiting_advert_ = false;
    net::Ipv4Address fa_addr_;      ///< the serving agent's address
    net::Ipv4Address reg_dst_;      ///< where registration requests go (HA or FA)
    RegistrationCallback fa_done_;  ///< pending callback while soliciting
    net::Ipv4Address care_of_;
    std::uint64_t next_registration_id_ = 1;
    std::uint64_t expected_reply_id_ = 0;
    sim::EventId registration_timer_ = 0;
    bool registration_timer_armed_ = false;
    sim::EventId rereg_timer_ = 0;
    bool rereg_timer_armed_ = false;
    /// A registration exchange (initial or refresh) is in flight and
    /// unanswered — the retry loop keys off this, not off registered_,
    /// because a refresh runs while registered_ is still true.
    bool registration_pending_ = false;
    /// Seeded decorrelated-jitter stream for retry backoff (ISSUE 9).
    std::optional<DecorrelatedBackoff> jitter_;
    /// Monotone draw counter for circuit-probe jitter (shares the seed
    /// with jitter_ but is a distinct tagged stream).
    std::uint64_t circuit_probe_draws_ = 0;
    bool circuit_open_ = false;
    sim::TimePoint binding_expires_ = 0;
    sim::EventId expiry_timer_ = 0;
    bool expiry_timer_armed_ = false;
    /// Dedup for flagged-retransmission failure signals (dst -> last time).
    std::map<net::Ipv4Address, sim::TimePoint> last_retransmission_signal_;

    Stats stats_;
};

}  // namespace mip::core
