// The 4x4 grid (paper Figure 10): four ways a mobile host can send packets
// crossed with four ways a correspondent host can send packets to it, and
// the classification of which of the sixteen combinations are useful.
#pragma once

#include <array>
#include <string>

namespace mip::core {

/// How the mobile host sends outgoing packets (paper §4).
enum class OutMode {
    IE,  ///< Indirect, Encapsulated — tunnel via the home agent (conservative)
    DE,  ///< Direct, Encapsulated — tunnel straight to the correspondent
    DH,  ///< Direct, Home address — plain packet, home source address
    DT,  ///< Direct, Temporary address — plain packet, care-of source (no Mobile IP)
};

/// How the correspondent host sends incoming packets (paper §5).
enum class InMode {
    IE,  ///< Indirect, Encapsulated — naïve send to home; home agent tunnels
    DE,  ///< Direct, Encapsulated — correspondent tunnels to the care-of address
    DH,  ///< Direct, Home address — link-layer delivery on the same segment
    DT,  ///< Direct, Temporary address — plain packet to the care-of address
};

inline constexpr std::array<OutMode, 4> kAllOutModes{OutMode::IE, OutMode::DE, OutMode::DH,
                                                     OutMode::DT};
inline constexpr std::array<InMode, 4> kAllInModes{InMode::IE, InMode::DE, InMode::DH,
                                                   InMode::DT};

/// Figure 10's shading.
enum class ComboClass {
    Useful,       ///< unshaded: a combination hosts should actually use
    ValidUnused,  ///< lightly shaded: works with TCP but no reason to pick it
    Broken,       ///< darkly shaded: does not work with current protocols
};

/// The grid as a pure function (paper §6, Figure 10).
constexpr ComboClass classify_combo(InMode in, OutMode out) {
    // Column Out-DT and row In-DT: mixing the temporary address with the
    // permanent address as communication endpoints never works — "the use
    // of the temporary care-of address for communication in one direction
    // effectively mandates the use of the same address for the
    // corresponding return communication" (§6.5) — except the matched pair
    // In-DT/Out-DT, which is ordinary non-mobile IP.
    if (out == OutMode::DT || in == InMode::DT) {
        return (out == OutMode::DT && in == InMode::DT) ? ComboClass::Useful
                                                        : ComboClass::Broken;
    }
    // Row B: In-DE/Out-IE is valid but unused — "if the correspondent host
    // is able to send packets directly to the mobile host, then the mobile
    // host should also send its replies directly" (§6.2).
    if (in == InMode::DE && out == OutMode::IE) {
        return ComboClass::ValidUnused;
    }
    // Row C: In-DH/Out-IE and In-DH/Out-DE are valid but unused — same
    // reasoning, one link-layer hop deserves a direct reply (§6.3).
    if (in == InMode::DH && (out == OutMode::IE || out == OutMode::DE)) {
        return ComboClass::ValidUnused;
    }
    return ComboClass::Useful;
}

/// Number of combinations per class: 7 useful, 3 valid-unused, 6 broken.
struct GridCensus {
    int useful = 0;
    int valid_unused = 0;
    int broken = 0;
};
GridCensus census();

// ---- per-mode attributes (the row/column properties in Figure 10) --------

constexpr bool is_direct(OutMode m) { return m != OutMode::IE; }
constexpr bool is_direct(InMode m) { return m != InMode::IE; }
constexpr bool is_encapsulated(OutMode m) { return m == OutMode::IE || m == OutMode::DE; }
constexpr bool is_encapsulated(InMode m) { return m == InMode::IE || m == InMode::DE; }
/// Does this mode preserve location transparency (use the home address as
/// the connection endpoint)?
constexpr bool uses_home_address(OutMode m) { return m != OutMode::DT; }
constexpr bool uses_home_address(InMode m) { return m != InMode::DT; }
/// Will packets survive source-address ingress/egress filtering anywhere on
/// the path? (Out-DH exposes the topologically-wrong home source address.)
constexpr bool filter_safe(OutMode m) { return m != OutMode::DH; }
/// Does the correspondent need decapsulation capability?
constexpr bool needs_decap_correspondent(OutMode m) { return m == OutMode::DE; }
/// Does the correspondent need full mobile-awareness (binding lookup)?
constexpr bool needs_mobile_aware_correspondent(InMode m) { return m == InMode::DE; }
/// Does this mode require both hosts on one network segment?
constexpr bool needs_same_segment(InMode m) { return m == InMode::DH; }

std::string to_string(OutMode m);
std::string to_string(InMode m);
std::string to_string(ComboClass c);

/// Long-form names as used in the paper ("Outgoing, Indirect, Encapsulated").
std::string describe(OutMode m);
std::string describe(InMode m);

}  // namespace mip::core
