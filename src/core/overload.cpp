#include "core/overload.h"

#include <algorithm>
#include <utility>

#include "obs/decision.h"
#include "obs/metrics.h"
#include "obs/monitor.h"

namespace mip::core {

const char* to_string(RequestClass c) noexcept {
    return c == RequestClass::Renewal ? "renewal" : "new";
}

// ---- DecorrelatedBackoff -----------------------------------------------------

sim::Duration DecorrelatedBackoff::next() {
    const sim::Duration prev = prev_ == 0 ? base_ : prev_;
    // Uniform in [base, 3 x prev): the decorrelated-jitter recurrence.
    // 3 x prev <= base only when prev == base and base is tiny; guard the
    // empty range anyway.
    const sim::Duration hi = std::max<sim::Duration>(3 * prev, base_ + 1);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - base_);
    const std::uint64_t draw = mix64(seed_ ^ (0x6f76657264726177ull + draws_++));
    sim::Duration delay = base_ + static_cast<sim::Duration>(draw % span);
    delay = std::min(delay, cap_);
    prev_ = delay;
    return delay;
}

// ---- TokenBucket -------------------------------------------------------------

void TokenBucket::refill(sim::TimePoint now) {
    if (now <= last_) return;
    tokens_ = std::min(burst_, tokens_ + rate_ * sim::to_seconds(now - last_));
    last_ = now;
}

bool TokenBucket::try_take(sim::TimePoint now) {
    refill(now);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
}

double TokenBucket::tokens(sim::TimePoint now) {
    refill(now);
    return tokens_;
}

// ---- RegistrationQueue -------------------------------------------------------

void RegistrationQueue::audit(RequestClass cls, const std::string& who,
                              const char* test, bool passed, std::string input,
                              std::string detail) {
    if (decisions_ == nullptr) return;
    obs::DecisionEvent ev;
    ev.when = sim_.now();
    ev.node = node_;
    ev.correspondent = who;
    ev.trigger = "overload";
    ev.test = test;
    ev.input = std::move(input);
    ev.passed = passed;  // false = the request did not get through
    ev.in_mode = to_string(cls);
    ev.detail = std::move(detail);
    decisions_->record(std::move(ev));
}

bool RegistrationQueue::submit(RequestClass cls, const std::string& who,
                               std::function<void()> work) {
    const sim::TimePoint now = sim_.now();

    // Admission: only the New class spends tokens — renewals of existing
    // bindings ride the fast-path regardless of how hard new arrivals
    // hammer the door.
    if (cls == RequestClass::New && config_.new_tokens_per_sec > 0.0 &&
        !bucket_.try_take(now)) {
        ++stats_.shed_new_bucket;
        audit(cls, who, "admission", false, "tokens=0",
              "new registration denied by token bucket; client recovers via retry");
        return false;
    }

    if (config_.queue_capacity > 0 && depth() >= config_.queue_capacity) {
        if (cls == RequestClass::Renewal) {
            if (!fresh_.empty()) {
                // Priority: the renewal evicts the oldest queued New.
                ++stats_.shed_new_queue;
                audit(RequestClass::New, fresh_.front().who, "queue-evict", false,
                      "depth=" + std::to_string(depth()),
                      "oldest new registration evicted for an arriving renewal");
                fresh_.pop_front();
            } else {
                // Queue is all renewals: drop-oldest within the class.
                ++stats_.shed_renewal_queue;
                audit(RequestClass::Renewal, renewals_.front().who, "queue-evict",
                      false, "depth=" + std::to_string(depth()),
                      "oldest renewal evicted for an arriving renewal");
                renewals_.pop_front();
            }
        } else {
            if (!fresh_.empty()) {
                // Drop-oldest within the New class: the arriving request
                // is fresher evidence of demand than the one that has
                // already waited longest.
                ++stats_.shed_new_queue;
                audit(RequestClass::New, fresh_.front().who, "queue-evict", false,
                      "depth=" + std::to_string(depth()),
                      "oldest new registration evicted for an arriving one");
                fresh_.pop_front();
            } else {
                // Full queue holds only renewals: a New never evicts one.
                ++stats_.shed_new_queue;
                audit(cls, who, "queue-full", false,
                      "depth=" + std::to_string(depth()),
                      "queue full of renewals; arriving new registration shed");
                return false;
            }
        }
    }

    auto& q = cls == RequestClass::Renewal ? renewals_ : fresh_;
    if (depth() > 0) {
        ++stats_.deferred;
        audit(cls, who, "defer", true, "depth=" + std::to_string(depth()),
              "admitted behind queued work; served within depth x service_time");
    }
    q.push_back(Item{who, std::move(work)});
    stats_.queue_peak = std::max(stats_.queue_peak, depth());
    ensure_service_scheduled();
    return true;
}

void RegistrationQueue::ensure_service_scheduled() {
    if (service_armed_ || depth() == 0) return;
    service_armed_ = true;
    service_timer_ = sim_.schedule_in(
        config_.service_time,
        [this] {
            service_armed_ = false;
            service_one();
        },
        "overload-service");
}

void RegistrationQueue::service_one() {
    auto& q = !renewals_.empty() ? renewals_ : fresh_;
    if (q.empty()) return;
    Item item = std::move(q.front());
    q.pop_front();
    if (&q == &renewals_) {
        ++stats_.served_renewal;
    } else {
        ++stats_.served_new;
    }
    ensure_service_scheduled();  // before work: work may submit more
    if (item.work) item.work();
}

void RegistrationQueue::clear() {
    renewals_.clear();
    fresh_.clear();
    if (service_armed_) {
        sim_.cancel(service_timer_);
        service_armed_ = false;
    }
}

void RegistrationQueue::attach_metrics(obs::MetricsRegistry& metrics,
                                       const std::string& node) {
    const std::string layer = "overload";
    metrics.register_gauge(node, layer, "queue_depth",
                           [this] { return static_cast<double>(depth()); });
    metrics.register_gauge(node, layer, "queue_peak", [this] {
        return static_cast<double>(stats_.queue_peak);
    });
    metrics.register_gauge(node, layer, "served_renewal", [this] {
        return static_cast<double>(stats_.served_renewal);
    });
    metrics.register_gauge(node, layer, "served_new", [this] {
        return static_cast<double>(stats_.served_new);
    });
    metrics.register_gauge(node, layer, "shed_new_bucket", [this] {
        return static_cast<double>(stats_.shed_new_bucket);
    });
    metrics.register_gauge(node, layer, "shed_new_queue", [this] {
        return static_cast<double>(stats_.shed_new_queue);
    });
    metrics.register_gauge(node, layer, "shed_renewal_queue", [this] {
        return static_cast<double>(stats_.shed_renewal_queue);
    });
    metrics.register_gauge(node, layer, "shed_total",
                           [this] { return static_cast<double>(shed_total()); });
    metrics.register_gauge(node, layer, "deferred", [this] {
        return static_cast<double>(stats_.deferred);
    });
    metrics.register_gauge(node, layer, "tokens",
                           [this] { return bucket_.tokens(sim_.now()); });
}

void RegistrationQueue::set_decision_log(obs::DecisionLog* log, std::string node) {
    decisions_ = log;
    node_ = std::move(node);
}

// ---- monitors ----------------------------------------------------------------

void arm_overload_monitors(obs::HealthMonitor& monitor, const std::string& node,
                           double depth_trip, double shed_min_rate) {
    obs::RateSpikeRule shed;
    shed.name = node + "-shed-spike";
    shed.node = node;
    shed.layer = "overload";
    shed.metric = "shed_total";
    shed.source = obs::MetricSource::Gauge;
    shed.min_rate = shed_min_rate;
    shed.spike_factor = 0.0;  // fixed per-evaluation rate threshold
    shed.detail = "registration shedding burst: the agent is refusing load";
    monitor.add_rate_spike(std::move(shed));

    obs::WatermarkRule depth;
    depth.name = node + "-queue-watermark";
    depth.node = node;
    depth.layer = "overload";
    depth.metric = "queue_depth";
    depth.source = obs::MetricSource::Gauge;
    depth.trip_at = depth_trip;
    depth.clear_at = depth_trip / 4.0;
    depth.detail = "registration queue depth past the collapse watermark";
    monitor.add_watermark(std::move(depth));
}

}  // namespace mip::core
