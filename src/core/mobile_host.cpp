#include "core/mobile_host.h"

#include <algorithm>

#include "net/protocol.h"

namespace mip::core {

MobileHost::MobileHost(sim::Simulator& simulator, std::string name, MobileHostConfig config)
    : stack::Host(simulator, std::move(name)),
      config_(std::move(config)),
      encap_(tunnel::make_encapsulator(config_.encap_scheme)),
      method_cache_(config_.strategy ? std::move(config_.strategy)
                                     : std::make_unique<AggressiveFirstStrategy>(),
                    config_.cache) {
    // The two encapsulating virtual interfaces (paper §7): one tunnels via
    // the home agent (Out-IE), the other straight to the correspondent
    // (Out-DE).
    vif_home_ = stack().add_virtual_interface("tun-home", [this](net::Packet inner) {
        ++stats_.out_ie;
        send_tunneled(std::move(inner), config_.home_agent);
    });
    vif_direct_ = stack().add_virtual_interface("tun-direct", [this](net::Packet inner) {
        ++stats_.out_de;
        const net::Ipv4Address dst = inner.header().dst;
        send_tunneled(std::move(inner), dst);
    });

    // Decapsulation for every scheme (the home agent or a smart
    // correspondent may tunnel to us with any of them).
    for (auto scheme : {tunnel::EncapScheme::IpInIp, tunnel::EncapScheme::Minimal,
                        tunnel::EncapScheme::Gre}) {
        decapsulators_.push_back(tunnel::make_encapsulator(scheme));
        const tunnel::Encapsulator& decap = *decapsulators_.back();
        stack().register_protocol(decap.protocol(),
                                  [this, &decap](const net::Packet& p, std::size_t) {
                                      on_decap_packet(p, decap);
                                  });
    }

    udp_ = std::make_unique<transport::UdpService>(stack());
    tcp_ = std::make_unique<transport::TcpService>(stack(), config_.tcp);

    // Seeded decorrelated-jitter stream for registration retries: derive
    // the default seed from the home address so a fleet built from one
    // config template still de-correlates host by host (ISSUE 9).
    const std::uint64_t jitter_seed =
        config_.registration_jitter_seed != 0
            ? config_.registration_jitter_seed
            : mix64(0x6d68726567726574ull ^ config_.home_address.value());
    jitter_.emplace(jitter_seed, config_.registration_retry,
                    config_.registration_backoff_cap);

    // §7.1.2 delivery-failure signals. Outbound retransmissions reach the
    // policy through the per-packet FlowKey::retransmission flag (see
    // resolve()); the observer covers the *inbound* half: "repeated
    // retransmissions from a particular address ... suggests that
    // acknowledgements are not getting through".
    tcp_->set_retransmit_observer([this](const transport::TcpEndpoints& ep, bool inbound) {
        if (inbound && ep.local_addr == config_.home_address) {
            ++stats_.failure_signals;
            method_cache_.report_failure(ep.remote_addr, this->simulator().now(),
                                         "tcp-inbound-retransmission");
        }
    });
    tcp_->set_progress_observer([this](const transport::TcpEndpoints& ep) {
        if (ep.local_addr == config_.home_address) {
            ++stats_.success_signals;
            method_cache_.report_success(ep.remote_addr, this->simulator().now());
        }
    });

    reg_socket_ = udp_->open(net::ports::kMobileIpRegistration);

    // §7.1.2 accelerated failure detection: when a router answers a
    // filtered packet with ICMP "administratively prohibited", treat it as
    // an immediate delivery-failure signal for that correspondent instead
    // of waiting out retransmission timeouts.
    stack().add_icmp_observer([this](const net::IcmpMessage& msg, const net::Packet&) {
        if (msg.type != net::IcmpType::DestinationUnreachable ||
            msg.code != static_cast<std::uint8_t>(
                            net::IcmpUnreachableCode::CommunicationAdministrativelyProhibited)) {
            return;
        }
        try {
            net::BufferReader r(msg.body);
            const net::Ipv4Header original = net::Ipv4Header::parse(r);
            if (original.src == config_.home_address) {
                ++stats_.failure_signals;
                ++stats_.icmp_feedback_signals;
                method_cache_.report_failure(original.dst, this->simulator().now(),
                                             "icmp-admin-prohibited");
            }
        } catch (const net::ParseError&) {
        }
    });

    // Agent discovery: while soliciting, the first advertisement heard
    // triggers registration through that agent.
    stack().add_icmp_observer([this](const net::IcmpMessage& msg, const net::Packet&) {
        if (msg.type != net::IcmpType::AgentAdvertisement || !fa_waiting_advert_) return;
        try {
            fa_addr_ = msg.agent_address();
            care_of_ = msg.agent_care_of();
        } catch (const net::ParseError&) {
            return;
        }
        fa_waiting_advert_ = false;
        reg_dst_ = fa_addr_;
        reg_socket_->bind_address(config_.home_address);
        send_registration(std::min<std::uint16_t>(config_.registration_lifetime,
                                                  msg.agent_lifetime()),
                          0, std::move(fa_done_));
        fa_done_ = {};
    });

    stack().set_policy_resolver(this);
}

MobileHost::~MobileHost() {
    stack().set_policy_resolver(nullptr);
}

void MobileHost::send_tunneled(net::Packet inner, net::Ipv4Address outer_dst) {
    net::Packet outer = encap_->encapsulate(inner, care_of_, outer_dst);
    stack().trace_packet(
        sim::TraceKind::Encapsulated, outer,
        sim::TraceDetail::with_text(sim::TraceDetailKind::EncapTo, encap_->name(),
                                    outer_dst.value()));
    stack().send(std::move(outer));
}

void MobileHost::on_decap_packet(const net::Packet& outer, const tunnel::Encapsulator& decap) {
    net::Packet inner;
    try {
        inner = decap.decapsulate(outer);
    } catch (const net::ParseError&) {
        return;
    }
    stack().trace_packet(sim::TraceKind::Decapsulated, inner,
                         sim::TraceDetail::txt(decap.name()));
    // Resubmit to IP, as the paper's virtual interface does on receive.
    stack().deliver_local(inner, stack::IpStack::kNoInterface);
}

// ---- mobility ---------------------------------------------------------------

void MobileHost::cancel_registration_timers() {
    if (registration_timer_armed_) {
        simulator().cancel(registration_timer_);
        registration_timer_armed_ = false;
    }
    if (rereg_timer_armed_) {
        simulator().cancel(rereg_timer_);
        rereg_timer_armed_ = false;
    }
    if (expiry_timer_armed_) {
        simulator().cancel(expiry_timer_);
        expiry_timer_armed_ = false;
    }
    registration_pending_ = false;
    circuit_open_ = false;
    jitter_->reset();
}

sim::Duration MobileHost::retry_delay(unsigned attempt) {
    if (config_.registration_jitter) {
        return jitter_->next();
    }
    // Legacy synchronized doubling (the bug the jitter fixes), kept for
    // the ablation's protection-off leg and byte-compatibility studies.
    sim::Duration delay = config_.registration_retry;
    for (unsigned i = 0; i < attempt && delay < config_.registration_backoff_cap; ++i) {
        delay *= 2;
    }
    return std::min(delay, config_.registration_backoff_cap);
}

sim::Duration MobileHost::circuit_probe_delay() {
    // Base interval +-25%, drawn from a tagged stream off the same seed
    // as the jitter ramp (monotone counter: deterministic, never reused).
    const sim::Duration base = config_.registration_circuit_probe;
    const std::uint64_t seed =
        config_.registration_jitter_seed != 0
            ? config_.registration_jitter_seed
            : mix64(0x6d68726567726574ull ^ config_.home_address.value());
    const std::uint64_t draw =
        mix64(seed ^ (0x70726f6265ull + circuit_probe_draws_++));
    const sim::Duration span = std::max<sim::Duration>(base / 2, 1);
    return base * 3 / 4 + static_cast<sim::Duration>(draw % static_cast<std::uint64_t>(span));
}

void MobileHost::attach_home(sim::Link& link, std::optional<net::Ipv4Address> gateway) {
    cancel_registration_timers();

    const bool was_registered = registered_;
    const net::Ipv4Address old_care_of = care_of_;

    if (physical_interface_ == stack::IpStack::kNoInterface) {
        sim::Nic& n = add_nic();
        physical_interface_ = stack().add_interface(n);
    }
    stack::Interface& ifc = stack().iface(physical_interface_);
    stack().deconfigure(physical_interface_);
    if (ifc.nic() != nullptr) {
        ifc.nic()->disconnect();
        ifc.nic()->connect(link);
    }
    stack().configure(physical_interface_, config_.home_address, config_.home_subnet);
    if (gateway) {
        stack().add_default_route(*gateway, physical_interface_);
    }
    if (home_local_added_) {
        stack().remove_local_address(config_.home_address);
        home_local_added_ = false;
    }
    at_home_ = true;
    registered_ = false;
    fa_mode_ = false;
    fa_waiting_advert_ = false;
    fa_done_ = {};
    care_of_ = net::Ipv4Address{};

    // Reclaim the home address from the home agent's proxy ARP.
    if (ifc.arp() != nullptr) {
        ifc.arp()->announce(config_.home_address);
    }
    if (was_registered) {
        // Deregister: lifetime 0, from the home address (we're home now).
        RegistrationRequest req;
        req.lifetime = 0;
        req.home_address = config_.home_address;
        req.home_agent = config_.home_agent;
        req.care_of_address = old_care_of;
        req.id = next_registration_id_++;
        net::BufferWriter w;
        req.serialize(w, config_.registration_key);
        reg_socket_->bind_address(config_.home_address);
        ++stats_.registrations_sent;
        reg_socket_->send_to(config_.home_agent, net::ports::kMobileIpRegistration, w.take());
    }
    tcp_->notify_route_change();
}

void MobileHost::attach_foreign(sim::Link& link, net::Ipv4Address care_of, net::Prefix subnet,
                                std::optional<net::Ipv4Address> gateway,
                                RegistrationCallback done) {
    cancel_registration_timers();

    if (physical_interface_ == stack::IpStack::kNoInterface) {
        sim::Nic& n = add_nic();
        physical_interface_ = stack().add_interface(n);
    }
    stack::Interface& ifc = stack().iface(physical_interface_);
    stack().deconfigure(physical_interface_);
    if (ifc.nic() != nullptr) {
        ifc.nic()->disconnect();
        ifc.nic()->connect(link);
    }
    stack().configure(physical_interface_, care_of, subnet);
    if (gateway) {
        stack().add_default_route(*gateway, physical_interface_);
    }

    at_home_ = false;
    registered_ = false;
    fa_mode_ = false;
    fa_waiting_advert_ = false;
    care_of_ = care_of;
    // The home address stays "ours": decapsulated inner packets and In-DH
    // link-layer deliveries are addressed to it.
    if (!home_local_added_) {
        stack().add_local_address(config_.home_address);
        home_local_added_ = true;
    }

    // Registration itself uses the care-of address — "it has no choice"
    // (paper §6.4).
    reg_dst_ = config_.home_agent;
    reg_socket_->bind_address(care_of_);
    send_registration(config_.registration_lifetime, 0, std::move(done));
    tcp_->notify_route_change();
}

void MobileHost::attach_via_foreign_agent(sim::Link& link, RegistrationCallback done) {
    cancel_registration_timers();

    if (physical_interface_ == stack::IpStack::kNoInterface) {
        sim::Nic& n = add_nic();
        physical_interface_ = stack().add_interface(n);
    }
    stack::Interface& ifc = stack().iface(physical_interface_);
    stack().deconfigure(physical_interface_);
    if (ifc.nic() != nullptr) {
        ifc.nic()->disconnect();
        ifc.nic()->connect(link);
    }
    // No address of our own: we only answer ARP for the home address so
    // the agent (and Row C correspondents) can reach us on this segment.
    if (ifc.arp() != nullptr) {
        ifc.arp()->set_local_address(config_.home_address);
        ifc.arp()->flush_cache();
    }
    if (!home_local_added_) {
        stack().add_local_address(config_.home_address);
        home_local_added_ = true;
    }
    at_home_ = false;
    registered_ = false;
    fa_mode_ = true;
    fa_waiting_advert_ = true;
    fa_addr_ = {};
    care_of_ = {};
    fa_done_ = std::move(done);

    // Ask any agents on the segment to advertise immediately (RFC 1256
    // style solicitation); otherwise we wait for the periodic beacon.
    net::BufferWriter w;
    net::IcmpMessage::agent_solicitation().serialize(w);
    net::Packet solicit = net::make_packet(config_.home_address,
                                           net::Ipv4Address(0xffffffffu),
                                           net::IpProto::Icmp, w.take(), /*ttl=*/1);
    stack().send_direct(std::move(solicit), physical_interface_);
    tcp_->notify_route_change();
}

void MobileHost::detach_current() {
    if (physical_interface_ == stack::IpStack::kNoInterface) return;
    cancel_registration_timers();
    stack::Interface& ifc = stack().iface(physical_interface_);
    stack().deconfigure(physical_interface_);
    if (ifc.nic() != nullptr) {
        ifc.nic()->disconnect();
    }
    registered_ = false;
    care_of_ = net::Ipv4Address{};
    tcp_->notify_route_change();
}

// ---- registration client -----------------------------------------------------

void MobileHost::send_registration(std::uint16_t lifetime, unsigned attempt,
                                   RegistrationCallback done) {
    // An initial attach (one with a callback waiting on the outcome) gives
    // up after max_retries. Background refreshes keep trying forever with
    // capped exponential backoff — the home agent being down is exactly
    // when giving up would orphan the binding permanently.
    if (done && attempt >= config_.registration_max_retries) {
        registration_pending_ = false;
        done(false);
        return;
    }
    registration_pending_ = true;
    if (attempt == 0) jitter_->reset();  // fresh exchange: restart the ramp
    if (attempt > 0) ++stats_.registration_backoffs;
    if (circuit_open_) ++stats_.registration_circuit_probes;

    RegistrationRequest req;
    req.lifetime = lifetime;
    req.home_address = config_.home_address;
    req.home_agent = config_.home_agent;
    req.care_of_address = care_of_;
    req.id = next_registration_id_++;
    expected_reply_id_ = req.id;

    reg_socket_->set_receiver([this, done](std::span<const std::uint8_t> data,
                                           const transport::RxMeta&) {
        RegistrationCallback cb = done;  // copy: the lambda may be replaced below
        on_registration_reply(data, cb);
    });

    net::BufferWriter w;
    req.serialize(w, config_.registration_key);
    ++stats_.registrations_sent;
    const net::Ipv4Address dst = reg_dst_.is_unspecified() ? config_.home_agent : reg_dst_;
    reg_socket_->send_to(dst, net::ports::kMobileIpRegistration, w.take());

    // Cap the attempt counter once the backoff has saturated, so an
    // indefinitely retrying refresh can't overflow it.
    const unsigned next_attempt = std::min(attempt + 1, 16u);

    // Backoff with seeded decorrelated jitter (or the legacy doubling).
    // A background refresh that has burned its retry budget opens the
    // circuit instead: park, and probe at a slow jittered interval — the
    // recovering agent meets a trickle, not the whole orphaned fleet.
    sim::Duration delay;
    if (!done && config_.registration_retry_budget > 0 &&
        next_attempt > config_.registration_retry_budget) {
        if (!circuit_open_) {
            circuit_open_ = true;
            ++stats_.registration_circuit_opens;
        }
        delay = circuit_probe_delay();
    } else {
        delay = retry_delay(attempt);
    }

    registration_timer_ = simulator().schedule_in(
        delay,
        [this, lifetime, next_attempt, done]() mutable {
            registration_timer_armed_ = false;
            if (registration_pending_ && !at_home_) {
                send_registration(lifetime, next_attempt, std::move(done));
            }
        },
        "mip-registration-retry");
    registration_timer_armed_ = true;
}

void MobileHost::on_registration_reply(std::span<const std::uint8_t> data,
                                       RegistrationCallback& done) {
    RegistrationReply reply;
    try {
        net::BufferReader r(data);
        reply = RegistrationReply::parse(r);
    } catch (const net::ParseError&) {
        return;
    }
    if (!RegistrationRequest::authenticate(data, config_.registration_key)) {
        return;  // forged or mis-keyed reply: ignore, keep retrying
    }
    if (reply.id != expected_reply_id_ || reply.home_address != config_.home_address) {
        return;
    }
    registration_pending_ = false;
    if (registration_timer_armed_) {
        simulator().cancel(registration_timer_);
        registration_timer_armed_ = false;
    }
    if (!reply.accepted()) {
        if (done) done(false);
        return;
    }
    if (reply.lifetime > 0) {
        registered_ = true;
        circuit_open_ = false;  // the agent answered: close the circuit
        jitter_->reset();
        arm_binding_expiry(reply.lifetime);
        schedule_reregistration(reply.lifetime);
        if (done) done(true);
    }
}

void MobileHost::arm_binding_expiry(std::uint16_t granted_lifetime) {
    binding_expires_ = simulator().now() + sim::seconds(granted_lifetime);
    if (expiry_timer_armed_) {
        simulator().cancel(expiry_timer_);
    }
    expiry_timer_ = simulator().schedule_at(
        binding_expires_,
        [this] {
            expiry_timer_armed_ = false;
            if (!at_home_ && registered_ && simulator().now() >= binding_expires_) {
                registered_ = false;
                ++stats_.binding_expiries;
            }
        },
        "mip-binding-expiry");
    expiry_timer_armed_ = true;
}

void MobileHost::schedule_reregistration(std::uint16_t granted_lifetime) {
    if (rereg_timer_armed_) {
        simulator().cancel(rereg_timer_);
    }
    // Refresh at 80% of the granted lifetime.
    const sim::Duration refresh = sim::seconds(granted_lifetime) * 8 / 10;
    rereg_timer_ = simulator().schedule_in(
        refresh,
        [this] {
            rereg_timer_armed_ = false;
            if (!at_home_ && physical_interface_ != stack::IpStack::kNoInterface &&
                !care_of_.is_unspecified()) {
                send_registration(config_.registration_lifetime, 0, {});
            }
        },
        "mip-reregistration");
    rereg_timer_armed_ = true;
}

// ---- discovery publication ----------------------------------------------------

void MobileHost::publish_care_of_dns(dns::Resolver& resolver, const std::string& name,
                                     std::uint32_t ttl_seconds) {
    if (at_home_ || !registered_ || care_of_.is_unspecified()) {
        return;
    }
    resolver.send_update(dns::Record{name, dns::RecordType::TA, care_of_, ttl_seconds});
}

void MobileHost::withdraw_care_of_dns(dns::Resolver& resolver, const std::string& name) {
    resolver.send_removal(name, dns::RecordType::TA);
}

// ---- the mobility policy table (RouteResolver) -------------------------------

OutMode MobileHost::mode_for(net::Ipv4Address dst) {
    return method_cache_.mode_for(dst, simulator().now());
}

void MobileHost::force_mode(net::Ipv4Address dst, OutMode mode) {
    method_cache_.force_mode(dst, mode, simulator().now());
}

std::optional<stack::Resolution> MobileHost::resolve(const stack::FlowKey& flow) {
    // At home, a mobile host "functions like a normal non-mobile Internet
    // host" (§2): no policy at all.
    if (at_home_) {
        return std::nullopt;
    }
    // §6.4: multicast bypasses Mobile IP — groups are joined "through the
    // real physical interface on the current local network", so sends go
    // out the local interface untouched.
    if (flow.dst.is_multicast()) {
        return std::nullopt;
    }
    // An explicit bind to anything but the home address — in particular to
    // the care-of address — opts the flow out of Mobile IP (§7.1.1). This
    // also terminates the recursion for packets our own tunnel interfaces
    // emit (their outer source is the care-of address).
    if (!flow.bound_src.is_unspecified() && flow.bound_src != config_.home_address) {
        return std::nullopt;
    }
    const bool explicitly_home = flow.bound_src == config_.home_address;

    // Attached through a foreign agent: we have no address of our own, so
    // everything rides the home address via the agent — exactly the loss
    // of per-flow freedom the paper warns foreign agents impose.
    if (fa_mode_) {
        if (fa_addr_.is_unspecified()) {
            return std::nullopt;  // still soliciting; nothing is routable yet
        }
        return stack::Resolution::via_interface(physical_interface_, fa_addr_,
                                                config_.home_address);
    }

    // Until registration completes no home-address mode can receive replies
    // (the home agent would not know where to tunnel them), so default
    // traffic runs as plain Out-DT — unless the app insisted on home.
    if (!registered_ && !explicitly_home) {
        ++stats_.out_dt;
        return stack::Resolution::table(care_of_);
    }

    // Privacy mode applies to all home-address traffic, explicit bind or
    // not: the correspondent must never see the care-of address.
    if (config_.privacy_mode) {
        return stack::Resolution::via_interface(vif_home_, {}, config_.home_address);
    }

    // §7.1.2, taken literally: an IP client flagged this packet as a
    // retransmission — evidence the current delivery method is failing.
    // (Deduplicated per simulated instant: the flow is resolved once for
    // source selection and once for routing.)
    if (flow.retransmission) {
        const auto now = this->simulator().now();
        auto [it, fresh] = last_retransmission_signal_.try_emplace(flow.dst, -1);
        if (it->second != now) {
            it->second = now;
            ++stats_.failure_signals;
            method_cache_.report_failure(flow.dst, now, "flow-retransmission-flag");
        }
    }

    // §7.1.1 port heuristics: short-lived / transactional traffic skips
    // Mobile IP entirely.
    if (config_.enable_port_heuristics && !explicitly_home &&
        config_.temporary_address_ports.contains(flow.dst_port)) {
        ++stats_.out_dt;
        return stack::Resolution::table(care_of_);
    }

    switch (method_cache_.mode_for(flow.dst, simulator().now())) {
        case OutMode::IE:
            return stack::Resolution::via_interface(vif_home_, {}, config_.home_address);
        case OutMode::DE:
            return stack::Resolution::via_interface(vif_direct_, {}, config_.home_address);
        case OutMode::DH:
            ++stats_.out_dh;
            return stack::Resolution::table(config_.home_address);
        case OutMode::DT:
            ++stats_.out_dt;
            return stack::Resolution::table(care_of_);
    }
    return std::nullopt;
}

}  // namespace mip::core
