#include "core/binding.h"

#include <algorithm>

namespace mip::core {

void BindingTable::set(net::Ipv4Address home, net::Ipv4Address care_of,
                       sim::TimePoint expires) {
    bindings_.insert_or_assign(home, Binding{home, care_of, expires});
}

void BindingTable::remove(net::Ipv4Address home) {
    bindings_.erase(home);
}

std::optional<Binding> BindingTable::lookup(net::Ipv4Address home, sim::TimePoint now) const {
    const Binding* b = bindings_.find(home);
    if (b == nullptr || b->expires <= now) {
        return std::nullopt;
    }
    return *b;
}

std::size_t BindingTable::expire(sim::TimePoint now) {
    return bindings_.erase_if(
        [now](net::Ipv4Address, const Binding& b) { return b.expires <= now; });
}

std::optional<sim::TimePoint> BindingTable::earliest_expiry() const {
    std::optional<sim::TimePoint> earliest;
    for (const auto& entry : bindings_.entries()) {
        if (!earliest || entry.value.expires < *earliest) earliest = entry.value.expires;
    }
    return earliest;
}

std::vector<Binding> BindingTable::snapshot() const {
    std::vector<Binding> out;
    out.reserve(bindings_.size());
    for (const auto& entry : bindings_.entries()) {
        out.push_back(entry.value);
    }
    std::sort(out.begin(), out.end(), [](const Binding& a, const Binding& b) {
        return a.home_address < b.home_address;
    });
    return out;
}

}  // namespace mip::core
