#include "core/binding.h"

namespace mip::core {

void BindingTable::set(net::Ipv4Address home, net::Ipv4Address care_of,
                       sim::TimePoint expires) {
    bindings_[home] = Binding{home, care_of, expires};
}

void BindingTable::remove(net::Ipv4Address home) {
    bindings_.erase(home);
}

std::optional<Binding> BindingTable::lookup(net::Ipv4Address home, sim::TimePoint now) const {
    auto it = bindings_.find(home);
    if (it == bindings_.end() || it->second.expires <= now) {
        return std::nullopt;
    }
    return it->second;
}

std::size_t BindingTable::expire(sim::TimePoint now) {
    return std::erase_if(bindings_,
                         [now](const auto& kv) { return kv.second.expires <= now; });
}

std::optional<sim::TimePoint> BindingTable::earliest_expiry() const {
    std::optional<sim::TimePoint> earliest;
    for (const auto& [home, b] : bindings_) {
        if (!earliest || b.expires < *earliest) earliest = b.expires;
    }
    return earliest;
}

std::vector<Binding> BindingTable::snapshot() const {
    std::vector<Binding> out;
    out.reserve(bindings_.size());
    for (const auto& [home, b] : bindings_) {
        out.push_back(b);
    }
    return out;
}

}  // namespace mip::core
