#include "core/binding.h"

#include <algorithm>

namespace mip::core {

void BindingTable::set(net::Ipv4Address home, net::Ipv4Address care_of,
                       sim::TimePoint expires) {
    if (cache_valid_) {
        const Binding* existing = bindings_.find(home);
        if (existing != nullptr && cached_min_ && existing->expires == *cached_min_) {
            // Overwriting the entry that (may) hold the minimum: the new
            // expiry could be later, so the cache must be rebuilt.
            cache_valid_ = false;
        } else if (!cached_min_ || expires < *cached_min_) {
            cached_min_ = expires;
        }
    }
    bindings_.insert_or_assign(home, Binding{home, care_of, expires});
}

void BindingTable::remove(net::Ipv4Address home) {
    if (cache_valid_ && cached_min_) {
        const Binding* existing = bindings_.find(home);
        if (existing != nullptr && existing->expires == *cached_min_) {
            cache_valid_ = false;
        }
    }
    bindings_.erase(home);
}

std::optional<Binding> BindingTable::lookup(net::Ipv4Address home, sim::TimePoint now) const {
    const Binding* b = bindings_.find(home);
    if (b == nullptr || b->expires <= now) {
        return std::nullopt;
    }
    return *b;
}

std::size_t BindingTable::expire(sim::TimePoint now) {
    return expire(now, nullptr);
}

std::size_t BindingTable::expire(sim::TimePoint now,
                                 const std::function<void(const Binding&)>& on_expired) {
    const std::size_t removed = bindings_.erase_if(
        [now, &on_expired](net::Ipv4Address, const Binding& b) {
            if (b.expires > now) return false;
            if (on_expired) on_expired(b);
            return true;
        });
    if (removed > 0 && cache_valid_ && cached_min_ && *cached_min_ <= now) {
        // The cached minimum was among the expired: rebuild lazily.
        cache_valid_ = false;
    }
    return removed;
}

std::optional<sim::TimePoint> BindingTable::earliest_expiry() const {
    if (!cache_valid_) {
        cached_min_.reset();
        for (const auto& entry : bindings_.entries()) {
            if (!cached_min_ || entry.value.expires < *cached_min_) {
                cached_min_ = entry.value.expires;
            }
        }
        cache_valid_ = true;
    }
    return cached_min_;
}

std::vector<Binding> BindingTable::snapshot() const {
    std::vector<Binding> out;
    out.reserve(bindings_.size());
    for (const auto& entry : bindings_.entries()) {
        out.push_back(entry.value);
    }
    std::sort(out.begin(), out.end(), [](const Binding& a, const Binding& b) {
        return a.home_address < b.home_address;
    });
    return out;
}

}  // namespace mip::core
