// The home agent (paper §2): a host on the mobile host's home network that
// acts as its proxy while it is away.
//
//  * Accepts registrations (UDP 434) and maintains the binding table.
//  * Uses gratuitous proxy ARP to capture packets addressed to absent
//    mobile hosts on the home segment.
//  * Tunnels captured packets to the registered care-of address (In-IE).
//  * Decapsulates reverse-tunneled packets from mobile hosts and re-sends
//    the inner packet on their behalf (Out-IE, Figure 3).
//  * Optionally notifies correspondents of the care-of address with an
//    ICMP care-of advert, enabling route optimization (Figure 5).
#pragma once

#include <memory>
#include <optional>
#include <set>

#include "core/binding.h"
#include "core/overload.h"
#include "core/registration.h"
#include "stack/host.h"
#include "transport/udp_service.h"
#include "tunnel/encapsulator.h"

namespace mip::core {

struct HomeAgentConfig {
    tunnel::EncapScheme encap_scheme = tunnel::EncapScheme::IpInIp;
    /// Send ICMP care-of adverts to correspondents whose packets we tunnel
    /// (the paper's first route-optimization discovery mechanism, §3.2).
    bool send_care_of_adverts = false;
    /// Minimum interval between adverts to the same correspondent.
    sim::Duration advert_interval = sim::seconds(10);
    /// Cap on granted binding lifetimes.
    std::uint16_t max_lifetime_seconds = 600;

    /// Shared registration key (RFC 2002's mobility security association,
    /// simplified). 0 is a valid key; mobile hosts must be configured with
    /// the same value or their registrations are denied.
    std::uint64_t registration_key = 0;

    /// Multicast groups the agent joins on the home network and relays,
    /// tunneled, to every registered mobile host — the "virtual interface"
    /// subscription of §6.4, implemented so its self-defeating cost can be
    /// measured against joining on the visited network directly.
    std::set<net::Ipv4Address> multicast_relay_groups;

    /// Overload protection for the registration path (ISSUE 9). nullopt =
    /// the historical synchronous path: every request is processed inline
    /// on arrival, unbounded — existing scenarios are byte-identical.
    /// When set, requests flow through a RegistrationQueue: renewals of
    /// live bindings outrank new registrations, the queue sheds when
    /// full, and an optional token bucket admission-limits the new class.
    std::optional<OverloadConfig> overload;
};

class HomeAgent : public stack::Host {
public:
    HomeAgent(sim::Simulator& simulator, std::string name, HomeAgentConfig config = {});

    /// Attach to the home segment (must be called before registrations
    /// arrive). Thin wrapper over Host::attach that remembers the home
    /// interface for proxy-ARP purposes.
    std::size_t attach_home(sim::Link& link, net::Ipv4Address addr, net::Prefix subnet,
                            std::optional<net::Ipv4Address> gateway = std::nullopt);

    const BindingTable& bindings() const noexcept { return bindings_; }
    bool is_registered(net::Ipv4Address home_addr) const;

    /// Simulated fail-stop crash: wipes all volatile state — binding
    /// table, the proxy-ARP captures backing it, the advert rate-limit
    /// map — and ignores all traffic until restart(). Mobile hosts
    /// recover by re-registering (proactive refresh + backoff retry).
    void crash();
    void restart();
    bool crashed() const noexcept { return crashed_; }

    /// Warm-restart helper: installs a binding directly (as if a valid
    /// registration for @p lifetime_seconds had just been accepted),
    /// including the proxy-ARP capture and GC arming, without a wire
    /// exchange. Lets tests and recovery tooling rebuild a table whose
    /// entries share one expiry tick — the mass-expiry shape wire
    /// delivery can't produce (serialization staggers arrivals).
    void restore_binding(net::Ipv4Address home, net::Ipv4Address care_of,
                         std::uint16_t lifetime_seconds);

    /// The overload-protection queue, or nullptr when config.overload is
    /// unset (synchronous processing).
    RegistrationQueue* overload_queue() noexcept { return overload_queue_.get(); }

    struct Stats {
        std::size_t registrations_accepted = 0;
        std::size_t registrations_renewed = 0;  ///< accepted refreshes of live bindings
        std::size_t registrations_denied_auth = 0;
        std::size_t deregistrations = 0;
        std::size_t packets_tunneled = 0;      ///< captured & forwarded to COA
        std::size_t packets_reverse_forwarded = 0;  ///< decapsulated & re-sent for MH
        std::size_t adverts_sent = 0;
        std::size_t multicast_relayed = 0;  ///< group packets re-tunneled to MHs
        std::size_t crashes = 0;
        std::size_t bindings_expired = 0;  ///< GC'd after their lifetime lapsed
        std::size_t gc_rearms = 0;  ///< GC timer (re)schedules — O(1) per mass expiry
    };
    const Stats& stats() const noexcept { return stats_; }

    const HomeAgentConfig& config() const noexcept { return config_; }
    transport::UdpService& udp() noexcept { return *udp_; }

private:
    void on_registration(std::span<const std::uint8_t> data, transport::UdpEndpoint from);
    /// The actual registration service work (authenticate, mutate the
    /// binding table, reply). Runs inline on arrival without overload
    /// protection; dequeued after the queueing delay with it.
    void process_registration(const RegistrationRequest& req,
                              std::span<const std::uint8_t> data,
                              transport::UdpEndpoint from);
    bool intercept_forward(const net::Packet& packet, std::size_t in_interface);
    void on_encapsulated(const net::Packet& packet);
    void maybe_send_advert(net::Ipv4Address correspondent, const Binding& binding);
    /// (Re)arms the binding GC timer at the table's earliest expiry. Only
    /// cancels the pending timer when a strictly earlier expiry appears, so
    /// the simulator's cancelled-set churn stays bounded.
    void arm_binding_gc();
    void expire_bindings();

    HomeAgentConfig config_;
    std::unique_ptr<tunnel::Encapsulator> encap_;
    std::unique_ptr<transport::UdpService> udp_;
    std::unique_ptr<transport::UdpSocket> reg_socket_;
    std::unique_ptr<RegistrationQueue> overload_queue_;  ///< null = synchronous
    BindingTable bindings_;
    std::size_t home_interface_ = stack::IpStack::kNoInterface;
    std::map<net::Ipv4Address, sim::TimePoint> last_advert_;
    bool crashed_ = false;
    sim::EventId gc_timer_ = 0;
    bool gc_armed_ = false;
    sim::TimePoint gc_at_ = 0;
    Stats stats_;
};

}  // namespace mip::core
