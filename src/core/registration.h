// Mobile IP registration protocol (modelled on the IETF draft the paper
// builds on [Per96a], later RFC 2002): UDP messages on port 434 between a
// mobile host and its home agent, carrying a keyed authenticator.
//
// Registration is itself sent with the care-of address as the source —
// the paper points out (§6.4) that "our Mobile IP support software itself
// communicates using the temporary address when registering with the home
// agent. It has no choice."
//
// The authenticator stands in for RFC 2002's MD5 mobile-home extension: a
// keyed 64-bit MAC over the message body. It exists so the trust model is
// explicit (a home agent must not accept bindings from strangers — that
// would let anyone hijack a host's traffic); it is NOT cryptographically
// strong and must not be copied into real systems.
#pragma once

#include <cstdint>
#include <span>

#include "net/buffer.h"
#include "net/ipv4_address.h"

namespace mip::core {

/// Fixed wire sizes including the trailing 64-bit authenticator.
inline constexpr std::size_t kRegistrationRequestSize = 24 + 8;
inline constexpr std::size_t kRegistrationReplySize = 20 + 8;

enum class RegistrationMessageType : std::uint8_t {
    Request = 1,
    Reply = 3,
};

enum class RegistrationCode : std::uint8_t {
    Accepted = 0,
    DeniedUnspecified = 128,
    DeniedBadAuthenticator = 131,
    DeniedBadRequest = 134,
};

/// Keyed MAC over a serialized registration body (FNV-1a mixed with the
/// shared key — a stand-in for the draft's keyed-MD5).
std::uint64_t registration_mac(std::span<const std::uint8_t> body, std::uint64_t key);

struct RegistrationRequest {
    /// Seconds the binding should remain valid. 0 = deregistration.
    std::uint16_t lifetime = 300;
    net::Ipv4Address home_address;
    net::Ipv4Address home_agent;
    net::Ipv4Address care_of_address;
    /// Matches replies to requests and provides replay ordering.
    std::uint64_t id = 0;

    bool is_deregistration() const noexcept {
        return lifetime == 0 || care_of_address == home_address;
    }

    /// Serializes the message and appends the authenticator for @p key.
    void serialize(net::BufferWriter& w, std::uint64_t key = 0) const;

    /// Parses the body; does NOT verify the authenticator (the datagram is
    /// needed for that — see authenticate()).
    static RegistrationRequest parse(net::BufferReader& r);

    /// Verifies the trailing authenticator of a serialized request/reply
    /// datagram against @p key.
    static bool authenticate(std::span<const std::uint8_t> datagram, std::uint64_t key);
};

struct RegistrationReply {
    RegistrationCode code = RegistrationCode::Accepted;
    std::uint16_t lifetime = 0;  ///< granted lifetime (may be shorter than asked)
    net::Ipv4Address home_address;
    net::Ipv4Address home_agent;
    std::uint64_t id = 0;  ///< echoed from the request

    bool accepted() const noexcept { return code == RegistrationCode::Accepted; }

    void serialize(net::BufferWriter& w, std::uint64_t key = 0) const;
    static RegistrationReply parse(net::BufferReader& r);
};

}  // namespace mip::core
