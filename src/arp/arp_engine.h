// Per-interface ARP: cache, resolution with request retries and pending
// queues, reply generation, gratuitous announcements, and proxy ARP.
//
// Proxy ARP is the home agent's capture mechanism (paper §2): while a
// mobile host is away, its home agent answers ARP requests for the mobile
// host's home address with the agent's own MAC, so every packet addressed
// to the mobile host on the home segment lands at the agent.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "arp/arp_message.h"
#include "net/ipv4_address.h"
#include "sim/nic.h"
#include "sim/simulator.h"

namespace mip::arp {

struct ArpConfig {
    sim::Duration cache_ttl = sim::seconds(300);
    sim::Duration request_interval = sim::milliseconds(500);
    unsigned max_retries = 3;
};

class ArpEngine {
public:
    using ResolveCallback = std::function<void(std::optional<sim::MacAddress>)>;

    ArpEngine(sim::Simulator& simulator, sim::Nic& nic, ArpConfig config = {});

    /// Sets the IP address this engine answers requests for (the
    /// interface's own address). Unset/unspecified = answer nothing.
    void set_local_address(net::Ipv4Address addr) { local_ = addr; }
    net::Ipv4Address local_address() const noexcept { return local_; }

    /// Adds/removes an address this engine answers ARP for *on behalf of
    /// another node* (proxy ARP).
    void add_proxy(net::Ipv4Address addr);
    void remove_proxy(net::Ipv4Address addr);
    bool is_proxied(net::Ipv4Address addr) const { return proxied_.contains(addr); }

    /// Resolves @p target to a MAC. Invokes @p cb immediately on a cache
    /// hit; otherwise broadcasts requests (with retries) and calls back on
    /// reply or, with nullopt, after the final timeout.
    void resolve(net::Ipv4Address target, ResolveCallback cb);

    /// Feeds a received ARP frame payload to the engine.
    void handle_frame(const sim::Frame& frame);

    /// Broadcasts a gratuitous reply announcing @p addr at this NIC's MAC.
    /// Every host on the segment updates its cache — this is how a home
    /// agent hijacks (and a returning mobile host reclaims) a home address.
    void announce(net::Ipv4Address addr);

    /// Drops all cached entries (e.g. after the NIC moved to a new segment).
    void flush_cache();

    std::optional<sim::MacAddress> lookup(net::Ipv4Address target) const;

    // Introspection counters for tests.
    std::size_t requests_sent() const noexcept { return requests_sent_; }
    std::size_t replies_sent() const noexcept { return replies_sent_; }
    std::size_t proxy_replies_sent() const noexcept { return proxy_replies_sent_; }

private:
    struct CacheEntry {
        sim::MacAddress mac;
        sim::TimePoint expires;
    };
    struct PendingResolution {
        std::vector<ResolveCallback> callbacks;
        unsigned attempts = 0;
        sim::EventId retry_event = 0;
    };

    void send_message(const ArpMessage& m, sim::MacAddress dst);
    void send_request(net::Ipv4Address target);
    void retry(net::Ipv4Address target);
    void learn(net::Ipv4Address ip, sim::MacAddress mac);

    sim::Simulator& simulator_;
    sim::Nic& nic_;
    ArpConfig config_;
    net::Ipv4Address local_;
    std::set<net::Ipv4Address> proxied_;
    std::map<net::Ipv4Address, CacheEntry> cache_;
    std::map<net::Ipv4Address, PendingResolution> pending_;
    std::size_t requests_sent_ = 0;
    std::size_t replies_sent_ = 0;
    std::size_t proxy_replies_sent_ = 0;
};

}  // namespace mip::arp
