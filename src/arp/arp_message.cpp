#include "arp/arp_message.h"

namespace mip::arp {

namespace {
constexpr std::uint16_t kHtypeEthernet = 1;
constexpr std::uint16_t kPtypeIpv4 = 0x0800;
}  // namespace

void ArpMessage::serialize(net::BufferWriter& w) const {
    w.u16(kHtypeEthernet);
    w.u16(kPtypeIpv4);
    w.u8(6);  // hardware address length
    w.u8(4);  // protocol address length
    w.u16(static_cast<std::uint16_t>(op));
    w.bytes(sender_mac.octets());
    w.u32(sender_ip.value());
    w.bytes(target_mac.octets());
    w.u32(target_ip.value());
}

ArpMessage ArpMessage::parse(net::BufferReader& r) {
    if (r.remaining() < kArpMessageSize) {
        throw net::ParseError("ARP message truncated");
    }
    if (r.u16() != kHtypeEthernet || r.u16() != kPtypeIpv4) {
        throw net::ParseError("ARP: unsupported hardware/protocol type");
    }
    if (r.u8() != 6 || r.u8() != 4) {
        throw net::ParseError("ARP: unexpected address lengths");
    }
    ArpMessage m;
    m.op = static_cast<ArpOp>(r.u16());
    std::array<std::uint8_t, 6> mac{};
    auto smac = r.bytes(6);
    std::copy(smac.begin(), smac.end(), mac.begin());
    m.sender_mac = sim::MacAddress(mac);
    m.sender_ip = net::Ipv4Address(r.u32());
    auto tmac = r.bytes(6);
    std::copy(tmac.begin(), tmac.end(), mac.begin());
    m.target_mac = sim::MacAddress(mac);
    m.target_ip = net::Ipv4Address(r.u32());
    return m;
}

ArpMessage ArpMessage::request(sim::MacAddress sender_mac, net::Ipv4Address sender_ip,
                               net::Ipv4Address target_ip) {
    ArpMessage m;
    m.op = ArpOp::Request;
    m.sender_mac = sender_mac;
    m.sender_ip = sender_ip;
    m.target_ip = target_ip;
    return m;
}

ArpMessage ArpMessage::reply(sim::MacAddress sender_mac, net::Ipv4Address sender_ip,
                             sim::MacAddress target_mac, net::Ipv4Address target_ip) {
    ArpMessage m;
    m.op = ArpOp::Reply;
    m.sender_mac = sender_mac;
    m.sender_ip = sender_ip;
    m.target_mac = target_mac;
    m.target_ip = target_ip;
    return m;
}

ArpMessage ArpMessage::gratuitous(sim::MacAddress sender_mac, net::Ipv4Address ip) {
    ArpMessage m;
    m.op = ArpOp::Reply;
    m.sender_mac = sender_mac;
    m.sender_ip = ip;
    m.target_mac = sim::MacAddress::broadcast();
    m.target_ip = ip;
    return m;
}

}  // namespace mip::arp
