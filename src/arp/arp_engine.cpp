#include "arp/arp_engine.h"

namespace mip::arp {

ArpEngine::ArpEngine(sim::Simulator& simulator, sim::Nic& nic, ArpConfig config)
    : simulator_(simulator), nic_(nic), config_(config) {}

void ArpEngine::add_proxy(net::Ipv4Address addr) {
    proxied_.insert(addr);
}

void ArpEngine::remove_proxy(net::Ipv4Address addr) {
    proxied_.erase(addr);
}

std::optional<sim::MacAddress> ArpEngine::lookup(net::Ipv4Address target) const {
    auto it = cache_.find(target);
    if (it == cache_.end() || it->second.expires <= simulator_.now()) {
        return std::nullopt;
    }
    return it->second.mac;
}

void ArpEngine::flush_cache() {
    cache_.clear();
}

void ArpEngine::send_message(const ArpMessage& m, sim::MacAddress dst) {
    net::BufferWriter w(kArpMessageSize);
    m.serialize(w);
    sim::Frame frame;
    frame.dst = dst;
    frame.type = net::EtherType::Arp;
    frame.payload = w.take();
    nic_.send(std::move(frame));
}

void ArpEngine::send_request(net::Ipv4Address target) {
    ++requests_sent_;
    send_message(ArpMessage::request(nic_.mac(), local_, target), sim::MacAddress::broadcast());
}

void ArpEngine::resolve(net::Ipv4Address target, ResolveCallback cb) {
    if (auto mac = lookup(target)) {
        cb(*mac);
        return;
    }
    auto [it, inserted] = pending_.try_emplace(target);
    it->second.callbacks.push_back(std::move(cb));
    if (!inserted) {
        return;  // request already outstanding; piggyback on it
    }
    it->second.attempts = 1;
    send_request(target);
    it->second.retry_event =
        simulator_.schedule_in(config_.request_interval, [this, target] { retry(target); },
                               "arp-retry");
}

void ArpEngine::retry(net::Ipv4Address target) {
    auto it = pending_.find(target);
    if (it == pending_.end()) return;
    if (it->second.attempts >= config_.max_retries) {
        auto callbacks = std::move(it->second.callbacks);
        pending_.erase(it);
        for (auto& cb : callbacks) cb(std::nullopt);
        return;
    }
    ++it->second.attempts;
    send_request(target);
    it->second.retry_event =
        simulator_.schedule_in(config_.request_interval, [this, target] { retry(target); },
                               "arp-retry");
}

void ArpEngine::learn(net::Ipv4Address ip, sim::MacAddress mac) {
    if (ip.is_unspecified()) return;
    cache_[ip] = CacheEntry{mac, simulator_.now() + config_.cache_ttl};
    auto it = pending_.find(ip);
    if (it != pending_.end()) {
        simulator_.cancel(it->second.retry_event);
        auto callbacks = std::move(it->second.callbacks);
        pending_.erase(it);
        for (auto& cb : callbacks) cb(mac);
    }
}

void ArpEngine::handle_frame(const sim::Frame& frame) {
    ArpMessage m;
    try {
        net::BufferReader r(frame.payload);
        m = ArpMessage::parse(r);
    } catch (const net::ParseError&) {
        return;  // malformed ARP: silently dropped, as real stacks do
    }

    // Learn the sender mapping from both requests and replies.
    learn(m.sender_ip, m.sender_mac);

    if (m.op != ArpOp::Request) {
        return;
    }
    if (!local_.is_unspecified() && m.target_ip == local_) {
        ++replies_sent_;
        send_message(ArpMessage::reply(nic_.mac(), local_, m.sender_mac, m.sender_ip),
                     m.sender_mac);
    } else if (proxied_.contains(m.target_ip)) {
        // Proxy ARP: answer with our own MAC on behalf of the absent host.
        ++proxy_replies_sent_;
        send_message(ArpMessage::reply(nic_.mac(), m.target_ip, m.sender_mac, m.sender_ip),
                     m.sender_mac);
    }
}

void ArpEngine::announce(net::Ipv4Address addr) {
    send_message(ArpMessage::gratuitous(nic_.mac(), addr), sim::MacAddress::broadcast());
}

}  // namespace mip::arp
