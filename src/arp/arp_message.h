// Ethernet/IPv4 ARP wire format (RFC 826) — 28-byte messages.
#pragma once

#include <cstdint>

#include "net/buffer.h"
#include "net/ipv4_address.h"
#include "sim/mac_address.h"

namespace mip::arp {

inline constexpr std::size_t kArpMessageSize = 28;

enum class ArpOp : std::uint16_t {
    Request = 1,
    Reply = 2,
};

struct ArpMessage {
    ArpOp op = ArpOp::Request;
    sim::MacAddress sender_mac;
    net::Ipv4Address sender_ip;
    sim::MacAddress target_mac;  ///< all-zero in requests
    net::Ipv4Address target_ip;

    void serialize(net::BufferWriter& w) const;
    static ArpMessage parse(net::BufferReader& r);

    static ArpMessage request(sim::MacAddress sender_mac, net::Ipv4Address sender_ip,
                              net::Ipv4Address target_ip);
    static ArpMessage reply(sim::MacAddress sender_mac, net::Ipv4Address sender_ip,
                            sim::MacAddress target_mac, net::Ipv4Address target_ip);

    /// Gratuitous announcement: sender == target. Used by a home agent to
    /// (re)claim a mobile host's home address (gratuitous proxy ARP,
    /// RFC 1027), and by a returning mobile host to reclaim it back.
    static ArpMessage gratuitous(sim::MacAddress sender_mac, net::Ipv4Address ip);
};

}  // namespace mip::arp
