// Schema checker for BENCH_perf.json (EXPERIMENTS.md "Simulator
// performance baseline"), shared by the unit tests and the
// validate_metrics binary.
//
// Wall-clock numbers are inherently noisy, which is why the schema
// (version 2) requires every run object to carry the repetition count it
// was measured over and forbids overhead percentages derived from a
// single rep — a lone timing sample once recorded a *negative* fault-hook
// overhead, which is measurement noise presented as a result.
#pragma once

#include <string>
#include <vector>

#include "obs/json.h"

namespace mip::sweep {

/// Checks a parsed BENCH_perf.json against the schema. Empty vector =
/// valid. In particular: any `*_overhead_pct` field whose underlying runs
/// report fewer than 2 reps (or no rep count at all) is rejected.
std::vector<std::string> validate_bench_perf_document(const obs::JsonValue& doc);

}  // namespace mip::sweep
