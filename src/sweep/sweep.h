// Deterministic parallel sweep engine (ISSUE 5 tentpole).
//
// A *sweep* is N independent, fully specified scenario jobs — seed ×
// parameter grid points, e.g. the 20 seeded fault plans of abl_chaos or
// bench_perf's scenario ladder — executed across a fixed-size
// std::thread pool. Each job owns a private World / Simulator /
// MetricsRegistry built inside its run callback, so a job's outputs are
// byte-identical whether the sweep runs on 1 thread or 8: nothing a job
// touches is shared, and nothing in the engine feeds scheduling order
// back into job behaviour.
//
// Determinism contract (DESIGN.md §10):
//   1. Job bodies build every simulator-reachable object themselves and
//      communicate only through their returned JobResult (plus artifact
//      files under distinct names). They must not touch process-global
//      mutable state — the library guarantees it has none (MAC ids, ping
//      idents and packet ids are all per-Simulator).
//   2. Results are reported in JobSpec order and merged sorted by job id,
//      never by completion order.
//   3. The merged report contains only deterministic fields; wall-clock
//      timing lives in SweepOutcome::wall_ms, outside the report.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/json.h"

namespace mip::sweep {

/// What one job hands back to the engine. Everything here must be a pure
/// function of the job's spec (no wall-clock, no thread ids) or the
/// jobs=1 vs jobs=N byte-identity guarantee breaks.
struct JobResult {
    bool ok = true;
    std::string error;  ///< exception text when !ok

    /// Deterministic scalars for this job's row in the merged report
    /// (e.g. {"seed":7, "converged":true, "recovery_ms":326.0}).
    obs::JsonValue::Object report;

    /// The job world's metrics snapshot (docs/TRACE_FORMAT.md §4), or
    /// null. The merge stage aggregates histograms across jobs from here.
    obs::JsonValue metrics;

    /// Number of decision-log events the job recorded (merged into the
    /// report's aggregate).
    std::uint64_t decision_count = 0;
};

/// One fully specified unit of work. The id is the report sort key and
/// must be unique within a sweep; the label names artifacts.
struct JobSpec {
    std::uint64_t id = 0;
    std::string label;
    std::function<JobResult()> run;
};

struct SweepConfig {
    /// Worker thread count. 1 (the default) runs every job inline on the
    /// calling thread — the reference execution parallel runs must match.
    int jobs = 1;
};

/// A finished sweep: per-job results in JobSpec order plus the one
/// non-deterministic fact about the run (how long it took).
struct SweepOutcome {
    std::vector<JobSpec> specs;      ///< the jobs as submitted (run fns consumed)
    std::vector<JobResult> results;  ///< parallel to specs
    double wall_ms = 0.0;            ///< whole-sweep wall-clock
    int jobs_used = 1;               ///< thread count actually used

    std::size_t failures() const noexcept;

    /// Deterministic merged report (docs/TRACE_FORMAT.md §8): jobs sorted
    /// by id, aggregated histograms summed across every job's metrics
    /// snapshot, total decision count. Identical bytes for any thread
    /// count as long as the jobs themselves are deterministic.
    obs::JsonValue report(const std::string& bench, const std::string& label) const;
};

class SweepRunner {
public:
    explicit SweepRunner(SweepConfig config = {});

    /// Executes every job and blocks until all are done. Jobs are claimed
    /// in submission order by a pool of config.jobs threads; a job that
    /// throws is recorded as ok=false with the exception text and does not
    /// disturb the others. With config.jobs <= 1 no thread is spawned.
    SweepOutcome run(std::vector<JobSpec> jobs) const;

    const SweepConfig& config() const noexcept { return config_; }

private:
    SweepConfig config_;
};

/// Checks a parsed document against the sweep-report schema
/// (docs/TRACE_FORMAT.md §8). Empty vector = valid. Shared by the unit
/// tests and the validate_metrics binary.
std::vector<std::string> validate_sweep_document(const obs::JsonValue& doc);

}  // namespace mip::sweep
