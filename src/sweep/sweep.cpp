#include "sweep/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <limits>
#include <map>
#include <thread>
#include <tuple>

namespace mip::sweep {

namespace {

JobResult run_one(const JobSpec& spec) {
    try {
        return spec.run();
    } catch (const std::exception& e) {
        JobResult r;
        r.ok = false;
        r.error = e.what();
        return r;
    } catch (...) {
        JobResult r;
        r.ok = false;
        r.error = "unknown exception";
        return r;
    }
}

}  // namespace

std::size_t SweepOutcome::failures() const noexcept {
    return static_cast<std::size_t>(
        std::count_if(results.begin(), results.end(),
                      [](const JobResult& r) { return !r.ok; }));
}

SweepRunner::SweepRunner(SweepConfig config) : config_(config) {}

SweepOutcome SweepRunner::run(std::vector<JobSpec> jobs) const {
    SweepOutcome out;
    out.results.resize(jobs.size());
    const int want = std::max(1, config_.jobs);
    out.jobs_used = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(want), std::max<std::size_t>(jobs.size(), 1)));

    const auto wall_start = std::chrono::steady_clock::now();
    if (out.jobs_used <= 1) {
        // Reference execution: everything inline, in submission order.
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            out.results[i] = run_one(jobs[i]);
        }
    } else {
        // Work-stealing by shared index: each worker claims the next
        // unstarted job. Claim order affects only wall-clock — every job
        // is self-contained, and results land in their spec's slot.
        std::atomic<std::size_t> next{0};
        std::vector<std::thread> workers;
        workers.reserve(static_cast<std::size_t>(out.jobs_used));
        for (int w = 0; w < out.jobs_used; ++w) {
            workers.emplace_back([&jobs, &out, &next] {
                for (;;) {
                    const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
                    if (i >= jobs.size()) return;
                    out.results[i] = run_one(jobs[i]);
                }
            });
        }
        for (std::thread& t : workers) t.join();
    }
    const auto wall_end = std::chrono::steady_clock::now();
    out.wall_ms =
        std::chrono::duration<double, std::milli>(wall_end - wall_start).count();
    out.specs = std::move(jobs);
    return out;
}

namespace {

/// Histogram aggregation state keyed by (node, layer, name).
struct HistAgg {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    std::map<double, std::uint64_t> buckets;  ///< le -> summed cumulative count
};

void aggregate_metrics(const obs::JsonValue& doc,
                       std::map<std::tuple<std::string, std::string, std::string>, HistAgg>& hists) {
    if (!doc.is_object() || !doc.contains("metrics") || !doc.at("metrics").is_array()) {
        return;
    }
    for (const obs::JsonValue& m : doc.at("metrics").as_array()) {
        if (!m.is_object() || !m.contains("kind") || !m.at("kind").is_string() ||
            m.at("kind").as_string() != "histogram") {
            continue;
        }
        if (!m.contains("node") || !m.contains("layer") || !m.contains("name") ||
            !m.contains("count") || !m.at("count").is_number()) {
            continue;
        }
        HistAgg& agg = hists[{m.at("node").as_string(), m.at("layer").as_string(),
                              m.at("name").as_string()}];
        const double count = m.at("count").as_number();
        agg.count += static_cast<std::uint64_t>(count);
        if (m.contains("sum") && m.at("sum").is_number()) {
            agg.sum += m.at("sum").as_number();
        }
        if (count > 0) {
            if (m.contains("min") && m.at("min").is_number()) {
                agg.min = std::min(agg.min, m.at("min").as_number());
            }
            if (m.contains("max") && m.at("max").is_number()) {
                agg.max = std::max(agg.max, m.at("max").as_number());
            }
        }
        if (m.contains("buckets") && m.at("buckets").is_array()) {
            for (const obs::JsonValue& b : m.at("buckets").as_array()) {
                if (!b.is_object() || !b.contains("le") || !b.at("le").is_number() ||
                    !b.contains("count") || !b.at("count").is_number()) {
                    continue;
                }
                agg.buckets[b.at("le").as_number()] +=
                    static_cast<std::uint64_t>(b.at("count").as_number());
            }
        }
    }
}

}  // namespace

obs::JsonValue SweepOutcome::report(const std::string& bench,
                                    const std::string& label) const {
    // Sort job rows by id — never by completion (or even submission)
    // order — so the report is stable across thread counts and sweep
    // authors are free to submit jobs in any order.
    std::vector<std::size_t> order(specs.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
        return specs[a].id != specs[b].id ? specs[a].id < specs[b].id
                                          : specs[a].label < specs[b].label;
    });

    obs::JsonValue::Array rows;
    std::map<std::tuple<std::string, std::string, std::string>, HistAgg> hists;
    std::uint64_t decision_count = 0;
    std::uint64_t failed = 0;
    for (const std::size_t i : order) {
        const JobSpec& spec = specs[i];
        const JobResult& r = results[i];
        obs::JsonValue::Object row = r.report;  // job scalars first...
        row["id"] = spec.id;                    // ...engine fields authoritative
        row["label"] = spec.label;
        row["ok"] = r.ok;
        if (!r.ok) {
            row["error"] = r.error;
            ++failed;
        }
        rows.emplace_back(std::move(row));
        aggregate_metrics(r.metrics, hists);
        decision_count += r.decision_count;
    }

    obs::JsonValue::Array hist_rows;
    for (const auto& [key, agg] : hists) {
        obs::JsonValue::Object h;
        h["node"] = std::get<0>(key);
        h["layer"] = std::get<1>(key);
        h["name"] = std::get<2>(key);
        h["count"] = agg.count;
        h["sum"] = agg.sum;
        if (agg.count > 0) {
            h["min"] = agg.min;
            h["max"] = agg.max;
            h["mean"] = agg.sum / static_cast<double>(agg.count);
        }
        obs::JsonValue::Array buckets;
        for (const auto& [le, count] : agg.buckets) {
            obs::JsonValue::Object b;
            b["le"] = le;
            b["count"] = count;
            buckets.emplace_back(std::move(b));
        }
        h["buckets"] = std::move(buckets);
        hist_rows.emplace_back(std::move(h));
    }

    obs::JsonValue::Object aggregates;
    aggregates["decision_count"] = decision_count;
    aggregates["histograms"] = std::move(hist_rows);

    obs::JsonValue::Object doc;
    doc["schema_version"] = 1;
    doc["kind"] = "sweep";
    doc["bench"] = bench;
    doc["label"] = label;
    doc["jobs_total"] = static_cast<std::uint64_t>(specs.size());
    doc["jobs_failed"] = failed;
    doc["jobs"] = std::move(rows);
    doc["aggregates"] = std::move(aggregates);
    return obs::JsonValue(std::move(doc));
}

namespace {

void require(std::vector<std::string>& problems, bool ok, const std::string& what) {
    if (!ok) problems.push_back(what);
}

}  // namespace

std::vector<std::string> validate_sweep_document(const obs::JsonValue& doc) {
    std::vector<std::string> problems;
    if (!doc.is_object()) {
        problems.push_back("document is not a JSON object");
        return problems;
    }
    require(problems,
            doc.contains("schema_version") && doc.at("schema_version").is_number() &&
                doc.at("schema_version").as_number() == 1,
            "schema_version must be the number 1");
    require(problems,
            doc.contains("kind") && doc.at("kind").is_string() &&
                doc.at("kind").as_string() == "sweep",
            "kind must be \"sweep\"");
    for (const char* key : {"bench", "label"}) {
        require(problems, doc.contains(key) && doc.at(key).is_string(),
                std::string(key) + " must be a string");
    }
    if (!doc.contains("jobs") || !doc.at("jobs").is_array()) {
        problems.push_back("jobs must be an array");
        return problems;
    }
    const auto& jobs = doc.at("jobs").as_array();
    require(problems,
            doc.contains("jobs_total") && doc.at("jobs_total").is_number() &&
                doc.at("jobs_total").as_number() ==
                    static_cast<double>(jobs.size()),
            "jobs_total must equal the length of jobs");

    double prev_id = -1.0;
    std::uint64_t failed = 0;
    std::size_t i = 0;
    for (const obs::JsonValue& row : jobs) {
        const std::string where = "jobs[" + std::to_string(i++) + "]";
        if (!row.is_object()) {
            problems.push_back(where + " is not an object");
            continue;
        }
        if (!row.contains("id") || !row.at("id").is_number()) {
            problems.push_back(where + ".id must be a number");
            continue;
        }
        const double id = row.at("id").as_number();
        require(problems, id > prev_id,
                where + ": job ids must be strictly increasing (sorted by id)");
        prev_id = id;
        require(problems, row.contains("label") && row.at("label").is_string(),
                where + ".label must be a string");
        if (!row.contains("ok") || !row.at("ok").is_bool()) {
            problems.push_back(where + ".ok must be a boolean");
            continue;
        }
        if (!row.at("ok").as_bool()) ++failed;
    }
    require(problems,
            doc.contains("jobs_failed") && doc.at("jobs_failed").is_number() &&
                doc.at("jobs_failed").as_number() == static_cast<double>(failed),
            "jobs_failed must equal the number of rows with ok=false");

    if (!doc.contains("aggregates") || !doc.at("aggregates").is_object()) {
        problems.push_back("aggregates must be an object");
        return problems;
    }
    const obs::JsonValue& agg = doc.at("aggregates");
    require(problems,
            agg.contains("decision_count") && agg.at("decision_count").is_number() &&
                agg.at("decision_count").as_number() >= 0,
            "aggregates.decision_count must be a non-negative number");
    if (!agg.contains("histograms") || !agg.at("histograms").is_array()) {
        problems.push_back("aggregates.histograms must be an array");
        return problems;
    }
    std::size_t j = 0;
    for (const obs::JsonValue& h : agg.at("histograms").as_array()) {
        const std::string where = "aggregates.histograms[" + std::to_string(j++) + "]";
        if (!h.is_object()) {
            problems.push_back(where + " is not an object");
            continue;
        }
        for (const char* key : {"node", "layer", "name"}) {
            require(problems, h.contains(key) && h.at(key).is_string(),
                    where + "." + key + " must be a string");
        }
        for (const char* key : {"count", "sum"}) {
            require(problems, h.contains(key) && h.at(key).is_number(),
                    where + "." + key + " must be a number");
        }
        if (!h.contains("buckets") || !h.at("buckets").is_array()) {
            problems.push_back(where + ".buckets must be an array");
            continue;
        }
        double prev_le = -std::numeric_limits<double>::infinity();
        std::size_t k = 0;
        for (const obs::JsonValue& b : h.at("buckets").as_array()) {
            const std::string bwhere = where + ".buckets[" + std::to_string(k++) + "]";
            if (!b.is_object() || !b.contains("le") || !b.at("le").is_number() ||
                !b.contains("count") || !b.at("count").is_number()) {
                problems.push_back(bwhere + " must be {le: number, count: number}");
                continue;
            }
            require(problems, b.at("le").as_number() > prev_le,
                    bwhere + ": bucket bounds must be strictly increasing");
            prev_le = b.at("le").as_number();
        }
    }
    return problems;
}

}  // namespace mip::sweep
