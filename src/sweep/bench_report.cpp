#include "sweep/bench_report.h"

namespace mip::sweep {

namespace {

void require(std::vector<std::string>& problems, bool ok, const std::string& what) {
    if (!ok) problems.push_back(what);
}

/// Reps recorded for one run object; 1 when absent (the pre-v2 format
/// measured once and did not say so).
double reps_of(const obs::JsonValue& run) {
    if (run.is_object() && run.contains("reps") && run.at("reps").is_number()) {
        return run.at("reps").as_number();
    }
    return 1.0;
}

void check_run(std::vector<std::string>& problems, const obs::JsonValue& sc,
               const char* key, const std::string& where) {
    if (!sc.contains(key) || !sc.at(key).is_object()) {
        problems.push_back(where + "." + key + " must be an object");
        return;
    }
    const obs::JsonValue& run = sc.at(key);
    for (const char* field : {"events", "wall_ms", "events_per_sec", "sim_seconds"}) {
        require(problems, run.contains(field) && run.at(field).is_number(),
                where + "." + key + "." + field + " must be a number");
    }
}

}  // namespace

std::vector<std::string> validate_bench_perf_document(const obs::JsonValue& doc) {
    std::vector<std::string> problems;
    if (!doc.is_object()) {
        problems.push_back("document is not a JSON object");
        return problems;
    }
    require(problems,
            doc.contains("kind") && doc.at("kind").is_string() &&
                doc.at("kind").as_string() == "bench_perf",
            "kind must be \"bench_perf\"");
    require(problems,
            doc.contains("schema_version") && doc.at("schema_version").is_number(),
            "schema_version must be a number");
    // Schema v3 (ISSUE 7) adds the tracing-overhead block: every scenario
    // carries {untraced, traced, sampled} runs plus the two percentages,
    // and the city block carries an observability section. Older
    // documents (v2) stay valid — the extra requirements only kick in
    // when the document claims the newer version.
    const double schema_version =
        doc.contains("schema_version") && doc.at("schema_version").is_number()
            ? doc.at("schema_version").as_number()
            : 0.0;
    // Wall-clock figures are meaningless without knowing how many cores
    // the box had (the EXPERIMENTS sweep-scaling caveat): every report
    // must say what it ran on.
    require(problems,
            doc.contains("hardware_concurrency") &&
                doc.at("hardware_concurrency").is_number() &&
                doc.at("hardware_concurrency").as_number() >= 1,
            "hardware_concurrency must be a number >= 1");
    if (!doc.contains("scenarios") || !doc.at("scenarios").is_array()) {
        problems.push_back("scenarios must be an array");
        return problems;
    }
    std::size_t i = 0;
    for (const obs::JsonValue& sc : doc.at("scenarios").as_array()) {
        const std::string where = "scenarios[" + std::to_string(i++) + "]";
        if (!sc.is_object()) {
            problems.push_back(where + " is not an object");
            continue;
        }
        require(problems, sc.contains("name") && sc.at("name").is_string(),
                where + ".name must be a string");
        check_run(problems, sc, "baseline", where);
        check_run(problems, sc, "fault_attached", where);
        check_run(problems, sc, "instrumented", where);

        // The point of schema v2: an overhead percentage is a *difference
        // of medians* and is meaningless from one sample of each side.
        const auto overhead_needs = [&](const char* pct_field, const char* run_a,
                                        const char* run_b) {
            if (!sc.contains(pct_field)) return;
            require(problems, sc.at(pct_field).is_number(),
                    where + "." + pct_field + " must be a number");
            const bool enough = sc.contains(run_a) && sc.contains(run_b) &&
                                reps_of(sc.at(run_a)) >= 2 && reps_of(sc.at(run_b)) >= 2;
            require(problems, enough,
                    where + "." + pct_field +
                        ": overhead fields require >= 2 reps on both runs "
                        "(single-sample wall-clock deltas are noise)");
        };
        overhead_needs("fault_attached_overhead_pct", "baseline", "fault_attached");
        overhead_needs("instrumentation_overhead_pct", "baseline", "instrumented");

        if (schema_version >= 3.0) {
            if (sc.contains("overhead") && sc.at("overhead").is_object()) {
                const obs::JsonValue& oh = sc.at("overhead");
                const std::string owhere = where + ".overhead";
                check_run(problems, oh, "untraced", owhere);
                check_run(problems, oh, "traced", owhere);
                check_run(problems, oh, "sampled", owhere);
                for (const char* pct : {"traced_overhead_pct", "sampled_overhead_pct"}) {
                    require(problems, oh.contains(pct) && oh.at(pct).is_number(),
                            owhere + "." + pct + " must be a number");
                }
                // Same medians rule as v2: a percentage from one sample of
                // each side is noise, not a measurement.
                const bool enough =
                    oh.contains("untraced") && oh.contains("traced") &&
                    oh.contains("sampled") && reps_of(oh.at("untraced")) >= 2 &&
                    reps_of(oh.at("traced")) >= 2 && reps_of(oh.at("sampled")) >= 2;
                require(problems, enough,
                        owhere + ": overhead percentages require >= 2 reps on "
                                 "untraced, traced and sampled runs");
                if (oh.contains("sampled") && oh.at("sampled").is_object()) {
                    require(problems,
                            oh.at("sampled").contains("sample_rate") &&
                                oh.at("sampled").at("sample_rate").is_number(),
                            owhere + ".sampled.sample_rate must be a number");
                }
            } else {
                problems.push_back(where +
                                   ".overhead must be an object (schema_version >= 3)");
            }
        }
    }

    if (doc.contains("sweep_scaling")) {
        const obs::JsonValue& sw = doc.at("sweep_scaling");
        if (!sw.is_object()) {
            problems.push_back("sweep_scaling must be an object");
            return problems;
        }
        require(problems, sw.contains("seeds") && sw.at("seeds").is_number(),
                "sweep_scaling.seeds must be a number");
        require(problems,
                sw.contains("serial_wall_ms") && sw.at("serial_wall_ms").is_number(),
                "sweep_scaling.serial_wall_ms must be a number");
        require(problems,
                sw.contains("artifacts_identical") &&
                    sw.at("artifacts_identical").is_bool(),
                "sweep_scaling.artifacts_identical must be a boolean");
        if (sw.contains("parallel") && sw.at("parallel").is_array()) {
            std::size_t j = 0;
            for (const obs::JsonValue& p : sw.at("parallel").as_array()) {
                const std::string pwhere = "sweep_scaling.parallel[" + std::to_string(j++) + "]";
                require(problems,
                        p.is_object() && p.contains("jobs") && p.at("jobs").is_number() &&
                            p.contains("wall_ms") && p.at("wall_ms").is_number() &&
                            p.contains("speedup") && p.at("speedup").is_number(),
                        pwhere + " must be {jobs, wall_ms, speedup}");
            }
        } else {
            problems.push_back("sweep_scaling.parallel must be an array");
        }
    }

    // bench_city's block (merged into the same document): the city sweep
    // summary plus the scheduler and find_link before/after sections.
    if (doc.contains("city")) {
        const obs::JsonValue& city = doc.at("city");
        if (!city.is_object()) {
            problems.push_back("city must be an object");
            return problems;
        }
        for (const char* field :
             {"seeds", "hosts", "cells", "sim_seconds", "events", "events_per_sec"}) {
            require(problems, city.contains(field) && city.at(field).is_number(),
                    std::string("city.") + field + " must be a number");
        }
        require(problems,
                city.contains("artifacts_identical") &&
                    city.at("artifacts_identical").is_bool(),
                "city.artifacts_identical must be a boolean");
        if (city.contains("scheduler") && city.at("scheduler").is_object()) {
            const obs::JsonValue& sc = city.at("scheduler");
            for (const char* field : {"heap_wall_ms", "calendar_wall_ms", "speedup"}) {
                require(problems, sc.contains(field) && sc.at(field).is_number(),
                        std::string("city.scheduler.") + field + " must be a number");
            }
            require(problems, sc.contains("identical") && sc.at("identical").is_bool(),
                    "city.scheduler.identical must be a boolean");
            // A speedup is a ratio of medians; one sample of each side is
            // noise — the same rule as the overhead percentages above.
            require(problems,
                    sc.contains("reps") && sc.at("reps").is_number() &&
                        sc.at("reps").as_number() >= 2,
                    "city.scheduler.speedup requires reps >= 2");
        } else {
            problems.push_back("city.scheduler must be an object");
        }
        if (city.contains("find_link") && city.at("find_link").is_object()) {
            const obs::JsonValue& fl = city.at("find_link");
            for (const char* field : {"links", "indexed_ns", "linear_ns", "speedup"}) {
                require(problems, fl.contains(field) && fl.at(field).is_number(),
                        std::string("city.find_link.") + field + " must be a number");
            }
        } else {
            problems.push_back("city.find_link must be an object");
        }
        if (schema_version >= 3.0) {
            if (city.contains("observability") && city.at("observability").is_object()) {
                const obs::JsonValue& ob = city.at("observability");
                for (const char* field : {"sampler_off_wall_ms", "sampler_on_wall_ms",
                                          "overhead_pct", "metrics_interval_s"}) {
                    require(problems, ob.contains(field) && ob.at(field).is_number(),
                            std::string("city.observability.") + field +
                                " must be a number");
                }
                require(problems,
                        ob.contains("reps") && ob.at("reps").is_number() &&
                            ob.at("reps").as_number() >= 2,
                        "city.observability.overhead_pct requires reps >= 2");
            } else {
                problems.push_back(
                    "city.observability must be an object (schema_version >= 3)");
            }
        }
    }
    return problems;
}

}  // namespace mip::sweep
