// A 1996-grade HTTP: one request per connection, server closes after the
// response — exactly the "frequently very short lived" connections the
// paper's Row D discussion is about.
//
// Wire format (HTTP/1.0 subset):
//   request:  "GET <path>\r\n"
//   response: "HTTP/1.0 <status>\r\nContent-Length: <n>\r\n\r\n<body>"
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "transport/tcp_service.h"

namespace mip::app {

class HttpServer {
public:
    /// Returns the body for a path, or nullopt for 404.
    using Handler = std::function<std::optional<std::vector<std::uint8_t>>(
        const std::string& path)>;

    HttpServer(transport::TcpService& tcp, std::uint16_t port, Handler handler);
    ~HttpServer();
    HttpServer(const HttpServer&) = delete;
    HttpServer& operator=(const HttpServer&) = delete;

    /// Convenience: serve a fixed map of path -> body.
    static Handler static_site(std::map<std::string, std::vector<std::uint8_t>> pages);

    std::size_t requests_served() const noexcept { return served_; }
    std::size_t not_found() const noexcept { return not_found_; }

private:
    void on_connection(transport::TcpConnection& conn);

    transport::TcpService& tcp_;
    std::uint16_t port_;
    Handler handler_;
    std::size_t served_ = 0;
    std::size_t not_found_ = 0;
    /// Per-connection request buffers (connections are owned by the
    /// TcpService; we key on the connection address).
    std::map<const transport::TcpConnection*, std::string> partial_;
};

struct HttpResponse {
    int status = 0;  ///< 0 = transport failure (no response)
    std::vector<std::uint8_t> body;
    bool ok() const noexcept { return status == 200; }
};

class HttpClient {
public:
    using Callback = std::function<void(HttpResponse)>;

    explicit HttpClient(transport::TcpService& tcp) : tcp_(tcp) {}

    /// Fetches one object; @p done fires when the response is complete (the
    /// server closes the connection) or the connection dies.
    /// @p bind_src optionally pins the local endpoint (Out-DT by hand).
    void get(net::Ipv4Address server, std::uint16_t port, const std::string& path,
             Callback done, net::Ipv4Address bind_src = {});

    std::size_t fetches_started() const noexcept { return started_; }

private:
    struct Fetch;
    transport::TcpService& tcp_;
    std::size_t started_ = 0;
};

}  // namespace mip::app
