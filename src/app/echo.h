// Echo services — the workhorse applications of the test suite and the
// paper's evaluation scenarios (an NFS request needs a response, a TCP
// segment needs an acknowledgement; echo is the minimal such protocol).
#pragma once

#include <cstdint>
#include <memory>

#include "transport/tcp_service.h"
#include "transport/udp_service.h"

namespace mip::app {

/// Accepts TCP connections on a port and echoes every byte back.
class TcpEchoServer {
public:
    TcpEchoServer(transport::TcpService& tcp, std::uint16_t port);
    ~TcpEchoServer();
    TcpEchoServer(const TcpEchoServer&) = delete;
    TcpEchoServer& operator=(const TcpEchoServer&) = delete;

    std::uint16_t port() const noexcept { return port_; }
    std::size_t connections_accepted() const noexcept { return accepted_; }
    std::size_t bytes_echoed() const noexcept { return bytes_; }

private:
    transport::TcpService& tcp_;
    std::uint16_t port_;
    std::size_t accepted_ = 0;
    std::size_t bytes_ = 0;
};

/// Echoes UDP datagrams back to their source.
class UdpEchoServer {
public:
    UdpEchoServer(transport::UdpService& udp, std::uint16_t port);

    std::uint16_t port() const noexcept { return socket_->port(); }
    std::size_t datagrams_echoed() const noexcept { return count_; }

private:
    std::unique_ptr<transport::UdpSocket> socket_;
    std::size_t count_ = 0;
};

}  // namespace mip::app
