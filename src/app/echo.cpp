#include "app/echo.h"

namespace mip::app {

TcpEchoServer::TcpEchoServer(transport::TcpService& tcp, std::uint16_t port)
    : tcp_(tcp), port_(port) {
    tcp_.listen(port_, [this](transport::TcpConnection& conn) {
        ++accepted_;
        conn.set_data_callback([this, &conn](std::span<const std::uint8_t> data,
                                             const transport::RxMeta&) {
            bytes_ += data.size();
            conn.send(std::vector<std::uint8_t>(data.begin(), data.end()));
        });
        // Mirror the peer's close so both sides finish cleanly.
        conn.set_state_callback([&conn](transport::TcpState s) {
            if (s == transport::TcpState::CloseWait) {
                conn.close();
            }
        });
    });
}

TcpEchoServer::~TcpEchoServer() {
    tcp_.stop_listening(port_);
}

UdpEchoServer::UdpEchoServer(transport::UdpService& udp, std::uint16_t port) {
    socket_ = udp.open(port);
    socket_->set_receiver([this](std::span<const std::uint8_t> data,
                                 const transport::RxMeta& meta) {
        ++count_;
        socket_->send_to(meta.peer.addr, meta.peer.port,
                         std::vector<std::uint8_t>(data.begin(), data.end()));
    });
}

}  // namespace mip::app
