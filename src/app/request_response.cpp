#include "app/request_response.h"

#include "net/buffer.h"

namespace mip::app {

RpcClient::RpcClient(transport::UdpService& udp, RpcConfig config)
    : udp_(udp), config_(config) {
    socket_ = udp_.open();
    socket_->set_receiver([this](std::span<const std::uint8_t> data,
                                 const transport::RxMeta&) {
        on_datagram(data);
    });
}

void RpcClient::call(net::Ipv4Address server, std::uint16_t port,
                     std::vector<std::uint8_t> payload, Callback done) {
    const std::uint32_t id = next_id_++;
    Pending p;
    p.server = server;
    p.port = port;
    net::BufferWriter w(4 + payload.size());
    w.u32(id);
    w.bytes(payload);
    p.payload = w.take();
    p.attempts = 1;
    p.done = std::move(done);
    pending_[id] = std::move(p);
    ++started_;
    transmit(id, /*retransmission=*/false);
    pending_[id].timer = udp_.ip().simulator().schedule_in(
        config_.timeout, [this, id] { on_timeout(id); });
}

void RpcClient::transmit(std::uint32_t id, bool retransmission) {
    auto it = pending_.find(id);
    if (it == pending_.end()) return;
    socket_->send_to(it->second.server, it->second.port, it->second.payload,
                     retransmission);
}

void RpcClient::on_timeout(std::uint32_t id) {
    auto it = pending_.find(id);
    if (it == pending_.end()) return;
    if (it->second.attempts >= config_.max_attempts) {
        auto done = std::move(it->second.done);
        pending_.erase(it);
        if (done) done(std::nullopt);
        return;
    }
    ++it->second.attempts;
    ++retries_;
    // The resend carries the §7.1.2 retransmission flag to the IP layer.
    transmit(id, /*retransmission=*/true);
    it->second.timer = udp_.ip().simulator().schedule_in(config_.timeout,
                                                         [this, id] { on_timeout(id); });
}

void RpcClient::on_datagram(std::span<const std::uint8_t> data) {
    if (data.size() < 4) return;
    net::BufferReader r(data);
    const std::uint32_t id = r.u32();
    auto it = pending_.find(id);
    if (it == pending_.end()) return;  // duplicate/late response
    udp_.ip().simulator().cancel(it->second.timer);
    auto done = std::move(it->second.done);
    pending_.erase(it);
    const auto body = r.rest();
    if (done) done(std::vector<std::uint8_t>(body.begin(), body.end()));
}

RpcServer::RpcServer(transport::UdpService& udp, std::uint16_t port, Handler handler)
    : handler_(std::move(handler)) {
    socket_ = udp.open(port);
    socket_->set_receiver([this](std::span<const std::uint8_t> data,
                                 const transport::RxMeta& meta) {
        if (data.size() < 4) return;
        ++handled_;
        net::BufferReader r(data);
        const std::uint32_t id = r.u32();
        const auto request = r.rest();
        const auto response = handler_(request);
        net::BufferWriter w(4 + response.size());
        w.u32(id);
        w.bytes(response);
        socket_->send_to(meta.peer.addr, meta.peer.port, w.take());
    });
}

}  // namespace mip::app
