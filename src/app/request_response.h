// A UDP request/response ("RPC") client with application-level retries —
// the class of protocol the paper's §7.1.2 retransmission-signal proposal
// is written for: every resend is flagged to the IP layer as a
// retransmission, feeding the mobility policy's delivery-failure
// detection without any transport-layer help.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "transport/udp_service.h"

namespace mip::app {

struct RpcConfig {
    sim::Duration timeout = sim::milliseconds(500);
    unsigned max_attempts = 4;  ///< 1 original + (max_attempts-1) flagged resends
};

class RpcClient {
public:
    /// Response payload, or nullopt after all attempts timed out.
    using Callback = std::function<void(std::optional<std::vector<std::uint8_t>>)>;

    RpcClient(transport::UdpService& udp, RpcConfig config = {});

    /// Sends @p payload to @p server:@p port; retries with the
    /// retransmission flag until a response with the matching id arrives.
    void call(net::Ipv4Address server, std::uint16_t port,
              std::vector<std::uint8_t> payload, Callback done);

    /// Pins the source address of all calls (unset = policy decides).
    void bind_address(net::Ipv4Address addr) { socket_->bind_address(addr); }

    std::size_t calls_started() const noexcept { return started_; }
    std::size_t retries_sent() const noexcept { return retries_; }

private:
    struct Pending {
        net::Ipv4Address server;
        std::uint16_t port = 0;
        std::vector<std::uint8_t> payload;  ///< id-prefixed wire form
        unsigned attempts = 0;
        Callback done;
        sim::EventId timer = 0;
    };

    void transmit(std::uint32_t id, bool retransmission);
    void on_timeout(std::uint32_t id);
    void on_datagram(std::span<const std::uint8_t> data);

    transport::UdpService& udp_;
    RpcConfig config_;
    std::unique_ptr<transport::UdpSocket> socket_;
    std::map<std::uint32_t, Pending> pending_;
    std::uint32_t next_id_ = 1;
    std::size_t started_ = 0;
    std::size_t retries_ = 0;
};

/// The matching server: answers every id-prefixed request through a
/// user-supplied handler.
class RpcServer {
public:
    using Handler = std::function<std::vector<std::uint8_t>(
        std::span<const std::uint8_t> request)>;

    RpcServer(transport::UdpService& udp, std::uint16_t port, Handler handler);

    std::size_t requests_handled() const noexcept { return handled_; }

private:
    std::unique_ptr<transport::UdpSocket> socket_;
    Handler handler_;
    std::size_t handled_ = 0;
};

}  // namespace mip::app
