#include "app/http.h"

#include <charconv>

namespace mip::app {

namespace {

std::vector<std::uint8_t> to_bytes(const std::string& s) {
    return std::vector<std::uint8_t>(s.begin(), s.end());
}

std::vector<std::uint8_t> build_response(int status,
                                         std::span<const std::uint8_t> body) {
    std::string head = "HTTP/1.0 " + std::to_string(status) +
                       "\r\nContent-Length: " + std::to_string(body.size()) + "\r\n\r\n";
    auto out = to_bytes(head);
    out.insert(out.end(), body.begin(), body.end());
    return out;
}

}  // namespace

HttpServer::HttpServer(transport::TcpService& tcp, std::uint16_t port, Handler handler)
    : tcp_(tcp), port_(port), handler_(std::move(handler)) {
    tcp_.listen(port_, [this](transport::TcpConnection& conn) { on_connection(conn); });
}

HttpServer::~HttpServer() {
    tcp_.stop_listening(port_);
}

HttpServer::Handler HttpServer::static_site(
    std::map<std::string, std::vector<std::uint8_t>> pages) {
    return [pages = std::move(pages)](
               const std::string& path) -> std::optional<std::vector<std::uint8_t>> {
        auto it = pages.find(path);
        if (it == pages.end()) return std::nullopt;
        return it->second;
    };
}

void HttpServer::on_connection(transport::TcpConnection& conn) {
    partial_.erase(&conn);
    conn.set_data_callback([this, &conn](std::span<const std::uint8_t> data,
                                         const transport::RxMeta&) {
        std::string& buf = partial_[&conn];
        buf.append(reinterpret_cast<const char*>(data.data()), data.size());
        const auto eol = buf.find("\r\n");
        if (eol == std::string::npos) {
            return;  // request line incomplete
        }
        const std::string line = buf.substr(0, eol);
        partial_.erase(&conn);

        std::string path;
        if (line.rfind("GET ", 0) == 0) {
            path = line.substr(4);
        }
        std::optional<std::vector<std::uint8_t>> body =
            path.empty() ? std::nullopt : handler_(path);
        if (body) {
            ++served_;
            conn.send(build_response(200, *body));
        } else {
            ++not_found_;
            conn.send(build_response(404, {}));
        }
        conn.close();  // HTTP/1.0: one request per connection
    });
    conn.set_state_callback([&conn](transport::TcpState s) {
        if (s == transport::TcpState::CloseWait) {
            conn.close();
        }
    });
}

struct HttpClient::Fetch {
    std::string buffer;
    Callback done;
    bool finished = false;

    void finish(HttpResponse r) {
        if (finished) return;
        finished = true;
        if (done) done(std::move(r));
    }

    /// Parses the buffered response once complete; returns nullopt until
    /// all Content-Length bytes have arrived.
    std::optional<HttpResponse> try_parse() const {
        const auto header_end = buffer.find("\r\n\r\n");
        if (header_end == std::string::npos) return std::nullopt;
        HttpResponse r;
        // Status line: "HTTP/1.0 NNN"
        if (buffer.rfind("HTTP/1.0 ", 0) != 0 || header_end < 12) return HttpResponse{};
        (void)std::from_chars(buffer.data() + 9, buffer.data() + 12, r.status);
        // Content-Length header.
        std::size_t content_length = 0;
        const auto cl = buffer.find("Content-Length: ");
        if (cl != std::string::npos && cl < header_end) {
            const char* begin = buffer.data() + cl + 16;
            (void)std::from_chars(begin, buffer.data() + header_end, content_length);
        }
        const std::size_t body_start = header_end + 4;
        if (buffer.size() < body_start + content_length) return std::nullopt;
        r.body.assign(buffer.begin() + static_cast<std::ptrdiff_t>(body_start),
                      buffer.begin() + static_cast<std::ptrdiff_t>(body_start +
                                                                   content_length));
        return r;
    }
};

void HttpClient::get(net::Ipv4Address server, std::uint16_t port, const std::string& path,
                     Callback done, net::Ipv4Address bind_src) {
    ++started_;
    auto fetch = std::make_shared<Fetch>();
    fetch->done = std::move(done);

    auto& conn = tcp_.connect(server, port, bind_src);
    conn.set_data_callback([fetch](std::span<const std::uint8_t> data,
                                   const transport::RxMeta&) {
        fetch->buffer.append(reinterpret_cast<const char*>(data.data()), data.size());
        if (auto r = fetch->try_parse()) {
            fetch->finish(std::move(*r));
        }
    });
    conn.set_state_callback([fetch, &conn](transport::TcpState s) {
        if (s == transport::TcpState::CloseWait) {
            // Server finished sending: whatever we have is the response.
            if (auto r = fetch->try_parse()) {
                fetch->finish(std::move(*r));
            } else {
                fetch->finish(HttpResponse{});
            }
            conn.close();
        } else if (s == transport::TcpState::Reset || s == transport::TcpState::Failed) {
            fetch->finish(HttpResponse{});
        }
    });
    conn.send(to_bytes("GET " + path + "\r\n"));
}

}  // namespace mip::app
