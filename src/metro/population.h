// Deterministic city population (ISSUE 6 tentpole).
//
// Builds 10k–50k mobile hosts from a single seed: commuter flocks that
// share a stochastic leader path (GroupMemberMobility over
// RandomWaypointMobility), transit riders that share a trace-driven
// metro-line path (GroupMemberMobility over TraceMobility), and solo
// walkers on independent random-waypoint trajectories. Every per-host
// parameter — leader seeds, member jitter, start positions — is derived
// from (config.seed, index) via mobility::mix_seed, so two populations
// built from equal configs are trajectory-identical, which is what lets
// SweepRunner jobs at any --jobs produce byte-identical artifacts.
//
// Host records live in an Arena (metro/arena.h): construction order is
// index order, so CitySim's hot loops walk them sequentially in memory,
// and teardown is a few block frees instead of 50k heap frees.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "metro/arena.h"
#include "metro/topology.h"
#include "mobility/group.h"
#include "mobility/motion.h"
#include "net/ipv4_address.h"
#include "sim/time.h"

namespace mip::metro {

struct PopulationConfig {
    std::size_t hosts = 10000;
    std::uint64_t seed = 1;
    /// Fraction of hosts in commuter flocks (random-waypoint leaders).
    double flock_fraction = 0.45;
    /// Fraction of hosts riding trace-driven metro lines.
    double transit_fraction = 0.20;
    /// Members per commuter flock.
    int flock_size = 25;
    /// Number of scripted metro lines crossing the city.
    int metro_lines = 4;
    /// Times each metro line crosses the city and returns.
    int trace_cycles = 6;
    /// Cohesion bound for flock members around their leader (meters).
    double cohesion_radius_m = 120.0;
    /// Leader / solo walking-speed range (m/s); metro lines run at
    /// metro_speed_mps point to point.
    double min_speed_mps = 1.0;
    double max_speed_mps = 15.0;
    double metro_speed_mps = 18.0;
    /// Pause at random waypoints.
    sim::Duration pause = sim::seconds(5);
};

/// One mobile host: identity plus the runtime registration state CitySim
/// mutates while the city runs. Arena-allocated; pointers stay valid for
/// the population's lifetime.
struct MetroHost {
    enum class Kind : std::uint8_t { Solo, Flock, Transit };

    std::size_t index = 0;
    Kind kind = Kind::Solo;
    net::Ipv4Address home_address;
    std::size_t home_agent = 0;
    mobility::MobilityModel* model = nullptr;  ///< arena- or leader-owned

    // --- runtime state (owned by CitySim) ---
    std::int32_t cell = -1;                ///< current cell, -1 before first sample
    sim::TimePoint binding_expires = 0;    ///< host's view of its registration
    std::uint32_t epoch = 0;               ///< guards stale in-flight registrations
};

class Population {
public:
    /// Builds the full population against @p topo. The topology must
    /// outlive the population (leaders are bounded by its extent).
    Population(const MetroTopology& topo, PopulationConfig config);

    Population(const Population&) = delete;
    Population& operator=(const Population&) = delete;

    const PopulationConfig& config() const noexcept { return config_; }
    const std::vector<MetroHost*>& hosts() const noexcept { return hosts_; }
    std::vector<MetroHost*>& hosts() noexcept { return hosts_; }

    std::size_t flock_count() const noexcept { return flock_count_; }
    std::size_t transit_hosts() const noexcept { return transit_hosts_; }
    std::size_t solo_hosts() const noexcept { return solo_hosts_; }
    const Arena& arena() const noexcept { return arena_; }

private:
    PopulationConfig config_;
    Arena arena_;
    /// Shared flock/line leader models (see mobility/group.h — members
    /// hold shared_ptr copies, so one lazy trajectory serves a flock).
    std::vector<std::shared_ptr<mobility::MobilityModel>> leaders_;
    std::vector<MetroHost*> hosts_;
    std::size_t flock_count_ = 0;
    std::size_t transit_hosts_ = 0;
    std::size_t solo_hosts_ = 0;
};

}  // namespace mip::metro
