// Hierarchical metro topology (ISSUE 6 tentpole).
//
// The paper's experiments run a handful of subnets on a bench; a metro
// deployment is three tiers deep: a city backbone, regional aggregation
// routers hanging off it, and hundreds of radio cells hanging off the
// regionals. This builder lays the radio cells out as a uniform
// cells_x × cells_y grid (each cell one square, cell_size_m on a side),
// assigns consecutive runs of cells to regional routers and consecutive
// runs of regionals to backbone routers, and derives every address from
// the indices — so the whole topology is a pure function of its config
// and two topologies built from equal configs are identical.
//
// Tiering matters to the simulation in two ways:
//   - hop_count(a, b) gives the registration path length between two
//     cells (the deeper the divergence point, the longer the path), which
//     CitySim turns into registration latency;
//   - cell_at(p) is the radio-association function: an O(1) grid index
//     from position to cell, the city-scale replacement for the O(cells)
//     linear scan a CoverageMap::best_at would cost per sample at 10^4
//     hosts × 10^2 cells.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mobility/motion.h"
#include "net/ipv4_address.h"

namespace mip::metro {

struct MetroConfig {
    /// Radio-cell grid dimensions; cell_count = cells_x * cells_y.
    int cells_x = 12;
    int cells_y = 12;
    /// Side of each (square) cell, meters.
    double cell_size_m = 500.0;
    /// Consecutive cells aggregated per regional router.
    int cells_per_regional = 16;
    /// Consecutive regionals aggregated per backbone router.
    int regionals_per_backbone = 4;
    /// Home agents serving the mobile population (hosts are assigned
    /// round-robin by host index).
    int home_agents = 8;
};

struct MetroCell {
    std::size_t index = 0;
    std::string name;                ///< "cell-0042"
    mobility::Position center;
    std::size_t regional = 0;        ///< index into regionals()
    /// Foreign-agent style care-of address shared by visitors of the cell.
    net::Ipv4Address care_of;
};

struct MetroRegional {
    std::size_t index = 0;
    std::string name;                ///< "regional-03"
    std::size_t backbone = 0;        ///< index into backbones()
};

struct MetroBackbone {
    std::size_t index = 0;
    std::string name;                ///< "backbone-0"
};

class MetroTopology {
public:
    /// Throws std::invalid_argument on non-positive dimensions.
    explicit MetroTopology(MetroConfig config);

    const MetroConfig& config() const noexcept { return config_; }
    const std::vector<MetroCell>& cells() const noexcept { return cells_; }
    const std::vector<MetroRegional>& regionals() const noexcept { return regionals_; }
    const std::vector<MetroBackbone>& backbones() const noexcept { return backbones_; }

    double width_m() const noexcept { return config_.cells_x * config_.cell_size_m; }
    double height_m() const noexcept { return config_.cells_y * config_.cell_size_m; }

    /// The cell whose square contains @p p — O(1) grid arithmetic.
    /// Positions outside the grid clamp to the nearest edge cell (the
    /// radio associates with the closest base station; there are no dead
    /// zones at city scale, only weak edges).
    const MetroCell& cell_at(mobility::Position p) const noexcept;

    /// Link-level hops a registration travels from a host in @p from_cell
    /// to a home agent reached via @p to_cell: up to the lowest common
    /// tier and back down. Same cell: 2; same regional: 4; same backbone
    /// router: 6; across the backbone: 8.
    int hop_count(std::size_t from_cell, std::size_t to_cell) const noexcept;

    /// Home address of mobile host @p host_index (10.0.0.0/8, dense).
    static net::Ipv4Address host_home_address(std::size_t host_index) noexcept {
        return net::Ipv4Address(0x0A000000u + static_cast<std::uint32_t>(host_index) + 1);
    }

    /// Address of home agent @p ha_index (192.168.0.0/16, dense).
    static net::Ipv4Address home_agent_address(std::size_t ha_index) noexcept {
        return net::Ipv4Address(0xC0A80000u + static_cast<std::uint32_t>(ha_index) + 1);
    }

    /// The home-agent index serving @p host_index (round-robin).
    std::size_t home_agent_of(std::size_t host_index) const noexcept {
        return host_index % static_cast<std::size_t>(config_.home_agents);
    }

    /// The cell a home agent's wired subnet hangs off (used as the far
    /// end of registration paths): home agents are spread across the
    /// regional grid the same round-robin way hosts are spread across
    /// home agents.
    std::size_t home_agent_cell(std::size_t ha_index) const noexcept;

private:
    MetroConfig config_;
    std::vector<MetroCell> cells_;
    std::vector<MetroRegional> regionals_;
    std::vector<MetroBackbone> backbones_;
};

}  // namespace mip::metro
