#include "metro/population.h"

#include <cmath>
#include <stdexcept>

namespace mip::metro {

using mobility::GroupMemberMobility;
using mobility::mix_seed;
using mobility::Position;
using mobility::RandomWaypointMobility;
using mobility::seed_unit;
using mobility::TraceMobility;

namespace {

// Domain-separation tags so flock-leader, line, member and solo seeds
// never collide even for adjacent indices.
constexpr std::uint64_t kFlockTag = 0x464C4F434Bull;   // "FLOCK"
constexpr std::uint64_t kLineTag = 0x4C494E45ull;      // "LINE"
constexpr std::uint64_t kMemberTag = 0x4D454D42ull;    // "MEMB"
constexpr std::uint64_t kSoloTag = 0x534F4C4Full;      // "SOLO"

std::uint64_t derive(std::uint64_t seed, std::uint64_t tag, std::uint64_t index) {
    return mix_seed(mix_seed(seed ^ tag) + index);
}

/// A scripted metro line: ping-pong across the city @p cycles times at
/// constant speed, then hold at the final terminus. Odd lines run
/// north–south, even lines east–west, spread evenly across the grid.
std::vector<TraceMobility::Waypoint> metro_line_waypoints(
    const MetroTopology& topo, int line, int lines, int cycles, double speed_mps,
    std::uint64_t seed) {
    const double w = topo.width_m();
    const double h = topo.height_m();
    const bool east_west = (line % 2) == 0;
    // Lane offset keeps parallel lines apart; jitter the departure so
    // lines do not all arrive at termini in lock-step.
    const double lane = (static_cast<double>(line) + 0.5) / static_cast<double>(lines);
    const Position a = east_west ? Position{0, lane * h} : Position{lane * w, 0};
    const Position b = east_west ? Position{w, lane * h} : Position{lane * w, h};
    const double leg_s = mobility::distance(a, b) / speed_mps;
    const sim::Duration leg = static_cast<sim::Duration>(std::llround(leg_s * 1e9));
    const sim::Duration dwell = sim::seconds(20);
    sim::TimePoint t = static_cast<sim::TimePoint>(
        std::llround(seed_unit(derive(seed, kLineTag, line)) * 60e9));  // 0–60 s stagger

    std::vector<TraceMobility::Waypoint> wps;
    wps.push_back({0, a});
    wps.push_back({t, a});
    for (int c = 0; c < cycles; ++c) {
        t += leg;
        wps.push_back({t, b});
        t += dwell;
        wps.push_back({t, b});
        t += leg;
        wps.push_back({t, a});
        t += dwell;
        wps.push_back({t, a});
    }
    return wps;
}

}  // namespace

Population::Population(const MetroTopology& topo, PopulationConfig config)
    : config_(config) {
    if (config_.hosts == 0) {
        throw std::invalid_argument("Population: need at least one host");
    }
    if (config_.flock_fraction < 0 || config_.transit_fraction < 0 ||
        config_.flock_fraction + config_.transit_fraction > 1.0) {
        throw std::invalid_argument("Population: bad kind fractions");
    }
    if (config_.flock_size <= 0 || config_.metro_lines <= 0) {
        throw std::invalid_argument("Population: flock_size and metro_lines must be > 0");
    }

    const std::size_t n_flock =
        static_cast<std::size_t>(std::llround(config_.flock_fraction *
                                              static_cast<double>(config_.hosts)));
    const std::size_t n_transit =
        static_cast<std::size_t>(std::llround(config_.transit_fraction *
                                              static_cast<double>(config_.hosts)));
    flock_count_ = (n_flock + config_.flock_size - 1) / config_.flock_size;
    transit_hosts_ = n_transit;
    solo_hosts_ = config_.hosts - n_flock - n_transit;

    // Shared leaders first: one random-waypoint model per commuter flock,
    // one trace per metro line.
    std::vector<std::shared_ptr<mobility::MobilityModel>> flock_leaders;
    flock_leaders.reserve(flock_count_);
    for (std::size_t f = 0; f < flock_count_; ++f) {
        RandomWaypointMobility::Config rw;
        rw.max_x = topo.width_m();
        rw.max_y = topo.height_m();
        rw.min_speed_mps = config_.min_speed_mps;
        rw.max_speed_mps = config_.max_speed_mps;
        rw.pause = config_.pause;
        rw.seed = derive(config_.seed, kFlockTag, f);
        rw.start = Position{seed_unit(mix_seed(rw.seed)) * topo.width_m(),
                            seed_unit(mix_seed(rw.seed + 1)) * topo.height_m()};
        flock_leaders.push_back(std::make_shared<RandomWaypointMobility>(rw));
    }
    std::vector<std::shared_ptr<mobility::MobilityModel>> line_leaders;
    line_leaders.reserve(config_.metro_lines);
    for (int l = 0; l < config_.metro_lines; ++l) {
        line_leaders.push_back(std::make_shared<TraceMobility>(metro_line_waypoints(
            topo, l, config_.metro_lines, config_.trace_cycles, config_.metro_speed_mps,
            config_.seed)));
    }

    hosts_.reserve(config_.hosts);
    for (std::size_t i = 0; i < config_.hosts; ++i) {
        MetroHost* host = arena_.create<MetroHost>();
        host->index = i;
        host->home_address = MetroTopology::host_home_address(i);
        host->home_agent = topo.home_agent_of(i);
        const std::uint64_t member_seed = derive(config_.seed, kMemberTag, i);
        if (i < n_flock) {
            host->kind = MetroHost::Kind::Flock;
            GroupMemberMobility::Config gm;
            gm.max_radius_m = config_.cohesion_radius_m;
            gm.seed = member_seed;
            host->model = arena_.create<GroupMemberMobility>(
                flock_leaders[i / static_cast<std::size_t>(config_.flock_size)], gm);
        } else if (i < n_flock + n_transit) {
            host->kind = MetroHost::Kind::Transit;
            GroupMemberMobility::Config gm;
            // Riders stay inside the train: a tight radius and a short
            // shuffle period around the car they sit in.
            gm.max_radius_m = 25.0;
            gm.wander_period = sim::seconds(90);
            gm.seed = member_seed;
            host->model = arena_.create<GroupMemberMobility>(
                line_leaders[(i - n_flock) % line_leaders.size()], gm);
        } else {
            host->kind = MetroHost::Kind::Solo;
            RandomWaypointMobility::Config rw;
            rw.max_x = topo.width_m();
            rw.max_y = topo.height_m();
            rw.min_speed_mps = config_.min_speed_mps;
            rw.max_speed_mps = config_.max_speed_mps;
            rw.pause = config_.pause;
            rw.seed = derive(config_.seed, kSoloTag, i);
            rw.start = Position{seed_unit(mix_seed(rw.seed)) * topo.width_m(),
                                seed_unit(mix_seed(rw.seed + 1)) * topo.height_m()};
            host->model = arena_.create<RandomWaypointMobility>(rw);
        }
        hosts_.push_back(host);
    }

    leaders_ = std::move(flock_leaders);
    leaders_.insert(leaders_.end(), line_leaders.begin(), line_leaders.end());
}

}  // namespace mip::metro
