#include "metro/topology.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace mip::metro {

namespace {

std::string indexed_name(const char* stem, std::size_t index, int digits) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s-%0*zu", stem, digits, index);
    return buf;
}

}  // namespace

MetroTopology::MetroTopology(MetroConfig config) : config_(config) {
    if (config_.cells_x <= 0 || config_.cells_y <= 0) {
        throw std::invalid_argument("MetroTopology: cell grid must be non-empty");
    }
    if (config_.cell_size_m <= 0) {
        throw std::invalid_argument("MetroTopology: cell_size_m must be > 0");
    }
    if (config_.cells_per_regional <= 0 || config_.regionals_per_backbone <= 0) {
        throw std::invalid_argument("MetroTopology: aggregation fan-in must be > 0");
    }
    if (config_.home_agents <= 0) {
        throw std::invalid_argument("MetroTopology: need at least one home agent");
    }

    const std::size_t n_cells =
        static_cast<std::size_t>(config_.cells_x) * static_cast<std::size_t>(config_.cells_y);
    const std::size_t n_regionals =
        (n_cells + config_.cells_per_regional - 1) / config_.cells_per_regional;
    const std::size_t n_backbones =
        (n_regionals + config_.regionals_per_backbone - 1) / config_.regionals_per_backbone;

    backbones_.reserve(n_backbones);
    for (std::size_t b = 0; b < n_backbones; ++b) {
        backbones_.push_back({b, indexed_name("backbone", b, 1)});
    }
    regionals_.reserve(n_regionals);
    for (std::size_t r = 0; r < n_regionals; ++r) {
        regionals_.push_back({r, indexed_name("regional", r, 2),
                              r / static_cast<std::size_t>(config_.regionals_per_backbone)});
    }
    cells_.reserve(n_cells);
    for (std::size_t c = 0; c < n_cells; ++c) {
        const std::size_t ix = c % static_cast<std::size_t>(config_.cells_x);
        const std::size_t iy = c / static_cast<std::size_t>(config_.cells_x);
        MetroCell cell;
        cell.index = c;
        cell.name = indexed_name("cell", c, 4);
        cell.center = {(static_cast<double>(ix) + 0.5) * config_.cell_size_m,
                       (static_cast<double>(iy) + 0.5) * config_.cell_size_m};
        cell.regional = c / static_cast<std::size_t>(config_.cells_per_regional);
        cell.care_of = net::Ipv4Address(0xAC100000u + static_cast<std::uint32_t>(c) + 1);
        cells_.push_back(std::move(cell));
    }
}

const MetroCell& MetroTopology::cell_at(mobility::Position p) const noexcept {
    const auto clamp_axis = [](double v, double size, int n) {
        long i = static_cast<long>(std::floor(v / size));
        return std::clamp(i, 0L, static_cast<long>(n) - 1);
    };
    const long ix = clamp_axis(p.x, config_.cell_size_m, config_.cells_x);
    const long iy = clamp_axis(p.y, config_.cell_size_m, config_.cells_y);
    return cells_[static_cast<std::size_t>(iy) * config_.cells_x + ix];
}

int MetroTopology::hop_count(std::size_t from_cell, std::size_t to_cell) const noexcept {
    if (from_cell == to_cell) return 2;
    const std::size_t ra = cells_[from_cell].regional;
    const std::size_t rb = cells_[to_cell].regional;
    if (ra == rb) return 4;
    if (regionals_[ra].backbone == regionals_[rb].backbone) return 6;
    return 8;
}

std::size_t MetroTopology::home_agent_cell(std::size_t ha_index) const noexcept {
    // Spread agents across the grid with a fixed stride so consecutive
    // agents land in different regionals (and usually different
    // backbones) — registrations exercise every tier of the hierarchy.
    const std::size_t stride = cells_.size() / static_cast<std::size_t>(config_.home_agents);
    return (ha_index * (stride == 0 ? 1 : stride)) % cells_.size();
}

}  // namespace mip::metro
