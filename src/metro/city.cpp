#include "metro/city.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace mip::metro {

namespace {
// Domain tags for the engine's deterministic draws (sample stagger,
// registration jitter, probe selection, overload retries, flap notice) —
// disjoint from the ones the population builder uses.
constexpr std::uint64_t kStaggerTag = 0x53414D50ull;  // "SAMP"
constexpr std::uint64_t kProbeTag = 0x50524F42ull;    // "PROB"
constexpr std::uint64_t kJitterTag = 0x4A495454ull;   // "JITT"
constexpr std::uint64_t kRetryTag = 0x52545259ull;    // "RTRY"
constexpr std::uint64_t kRenewTag = 0x52454E57ull;    // "RENW"
constexpr std::uint64_t kFlapTag = 0x464C4150ull;     // "FLAP"

/// Recovery poll cadence after an agent flap.
constexpr sim::Duration kRecoveryPoll = sim::milliseconds(250);
}  // namespace

CitySim::CitySim(CityConfig config)
    : config_(config),
      topo_(config.metro),
      pop_(topo_, config.population),
      sim_(config.scheduler),
      decisions_(&sim_.record_arena()),
      tables_(static_cast<std::size_t>(config.metro.home_agents)) {
    if (config_.duration <= 0 || config_.sample_interval <= 0 ||
        config_.storm_window <= 0 || config_.registration_lifetime <= 0) {
        throw std::invalid_argument("CitySim: durations must be > 0");
    }

    // Per-cell and per-agent metric handles are resolved once here; the
    // hot path bumps cached Counter references instead of re-hashing
    // (node, layer, name) keys millions of times. The stats vectors are
    // never resized after this loop, so the gauge lambdas' pointers into
    // them stay valid for the registry's lifetime.
    cells_.resize(topo_.cells().size());
    for (std::size_t c = 0; c < cells_.size(); ++c) {
        const std::string& node = topo_.cells()[c].name;
        CellStats& cs = cells_[c];
        cs.handoffs = &registry_.counter(node, "metro", "handoffs");
        cs.storms = &registry_.counter(node, "metro", "storms");
        registry_.register_gauge(node, "metro", "occupancy",
                                 [p = &cs] { return static_cast<double>(p->occupancy); });
        registry_.register_gauge(node, "metro", "storm_peak",
                                 [p = &cs] { return static_cast<double>(p->window_peak); });
    }
    agents_.resize(tables_.size());
    for (std::size_t a = 0; a < agents_.size(); ++a) {
        const std::string node = "ha-" + std::to_string(a);
        AgentStats& as = agents_[a];
        as.registrations = &registry_.counter(node, "metro", "registrations");
        as.renewals = &registry_.counter(node, "metro", "renewals");
        as.expired = &registry_.counter(node, "metro", "bindings_expired");
        registry_.register_gauge(node, "metro", "bindings",
                                 [t = &tables_[a]] { return static_cast<double>(t->size()); });
    }
    if (config_.overload.enabled) {
        // One bounded queue per home agent. The unprotected ablation leg
        // keeps the same finite service rate but loses the bound and the
        // admission bucket — that is the whole experiment.
        core::OverloadConfig qc = config_.overload.agent;
        if (!config_.overload.protection) {
            qc.queue_capacity = 0;
            qc.new_tokens_per_sec = 0.0;
        }
        queues_.reserve(tables_.size());
        for (std::size_t a = 0; a < tables_.size(); ++a) {
            auto q = std::make_unique<core::RegistrationQueue>(sim_, qc);
            const std::string node = "ha-" + std::to_string(a);
            q->attach_metrics(registry_, node);
            q->set_decision_log(&decisions_, node);
            queues_.push_back(std::move(q));
        }
        clients_.resize(pop_.hosts().size());
        ov_retries_ = &registry_.counter("city", "overload", "retries");
        ov_timeouts_ = &registry_.counter("city", "overload", "timeouts");
        ov_circuit_opens_ = &registry_.counter("city", "overload", "circuit_opens");
        ov_circuit_probes_ = &registry_.counter("city", "overload", "circuit_probes");
        ov_flaps_ = &registry_.counter("city", "overload", "flaps");
    }
    handoffs_agg_ = &registry_.counter("city", "metro", "handoffs");
    probes_ = &registry_.counter("city", "metro", "probes");
    delivered_ = &registry_.counter("city", "metro", "probes_delivered");
    stale_ = &registry_.counter("city", "metro", "probes_stale");
    unbound_ = &registry_.counter("city", "metro", "probes_unbound");
    reg_latency_ = &registry_.histogram("city", "metro", "registration_latency_ns",
                                        obs::rtt_bounds_ns());
    reg_hops_ = &registry_.histogram("city", "metro", "registration_hops",
                                     obs::hop_bounds());
}

CitySim::~CitySim() = default;

sim::Duration CitySim::member_jitter(std::size_t host_index, std::uint32_t epoch) const {
    const std::uint64_t m = mobility::mix_seed(
        config_.population.seed ^ kJitterTag ^ (static_cast<std::uint64_t>(host_index) << 20) ^
        (static_cast<std::uint64_t>(epoch) << 44));
    return static_cast<sim::Duration>(m % 1'000'000);  // < 1 ms
}

void CitySim::sample_host(MetroHost* host) {
    const sim::TimePoint now = sim_.now();
    const mobility::Position p = host->model->position_at(now);
    const MetroCell& cell = topo_.cell_at(p);
    if (static_cast<std::int32_t>(cell.index) != host->cell) {
        const std::int32_t old = host->cell;
        host->cell = static_cast<std::int32_t>(cell.index);
        if (old >= 0) --cells_[static_cast<std::size_t>(old)].occupancy;
        CellStats& cs = cells_[cell.index];
        ++cs.occupancy;
        if (old >= 0) {
            // The first association is an attach, not a handoff.
            cs.handoffs->add();
            handoffs_agg_->add();
            ++handoffs_total_;
            ++cs.window;
            if (cs.window > cs.window_peak) cs.window_peak = cs.window;
            if (cs.window == config_.storm_threshold) {
                cs.storms->add();
                decisions_.record({now, cell.name, "city", "handoff-storm",
                                   "window-threshold",
                                   "window=" + std::to_string(cs.window) + "/" +
                                       std::to_string(config_.storm_threshold),
                                   true, "calm", "storm", "",
                                   "handoff rate crossed the storm threshold"});
            }
            sim_.schedule_in(config_.storm_window,
                             [this, idx = cell.index] { --cells_[idx].window; },
                             "storm-decay");
        }
        begin_registration(host, /*renewal=*/false);
    }
    sim_.schedule_in(config_.sample_interval, [this, host] { sample_host(host); },
                     "city-sample");
}

void CitySim::begin_registration(MetroHost* host, bool renewal) {
    if (config_.overload.enabled) {
        client_start(host, renewal, /*attempt=*/0);
        return;
    }
    ++host->epoch;  // any in-flight completion for an older epoch is now stale
    const std::uint32_t epoch = host->epoch;
    const std::int32_t cell = host->cell;
    const int hops =
        topo_.hop_count(static_cast<std::size_t>(cell), topo_.home_agent_cell(host->home_agent));
    const sim::Duration latency = config_.reg_base_latency +
                                  hops * config_.reg_hop_latency +
                                  member_jitter(host->index, epoch);
    reg_hops_->observe(static_cast<double>(hops));
    reg_latency_->observe(static_cast<double>(latency));
    sim_.schedule_in(latency,
                     [this, host, epoch, cell, renewal] {
                         finish_registration(host, epoch, cell, renewal);
                     },
                     "registration");
}

void CitySim::finish_registration(MetroHost* host, std::uint32_t epoch,
                                  std::int32_t cell, bool renewal) {
    if (host->epoch != epoch) return;  // superseded by a later handoff
    const sim::TimePoint expires = sim_.now() + config_.registration_lifetime;
    tables_[host->home_agent].set(host->home_address,
                                  topo_.cells()[static_cast<std::size_t>(cell)].care_of,
                                  expires);
    host->binding_expires = expires;
    AgentStats& as = agents_[host->home_agent];
    (renewal ? *as.renewals : *as.registrations).add();
    ++registrations_total_;
    sim_.schedule_in(config_.registration_lifetime / 5 * 4,
                     [this, host, epoch] {
                         if (host->epoch == epoch) begin_registration(host, /*renewal=*/true);
                     },
                     "reg-renewal");
}

// ---- overload model (ISSUE 9) ---------------------------------------------
//
// With overload.enabled the analytic always-succeeds exchange above is
// replaced by a full request/reply loop: the request takes the same
// hop-proportional latency to reach the home agent, queues in that
// agent's RegistrationQueue (where it can be shed), and the reply takes
// the latency back. The client keeps a per-host reply timeout; losses —
// shed requests, flap-wiped state — surface as timeouts and drive the
// retry policy under ablation: seeded decorrelated jitter plus a retry
// budget opening a park-and-probe circuit (protection on), or
// synchronized exponential doubling forever (protection off).

void CitySim::client_start(MetroHost* host, bool renewal, std::uint32_t attempt) {
    if (host->cell < 0) return;
    ClientState& c = clients_[host->index];
    if (attempt == 0) {
        ++host->epoch;     // supersede any in-flight exchange
        c.prev_delay = 0;  // fresh exchange: the jitter ramp restarts
    }
    const std::uint32_t epoch = host->epoch;
    const std::int32_t cell = host->cell;
    const int hops = topo_.hop_count(static_cast<std::size_t>(cell),
                                     topo_.home_agent_cell(host->home_agent));
    const sim::Duration latency = config_.reg_base_latency +
                                  hops * config_.reg_hop_latency +
                                  member_jitter(host->index, epoch);
    reg_hops_->observe(static_cast<double>(hops));
    reg_latency_->observe(static_cast<double>(latency));
    c.pending = true;
    const std::uint64_t xid = ++c.last_xid;
    if (c.circuit_open) ov_circuit_probes_->add();
    sim_.schedule_in(latency,
                     [this, host, epoch, cell, renewal, xid] {
                         server_arrival(host, epoch, cell, renewal, xid);
                     },
                     "registration");
    // The timeout covers the round trip plus the expected queueing delay;
    // a request stuck deeper than reply_timeout is retried even though it
    // may still be served (the duplicate converges via the xid guard).
    sim_.schedule_in(2 * latency + config_.overload.reply_timeout,
                     [this, host, epoch, renewal, attempt, xid] {
                         client_timeout(host, epoch, renewal, attempt, xid);
                     },
                     "reg-timeout");
}

void CitySim::server_arrival(MetroHost* host, std::uint32_t epoch, std::int32_t cell,
                             bool renewal, std::uint64_t xid) {
    // Classify against the agent's *actual* table: after a flap the whole
    // homed population arrives as New — exactly the class the bounded
    // queue sheds first while renewals from other hosts keep flowing.
    const bool bound =
        tables_[host->home_agent].lookup(host->home_address, sim_.now()).has_value();
    queues_[host->home_agent]->submit(
        bound ? core::RequestClass::Renewal : core::RequestClass::New,
        host->home_address.to_string(),
        [this, host, epoch, cell, renewal, xid] {
            serve_registration(host, epoch, cell, renewal, xid);
        });
    // A shed submit needs no handling here: shedding is silent and the
    // client recovers through its reply timeout.
}

void CitySim::serve_registration(MetroHost* host, std::uint32_t epoch,
                                 std::int32_t cell, bool renewal, std::uint64_t xid) {
    if (host->epoch != epoch) return;  // superseded by a later handoff
    const sim::TimePoint expires = sim_.now() + config_.registration_lifetime;
    tables_[host->home_agent].set(host->home_address,
                                  topo_.cells()[static_cast<std::size_t>(cell)].care_of,
                                  expires);
    AgentStats& as = agents_[host->home_agent];
    (renewal ? *as.renewals : *as.registrations).add();
    ++registrations_total_;
    const int hops = topo_.hop_count(static_cast<std::size_t>(cell),
                                     topo_.home_agent_cell(host->home_agent));
    const sim::Duration back = config_.reg_base_latency + hops * config_.reg_hop_latency +
                               member_jitter(host->index, epoch);
    sim_.schedule_in(back, [this, host, epoch, xid] { client_reply(host, epoch, xid); },
                     "reg-reply");
}

void CitySim::client_reply(MetroHost* host, std::uint32_t epoch, std::uint64_t xid) {
    ClientState& c = clients_[host->index];
    if (host->epoch != epoch || !c.pending || c.last_xid != xid) return;
    c.pending = false;
    c.prev_delay = 0;
    c.circuit_open = false;  // a served exchange closes the circuit
    host->binding_expires = sim_.now() + config_.registration_lifetime;
    // Renewal point. The protected leg draws it from [0.6, 0.9) of the
    // lifetime: cohorts that registered together (initial attach, the
    // post-flap storm) would otherwise renew together forever, and a
    // synchronized renewal wave overflows even a healthy agent's bounded
    // queue. The OFF leg renews at the fixed 4/5 point, keeping the
    // cohorts aligned — part of what the unprotected storm collapses under.
    sim::Duration renew_in = config_.registration_lifetime / 5 * 4;
    if (config_.overload.protection) {
        const std::uint64_t draw = mobility::mix_seed(
            config_.population.seed ^ kRenewTag ^
            (static_cast<std::uint64_t>(host->index) << 20) ^ c.draws++);
        const auto span = static_cast<std::uint64_t>(
            std::max<sim::Duration>(config_.registration_lifetime * 3 / 10, 1));
        renew_in = config_.registration_lifetime * 3 / 5 +
                   static_cast<sim::Duration>(draw % span);
    }
    sim_.schedule_in(renew_in,
                     [this, host, epoch] {
                         if (host->epoch == epoch) begin_registration(host, /*renewal=*/true);
                     },
                     "reg-renewal");
}

void CitySim::client_timeout(MetroHost* host, std::uint32_t epoch, bool renewal,
                             std::uint32_t attempt, std::uint64_t xid) {
    ClientState& c = clients_[host->index];
    if (host->epoch != epoch || !c.pending || c.last_xid != xid) {
        return;  // answered or superseded meanwhile
    }
    ov_timeouts_->add();
    const CityOverloadConfig& ov = config_.overload;
    const std::uint32_t next = std::min<std::uint32_t>(attempt + 1, 16);
    const bool park = ov.protection && ov.retry_budget > 0 && next > ov.retry_budget;
    sim::Duration delay;
    if (park) {
        if (!c.circuit_open) {
            c.circuit_open = true;
            ov_circuit_opens_->add();
            decisions_.record({sim_.now(), "host-" + std::to_string(host->index),
                               "ha-" + std::to_string(host->home_agent), "overload",
                               "retry-budget",
                               "attempts=" + std::to_string(next) + "/" +
                                   std::to_string(ov.retry_budget),
                               false, "retrying", "parked", "",
                               "retry budget exhausted; parking with slow probes"});
        }
        // Park-and-probe, jittered +-25% so parked hosts stay decorrelated.
        const std::uint64_t draw = mobility::mix_seed(
            config_.population.seed ^ kRetryTag ^
            (static_cast<std::uint64_t>(host->index) << 20) ^ c.draws++);
        const auto span =
            static_cast<std::uint64_t>(std::max<sim::Duration>(ov.circuit_probe / 2, 1));
        delay = ov.circuit_probe * 3 / 4 + static_cast<sim::Duration>(draw % span);
    } else if (ov.protection) {
        ov_retries_->add();
        // Seeded decorrelated jitter: uniform(base, 3 x previous), capped
        // (core::DecorrelatedBackoff's policy, inlined over ClientState).
        const sim::Duration base = ov.reply_timeout;
        const sim::Duration prev = c.prev_delay == 0 ? base : c.prev_delay;
        const sim::Duration hi = std::max<sim::Duration>(3 * prev, base + 1);
        const std::uint64_t draw = mobility::mix_seed(
            config_.population.seed ^ kRetryTag ^
            (static_cast<std::uint64_t>(host->index) << 20) ^ c.draws++);
        delay = std::min<sim::Duration>(
            base + static_cast<sim::Duration>(draw % static_cast<std::uint64_t>(hi - base)),
            ov.retry_cap);
        c.prev_delay = delay;
    } else {
        ov_retries_->add();
        // Ablation OFF leg: synchronized exponential doubling — every host
        // that timed out together retries together, feeding the storm.
        delay = ov.reply_timeout;
        for (std::uint32_t i = 0; i < attempt && delay < ov.retry_cap; ++i) delay *= 2;
        delay = std::min(delay, ov.retry_cap);
    }
    sim_.schedule_in(delay,
                     [this, host, epoch, renewal, next] {
                         if (host->epoch == epoch) client_start(host, renewal, next);
                     },
                     "reg-retry");
}

void CitySim::flap_agent_now() {
    const std::size_t a = config_.overload.flap_agent;
    pre_flap_bindings_ = tables_[a].size();
    tables_[a].clear();
    queues_[a]->clear();
    ov_flaps_->add();
    decisions_.record({sim_.now(), "ha-" + std::to_string(a), "city", "fault",
                       "agent-flap", "bindings=" + std::to_string(pre_flap_bindings_),
                       true, "up", "flapped", "",
                       "binding table wiped; homed population storms back"});
    // Every attached host homed at the flapped agent notices — its renewal
    // or traffic fails — within the notice window and re-registers. The
    // notice offsets are seeded draws, not policy: this is the arrival
    // process of the storm the retry policy is then measured against.
    const auto window = static_cast<std::uint64_t>(
        std::max<sim::Duration>(config_.overload.flap_notice_window, 1));
    for (MetroHost* host : pop_.hosts()) {
        if (host->home_agent != a || host->cell < 0) continue;
        const sim::Duration offset = static_cast<sim::Duration>(
            mobility::mix_seed(config_.population.seed ^ kFlapTag ^ host->index) % window);
        sim_.schedule_in(offset,
                         [this, host] { begin_registration(host, /*renewal=*/false); },
                         "flap-rereg");
    }
    sim_.schedule_in(kRecoveryPoll, [this] { check_recovery(); }, "storm-recovery");
}

void CitySim::check_recovery() {
    if (storm_recovery_) return;
    const std::size_t a = config_.overload.flap_agent;
    if (queues_[a]->depth() == 0 && tables_[a].size() * 10 >= pre_flap_bindings_ * 9) {
        storm_recovery_ = sim_.now() - config_.overload.flap_at;
        decisions_.record({sim_.now(), "ha-" + std::to_string(a), "city", "overload",
                           "storm-recovered",
                           "bindings=" + std::to_string(tables_[a].size()) + "/" +
                               std::to_string(pre_flap_bindings_),
                           true, "flapped", "recovered", "",
                           "table back above 90% of pre-flap size with a drained queue"});
        return;
    }
    if (sim_.now() + kRecoveryPoll <= config_.duration) {
        sim_.schedule_in(kRecoveryPoll, [this] { check_recovery(); }, "storm-recovery");
    }
}

void CitySim::probe_sweep(std::uint64_t sweep_index) {
    const auto& hosts = pop_.hosts();
    const sim::TimePoint now = sim_.now();
    for (std::size_t k = 0; k < config_.probes_per_sweep; ++k) {
        const std::uint64_t draw = mobility::mix_seed(
            config_.population.seed ^ kProbeTag ^ (sweep_index * 0x10001ull + k));
        MetroHost* host = hosts[draw % hosts.size()];
        probes_->add();
        ++probes_total_;
        if (host->cell < 0) {
            unbound_->add();
            continue;
        }
        const auto binding =
            tables_[host->home_agent].lookup(host->home_address, now);
        if (!binding) {
            unbound_->add();
        } else if (binding->care_of_address ==
                   topo_.cells()[static_cast<std::size_t>(host->cell)].care_of) {
            delivered_->add();
        } else {
            stale_->add();  // binding points at a cell the host already left
        }
    }
    if (now + config_.probe_interval <= config_.duration) {
        sim_.schedule_in(config_.probe_interval,
                         [this, next = sweep_index + 1] { probe_sweep(next); },
                         "deliverability-probe");
    }
}

void CitySim::run() {
    if (ran_) throw std::logic_error("CitySim::run called twice");
    ran_ = true;

    if (config_.metrics_interval > 0) {
        sampler_ = std::make_unique<obs::MetricsSampler>(
            sim_, registry_,
            obs::SamplerConfig{config_.metrics_interval, 4096, config_.sampler_delta});
        sampler_->start();
    }
    if (config_.monitor_interval > 0) {
        monitor_ = std::make_unique<obs::HealthMonitor>(
            sim_, registry_, obs::MonitorConfig{config_.monitor_interval});
        monitor_->add_rate_spike(
            {.name = "handoff-storm",
             .node = "city",
             .layer = "metro",
             .metric = "handoffs",
             .min_rate = config_.storm_rate_floor,
             .spike_factor = config_.storm_spike_factor,
             .alpha = 0.3,
             .warmup_evals = 2,
             .detail = "citywide handoff wave above the EWMA baseline"});
        if (config_.overload.enabled) {
            // Shed-spike + queue watermark on the agent the ablation flaps.
            // The watermark trips only when the queue outruns 4x the
            // protected capacity — collapse evidence on the unbounded leg.
            core::arm_overload_monitors(
                *monitor_, "ha-" + std::to_string(config_.overload.flap_agent),
                4.0 * static_cast<double>(
                          std::max<std::size_t>(config_.overload.agent.queue_capacity, 16)),
                config_.overload.shed_rate_floor);
        }
        monitor_->set_decision_log(&decisions_);
        incidents_ = std::make_unique<obs::IncidentRecorder>();
        incidents_->attach_decisions(&decisions_);
        if (sampler_) incidents_->attach_sampler(sampler_.get());
        incidents_->arm(*monitor_, "bench_city", config_.label);
        monitor_->start();
    }

    // Stagger every host's sampling phase inside the interval so 10k
    // timers spread across it instead of beating on the same instant —
    // exactly the access pattern the calendar queue is built for.
    for (MetroHost* host : pop_.hosts()) {
        const sim::Duration stagger = static_cast<sim::Duration>(
            mobility::mix_seed(config_.population.seed ^ kStaggerTag ^ host->index) %
            static_cast<std::uint64_t>(config_.sample_interval));
        sim_.schedule_at(stagger, [this, host] { sample_host(host); }, "city-sample");
    }
    if (config_.probes_per_sweep > 0 && config_.probe_interval > 0) {
        sim_.schedule_at(config_.probe_interval, [this] { probe_sweep(0); },
                         "deliverability-probe");
    }
    // Home-agent GC: a lazy sweep twice per lifetime counts what expired
    // without renewal (binding-table pressure from churned-out hosts).
    const sim::Duration gc_interval = config_.registration_lifetime / 2;
    struct GcTick {
        CitySim* city;
        sim::Duration interval;
        void operator()() const {
            const sim::TimePoint now = city->sim_.now();
            for (std::size_t a = 0; a < city->tables_.size(); ++a) {
                const std::size_t dropped = city->tables_[a].expire(now);
                if (dropped > 0) city->agents_[a].expired->add(dropped);
            }
            if (now + interval <= city->config_.duration) {
                city->sim_.schedule_in(interval, GcTick{city, interval}, "ha-gc");
            }
        }
    };
    sim_.schedule_at(gc_interval, GcTick{this, gc_interval}, "ha-gc");

    if (config_.overload.enabled && config_.overload.flap_at > 0 &&
        config_.overload.flap_at < config_.duration &&
        config_.overload.flap_agent < tables_.size()) {
        sim_.schedule_at(config_.overload.flap_at, [this] { flap_agent_now(); },
                         "agent-flap");
    }

    sim_.run_until(config_.duration);
    if (monitor_) monitor_->stop();
    if (sampler_) sampler_->stop();
}

obs::JsonValue CitySim::snapshot(const std::string& bench, const std::string& label) const {
    return registry_.snapshot(bench, label, sim_.now());
}

std::string CitySim::snapshot_json(const std::string& bench,
                                   const std::string& label) const {
    return registry_.snapshot_json(bench, label, sim_.now());
}

}  // namespace mip::metro
