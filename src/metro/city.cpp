#include "metro/city.h"

#include <stdexcept>
#include <string>

namespace mip::metro {

namespace {
// Domain tags for the engine's deterministic draws (sample stagger,
// registration jitter, probe selection) — disjoint from the ones the
// population builder uses.
constexpr std::uint64_t kStaggerTag = 0x53414D50ull;  // "SAMP"
constexpr std::uint64_t kProbeTag = 0x50524F42ull;    // "PROB"
constexpr std::uint64_t kJitterTag = 0x4A495454ull;   // "JITT"
}  // namespace

CitySim::CitySim(CityConfig config)
    : config_(config),
      topo_(config.metro),
      pop_(topo_, config.population),
      sim_(config.scheduler),
      decisions_(&sim_.record_arena()),
      tables_(static_cast<std::size_t>(config.metro.home_agents)) {
    if (config_.duration <= 0 || config_.sample_interval <= 0 ||
        config_.storm_window <= 0 || config_.registration_lifetime <= 0) {
        throw std::invalid_argument("CitySim: durations must be > 0");
    }

    // Per-cell and per-agent metric handles are resolved once here; the
    // hot path bumps cached Counter references instead of re-hashing
    // (node, layer, name) keys millions of times. The stats vectors are
    // never resized after this loop, so the gauge lambdas' pointers into
    // them stay valid for the registry's lifetime.
    cells_.resize(topo_.cells().size());
    for (std::size_t c = 0; c < cells_.size(); ++c) {
        const std::string& node = topo_.cells()[c].name;
        CellStats& cs = cells_[c];
        cs.handoffs = &registry_.counter(node, "metro", "handoffs");
        cs.storms = &registry_.counter(node, "metro", "storms");
        registry_.register_gauge(node, "metro", "occupancy",
                                 [p = &cs] { return static_cast<double>(p->occupancy); });
        registry_.register_gauge(node, "metro", "storm_peak",
                                 [p = &cs] { return static_cast<double>(p->window_peak); });
    }
    agents_.resize(tables_.size());
    for (std::size_t a = 0; a < agents_.size(); ++a) {
        const std::string node = "ha-" + std::to_string(a);
        AgentStats& as = agents_[a];
        as.registrations = &registry_.counter(node, "metro", "registrations");
        as.renewals = &registry_.counter(node, "metro", "renewals");
        as.expired = &registry_.counter(node, "metro", "bindings_expired");
        registry_.register_gauge(node, "metro", "bindings",
                                 [t = &tables_[a]] { return static_cast<double>(t->size()); });
    }
    handoffs_agg_ = &registry_.counter("city", "metro", "handoffs");
    probes_ = &registry_.counter("city", "metro", "probes");
    delivered_ = &registry_.counter("city", "metro", "probes_delivered");
    stale_ = &registry_.counter("city", "metro", "probes_stale");
    unbound_ = &registry_.counter("city", "metro", "probes_unbound");
    reg_latency_ = &registry_.histogram("city", "metro", "registration_latency_ns",
                                        obs::rtt_bounds_ns());
    reg_hops_ = &registry_.histogram("city", "metro", "registration_hops",
                                     obs::hop_bounds());
}

CitySim::~CitySim() = default;

sim::Duration CitySim::member_jitter(std::size_t host_index, std::uint32_t epoch) const {
    const std::uint64_t m = mobility::mix_seed(
        config_.population.seed ^ kJitterTag ^ (static_cast<std::uint64_t>(host_index) << 20) ^
        (static_cast<std::uint64_t>(epoch) << 44));
    return static_cast<sim::Duration>(m % 1'000'000);  // < 1 ms
}

void CitySim::sample_host(MetroHost* host) {
    const sim::TimePoint now = sim_.now();
    const mobility::Position p = host->model->position_at(now);
    const MetroCell& cell = topo_.cell_at(p);
    if (static_cast<std::int32_t>(cell.index) != host->cell) {
        const std::int32_t old = host->cell;
        host->cell = static_cast<std::int32_t>(cell.index);
        if (old >= 0) --cells_[static_cast<std::size_t>(old)].occupancy;
        CellStats& cs = cells_[cell.index];
        ++cs.occupancy;
        if (old >= 0) {
            // The first association is an attach, not a handoff.
            cs.handoffs->add();
            handoffs_agg_->add();
            ++handoffs_total_;
            ++cs.window;
            if (cs.window > cs.window_peak) cs.window_peak = cs.window;
            if (cs.window == config_.storm_threshold) {
                cs.storms->add();
                decisions_.record({now, cell.name, "city", "handoff-storm",
                                   "window-threshold",
                                   "window=" + std::to_string(cs.window) + "/" +
                                       std::to_string(config_.storm_threshold),
                                   true, "calm", "storm", "",
                                   "handoff rate crossed the storm threshold"});
            }
            sim_.schedule_in(config_.storm_window,
                             [this, idx = cell.index] { --cells_[idx].window; },
                             "storm-decay");
        }
        begin_registration(host, /*renewal=*/false);
    }
    sim_.schedule_in(config_.sample_interval, [this, host] { sample_host(host); },
                     "city-sample");
}

void CitySim::begin_registration(MetroHost* host, bool renewal) {
    ++host->epoch;  // any in-flight completion for an older epoch is now stale
    const std::uint32_t epoch = host->epoch;
    const std::int32_t cell = host->cell;
    const int hops =
        topo_.hop_count(static_cast<std::size_t>(cell), topo_.home_agent_cell(host->home_agent));
    const sim::Duration latency = config_.reg_base_latency +
                                  hops * config_.reg_hop_latency +
                                  member_jitter(host->index, epoch);
    reg_hops_->observe(static_cast<double>(hops));
    reg_latency_->observe(static_cast<double>(latency));
    sim_.schedule_in(latency,
                     [this, host, epoch, cell, renewal] {
                         finish_registration(host, epoch, cell, renewal);
                     },
                     "registration");
}

void CitySim::finish_registration(MetroHost* host, std::uint32_t epoch,
                                  std::int32_t cell, bool renewal) {
    if (host->epoch != epoch) return;  // superseded by a later handoff
    const sim::TimePoint expires = sim_.now() + config_.registration_lifetime;
    tables_[host->home_agent].set(host->home_address,
                                  topo_.cells()[static_cast<std::size_t>(cell)].care_of,
                                  expires);
    host->binding_expires = expires;
    AgentStats& as = agents_[host->home_agent];
    (renewal ? *as.renewals : *as.registrations).add();
    ++registrations_total_;
    sim_.schedule_in(config_.registration_lifetime / 5 * 4,
                     [this, host, epoch] {
                         if (host->epoch == epoch) begin_registration(host, /*renewal=*/true);
                     },
                     "reg-renewal");
}

void CitySim::probe_sweep(std::uint64_t sweep_index) {
    const auto& hosts = pop_.hosts();
    const sim::TimePoint now = sim_.now();
    for (std::size_t k = 0; k < config_.probes_per_sweep; ++k) {
        const std::uint64_t draw = mobility::mix_seed(
            config_.population.seed ^ kProbeTag ^ (sweep_index * 0x10001ull + k));
        MetroHost* host = hosts[draw % hosts.size()];
        probes_->add();
        ++probes_total_;
        if (host->cell < 0) {
            unbound_->add();
            continue;
        }
        const auto binding =
            tables_[host->home_agent].lookup(host->home_address, now);
        if (!binding) {
            unbound_->add();
        } else if (binding->care_of_address ==
                   topo_.cells()[static_cast<std::size_t>(host->cell)].care_of) {
            delivered_->add();
        } else {
            stale_->add();  // binding points at a cell the host already left
        }
    }
    if (now + config_.probe_interval <= config_.duration) {
        sim_.schedule_in(config_.probe_interval,
                         [this, next = sweep_index + 1] { probe_sweep(next); },
                         "deliverability-probe");
    }
}

void CitySim::run() {
    if (ran_) throw std::logic_error("CitySim::run called twice");
    ran_ = true;

    if (config_.metrics_interval > 0) {
        sampler_ = std::make_unique<obs::MetricsSampler>(
            sim_, registry_,
            obs::SamplerConfig{config_.metrics_interval, 4096, config_.sampler_delta});
        sampler_->start();
    }
    if (config_.monitor_interval > 0) {
        monitor_ = std::make_unique<obs::HealthMonitor>(
            sim_, registry_, obs::MonitorConfig{config_.monitor_interval});
        monitor_->add_rate_spike(
            {.name = "handoff-storm",
             .node = "city",
             .layer = "metro",
             .metric = "handoffs",
             .min_rate = config_.storm_rate_floor,
             .spike_factor = config_.storm_spike_factor,
             .alpha = 0.3,
             .warmup_evals = 2,
             .detail = "citywide handoff wave above the EWMA baseline"});
        monitor_->set_decision_log(&decisions_);
        incidents_ = std::make_unique<obs::IncidentRecorder>();
        incidents_->attach_decisions(&decisions_);
        if (sampler_) incidents_->attach_sampler(sampler_.get());
        incidents_->arm(*monitor_, "bench_city", config_.label);
        monitor_->start();
    }

    // Stagger every host's sampling phase inside the interval so 10k
    // timers spread across it instead of beating on the same instant —
    // exactly the access pattern the calendar queue is built for.
    for (MetroHost* host : pop_.hosts()) {
        const sim::Duration stagger = static_cast<sim::Duration>(
            mobility::mix_seed(config_.population.seed ^ kStaggerTag ^ host->index) %
            static_cast<std::uint64_t>(config_.sample_interval));
        sim_.schedule_at(stagger, [this, host] { sample_host(host); }, "city-sample");
    }
    if (config_.probes_per_sweep > 0 && config_.probe_interval > 0) {
        sim_.schedule_at(config_.probe_interval, [this] { probe_sweep(0); },
                         "deliverability-probe");
    }
    // Home-agent GC: a lazy sweep twice per lifetime counts what expired
    // without renewal (binding-table pressure from churned-out hosts).
    const sim::Duration gc_interval = config_.registration_lifetime / 2;
    struct GcTick {
        CitySim* city;
        sim::Duration interval;
        void operator()() const {
            const sim::TimePoint now = city->sim_.now();
            for (std::size_t a = 0; a < city->tables_.size(); ++a) {
                const std::size_t dropped = city->tables_[a].expire(now);
                if (dropped > 0) city->agents_[a].expired->add(dropped);
            }
            if (now + interval <= city->config_.duration) {
                city->sim_.schedule_in(interval, GcTick{city, interval}, "ha-gc");
            }
        }
    };
    sim_.schedule_at(gc_interval, GcTick{this, gc_interval}, "ha-gc");

    sim_.run_until(config_.duration);
    if (monitor_) monitor_->stop();
    if (sampler_) sampler_->stop();
}

obs::JsonValue CitySim::snapshot(const std::string& bench, const std::string& label) const {
    return registry_.snapshot(bench, label, sim_.now());
}

std::string CitySim::snapshot_json(const std::string& bench,
                                   const std::string& label) const {
    return registry_.snapshot_json(bench, label, sim_.now());
}

}  // namespace mip::metro
