// City-scale metro simulation engine (ISSUE 6 tentpole).
//
// CitySim drives a Population across a MetroTopology on one Simulator
// and exports the three metric families the city-scale experiments are
// about, all through the existing observability pipelines:
//
//   handoff storms   per-cell handoff counters plus a sliding storm
//                    window (handoffs in the last storm_window); the
//                    peak is exported as a gauge and threshold
//                    crossings are recorded in the DecisionLog — the
//                    audit trail answers "which cells melted down, when"
//   binding pressure per-home-agent registration/renewal counters and a
//                    live table-size gauge over real core::BindingTable
//                    instances (the flat-map structure the refactor in
//                    core/flat_map.h exists for)
//   deliverability   periodic probe sweeps that check a deterministic
//                    host sample against its home agent's table: is the
//                    registered care-of the cell the host is actually
//                    in? counters split delivered / stale / unbound
//
// The engine is event-driven end to end: per-host position samples
// (staggered so 10k timers do not beat on one instant), in-flight
// registrations with hop-proportional latency and epoch guards against
// stale completions, 80%-of-lifetime renewals, storm-window decay, home
// agent GC, and probe sweeps. Everything is a pure function of the
// config, so runs are byte-reproducible under either SchedulerKind and
// at any SweepRunner --jobs.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/binding.h"
#include "core/overload.h"
#include "metro/population.h"
#include "metro/topology.h"
#include "obs/decision.h"
#include "obs/incident.h"
#include "obs/metrics.h"
#include "obs/monitor.h"
#include "obs/timeseries.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace mip::metro {

/// Control-plane overload model for the city (ISSUE 9): when enabled,
/// every registration exchange runs through a per-home-agent
/// core::RegistrationQueue (bounded, renewal-priority, token-bucket
/// admission) with an explicit client loop — reply timeout, seeded
/// decorrelated-jitter retries, a retry budget opening a park-and-probe
/// circuit — instead of the analytic always-succeeds exchange. An
/// optional agent flap wipes one agent's table mid-run so its whole
/// homed population re-registers inside flap_notice_window: the
/// registration storm the protections exist for. `protection` selects
/// the ablation leg — the same storm with the guards on or off.
struct CityOverloadConfig {
    bool enabled = false;
    /// true = protected leg (bounded queue + token bucket + jittered
    /// retries + retry budget); false = collapse leg (unbounded queue,
    /// synchronized doubling retries, no budget).
    bool protection = true;
    /// Agent-side queue shape, applied to every home agent. On the
    /// unprotected leg queue_capacity and new_tokens_per_sec are forced
    /// to 0 (unbounded, no admission).
    core::OverloadConfig agent;
    /// Client reply timeout (beyond the round-trip) before a retry.
    sim::Duration reply_timeout = sim::milliseconds(500);
    /// Retry backoff cap (both legs).
    sim::Duration retry_cap = sim::seconds(8);
    /// Protected leg: retries before the circuit opens (0 = no budget).
    unsigned retry_budget = 6;
    /// Park-and-probe interval while the circuit is open (jittered ±25%).
    sim::Duration circuit_probe = sim::seconds(10);
    /// Agent flap: at flap_at (0 = never) flap_agent's binding table is
    /// wiped; its homed hosts notice within flap_notice_window and storm
    /// back in. Recovery is self-measured (see storm_recovery()).
    sim::Duration flap_at = 0;
    std::uint32_t flap_agent = 0;
    sim::Duration flap_notice_window = sim::seconds(2);
    /// Shed-rate floor for the flapped agent's spike monitor.
    double shed_rate_floor = 4.0;
};

struct CityConfig {
    MetroConfig metro;
    PopulationConfig population;
    sim::SchedulerKind scheduler = sim::SchedulerKind::Calendar;
    /// Simulated span of the run.
    sim::Duration duration = sim::seconds(600);
    /// Per-host radio sampling interval (each host is staggered inside it).
    sim::Duration sample_interval = sim::seconds(2);
    /// Registration lifetime granted by home agents; hosts renew at 80%.
    sim::Duration registration_lifetime = sim::seconds(120);
    /// Registration latency = base + hops * per_hop + jitter(<1ms).
    sim::Duration reg_base_latency = sim::milliseconds(4);
    sim::Duration reg_hop_latency = sim::milliseconds(3);
    /// Handoff-storm window: per-cell handoffs within the last
    /// storm_window; crossing storm_threshold records a decision event.
    sim::Duration storm_window = sim::seconds(10);
    std::uint32_t storm_threshold = 40;
    /// Deliverability probe sweeps: every interval, probes_per_sweep
    /// hosts are drawn deterministically and checked against their HA.
    sim::Duration probe_interval = sim::seconds(15);
    std::size_t probes_per_sweep = 256;
    /// Attach a MetricsSampler at this interval (0 = off).
    sim::Duration metrics_interval = 0;
    /// Delta-sampled (dirty-feed) vs full-walk sampler — same bytes, see
    /// obs/timeseries.h. Exposed so bench_city can measure both paths.
    bool sampler_delta = true;
    /// Attach a HealthMonitor at this interval (0 = off). The monitor
    /// watches the citywide handoff wave: an EWMA rate-spike rule over
    /// the aggregate city/metro/handoffs counter trips when one
    /// evaluation's handoffs exceed max(storm_rate_floor,
    /// storm_spike_factor x baseline) — the online cousin of the
    /// per-cell sliding-window storm counters. Trips are audited in the
    /// DecisionLog and captured as §10 incident bundles.
    sim::Duration monitor_interval = 0;
    double storm_spike_factor = 3.0;
    double storm_rate_floor = 50.0;
    /// (bench, label) stamped into captured incident bundles.
    std::string label = "city";
    /// Overload protection + registration-storm model (ISSUE 9). Off by
    /// default: the analytic exchange below stays byte-identical.
    CityOverloadConfig overload;
};

class CitySim {
public:
    explicit CitySim(CityConfig config);
    ~CitySim();

    CitySim(const CitySim&) = delete;
    CitySim& operator=(const CitySim&) = delete;

    /// Runs the full configured duration. Callable once.
    void run();

    const CityConfig& config() const noexcept { return config_; }
    const MetroTopology& topology() const noexcept { return topo_; }
    const Population& population() const noexcept { return pop_; }
    sim::Simulator& simulator() noexcept { return sim_; }
    obs::MetricsRegistry& metrics() noexcept { return registry_; }
    const obs::DecisionLog& decisions() const noexcept { return decisions_; }
    const obs::MetricsSampler* sampler() const noexcept { return sampler_.get(); }
    /// The storm monitor / flight recorder (nullptr when monitor_interval
    /// is 0).
    const obs::HealthMonitor* monitor() const noexcept { return monitor_.get(); }
    const obs::IncidentRecorder* incidents() const noexcept { return incidents_.get(); }

    std::uint64_t events_fired() const noexcept { return sim_.events_fired(); }
    std::uint64_t handoffs_total() const noexcept { return handoffs_total_; }
    std::uint64_t registrations_total() const noexcept { return registrations_total_; }
    std::uint64_t probes_total() const noexcept { return probes_total_; }

    /// The home agent tables (index = home-agent index) — tests assert
    /// against them directly.
    const std::vector<core::BindingTable>& binding_tables() const noexcept {
        return tables_;
    }

    /// Per-agent overload queue (nullptr when the overload model is off).
    const core::RegistrationQueue* overload_queue(std::size_t agent) const {
        return agent < queues_.size() ? queues_[agent].get() : nullptr;
    }
    /// Time from the agent flap to recovery (flapped agent's table back
    /// to >= 90% of its pre-flap size with a drained queue); nullopt when
    /// no flap was configured or recovery never happened within the run.
    std::optional<sim::Duration> storm_recovery() const noexcept {
        return storm_recovery_;
    }
    std::size_t pre_flap_bindings() const noexcept { return pre_flap_bindings_; }

    /// End-of-run metrics document / JSON (docs/TRACE_FORMAT.md §4).
    obs::JsonValue snapshot(const std::string& bench, const std::string& label) const;
    std::string snapshot_json(const std::string& bench, const std::string& label) const;

private:
    struct CellStats {
        obs::Counter* handoffs = nullptr;
        obs::Counter* storms = nullptr;
        std::uint32_t occupancy = 0;
        std::uint32_t window = 0;      ///< handoffs inside the storm window
        std::uint32_t window_peak = 0;
    };
    struct AgentStats {
        obs::Counter* registrations = nullptr;
        obs::Counter* renewals = nullptr;
        obs::Counter* expired = nullptr;
    };

    /// Per-host client-side exchange state for the overload model (held
    /// here, not in MetroHost: the arena-built host record stays POD).
    struct ClientState {
        std::uint64_t last_xid = 0;  ///< latest send; stale replies dropped
        std::uint64_t draws = 0;     ///< monotone jitter-draw counter
        sim::Duration prev_delay = 0;  ///< decorrelated ramp (0 = fresh)
        bool pending = false;
        bool circuit_open = false;
    };

    void sample_host(MetroHost* host);
    void begin_registration(MetroHost* host, bool renewal);
    void finish_registration(MetroHost* host, std::uint32_t epoch,
                             std::int32_t cell, bool renewal);
    void probe_sweep(std::uint64_t sweep_index);
    sim::Duration member_jitter(std::size_t host_index, std::uint32_t epoch) const;

    // --- overload model (ISSUE 9; all no-ops unless overload.enabled) ---
    /// Launches one wire exchange (send + reply timeout). attempt 0 opens
    /// a new epoch; retries keep the epoch and bump the xid.
    void client_start(MetroHost* host, bool renewal, std::uint32_t attempt);
    void client_timeout(MetroHost* host, std::uint32_t epoch, bool renewal,
                        std::uint32_t attempt, std::uint64_t xid);
    void client_reply(MetroHost* host, std::uint32_t epoch, std::uint64_t xid);
    void server_arrival(MetroHost* host, std::uint32_t epoch, std::int32_t cell,
                        bool renewal, std::uint64_t xid);
    void serve_registration(MetroHost* host, std::uint32_t epoch, std::int32_t cell,
                            bool renewal, std::uint64_t xid);
    void flap_agent_now();
    void check_recovery();

    CityConfig config_;
    MetroTopology topo_;
    Population pop_;
    sim::Simulator sim_;
    obs::MetricsRegistry registry_;
    obs::DecisionLog decisions_;
    std::unique_ptr<obs::MetricsSampler> sampler_;
    std::unique_ptr<obs::HealthMonitor> monitor_;
    std::unique_ptr<obs::IncidentRecorder> incidents_;
    std::vector<core::BindingTable> tables_;
    std::vector<CellStats> cells_;
    std::vector<AgentStats> agents_;
    /// Overload model state (empty when overload.enabled is false).
    std::vector<std::unique_ptr<core::RegistrationQueue>> queues_;
    std::vector<ClientState> clients_;
    obs::Counter* ov_retries_ = nullptr;
    obs::Counter* ov_timeouts_ = nullptr;
    obs::Counter* ov_circuit_opens_ = nullptr;
    obs::Counter* ov_circuit_probes_ = nullptr;
    obs::Counter* ov_flaps_ = nullptr;
    std::size_t pre_flap_bindings_ = 0;
    std::optional<sim::Duration> storm_recovery_;
    obs::Counter* handoffs_agg_ = nullptr;
    obs::Counter* probes_ = nullptr;
    obs::Counter* delivered_ = nullptr;
    obs::Counter* stale_ = nullptr;
    obs::Counter* unbound_ = nullptr;
    obs::Histogram* reg_latency_ = nullptr;
    obs::Histogram* reg_hops_ = nullptr;
    std::uint64_t handoffs_total_ = 0;
    std::uint64_t registrations_total_ = 0;
    std::uint64_t probes_total_ = 0;
    bool ran_ = false;
};

}  // namespace mip::metro
