// Bump-pointer arena for per-host simulation state (ISSUE 6).
//
// A city-scale run owns tens of thousands of hosts, each a small bundle
// of mobility model + addressing + registration state. Allocating those
// individually scatters them across the heap and pays a malloc round
// trip per object; at teardown, 50k frees dominate shutdown. The arena
// carves objects out of large contiguous blocks instead: allocation is
// a pointer bump, locality follows construction order (the population
// builder constructs hosts in index order, so iteration during the
// simulation walks memory sequentially), and the whole population is
// released in a handful of frees.
//
// Non-trivially-destructible objects register their destructor at
// create<T>() time and are destroyed in reverse construction order when
// the arena dies — so host state may hold vectors or shared_ptrs
// without leaking. The arena is not thread-safe; each sweep job owns a
// private one, matching the SweepRunner isolation contract (DESIGN §10).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace mip::metro {

class Arena {
public:
    explicit Arena(std::size_t block_bytes = 1 << 20) : block_bytes_(block_bytes) {}

    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;

    ~Arena() {
        // Reverse construction order, like stack unwinding.
        for (auto it = dtors_.rbegin(); it != dtors_.rend(); ++it) {
            it->destroy(it->object);
        }
    }

    /// Raw storage of @p size bytes aligned to @p align. Oversized
    /// requests get a dedicated block; normal ones bump the current one.
    void* allocate(std::size_t size, std::size_t align) {
        std::uintptr_t p = (cursor_ + (align - 1)) & ~(static_cast<std::uintptr_t>(align) - 1);
        if (p + size > block_end_) {
            const std::size_t want = size + align > block_bytes_ ? size + align : block_bytes_;
            blocks_.push_back(std::make_unique<std::byte[]>(want));
            cursor_ = reinterpret_cast<std::uintptr_t>(blocks_.back().get());
            block_end_ = cursor_ + want;
            allocated_bytes_ += want;
            p = (cursor_ + (align - 1)) & ~(static_cast<std::uintptr_t>(align) - 1);
        }
        cursor_ = p + size;
        used_bytes_ += size;
        return reinterpret_cast<void*>(p);
    }

    /// Constructs a T in the arena. The pointer stays valid for the
    /// arena's lifetime; never delete it.
    template <typename T, typename... Args>
    T* create(Args&&... args) {
        T* obj = new (allocate(sizeof(T), alignof(T))) T(std::forward<Args>(args)...);
        if constexpr (!std::is_trivially_destructible_v<T>) {
            dtors_.push_back({obj, [](void* o) { static_cast<T*>(o)->~T(); }});
        }
        return obj;
    }

    std::size_t blocks() const noexcept { return blocks_.size(); }
    std::size_t allocated_bytes() const noexcept { return allocated_bytes_; }
    std::size_t used_bytes() const noexcept { return used_bytes_; }

private:
    struct Dtor {
        void* object;
        void (*destroy)(void*);
    };

    std::size_t block_bytes_;
    std::vector<std::unique_ptr<std::byte[]>> blocks_;
    std::uintptr_t cursor_ = 0;
    std::uintptr_t block_end_ = 0;
    std::size_t allocated_bytes_ = 0;
    std::size_t used_bytes_ = 0;
    std::vector<Dtor> dtors_;
};

}  // namespace mip::metro
