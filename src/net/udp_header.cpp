#include "net/udp_header.h"

#include "net/checksum.h"
#include "net/protocol.h"

namespace mip::net {

void UdpHeader::serialize(BufferWriter& w, Ipv4Address src_ip, Ipv4Address dst_ip,
                          std::span<const std::uint8_t> payload) const {
    const std::uint16_t len = static_cast<std::uint16_t>(kUdpHeaderSize + payload.size());

    ChecksumAccumulator acc;
    acc.add_u32(src_ip.value());
    acc.add_u32(dst_ip.value());
    acc.add_u16(static_cast<std::uint16_t>(IpProto::Udp));
    acc.add_u16(len);
    acc.add_u16(src_port);
    acc.add_u16(dst_port);
    acc.add_u16(len);
    acc.add(payload);
    std::uint16_t csum = acc.finish();
    if (csum == 0) csum = 0xffff;  // RFC 768: transmitted all-ones if computed zero

    w.u16(src_port);
    w.u16(dst_port);
    w.u16(len);
    w.u16(csum);
    w.bytes(payload);
}

UdpHeader UdpHeader::parse(BufferReader& r, Ipv4Address src_ip, Ipv4Address dst_ip) {
    if (r.remaining() < kUdpHeaderSize) {
        throw ParseError("UDP header truncated");
    }
    const auto whole = r.rest();

    UdpHeader h;
    h.src_port = r.u16();
    h.dst_port = r.u16();
    h.length = r.u16();
    const std::uint16_t csum = r.u16();
    if (h.length < kUdpHeaderSize || h.length > whole.size()) {
        throw ParseError("UDP length field out of range");
    }
    // RFC 768 allows senders to omit the checksum (field zero), but every
    // stack in this simulation always computes one — so a zero here means
    // the field itself was damaged in flight. Accepting it unverified was
    // exactly the hole bit-corruption faults slip through: one flip that
    // zeroes the checksum field would make any payload damage invisible.
    if (csum == 0) {
        throw ParseError("UDP checksum missing");
    }
    ChecksumAccumulator acc;
    acc.add_u32(src_ip.value());
    acc.add_u32(dst_ip.value());
    acc.add_u16(static_cast<std::uint16_t>(IpProto::Udp));
    acc.add_u16(h.length);
    acc.add(whole.subspan(0, h.length));
    const std::uint16_t verify = acc.finish();
    if (verify != 0 && !(verify == 0xffff && csum == 0xffff)) {
        throw ParseError("UDP checksum mismatch");
    }
    return h;
}

}  // namespace mip::net
