#include "net/tcp_header.h"

#include "net/checksum.h"
#include "net/protocol.h"

namespace mip::net {

void TcpHeader::serialize(BufferWriter& w, Ipv4Address src_ip, Ipv4Address dst_ip,
                          std::span<const std::uint8_t> payload) const {
    const std::uint16_t segment_len = static_cast<std::uint16_t>(kTcpHeaderSize + payload.size());

    ChecksumAccumulator acc;
    acc.add_u32(src_ip.value());
    acc.add_u32(dst_ip.value());
    acc.add_u16(static_cast<std::uint16_t>(IpProto::Tcp));
    acc.add_u16(segment_len);
    acc.add_u16(src_port);
    acc.add_u16(dst_port);
    acc.add_u32(seq);
    acc.add_u32(ack);
    acc.add_u16(static_cast<std::uint16_t>(5u << 12 | flags));  // data offset 5 words
    acc.add_u16(window);
    acc.add_u16(0);  // checksum
    acc.add_u16(0);  // urgent pointer
    acc.add(payload);
    const std::uint16_t csum = acc.finish();

    w.u16(src_port);
    w.u16(dst_port);
    w.u32(seq);
    w.u32(ack);
    w.u16(static_cast<std::uint16_t>(5u << 12 | flags));
    w.u16(window);
    w.u16(csum);
    w.u16(0);
    w.bytes(payload);
}

TcpHeader TcpHeader::parse(BufferReader& r, Ipv4Address src_ip, Ipv4Address dst_ip) {
    if (r.remaining() < kTcpHeaderSize) {
        throw ParseError("TCP header truncated");
    }
    const auto whole = r.rest();
    {
        ChecksumAccumulator acc;
        acc.add_u32(src_ip.value());
        acc.add_u32(dst_ip.value());
        acc.add_u16(static_cast<std::uint16_t>(IpProto::Tcp));
        acc.add_u16(static_cast<std::uint16_t>(whole.size()));
        acc.add(whole);
        if (acc.finish() != 0) {
            throw ParseError("TCP checksum mismatch");
        }
    }

    TcpHeader h;
    h.src_port = r.u16();
    h.dst_port = r.u16();
    h.seq = r.u32();
    h.ack = r.u32();
    const std::uint16_t offset_flags = r.u16();
    if ((offset_flags >> 12) != 5) {
        throw ParseError("TCP options unsupported (data offset != 5)");
    }
    h.flags = static_cast<std::uint8_t>(offset_flags & 0x3f);
    h.window = r.u16();
    r.skip(4);  // checksum + urgent pointer
    return h;
}

}  // namespace mip::net
