// Wire-accurate IPv4 header (RFC 791), including fragmentation fields.
//
// Every packet that crosses a simulated link is serialized through this
// header, so encapsulation overheads measured by the benchmarks are exact:
// a plain IPv4 header is 20 bytes, and IP-in-IP encapsulation therefore
// "typically adds 20 bytes to the size of the packet" (paper §3.3).
#pragma once

#include <cstdint>

#include "net/buffer.h"
#include "net/ipv4_address.h"
#include "net/protocol.h"

namespace mip::net {

/// Size of an IPv4 header with no options.
inline constexpr std::size_t kIpv4HeaderSize = 20;

/// Default initial TTL used by hosts in this library.
inline constexpr std::uint8_t kDefaultTtl = 64;

struct Ipv4Header {
    std::uint8_t tos = 0;
    std::uint16_t total_length = 0;  ///< header + payload, filled by serialize helpers
    std::uint16_t identification = 0;
    bool dont_fragment = false;
    bool more_fragments = false;
    std::uint16_t fragment_offset = 0;  ///< in 8-byte units
    std::uint8_t ttl = kDefaultTtl;
    IpProto protocol = IpProto::Udp;
    Ipv4Address src;
    Ipv4Address dst;

    /// Serializes the 20-byte header with a correct checksum. @p total_length
    /// must already be set (see Packet::build).
    void serialize(BufferWriter& w) const;

    /// Parses and validates a header; throws ParseError on malformed input
    /// or checksum mismatch.
    static Ipv4Header parse(BufferReader& r);

    bool is_fragment() const noexcept { return more_fragments || fragment_offset != 0; }
};

}  // namespace mip::net
