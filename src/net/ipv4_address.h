// IPv4 address and CIDR prefix value types.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace mip::net {

/// An IPv4 address held in host byte order. Construction from dotted-quad
/// text is checked; the user-defined literal `"10.0.0.1"_ip` is provided
/// for tests and scenario builders.
class Ipv4Address {
public:
    constexpr Ipv4Address() = default;
    constexpr explicit Ipv4Address(std::uint32_t host_order) : value_(host_order) {}
    constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
        : value_(static_cast<std::uint32_t>(a) << 24 | static_cast<std::uint32_t>(b) << 16 |
                 static_cast<std::uint32_t>(c) << 8 | d) {}

    /// Parses "a.b.c.d"; returns nullopt on malformed input.
    static std::optional<Ipv4Address> parse(std::string_view text);

    /// Parses or throws std::invalid_argument. For literals in test/bench code.
    static Ipv4Address must_parse(std::string_view text);

    constexpr std::uint32_t value() const noexcept { return value_; }
    constexpr bool is_unspecified() const noexcept { return value_ == 0; }
    constexpr bool is_loopback() const noexcept { return (value_ >> 24) == 127; }
    constexpr bool is_multicast() const noexcept { return (value_ >> 28) == 0xe; }
    constexpr bool is_broadcast() const noexcept { return value_ == 0xffffffffu; }

    std::string to_string() const;

    friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

private:
    std::uint32_t value_ = 0;
};

/// The all-zero (unspecified) address, used for unbound sockets.
inline constexpr Ipv4Address kAnyAddress{};

/// An address block in CIDR form, e.g. 171.64.0.0/16. Used by forwarding
/// tables, filter policies and the paper's §7.1.2 rule-based method
/// selection ("specified similarly to the way routing table entries are
/// currently specified, as an address and a mask value").
class Prefix {
public:
    constexpr Prefix() = default;
    Prefix(Ipv4Address base, unsigned length);

    /// Parses "a.b.c.d/len".
    static std::optional<Prefix> parse(std::string_view text);
    static Prefix must_parse(std::string_view text);

    constexpr Ipv4Address base() const noexcept { return base_; }
    constexpr unsigned length() const noexcept { return length_; }
    constexpr std::uint32_t mask() const noexcept {
        return length_ == 0 ? 0 : ~std::uint32_t{0} << (32 - length_);
    }

    constexpr bool contains(Ipv4Address addr) const noexcept {
        return (addr.value() & mask()) == base_.value();
    }

    /// True if @p other is fully inside this prefix.
    constexpr bool covers(const Prefix& other) const noexcept {
        return other.length_ >= length_ && contains(other.base_);
    }

    std::string to_string() const;

    friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

private:
    Ipv4Address base_;
    unsigned length_ = 0;
};

/// The default route 0.0.0.0/0.
inline constexpr Prefix kDefaultRoute{};

namespace literals {
/// "10.1.2.3"_ip — checked at call time (throws on malformed text).
inline Ipv4Address operator""_ip(const char* s, std::size_t n) {
    return Ipv4Address::must_parse(std::string_view(s, n));
}
/// "10.1.0.0/16"_net
inline Prefix operator""_net(const char* s, std::size_t n) {
    return Prefix::must_parse(std::string_view(s, n));
}
}  // namespace literals

}  // namespace mip::net
