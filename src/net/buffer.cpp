#include "net/buffer.h"

namespace mip::net {

void BufferWriter::u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void BufferWriter::u32(std::uint32_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 24));
    buf_.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
    buf_.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
    buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void BufferWriter::bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
}

void BufferWriter::patch_u16(std::size_t offset, std::uint16_t v) {
    if (offset + 2 > buf_.size()) {
        throw std::out_of_range("BufferWriter::patch_u16 past end");
    }
    buf_[offset] = static_cast<std::uint8_t>(v >> 8);
    buf_[offset + 1] = static_cast<std::uint8_t>(v & 0xff);
}

void BufferReader::require(std::size_t n) const {
    if (pos_ + n > data_.size()) {
        throw ParseError("buffer underrun: need " + std::to_string(n) + " bytes, have " +
                         std::to_string(data_.size() - pos_));
    }
}

std::uint8_t BufferReader::u8() {
    require(1);
    return data_[pos_++];
}

std::uint16_t BufferReader::u16() {
    require(2);
    const std::uint16_t v =
        static_cast<std::uint16_t>(static_cast<std::uint16_t>(data_[pos_]) << 8 | data_[pos_ + 1]);
    pos_ += 2;
    return v;
}

std::uint32_t BufferReader::u32() {
    require(4);
    const std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) << 24 |
                            static_cast<std::uint32_t>(data_[pos_ + 1]) << 16 |
                            static_cast<std::uint32_t>(data_[pos_ + 2]) << 8 |
                            static_cast<std::uint32_t>(data_[pos_ + 3]);
    pos_ += 4;
    return v;
}

std::span<const std::uint8_t> BufferReader::bytes(std::size_t n) {
    require(n);
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
}

void BufferReader::skip(std::size_t n) {
    require(n);
    pos_ += n;
}

}  // namespace mip::net
