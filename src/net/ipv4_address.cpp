#include "net/ipv4_address.h"

#include <charconv>
#include <stdexcept>

namespace mip::net {

namespace {

/// Parses a decimal octet in [0,255]; advances @p text past it.
std::optional<std::uint8_t> parse_octet(std::string_view& text) {
    unsigned value = 0;
    const char* begin = text.data();
    const char* end = text.data() + text.size();
    auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr == begin || value > 255) {
        return std::nullopt;
    }
    // Reject leading zeros like "01" which are ambiguous (octal in some APIs).
    if (ptr - begin > 1 && *begin == '0') {
        return std::nullopt;
    }
    text.remove_prefix(static_cast<std::size_t>(ptr - begin));
    return static_cast<std::uint8_t>(value);
}

}  // namespace

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
        if (i > 0) {
            if (text.empty() || text.front() != '.') return std::nullopt;
            text.remove_prefix(1);
        }
        auto octet = parse_octet(text);
        if (!octet) return std::nullopt;
        value = value << 8 | *octet;
    }
    if (!text.empty()) return std::nullopt;
    return Ipv4Address(value);
}

Ipv4Address Ipv4Address::must_parse(std::string_view text) {
    auto addr = parse(text);
    if (!addr) {
        throw std::invalid_argument("malformed IPv4 address: " + std::string(text));
    }
    return *addr;
}

std::string Ipv4Address::to_string() const {
    std::string out;
    out.reserve(15);
    for (int shift = 24; shift >= 0; shift -= 8) {
        if (shift != 24) out.push_back('.');
        out += std::to_string((value_ >> shift) & 0xff);
    }
    return out;
}

Prefix::Prefix(Ipv4Address base, unsigned length) : length_(length) {
    if (length > 32) {
        throw std::invalid_argument("prefix length > 32");
    }
    base_ = Ipv4Address(base.value() & mask());
}

std::optional<Prefix> Prefix::parse(std::string_view text) {
    const auto slash = text.find('/');
    if (slash == std::string_view::npos) return std::nullopt;
    auto base = Ipv4Address::parse(text.substr(0, slash));
    if (!base) return std::nullopt;
    auto len_text = text.substr(slash + 1);
    unsigned len = 0;
    auto [ptr, ec] = std::from_chars(len_text.data(), len_text.data() + len_text.size(), len);
    if (ec != std::errc{} || ptr != len_text.data() + len_text.size() || len > 32) {
        return std::nullopt;
    }
    return Prefix(*base, len);
}

Prefix Prefix::must_parse(std::string_view text) {
    auto p = parse(text);
    if (!p) {
        throw std::invalid_argument("malformed IPv4 prefix: " + std::string(text));
    }
    return *p;
}

std::string Prefix::to_string() const {
    return base_.to_string() + "/" + std::to_string(length_);
}

}  // namespace mip::net
