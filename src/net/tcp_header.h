// TCP header (RFC 793) — enough of the wire format for the library's
// TCP-like reliable transport: ports, sequence/ack numbers, flags, window,
// and a pseudo-header checksum. Options are not carried (data offset 5).
#pragma once

#include <cstdint>

#include "net/buffer.h"
#include "net/ipv4_address.h"

namespace mip::net {

inline constexpr std::size_t kTcpHeaderSize = 20;

/// TCP flag bits (low byte of the flags word).
enum TcpFlags : std::uint8_t {
    kTcpFin = 0x01,
    kTcpSyn = 0x02,
    kTcpRst = 0x04,
    kTcpPsh = 0x08,
    kTcpAck = 0x10,
};

struct TcpHeader {
    std::uint16_t src_port = 0;
    std::uint16_t dst_port = 0;
    std::uint32_t seq = 0;
    std::uint32_t ack = 0;
    std::uint8_t flags = 0;
    std::uint16_t window = 65535;

    void serialize(BufferWriter& w, Ipv4Address src_ip, Ipv4Address dst_ip,
                   std::span<const std::uint8_t> payload) const;

    static TcpHeader parse(BufferReader& r, Ipv4Address src_ip, Ipv4Address dst_ip);

    bool syn() const noexcept { return flags & kTcpSyn; }
    bool ack_set() const noexcept { return flags & kTcpAck; }
    bool fin() const noexcept { return flags & kTcpFin; }
    bool rst() const noexcept { return flags & kTcpRst; }
};

}  // namespace mip::net
