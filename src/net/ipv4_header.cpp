#include "net/ipv4_header.h"

#include "net/checksum.h"

namespace mip::net {

namespace {
constexpr std::uint8_t kVersionIhl = 0x45;  // IPv4, 5 x 32-bit words, no options
constexpr std::uint16_t kFlagDf = 0x4000;
constexpr std::uint16_t kFlagMf = 0x2000;
constexpr std::uint16_t kOffsetMask = 0x1fff;
}  // namespace

void Ipv4Header::serialize(BufferWriter& w) const {
    const std::size_t start = w.size();
    w.u8(kVersionIhl);
    w.u8(tos);
    w.u16(total_length);
    w.u16(identification);
    std::uint16_t flags_offset = fragment_offset & kOffsetMask;
    if (dont_fragment) flags_offset |= kFlagDf;
    if (more_fragments) flags_offset |= kFlagMf;
    w.u16(flags_offset);
    w.u8(ttl);
    w.u8(static_cast<std::uint8_t>(protocol));
    w.u16(0);  // checksum placeholder
    w.u32(src.value());
    w.u32(dst.value());
    const std::uint16_t csum = internet_checksum(w.view().subspan(start, kIpv4HeaderSize));
    w.patch_u16(start + 10, csum);
}

Ipv4Header Ipv4Header::parse(BufferReader& r) {
    if (r.remaining() < kIpv4HeaderSize) {
        throw ParseError("IPv4 header truncated");
    }
    const auto raw = r.rest().subspan(0, kIpv4HeaderSize);
    if (internet_checksum(raw) != 0) {
        throw ParseError("IPv4 header checksum mismatch");
    }

    Ipv4Header h;
    const std::uint8_t version_ihl = r.u8();
    if (version_ihl != kVersionIhl) {
        throw ParseError("unsupported IPv4 version/IHL byte");
    }
    h.tos = r.u8();
    h.total_length = r.u16();
    h.identification = r.u16();
    const std::uint16_t flags_offset = r.u16();
    h.dont_fragment = (flags_offset & kFlagDf) != 0;
    h.more_fragments = (flags_offset & kFlagMf) != 0;
    h.fragment_offset = flags_offset & kOffsetMask;
    h.ttl = r.u8();
    h.protocol = static_cast<IpProto>(r.u8());
    r.skip(2);  // checksum, already verified over the whole header
    h.src = Ipv4Address(r.u32());
    h.dst = Ipv4Address(r.u32());
    if (h.total_length < kIpv4HeaderSize) {
        throw ParseError("IPv4 total_length shorter than header");
    }
    return h;
}

}  // namespace mip::net
