// UDP header (RFC 768) with pseudo-header checksum.
#pragma once

#include <cstdint>

#include "net/buffer.h"
#include "net/ipv4_address.h"

namespace mip::net {

inline constexpr std::size_t kUdpHeaderSize = 8;

struct UdpHeader {
    std::uint16_t src_port = 0;
    std::uint16_t dst_port = 0;
    std::uint16_t length = 0;  ///< header + payload

    /// Serializes with a checksum computed over the RFC 768 pseudo-header
    /// (src/dst IP, protocol, UDP length) plus header and payload.
    void serialize(BufferWriter& w, Ipv4Address src_ip, Ipv4Address dst_ip,
                   std::span<const std::uint8_t> payload) const;

    /// Parses and validates a datagram. @p src_ip/@p dst_ip come from the
    /// enclosing IP header (needed to re-derive the pseudo-header).
    static UdpHeader parse(BufferReader& r, Ipv4Address src_ip, Ipv4Address dst_ip);
};

}  // namespace mip::net
