// The Internet checksum (RFC 1071), used by the IPv4, ICMP, UDP and TCP
// headers in this library.
#pragma once

#include <cstdint>
#include <span>

namespace mip::net {

/// Incremental RFC 1071 checksum accumulator. Feed byte ranges (and the
/// pseudo-header for UDP/TCP), then call finish() for the one's-complement
/// fold.
class ChecksumAccumulator {
public:
    void add(std::span<const std::uint8_t> data);
    void add_u16(std::uint16_t v);
    void add_u32(std::uint32_t v);

    /// Folds carries and returns the one's complement of the sum.
    std::uint16_t finish() const noexcept;

private:
    std::uint32_t sum_ = 0;
    bool odd_ = false;  ///< true if an odd byte is pending pairing
};

/// One-shot checksum over a contiguous range.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

}  // namespace mip::net
