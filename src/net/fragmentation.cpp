#include "net/fragmentation.h"

#include <stdexcept>

namespace mip::net {

std::vector<Packet> fragment(const Packet& packet, std::size_t mtu) {
    if (packet.wire_size() <= mtu) {
        return {packet};
    }
    if (packet.header().dont_fragment) {
        throw std::invalid_argument("packet exceeds MTU and DF is set");
    }
    if (mtu < kIpv4HeaderSize + 8) {
        throw std::invalid_argument("MTU too small to fragment into");
    }

    // Payload bytes per fragment, rounded down to a multiple of 8.
    const std::size_t chunk = (mtu - kIpv4HeaderSize) & ~std::size_t{7};
    const auto payload = packet.payload();

    std::vector<Packet> out;
    std::size_t offset = 0;
    while (offset < payload.size()) {
        const std::size_t n = std::min(chunk, payload.size() - offset);
        Ipv4Header h = packet.header();
        h.fragment_offset =
            static_cast<std::uint16_t>(packet.header().fragment_offset + offset / 8);
        h.more_fragments = (offset + n < payload.size()) || packet.header().more_fragments;
        std::vector<std::uint8_t> piece(payload.begin() + static_cast<std::ptrdiff_t>(offset),
                                        payload.begin() + static_cast<std::ptrdiff_t>(offset + n));
        out.emplace_back(h, std::move(piece));
        // Every fragment continues the original datagram's journey.
        out.back().set_journey(packet.journey());
        offset += n;
    }
    return out;
}

std::optional<Packet> Reassembler::add(const Packet& fragment, std::int64_t now_ns) {
    if (!fragment.header().is_fragment()) {
        return fragment;
    }
    const auto& h = fragment.header();
    const Key key{h.src.value(), h.dst.value(), h.identification,
                  static_cast<std::uint8_t>(h.protocol)};
    Partial& p = partial_[key];
    if (p.pieces.empty()) {
        p.started_ns = now_ns;
    }
    if (p.journey == 0) {
        p.journey = fragment.journey();
    }

    const std::size_t byte_offset = std::size_t{h.fragment_offset} * 8;
    p.pieces[static_cast<std::uint16_t>(h.fragment_offset)] =
        std::vector<std::uint8_t>(fragment.payload().begin(), fragment.payload().end());
    if (h.fragment_offset == 0) {
        p.first_header = h;
        p.have_first = true;
    }
    if (!h.more_fragments) {
        p.total_payload_size = byte_offset + fragment.payload().size();
    }

    if (!p.total_payload_size || !p.have_first) {
        return std::nullopt;
    }
    // Check contiguity.
    std::size_t next = 0;
    for (const auto& [frag_offset, data] : p.pieces) {
        const std::size_t start = std::size_t{frag_offset} * 8;
        if (start != next) return std::nullopt;
        next = start + data.size();
    }
    if (next != *p.total_payload_size) {
        return std::nullopt;
    }

    std::vector<std::uint8_t> payload;
    payload.reserve(next);
    for (const auto& [frag_offset, data] : p.pieces) {
        payload.insert(payload.end(), data.begin(), data.end());
    }
    Ipv4Header out_header = p.first_header;
    out_header.more_fragments = false;
    out_header.fragment_offset = 0;
    Packet whole(out_header, std::move(payload));
    whole.set_journey(p.journey);
    partial_.erase(key);
    return whole;
}

void Reassembler::expire(std::int64_t now_ns) {
    std::erase_if(partial_, [&](const auto& kv) {
        return now_ns - kv.second.started_ns > timeout_;
    });
}

}  // namespace mip::net
