#include "net/icmp.h"

#include "net/checksum.h"

namespace mip::net {

void IcmpMessage::serialize(BufferWriter& w) const {
    const std::size_t start = w.size();
    w.u8(static_cast<std::uint8_t>(type));
    w.u8(code);
    w.u16(0);  // checksum placeholder
    w.u32(rest_of_header);
    w.bytes(body);
    const std::uint16_t csum = internet_checksum(w.view().subspan(start));
    w.patch_u16(start + 2, csum);
}

IcmpMessage IcmpMessage::parse(BufferReader& r) {
    if (r.remaining() < kIcmpHeaderSize) {
        throw ParseError("ICMP message truncated");
    }
    if (internet_checksum(r.rest()) != 0) {
        throw ParseError("ICMP checksum mismatch");
    }
    IcmpMessage m;
    m.type = static_cast<IcmpType>(r.u8());
    m.code = r.u8();
    r.skip(2);  // checksum (verified above)
    m.rest_of_header = r.u32();
    const auto rest = r.rest();
    m.body.assign(rest.begin(), rest.end());
    r.skip(rest.size());
    return m;
}

IcmpMessage IcmpMessage::care_of_advert(Ipv4Address home_address, Ipv4Address care_of) {
    IcmpMessage m;
    m.type = IcmpType::MobileCareOfAdvert;
    m.code = 0;
    m.rest_of_header = care_of.value();
    BufferWriter w;
    w.u32(home_address.value());
    m.body = w.take();
    return m;
}

Ipv4Address IcmpMessage::advertised_care_of() const {
    if (type != IcmpType::MobileCareOfAdvert) {
        throw ParseError("not a care-of advert");
    }
    return Ipv4Address(rest_of_header);
}

IcmpMessage IcmpMessage::agent_advertisement(Ipv4Address agent, Ipv4Address care_of,
                                             std::uint16_t lifetime_seconds) {
    IcmpMessage m;
    m.type = IcmpType::AgentAdvertisement;
    m.rest_of_header = agent.value();
    BufferWriter w;
    w.u32(care_of.value());
    w.u16(lifetime_seconds);
    m.body = w.take();
    return m;
}

IcmpMessage IcmpMessage::agent_solicitation() {
    IcmpMessage m;
    m.type = IcmpType::AgentSolicitation;
    return m;
}

Ipv4Address IcmpMessage::agent_address() const {
    if (type != IcmpType::AgentAdvertisement) {
        throw ParseError("not an agent advertisement");
    }
    return Ipv4Address(rest_of_header);
}

Ipv4Address IcmpMessage::agent_care_of() const {
    if (type != IcmpType::AgentAdvertisement || body.size() < 6) {
        throw ParseError("agent advertisement missing care-of address");
    }
    BufferReader r(body);
    return Ipv4Address(r.u32());
}

std::uint16_t IcmpMessage::agent_lifetime() const {
    if (type != IcmpType::AgentAdvertisement || body.size() < 6) {
        throw ParseError("agent advertisement missing lifetime");
    }
    BufferReader r(body);
    r.skip(4);
    return r.u16();
}

Ipv4Address IcmpMessage::advertised_home_address() const {
    if (type != IcmpType::MobileCareOfAdvert || body.size() < 4) {
        throw ParseError("care-of advert missing home address");
    }
    BufferReader r(body);
    return Ipv4Address(r.u32());
}

}  // namespace mip::net
