// A complete IPv4 datagram: parsed header + payload bytes.
//
// Packet is a value type. Encapsulation (IP-in-IP, GRE, minimal
// encapsulation) nests packets by serializing the inner datagram into the
// payload of the outer one, so wire sizes reported by wire_size() are the
// exact byte counts a real network would carry.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/ipv4_header.h"

namespace mip::net {

class Packet {
public:
    Packet() = default;

    /// Builds a datagram; fills in header.total_length from the payload size.
    Packet(Ipv4Header header, std::vector<std::uint8_t> payload);

    /// Parses a serialized datagram (validates header checksum and length).
    static Packet from_wire(std::span<const std::uint8_t> bytes);

    /// Serializes header (with fresh checksum) followed by payload.
    std::vector<std::uint8_t> to_wire() const;

    const Ipv4Header& header() const noexcept { return header_; }
    Ipv4Header& header() noexcept { return header_; }
    std::span<const std::uint8_t> payload() const noexcept { return payload_; }
    std::vector<std::uint8_t>&& take_payload() && noexcept { return std::move(payload_); }

    /// Exact on-the-wire size of this datagram in bytes.
    std::size_t wire_size() const noexcept { return kIpv4HeaderSize + payload_.size(); }

    /// Decrements TTL in place; returns false when the TTL is exhausted
    /// (the caller should drop the packet and may emit ICMP Time Exceeded).
    bool decrement_ttl() noexcept;

private:
    Ipv4Header header_;
    std::vector<std::uint8_t> payload_;
};

/// Convenience builder for the common case.
Packet make_packet(Ipv4Address src, Ipv4Address dst, IpProto proto,
                   std::vector<std::uint8_t> payload, std::uint8_t ttl = kDefaultTtl,
                   std::uint16_t identification = 0);

}  // namespace mip::net
