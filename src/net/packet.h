// A complete IPv4 datagram: parsed header + payload bytes.
//
// Packet is a value type. Encapsulation (IP-in-IP, GRE, minimal
// encapsulation) nests packets by serializing the inner datagram into the
// payload of the outer one, so wire sizes reported by wire_size() are the
// exact byte counts a real network would carry.
//
// Besides the wire content, a packet carries one piece of simulation
// metadata: a *journey id*. The id is assigned by the first IP stack that
// sends the datagram and is preserved across encapsulation, fragmentation
// and reassembly, so every trace event a datagram generates anywhere in
// the network can be correlated into one obs::PacketJourney. The id is
// never serialized — it travels beside the bytes (Packet::journey and
// sim::Frame::journey), exactly like a capture tool's packet number.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/ipv4_header.h"
#include "net/pool.h"

namespace mip::net {

class Packet {
public:
    Packet() = default;

    /// Builds a datagram; fills in header.total_length from the payload size.
    Packet(Ipv4Header header, std::vector<std::uint8_t> payload);

    /// Parses a serialized datagram (validates header checksum and length).
    static Packet from_wire(std::span<const std::uint8_t> bytes);

    /// Serializes header (with fresh checksum) followed by payload.
    std::vector<std::uint8_t> to_wire() const;
    /// Same, but the output vector's storage is drawn from @p pool (the
    /// caller — in practice the link layer — releases it back after use).
    std::vector<std::uint8_t> to_wire(BufferPool& pool) const;

    const Ipv4Header& header() const noexcept { return header_; }
    Ipv4Header& header() noexcept { return header_; }
    std::span<const std::uint8_t> payload() const noexcept { return payload_; }
    std::vector<std::uint8_t>&& take_payload() && noexcept { return std::move(payload_); }

    /// Exact on-the-wire size of this datagram in bytes.
    std::size_t wire_size() const noexcept { return kIpv4HeaderSize + payload_.size(); }

    /// Journey id for trace correlation (0 = not yet assigned). Not part of
    /// the wire format: from_wire() leaves it 0 and the receiving stack
    /// restores it from the carrying frame's metadata.
    std::uint64_t journey() const noexcept { return journey_; }
    void set_journey(std::uint64_t id) noexcept { journey_ = id; }

    /// Decrements TTL in place; returns false when the TTL is exhausted
    /// (the caller should drop the packet and may emit ICMP Time Exceeded).
    bool decrement_ttl() noexcept;

private:
    Ipv4Header header_;
    std::vector<std::uint8_t> payload_;
    std::uint64_t journey_ = 0;
};

/// Convenience builder for the common case.
Packet make_packet(Ipv4Address src, Ipv4Address dst, IpProto proto,
                   std::vector<std::uint8_t> payload, std::uint8_t ttl = kDefaultTtl,
                   std::uint16_t identification = 0);

}  // namespace mip::net
