// Freelist recycler for the byte vectors that carry packets through the
// simulated network (ISSUE 5: hot-path allocation reuse).
//
// Every IP datagram serialization and every per-receiver frame copy used
// to allocate a fresh std::vector and free it moments later — for a
// TCP-heavy scenario that is three heap round trips per link hop. A
// BufferPool keeps the storage of retired payload vectors and hands it
// back to the next acquire(), so steady-state traffic runs with zero
// payload allocations.
//
// One pool per Simulator (and therefore per World): the simulator is
// single-threaded, so the pool needs no locking, and parallel sweep jobs
// each recycle through their own pool — nothing is shared across worlds.
#pragma once

#include <cstdint>
#include <vector>

namespace mip::net {

class BufferPool {
public:
    /// Vectors whose capacity exceeds this are not retained on release()
    /// (a one-off jumbo buffer must not pin its storage forever).
    static constexpr std::size_t kMaxRetainedCapacity = 64 * 1024;
    /// Upper bound on freelist length; beyond it release() just frees.
    static constexpr std::size_t kMaxFreeListSize = 256;

    /// Returns an empty vector with capacity >= @p reserve: recycled
    /// storage when the freelist has any, a fresh allocation otherwise.
    std::vector<std::uint8_t> acquire(std::size_t reserve);

    /// Retires a payload vector, keeping its storage for the next
    /// acquire(). The vector is cleared; accepting a moved-from or empty
    /// vector is harmless (its capacity is simply not worth retaining).
    void release(std::vector<std::uint8_t>&& buf);

    struct Stats {
        std::uint64_t acquires = 0;   ///< total acquire() calls
        std::uint64_t reuses = 0;     ///< acquires served from the freelist
        std::uint64_t releases = 0;   ///< total release() calls
        std::uint64_t discarded = 0;  ///< releases dropped (full list / jumbo)
    };
    const Stats& stats() const noexcept { return stats_; }
    std::size_t free_count() const noexcept { return free_.size(); }

private:
    std::vector<std::vector<std::uint8_t>> free_;
    Stats stats_;
};

}  // namespace mip::net
