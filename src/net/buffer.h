// Big-endian (network byte order) buffer serialization primitives.
//
// All wire formats in this library are produced through BufferWriter and
// consumed through BufferReader so that packet sizes reported by the
// benchmarks are the exact on-the-wire sizes.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace mip::net {

/// Error thrown when a reader runs past the end of its buffer or a
/// structural invariant of a wire format is violated.
class ParseError : public std::runtime_error {
public:
    explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends big-endian scalar values and byte ranges to a growable buffer.
class BufferWriter {
public:
    BufferWriter() = default;
    explicit BufferWriter(std::size_t reserve) { buf_.reserve(reserve); }
    /// Adopts @p storage (cleared, capacity kept) as the output buffer —
    /// the hook net::BufferPool recycling plugs into: serialize into a
    /// pooled vector, take() it into a frame payload, and the link layer
    /// releases it back to the pool after delivery.
    explicit BufferWriter(std::vector<std::uint8_t> storage) : buf_(std::move(storage)) {
        buf_.clear();
    }

    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void bytes(std::span<const std::uint8_t> data);

    /// Overwrites two bytes at @p offset (used to patch checksums/lengths
    /// after the payload length is known).
    void patch_u16(std::size_t offset, std::uint16_t v);

    std::size_t size() const noexcept { return buf_.size(); }
    std::span<const std::uint8_t> view() const noexcept { return buf_; }

    /// Transfers ownership of the accumulated bytes out of the writer.
    std::vector<std::uint8_t> take() { return std::move(buf_); }

private:
    std::vector<std::uint8_t> buf_;
};

/// Reads big-endian scalar values from a non-owning byte view.
class BufferReader {
public:
    explicit BufferReader(std::span<const std::uint8_t> data) : data_(data) {}

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();

    /// Reads exactly @p n bytes, advancing the cursor.
    std::span<const std::uint8_t> bytes(std::size_t n);

    /// Skips @p n bytes.
    void skip(std::size_t n);

    std::size_t remaining() const noexcept { return data_.size() - pos_; }
    std::size_t position() const noexcept { return pos_; }

    /// Returns the unread remainder without advancing.
    std::span<const std::uint8_t> rest() const noexcept { return data_.subspan(pos_); }

private:
    void require(std::size_t n) const;

    std::span<const std::uint8_t> data_;
    std::size_t pos_ = 0;
};

}  // namespace mip::net
