#include "net/packet.h"

namespace mip::net {

Packet::Packet(Ipv4Header header, std::vector<std::uint8_t> payload)
    : header_(header), payload_(std::move(payload)) {
    header_.total_length = static_cast<std::uint16_t>(kIpv4HeaderSize + payload_.size());
}

Packet Packet::from_wire(std::span<const std::uint8_t> bytes) {
    BufferReader r(bytes);
    Ipv4Header h = Ipv4Header::parse(r);
    if (h.total_length > bytes.size()) {
        throw ParseError("IPv4 total_length exceeds captured bytes");
    }
    const std::size_t payload_len = h.total_length - kIpv4HeaderSize;
    auto payload = r.bytes(payload_len);
    Packet p;
    p.header_ = h;
    p.payload_.assign(payload.begin(), payload.end());
    return p;
}

std::vector<std::uint8_t> Packet::to_wire() const {
    BufferWriter w(wire_size());
    Ipv4Header h = header_;
    h.total_length = static_cast<std::uint16_t>(wire_size());
    h.serialize(w);
    w.bytes(payload_);
    return w.take();
}

std::vector<std::uint8_t> Packet::to_wire(BufferPool& pool) const {
    BufferWriter w(pool.acquire(wire_size()));
    Ipv4Header h = header_;
    h.total_length = static_cast<std::uint16_t>(wire_size());
    h.serialize(w);
    w.bytes(payload_);
    return w.take();
}

bool Packet::decrement_ttl() noexcept {
    if (header_.ttl <= 1) {
        header_.ttl = 0;
        return false;
    }
    --header_.ttl;
    return true;
}

Packet make_packet(Ipv4Address src, Ipv4Address dst, IpProto proto,
                   std::vector<std::uint8_t> payload, std::uint8_t ttl,
                   std::uint16_t identification) {
    Ipv4Header h;
    h.src = src;
    h.dst = dst;
    h.protocol = proto;
    h.ttl = ttl;
    h.identification = identification;
    return Packet(h, std::move(payload));
}

}  // namespace mip::net
