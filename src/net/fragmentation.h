// IPv4 fragmentation and reassembly (RFC 791 §3.2).
//
// Relevant to the paper's §3.3 "Minimize Size": if adding an encapsulation
// header pushes a packet over a link's MTU, the packet is fragmented,
// "doubling the packet count". The fig06/fig08 benches measure exactly
// this crossover.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "net/packet.h"

namespace mip::net {

/// Splits @p packet into fragments whose wire size is <= @p mtu.
/// Returns a single-element vector when no fragmentation is needed.
/// Throws std::invalid_argument if the packet has DF set and doesn't fit,
/// or if @p mtu cannot carry the header plus 8 bytes of payload.
std::vector<Packet> fragment(const Packet& packet, std::size_t mtu);

/// Reassembles fragment streams. Keyed by (src, dst, id, protocol) per
/// RFC 791. Incomplete datagrams are discarded after a timeout.
class Reassembler {
public:
    explicit Reassembler(std::int64_t timeout_ns = 30'000'000'000) : timeout_(timeout_ns) {}

    /// Adds a fragment (or passes through a complete datagram). Returns the
    /// reassembled packet once all pieces have arrived.
    std::optional<Packet> add(const Packet& fragment, std::int64_t now_ns);

    /// Drops partial datagrams older than the timeout.
    void expire(std::int64_t now_ns);

    std::size_t pending() const noexcept { return partial_.size(); }

private:
    struct Key {
        std::uint32_t src;
        std::uint32_t dst;
        std::uint16_t id;
        std::uint8_t proto;
        auto operator<=>(const Key&) const = default;
    };
    struct Partial {
        std::map<std::uint16_t, std::vector<std::uint8_t>> pieces;  ///< offset(bytes) -> data
        std::optional<std::size_t> total_payload_size;  ///< known once last fragment arrives
        Ipv4Header first_header;
        bool have_first = false;
        std::int64_t started_ns = 0;
        /// Journey id of the first fragment seen; the reassembled datagram
        /// continues that journey (all fragments share the id anyway).
        std::uint64_t journey = 0;
    };

    std::int64_t timeout_;
    std::map<Key, Partial> partial_;
};

}  // namespace mip::net
