#include "net/pool.h"

namespace mip::net {

std::vector<std::uint8_t> BufferPool::acquire(std::size_t reserve) {
    ++stats_.acquires;
    if (!free_.empty()) {
        ++stats_.reuses;
        std::vector<std::uint8_t> buf = std::move(free_.back());
        free_.pop_back();
        buf.reserve(reserve);
        return buf;
    }
    std::vector<std::uint8_t> buf;
    buf.reserve(reserve);
    return buf;
}

void BufferPool::release(std::vector<std::uint8_t>&& buf) {
    ++stats_.releases;
    if (buf.capacity() == 0 || buf.capacity() > kMaxRetainedCapacity ||
        free_.size() >= kMaxFreeListSize) {
        ++stats_.discarded;
        return;
    }
    buf.clear();
    free_.push_back(std::move(buf));
}

}  // namespace mip::net
