// ICMP messages (RFC 792), plus the experimental "mobile care-of advert"
// the paper proposes in §3.2: "when the home agent forwards a packet to the
// mobile host, it may also send an ICMP message back to the packet's source,
// informing it of the mobile host's current temporary care-of address."
#pragma once

#include <cstdint>
#include <vector>

#include "net/buffer.h"
#include "net/ipv4_address.h"

namespace mip::net {

inline constexpr std::size_t kIcmpHeaderSize = 8;

enum class IcmpType : std::uint8_t {
    EchoReply = 0,
    DestinationUnreachable = 3,
    EchoRequest = 8,
    /// Router/agent advertisement (RFC 1256, carrying the Mobile IP
    /// foreign-agent extension: the advertised care-of address).
    AgentAdvertisement = 9,
    /// Router/agent solicitation (RFC 1256): a newly attached mobile host
    /// asks any agents on the segment to advertise immediately.
    AgentSolicitation = 10,
    TimeExceeded = 11,
    // Experimental type for the paper's care-of notification mechanism.
    // Real deployments would use a reserved/experimental code point; the
    // value below sits in IANA's experimental range.
    MobileCareOfAdvert = 253,
};

/// ICMP codes for DestinationUnreachable used by the simulator's routers.
enum class IcmpUnreachableCode : std::uint8_t {
    NetUnreachable = 0,
    HostUnreachable = 1,
    CommunicationAdministrativelyProhibited = 13,  ///< packet dropped by filter
};

struct IcmpMessage {
    IcmpType type = IcmpType::EchoRequest;
    std::uint8_t code = 0;
    /// Meaning depends on type: echo id<<16|seq for echo, the advertised
    /// care-of address for MobileCareOfAdvert, unused otherwise.
    std::uint32_t rest_of_header = 0;
    /// Payload: original IP header + 8 bytes for errors; arbitrary data for
    /// echo; the mobile host's home address (4 bytes) for care-of adverts.
    std::vector<std::uint8_t> body;

    void serialize(BufferWriter& w) const;
    static IcmpMessage parse(BufferReader& r);

    /// Builds the paper's care-of notification: "mobile host @p home_address
    /// is currently reachable at care-of address @p care_of".
    static IcmpMessage care_of_advert(Ipv4Address home_address, Ipv4Address care_of);

    /// For a MobileCareOfAdvert: the advertised care-of address.
    Ipv4Address advertised_care_of() const;
    /// For a MobileCareOfAdvert: the mobile host's home address.
    Ipv4Address advertised_home_address() const;

    /// Builds a foreign agent advertisement: "I am @p agent, visitors may
    /// register through me using care-of address @p care_of" (which is
    /// normally the agent's own address). @p lifetime_seconds bounds
    /// registrations made through this agent.
    static IcmpMessage agent_advertisement(Ipv4Address agent, Ipv4Address care_of,
                                           std::uint16_t lifetime_seconds);
    static IcmpMessage agent_solicitation();

    /// For an AgentAdvertisement: the agent's address / offered care-of
    /// address / registration lifetime bound.
    Ipv4Address agent_address() const;
    Ipv4Address agent_care_of() const;
    std::uint16_t agent_lifetime() const;
};

}  // namespace mip::net
