// IANA-assigned protocol numbers and Ethernet types used throughout the
// simulator. Values match the real Internet assignments so that serialized
// packets are wire-accurate.
#pragma once

#include <cstdint>

namespace mip::net {

/// IP protocol numbers (IPv4 header "protocol" field).
enum class IpProto : std::uint8_t {
    Icmp = 1,
    IpInIp = 4,   ///< IP-in-IP encapsulation [RFC 2003 / Per96c]
    Tcp = 6,
    Udp = 17,
    Gre = 47,     ///< Generic Routing Encapsulation [RFC 1702]
    MinEnc = 55,  ///< Minimal Encapsulation [Per95]
};

/// Ethernet frame types.
enum class EtherType : std::uint16_t {
    Ipv4 = 0x0800,
    Arp = 0x0806,
};

/// Well-known UDP/TCP port numbers referenced by the paper's heuristics.
namespace ports {
inline constexpr std::uint16_t kDns = 53;
inline constexpr std::uint16_t kHttp = 80;
inline constexpr std::uint16_t kTelnet = 23;
inline constexpr std::uint16_t kMobileIpRegistration = 434;
}  // namespace ports

}  // namespace mip::net
