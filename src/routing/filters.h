// Router packet-filter policies.
//
// These model the "security-conscious boundary routers" of paper §3.1:
//
//  * SourceSpoofIngressRule — drops packets arriving from *outside* a
//    domain whose source address claims to be *inside* it (Figure 2's
//    reason that plain Mobile IP replies never reach the correspondent).
//  * ForeignSourceEgressRule — drops packets leaving a domain whose source
//    is not one of the domain's own addresses (the anti-spoofing egress
//    filter that kills Out-DH from a visited network).
//  * NoTransitRule — drops packets with neither endpoint inside the domain
//    ("most end-user networks have a policy forbidding transit traffic").
//  * FirewallRule — drops everything inbound except packets addressed to an
//    allowlist (e.g. the home agent sitting on the boundary, §3.1 last ¶).
#pragma once

#include <memory>
#include <set>
#include <string>

#include "net/ipv4_header.h"

namespace mip::routing {

enum class FilterVerdict { Accept, Drop };

class FilterRule {
public:
    virtual ~FilterRule() = default;
    virtual FilterVerdict evaluate(const net::Ipv4Header& header) const = 0;
    /// One-line description used in drop traces.
    virtual std::string describe() const = 0;
};

/// Drop packets whose *source* lies inside @p inside. Install as an ingress
/// rule on a boundary router's outside-facing interface.
class SourceSpoofIngressRule final : public FilterRule {
public:
    explicit SourceSpoofIngressRule(net::Prefix inside) : inside_(inside) {}
    FilterVerdict evaluate(const net::Ipv4Header& h) const override;
    std::string describe() const override;

private:
    net::Prefix inside_;
};

/// Drop packets whose *source* lies outside @p inside. Install as an egress
/// rule on a boundary router's outside-facing interface.
class ForeignSourceEgressRule final : public FilterRule {
public:
    explicit ForeignSourceEgressRule(net::Prefix inside) : inside_(inside) {}
    FilterVerdict evaluate(const net::Ipv4Header& h) const override;
    std::string describe() const override;

private:
    net::Prefix inside_;
};

/// Drop packets with neither source nor destination inside @p inside.
class NoTransitRule final : public FilterRule {
public:
    explicit NoTransitRule(net::Prefix inside) : inside_(inside) {}
    FilterVerdict evaluate(const net::Ipv4Header& h) const override;
    std::string describe() const override;

private:
    net::Prefix inside_;
};

/// Drop all packets except those addressed to explicitly allowed hosts.
/// Models a strict firewall whose only mobile-reachable service is the
/// home agent on the boundary.
class FirewallRule final : public FilterRule {
public:
    void allow_destination(net::Ipv4Address addr) { allowed_.insert(addr); }
    FilterVerdict evaluate(const net::Ipv4Header& h) const override;
    std::string describe() const override;

private:
    std::set<net::Ipv4Address> allowed_;
};

}  // namespace mip::routing
