// Longest-prefix-match forwarding table, shared by hosts and routers.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "net/ipv4_address.h"

namespace mip::routing {

struct RouteEntry {
    net::Prefix prefix;
    /// Next-hop gateway; unspecified means the destination is on-link
    /// (deliver directly via link-layer resolution).
    net::Ipv4Address gateway;
    /// Index of the outgoing interface in the owning stack.
    std::size_t interface_index = 0;
    /// Lower wins among equal-length prefixes.
    int metric = 0;

    bool on_link() const noexcept { return gateway.is_unspecified(); }
};

class ForwardingTable {
public:
    void add(RouteEntry entry);

    /// Removes all entries exactly matching @p prefix; returns count removed.
    std::size_t remove(const net::Prefix& prefix);

    /// Removes every entry pointing out of @p interface_index (used when an
    /// interface is deconfigured, e.g. a mobile host unplugging).
    std::size_t remove_interface(std::size_t interface_index);

    void clear() { entries_.clear(); }

    /// Longest-prefix match; ties broken by lowest metric, then insertion
    /// order. Returns nullopt when nothing (not even a default) matches.
    std::optional<RouteEntry> lookup(net::Ipv4Address dst) const;

    const std::vector<RouteEntry>& entries() const noexcept { return entries_; }

    /// Human-readable dump, one route per line (for examples and debugging).
    std::string dump() const;

private:
    std::vector<RouteEntry> entries_;
};

}  // namespace mip::routing
