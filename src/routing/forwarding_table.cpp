#include "routing/forwarding_table.h"

#include <algorithm>

namespace mip::routing {

void ForwardingTable::add(RouteEntry entry) {
    entries_.push_back(entry);
}

std::size_t ForwardingTable::remove(const net::Prefix& prefix) {
    return std::erase_if(entries_,
                         [&](const RouteEntry& e) { return e.prefix == prefix; });
}

std::size_t ForwardingTable::remove_interface(std::size_t interface_index) {
    return std::erase_if(
        entries_, [&](const RouteEntry& e) { return e.interface_index == interface_index; });
}

std::optional<RouteEntry> ForwardingTable::lookup(net::Ipv4Address dst) const {
    const RouteEntry* best = nullptr;
    for (const auto& e : entries_) {
        if (!e.prefix.contains(dst)) continue;
        if (best == nullptr || e.prefix.length() > best->prefix.length() ||
            (e.prefix.length() == best->prefix.length() && e.metric < best->metric)) {
            best = &e;
        }
    }
    if (best == nullptr) return std::nullopt;
    return *best;
}

std::string ForwardingTable::dump() const {
    std::string out;
    for (const auto& e : entries_) {
        out += e.prefix.to_string();
        out += " via ";
        out += e.on_link() ? "on-link" : e.gateway.to_string();
        out += " dev#" + std::to_string(e.interface_index);
        out += " metric " + std::to_string(e.metric);
        out += '\n';
    }
    return out;
}

}  // namespace mip::routing
