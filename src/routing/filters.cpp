#include "routing/filters.h"

namespace mip::routing {

FilterVerdict SourceSpoofIngressRule::evaluate(const net::Ipv4Header& h) const {
    return inside_.contains(h.src) ? FilterVerdict::Drop : FilterVerdict::Accept;
}

std::string SourceSpoofIngressRule::describe() const {
    return "ingress-spoof: drop src in " + inside_.to_string();
}

FilterVerdict ForeignSourceEgressRule::evaluate(const net::Ipv4Header& h) const {
    return inside_.contains(h.src) ? FilterVerdict::Accept : FilterVerdict::Drop;
}

std::string ForeignSourceEgressRule::describe() const {
    return "egress-antispoof: drop src not in " + inside_.to_string();
}

FilterVerdict NoTransitRule::evaluate(const net::Ipv4Header& h) const {
    if (inside_.contains(h.src) || inside_.contains(h.dst)) {
        return FilterVerdict::Accept;
    }
    return FilterVerdict::Drop;
}

std::string NoTransitRule::describe() const {
    return "no-transit: drop unless an endpoint is in " + inside_.to_string();
}

FilterVerdict FirewallRule::evaluate(const net::Ipv4Header& h) const {
    return allowed_.contains(h.dst) ? FilterVerdict::Accept : FilterVerdict::Drop;
}

std::string FirewallRule::describe() const {
    return "firewall: drop unless dst allowlisted (" + std::to_string(allowed_.size()) +
           " entries)";
}

}  // namespace mip::routing
