// Administrative domains: a named address block. Scenario builders use
// domains to place hosts and to derive boundary-filter rules.
#pragma once

#include <string>

#include "net/ipv4_address.h"

namespace mip::routing {

struct Domain {
    std::string name;
    net::Prefix prefix;

    bool contains(net::Ipv4Address addr) const noexcept { return prefix.contains(addr); }

    /// Allocates the @p host_index-th host address in the domain (1-based;
    /// .0 is the network address by convention).
    net::Ipv4Address host(std::uint32_t host_index) const;
};

}  // namespace mip::routing
