#include "routing/domain.h"

#include <stdexcept>

namespace mip::routing {

net::Ipv4Address Domain::host(std::uint32_t host_index) const {
    const std::uint32_t capacity =
        prefix.length() >= 31 ? 0 : (std::uint32_t{1} << (32 - prefix.length())) - 2;
    if (host_index == 0 || host_index > capacity) {
        throw std::out_of_range("host index out of range for " + prefix.to_string());
    }
    return net::Ipv4Address(prefix.base().value() + host_index);
}

}  // namespace mip::routing
