// Group mobility: members moving as a flock around a shared leader
// trajectory (ISSUE 6 — the city-scale scenario's commuter flocks).
//
// Following the INET taxonomy (SNIPPETS.md: single vs *group*,
// stochastic vs trace-based), a group model is built by superposition: a
// single leader MobilityModel carries the flock's path — a stochastic
// RandomWaypointMobility for a roaming flock, a TraceMobility for a
// trace-driven commuter line — and every member adds its own bounded
// offset. The member offset is a closed-form deterministic function of
// (member seed, t): a fixed anchor displacement plus a slow sinusoidal
// wander, with anchor + wander amplitude clamped inside max_radius_m.
// That gives the cohesion guarantee the tests assert:
//
//     distance(member(t), leader(t)) <= max_radius_m   for all t
//
// and keeps the whole flock a pure function of its seeds — sampling in
// any order, at any rate, from any thread schedule yields the same
// trajectories, preserving the simulator's bit-reproducibility rule.
#pragma once

#include <cstdint>
#include <memory>

#include "mobility/motion.h"

namespace mip::mobility {

/// One flock member: the shared leader's position plus a bounded,
/// deterministic offset. Many members share one leader model; queries
/// delegate to it, so a memoizing leader (RandomWaypointMobility)
/// extends its trajectory once for the whole flock.
class GroupMemberMobility final : public MobilityModel {
public:
    struct Config {
        /// Hard cohesion bound: the member never strays farther than
        /// this from the leader (meters, > 0).
        double max_radius_m = 50.0;
        /// Fraction of max_radius_m taken by the fixed anchor offset;
        /// the remainder bounds the wander amplitude. In [0, 1].
        double anchor_fraction = 0.6;
        /// Period of the sinusoidal wander around the anchor.
        sim::Duration wander_period = sim::seconds(30);
        /// Per-member seed: anchor angle, wander phase and amplitude are
        /// derived from it (splitmix64), so a flock built from seeds
        /// 1..N is deterministic and members are mutually distinct.
        std::uint64_t seed = 1;
    };

    GroupMemberMobility(std::shared_ptr<MobilityModel> leader, Config config);

    Position position_at(sim::TimePoint t) override;

    const Config& config() const noexcept { return config_; }
    MobilityModel& leader() noexcept { return *leader_; }

private:
    std::shared_ptr<MobilityModel> leader_;
    Config config_;
    // Derived once from the seed:
    double anchor_x_ = 0;
    double anchor_y_ = 0;
    double wander_r_ = 0;     ///< wander amplitude (<= max_radius - |anchor|)
    double wander_phase_ = 0; ///< radians
};

/// splitmix64 — the seed mixer the models above share. Exposed so the
/// metro population builder derives per-host/per-flock seeds the same
/// way the tests do.
std::uint64_t mix_seed(std::uint64_t x);

/// A uniform double in [0, 1) from a mixed seed (deterministic, no RNG
/// state; used for per-member parameter derivation).
double seed_unit(std::uint64_t mixed);

}  // namespace mip::mobility
