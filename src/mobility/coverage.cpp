#include "mobility/coverage.h"

namespace mip::mobility {

bool Region::contains(Position p) const noexcept {
    switch (kind_) {
        case Kind::Rect:
            return p.x >= a_ && p.y >= b_ && p.x <= c_ && p.y <= d_;
        case Kind::Disc: {
            const double dx = p.x - a_;
            const double dy = p.y - b_;
            return dx * dx + dy * dy <= c_ * c_;
        }
    }
    return false;
}

const CoverageCell* CoverageMap::best_at(Position p) const {
    const CoverageCell* best = nullptr;
    for (const CoverageCell& cell : cells_) {
        if (!cell.region.contains(p)) continue;
        if (best == nullptr || cell.priority > best->priority) best = &cell;
    }
    return best;
}

std::vector<const CoverageCell*> CoverageMap::cells_at(Position p) const {
    std::vector<const CoverageCell*> hits;
    for (const CoverageCell& cell : cells_) {
        if (cell.region.contains(p)) hits.push_back(&cell);
    }
    return hits;
}

const CoverageCell* CoverageMap::find(std::string_view name) const {
    for (const CoverageCell& cell : cells_) {
        if (cell.name == name) return &cell;
    }
    return nullptr;
}

}  // namespace mip::mobility
