// The automatic handoff controller.
//
// Samples a MobilityModel on simulator events, matches the position
// against a CoverageMap, and drives the mobile host's attach operations —
// replacing the scripted "attach_foreign() at t" calls of the early tests
// with motion-driven handoffs. Cell-edge ping-pong is suppressed with a
// dwell-time hysteresis: a new best cell must stay best for a full dwell
// interval before the controller commits the move. Registrations that fail
// are re-issued with backoff, and every handoff's detection latency,
// registration latency and gap loss land in HandoffStats.
//
// The controller is deliberately decoupled from core::MobileHost: it
// drives the small Attachable interface below, so the mobility library
// sits beside the link layer rather than on top of the Mobile IP core.
// core::World::with_mobility() supplies the MobileHost adapter.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mobility/coverage.h"
#include "mobility/motion.h"
#include "sim/simulator.h"

namespace mip::mobility {

/// What the controller needs from a host: the four attach transitions.
///
/// Contract (what core::World's MobileHost adapter guarantees, and what
/// any other implementation must honour):
///  - Calls arrive strictly sequentially from the controller, but a new
///    attach_* may arrive while a previous one's registration is still
///    in flight — the implementation must abandon the old attempt. The
///    old @p done may still fire late; the controller's epoch counter
///    discards such stale invocations, so implementations need not
///    suppress them.
///  - @p done is invoked at most once, with `accepted` reporting the
///    registration outcome, at the simulated time it completed. It may
///    fire synchronously, before attach_* returns.
///  - detach() severs link connectivity immediately (dead zone); it must
///    be safe to call when not attached.
///  - attach_home() is synchronous: connectivity exists on return.
class Attachable {
public:
    using Done = std::function<void(bool accepted)>;
    virtual ~Attachable() = default;
    /// Plugs into the home segment (no registration round trip).
    virtual void attach_home(const CoverageCell& cell) = 0;
    /// Plugs into @p cell's segment with the cell's co-located care-of
    /// address and registers with the home agent.
    virtual void attach_foreign(const CoverageCell& cell, Done done) = 0;
    /// Joins @p cell's segment through its foreign agent (solicitation,
    /// relayed registration).
    virtual void attach_via_agent(const CoverageCell& cell, Done done) = 0;
    /// Leaves the current segment; the host has no connectivity until
    /// the next attach_* call.
    virtual void detach() = 0;
};

struct HandoffConfig {
    /// How often the position is sampled against the coverage map.
    sim::Duration sample_interval = sim::milliseconds(100);
    /// Hysteresis: a new best cell must stay best this long before the
    /// controller commits the handoff (0 = switch on the first sample).
    /// The journey's first association is always immediate.
    sim::Duration dwell_time = sim::milliseconds(300);
    /// Backoff before re-issuing an attach whose registration failed.
    sim::Duration retry_backoff = sim::seconds(1);
    /// Optional monotone counter sampled when a connectivity gap opens and
    /// when it closes; the difference is a handoff's packets_lost_in_gap.
    /// World::with_mobility wires this to the home agent's tunneled-packet
    /// counter — packets the agent forwarded toward a stale care-of
    /// address while the host was between attachments.
    std::function<std::size_t()> gap_loss_probe;
};

struct HandoffRecord {
    std::string from;  ///< previous cell, "(start)" or "(dead zone)"
    std::string to;
    bool initial = false;  ///< the journey's first association, not a handoff
    bool success = false;  ///< false: superseded by a later move, or retries exhausted
    unsigned attach_attempts = 0;
    sim::TimePoint detected_at = 0;   ///< first sample seeing the new cell as best
    sim::TimePoint committed_at = 0;  ///< dwell passed, attach issued
    sim::TimePoint completed_at = 0;  ///< registration (or home attach) done
    /// Packets the gap-loss probe counted between losing the previous
    /// attachment (which may include a dead-zone crossing) and this
    /// attach completing.
    std::size_t packets_lost_in_gap = 0;

    sim::Duration detection_latency() const { return committed_at - detected_at; }
    sim::Duration registration_latency() const { return completed_at - committed_at; }
};

/// The controller's accumulated measurements. Returned by reference from
/// HandoffController::stats() and never reset by the controller; counters
/// only grow, and records are appended in commit order (one per attach
/// the controller issued, including the initial association and failed
/// attempts). World::with_mobility additionally publishes the aggregate
/// accessors below as ("mobile-host", "handoff", ...) gauges in the
/// metrics registry, so snapshots and this struct cannot disagree.
struct HandoffStats {
    std::vector<HandoffRecord> records;
    /// Candidate cells abandoned before the dwell time elapsed — each one
    /// is a ping-pong handoff the hysteresis suppressed.
    std::size_t suppressed_flaps = 0;
    /// Samples that found no covering cell after having coverage before —
    /// each entry is one detach into a dead zone.
    std::size_t dead_zone_entries = 0;
    /// Registration failures the controller answered with a backoff retry.
    std::size_t failed_attaches = 0;
    /// Re-attaches forced by notify_connectivity_lost() (fault-induced
    /// detaches, not motion).
    std::size_t forced_reattaches = 0;

    /// Completed cell-to-cell moves (successful, non-initial records).
    std::size_t handoff_count() const;
    double avg_registration_ms() const;  ///< over successful records
    std::size_t total_gap_loss() const;
};

class HandoffController {
public:
    /// @p map must be fully populated; the controller takes its own copy.
    /// @p host and @p model must outlive the controller.
    HandoffController(sim::Simulator& simulator, Attachable& host, MobilityModel& model,
                      CoverageMap map, HandoffConfig config = {});
    ~HandoffController();
    HandoffController(const HandoffController&) = delete;
    HandoffController& operator=(const HandoffController&) = delete;

    /// Begins sampling (first sample fires immediately). The first cell
    /// the position lands in is attached without dwell.
    void start();
    void stop();
    bool running() const noexcept { return running_; }

    /// Tells the controller its current attachment silently died (link
    /// flap, agent crash — anything the coverage map can't see, since the
    /// position never moved). The controller abandons any in-flight
    /// registration or pending retry for that attachment (epoch bump, so
    /// nothing stale fires later) and immediately re-issues the attach to
    /// the current cell. No-op while stopped or unattached.
    void notify_connectivity_lost();

    Position position() { return model_.position_at(sim_.now()); }
    /// Cell of the current (possibly still-registering) attachment;
    /// nullptr while unattached or in a dead zone.
    const CoverageCell* current_cell() const noexcept { return current_; }
    const CoverageMap& map() const noexcept { return map_; }
    const HandoffStats& stats() const noexcept { return stats_; }

private:
    void on_sample();
    void evaluate(const CoverageCell* best);
    void commit(const CoverageCell* cell, sim::TimePoint detected_at);
    void issue_attach(const CoverageCell& cell);
    void on_attach_result(std::uint64_t epoch, bool accepted);
    void close_record(bool success);
    std::size_t probe() const {
        return config_.gap_loss_probe ? config_.gap_loss_probe() : 0;
    }

    sim::Simulator& sim_;
    Attachable& host_;
    MobilityModel& model_;
    CoverageMap map_;
    HandoffConfig config_;

    bool running_ = false;
    sim::EventId sample_timer_ = 0;
    bool sample_timer_armed_ = false;
    /// The backoff retry after a failed attach. Tracked so a commit, stop
    /// or forced re-attach can cancel it instead of leaving an orphaned
    /// event in the queue (the epoch check makes a stale one harmless, but
    /// each leak grows the simulator's queue and cancellation backlog).
    sim::EventId retry_timer_ = 0;
    bool retry_timer_armed_ = false;

    const CoverageCell* current_ = nullptr;
    bool attached_once_ = false;

    bool has_candidate_ = false;
    const CoverageCell* candidate_ = nullptr;  ///< nullptr = dead zone candidate
    sim::TimePoint candidate_since_ = 0;

    /// Bumped on every commit; in-flight attach callbacks and retry timers
    /// from a superseded attachment compare epochs and drop themselves.
    std::uint64_t attach_epoch_ = 0;

    bool record_open_ = false;
    HandoffRecord pending_;
    bool gap_open_ = false;
    std::size_t gap_loss_at_open_ = 0;

    HandoffStats stats_;
};

}  // namespace mip::mobility
