// Physical motion models: simulated time -> 2-D position (meters).
//
// Every model is a deterministic function of its configuration (and seed):
// sampling the same model at the same instants always yields the same
// trajectory. This preserves the simulator's bit-reproducibility invariant
// — the same rule sim/link.h applies to random frame loss — so a fixed
// seed implies a bit-identical handoff sequence for a whole run.
#pragma once

#include <cstdint>
#include <optional>
#include <random>
#include <vector>

#include "sim/time.h"

namespace mip::mobility {

/// A point in the simulation plane, in meters.
struct Position {
    double x = 0;
    double y = 0;
    friend bool operator==(const Position&, const Position&) = default;
};

/// Euclidean distance in meters.
double distance(Position a, Position b);

class MobilityModel {
public:
    virtual ~MobilityModel() = default;
    /// Position at absolute simulated time @p t. Queries may arrive in any
    /// order; the answer for a given t never changes.
    virtual Position position_at(sim::TimePoint t) = 0;
};

/// Constant-velocity straight-line motion from a starting point.
class LinearMobility final : public MobilityModel {
public:
    LinearMobility(Position start, double vx_mps, double vy_mps)
        : start_(start), vx_(vx_mps), vy_(vy_mps) {}

    Position position_at(sim::TimePoint t) override;

private:
    Position start_;
    double vx_;
    double vy_;
};

/// Scripted waypoints with linear interpolation between them. The position
/// holds at the first waypoint before its time and at the last waypoint
/// forever after. A trace that sits on the home segment until t and then
/// rides to a foreign cell reproduces the old hard-coded
/// "attach_foreign at t" tests as a degenerate motion.
class TraceMobility final : public MobilityModel {
public:
    struct Waypoint {
        sim::TimePoint at = 0;
        Position pos;
    };

    /// @p waypoints must be non-empty and sorted by time (throws otherwise).
    explicit TraceMobility(std::vector<Waypoint> waypoints);

    Position position_at(sim::TimePoint t) override;

private:
    std::vector<Waypoint> waypoints_;
};

/// The classic random-waypoint model: pick a uniform destination inside the
/// bounding box, travel there at a uniform-random speed, pause, repeat.
/// Legs are generated lazily from a per-model seeded PRNG and memoized, so
/// the whole trajectory is a pure function of the configuration.
class RandomWaypointMobility final : public MobilityModel {
public:
    struct Config {
        double min_x = 0, min_y = 0;
        double max_x = 1000, max_y = 1000;
        double min_speed_mps = 1.0;
        double max_speed_mps = 20.0;
        /// Rest time at each waypoint before departing for the next.
        sim::Duration pause = sim::seconds(0);
        /// Starting position; defaults to the center of the box.
        std::optional<Position> start;
        std::uint64_t seed = 1;
    };

    explicit RandomWaypointMobility(Config config);

    Position position_at(sim::TimePoint t) override;

private:
    struct Leg {
        sim::TimePoint depart = 0;
        Position from, to;
        sim::TimePoint arrive = 0;       ///< depart + travel time
        sim::TimePoint pause_until = 0;  ///< arrive + pause
    };

    /// Draws legs from the PRNG until the memoized trajectory covers @p t.
    void extend_until(sim::TimePoint t);

    Config config_;
    std::mt19937_64 rng_;
    std::vector<Leg> legs_;
    std::size_t hint_ = 0;  ///< leg index the previous query resolved to
};

}  // namespace mip::mobility
