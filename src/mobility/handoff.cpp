#include "mobility/handoff.h"

namespace mip::mobility {

// ---- HandoffStats -----------------------------------------------------------

std::size_t HandoffStats::handoff_count() const {
    std::size_t n = 0;
    for (const HandoffRecord& r : records) {
        if (r.success && !r.initial) ++n;
    }
    return n;
}

double HandoffStats::avg_registration_ms() const {
    double total = 0;
    std::size_t n = 0;
    for (const HandoffRecord& r : records) {
        if (!r.success) continue;
        total += sim::to_milliseconds(r.registration_latency());
        ++n;
    }
    return n > 0 ? total / static_cast<double>(n) : 0.0;
}

std::size_t HandoffStats::total_gap_loss() const {
    std::size_t total = 0;
    for (const HandoffRecord& r : records) total += r.packets_lost_in_gap;
    return total;
}

// ---- HandoffController ------------------------------------------------------

HandoffController::HandoffController(sim::Simulator& simulator, Attachable& host,
                                     MobilityModel& model, CoverageMap map,
                                     HandoffConfig config)
    : sim_(simulator),
      host_(host),
      model_(model),
      map_(std::move(map)),
      config_(std::move(config)) {}

HandoffController::~HandoffController() { stop(); }

void HandoffController::start() {
    if (running_) return;
    running_ = true;
    sample_timer_ = sim_.schedule_in(0, [this] { on_sample(); }, "handoff-sample");
    sample_timer_armed_ = true;
}

void HandoffController::stop() {
    if (!running_) return;
    running_ = false;
    if (sample_timer_armed_) {
        sim_.cancel(sample_timer_);
        sample_timer_armed_ = false;
    }
    if (retry_timer_armed_) {
        sim_.cancel(retry_timer_);
        retry_timer_armed_ = false;
    }
    // Orphan any in-flight attach callback.
    ++attach_epoch_;
}

void HandoffController::notify_connectivity_lost() {
    if (!running_ || current_ == nullptr) return;
    ++stats_.forced_reattaches;
    // Abandon whatever the dead attachment still had in flight.
    ++attach_epoch_;
    if (retry_timer_armed_) {
        sim_.cancel(retry_timer_);
        retry_timer_armed_ = false;
    }
    if (record_open_) {
        close_record(false);
    }
    if (!gap_open_) {
        gap_open_ = true;
        gap_loss_at_open_ = probe();
    }
    pending_ = HandoffRecord{};
    pending_.from = current_->name;
    pending_.to = current_->name;
    pending_.detected_at = sim_.now();
    pending_.committed_at = sim_.now();
    record_open_ = true;
    issue_attach(*current_);
}

void HandoffController::on_sample() {
    sample_timer_armed_ = false;
    if (!running_) return;
    evaluate(map_.best_at(model_.position_at(sim_.now())));
    sample_timer_ = sim_.schedule_in(config_.sample_interval, [this] { on_sample(); },
                                     "handoff-sample");
    sample_timer_armed_ = true;
}

void HandoffController::evaluate(const CoverageCell* best) {
    if (best == current_) {
        // Back inside the current cell: any pending move was edge noise.
        if (has_candidate_) {
            ++stats_.suppressed_flaps;
            has_candidate_ = false;
        }
        return;
    }
    if (!has_candidate_ || candidate_ != best) {
        if (has_candidate_) ++stats_.suppressed_flaps;
        has_candidate_ = true;
        candidate_ = best;
        candidate_since_ = sim_.now();
    }
    // The first association of the journey is immediate — there is nothing
    // to ping-pong away from yet.
    if (!attached_once_ || sim_.now() - candidate_since_ >= config_.dwell_time) {
        commit(candidate_, candidate_since_);
    }
}

void HandoffController::commit(const CoverageCell* cell, sim::TimePoint detected_at) {
    has_candidate_ = false;
    ++attach_epoch_;
    if (retry_timer_armed_) {
        // A pending backoff retry belongs to the attachment this move
        // supersedes; without the cancel it would sit in the queue as an
        // orphan (and with enough flaps, thousands of them).
        sim_.cancel(retry_timer_);
        retry_timer_armed_ = false;
    }
    if (record_open_) {
        close_record(false);  // superseded mid-registration by this move
    }
    const std::string from = current_ != nullptr ? current_->name
                             : attached_once_   ? "(dead zone)"
                                                : "(start)";
    // The old attachment is gone the moment we commit (the NIC leaves its
    // segment); the gap stays open across dead zones until an attach
    // completes, so the loss of a whole outage lands on the handoff that
    // ends it.
    if (!gap_open_) {
        gap_open_ = true;
        gap_loss_at_open_ = probe();
    }
    if (cell == nullptr) {
        ++stats_.dead_zone_entries;
        host_.detach();
        current_ = nullptr;
        return;
    }
    pending_ = HandoffRecord{};
    pending_.from = from;
    pending_.to = cell->name;
    pending_.initial = !attached_once_;
    pending_.detected_at = detected_at;
    pending_.committed_at = sim_.now();
    record_open_ = true;
    current_ = cell;
    attached_once_ = true;
    issue_attach(*cell);
}

void HandoffController::issue_attach(const CoverageCell& cell) {
    ++pending_.attach_attempts;
    const std::uint64_t epoch = attach_epoch_;
    switch (cell.kind) {
        case AttachKind::Home:
            host_.attach_home(cell);
            close_record(true);  // synchronous: no registration round trip
            break;
        case AttachKind::Foreign:
            host_.attach_foreign(cell,
                                 [this, epoch](bool ok) { on_attach_result(epoch, ok); });
            break;
        case AttachKind::ForeignAgent:
            host_.attach_via_agent(cell,
                                   [this, epoch](bool ok) { on_attach_result(epoch, ok); });
            break;
    }
}

void HandoffController::on_attach_result(std::uint64_t epoch, bool accepted) {
    if (epoch != attach_epoch_ || !running_) return;  // superseded or stopped
    if (accepted) {
        close_record(true);
        return;
    }
    ++stats_.failed_attaches;
    retry_timer_ = sim_.schedule_in(
        config_.retry_backoff,
        [this, epoch] {
            retry_timer_armed_ = false;
            if (epoch != attach_epoch_ || !running_ || current_ == nullptr) return;
            issue_attach(*current_);
        },
        "handoff-retry");
    retry_timer_armed_ = true;
}

void HandoffController::close_record(bool success) {
    pending_.success = success;
    pending_.completed_at = sim_.now();
    if (success && gap_open_) {
        pending_.packets_lost_in_gap = probe() - gap_loss_at_open_;
        gap_open_ = false;
    }
    stats_.records.push_back(pending_);
    record_open_ = false;
}

}  // namespace mip::mobility
