#include "mobility/motion.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mip::mobility {

double distance(Position a, Position b) {
    return std::hypot(a.x - b.x, a.y - b.y);
}

// ---- LinearMobility ---------------------------------------------------------

Position LinearMobility::position_at(sim::TimePoint t) {
    const double secs = sim::to_seconds(t);
    return {start_.x + vx_ * secs, start_.y + vy_ * secs};
}

// ---- TraceMobility ----------------------------------------------------------

TraceMobility::TraceMobility(std::vector<Waypoint> waypoints)
    : waypoints_(std::move(waypoints)) {
    if (waypoints_.empty()) {
        throw std::invalid_argument("TraceMobility needs at least one waypoint");
    }
    for (std::size_t i = 1; i < waypoints_.size(); ++i) {
        if (waypoints_[i].at < waypoints_[i - 1].at) {
            throw std::invalid_argument("TraceMobility waypoints must be time-sorted");
        }
    }
}

Position TraceMobility::position_at(sim::TimePoint t) {
    if (t <= waypoints_.front().at) return waypoints_.front().pos;
    if (t >= waypoints_.back().at) return waypoints_.back().pos;
    const auto after = std::upper_bound(
        waypoints_.begin(), waypoints_.end(), t,
        [](sim::TimePoint when, const Waypoint& w) { return when < w.at; });
    const Waypoint& b = *after;
    const Waypoint& a = *(after - 1);
    if (b.at == a.at) return b.pos;  // instantaneous jump: land on the later one
    const double f = static_cast<double>(t - a.at) / static_cast<double>(b.at - a.at);
    return {a.pos.x + (b.pos.x - a.pos.x) * f, a.pos.y + (b.pos.y - a.pos.y) * f};
}

// ---- RandomWaypointMobility -------------------------------------------------

RandomWaypointMobility::RandomWaypointMobility(Config config)
    : config_(config), rng_(config.seed) {
    if (config_.max_x < config_.min_x || config_.max_y < config_.min_y) {
        throw std::invalid_argument("RandomWaypointMobility: inverted bounding box");
    }
    if (config_.min_speed_mps <= 0 || config_.max_speed_mps < config_.min_speed_mps) {
        throw std::invalid_argument("RandomWaypointMobility: bad speed range");
    }
    if (!config_.start) {
        config_.start = Position{(config_.min_x + config_.max_x) / 2,
                                 (config_.min_y + config_.max_y) / 2};
    }
}

void RandomWaypointMobility::extend_until(sim::TimePoint t) {
    std::uniform_real_distribution<double> x_dist(config_.min_x, config_.max_x);
    std::uniform_real_distribution<double> y_dist(config_.min_y, config_.max_y);
    std::uniform_real_distribution<double> speed_dist(config_.min_speed_mps,
                                                      config_.max_speed_mps);
    while (legs_.empty() || legs_.back().pause_until <= t) {
        Leg leg;
        leg.depart = legs_.empty() ? 0 : legs_.back().pause_until;
        leg.from = legs_.empty() ? *config_.start : legs_.back().to;
        leg.to = {x_dist(rng_), y_dist(rng_)};
        const double speed = speed_dist(rng_);
        const double travel_s = distance(leg.from, leg.to) / speed;
        // A waypoint drawn on top of the current position would produce a
        // zero-duration leg; clamp so lazy extension always makes progress.
        const sim::Duration travel =
            std::max<sim::Duration>(sim::milliseconds(1),
                                    static_cast<sim::Duration>(std::llround(travel_s * 1e9)));
        leg.arrive = leg.depart + travel;
        leg.pause_until = leg.arrive + config_.pause;
        legs_.push_back(leg);
    }
}

Position RandomWaypointMobility::position_at(sim::TimePoint t) {
    if (t < 0) t = 0;
    extend_until(t);
    if (hint_ >= legs_.size() || legs_[hint_].depart > t) {
        hint_ = 0;  // non-monotone query: rescan from the beginning
    }
    while (legs_[hint_].pause_until <= t && hint_ + 1 < legs_.size()) {
        ++hint_;
    }
    const Leg& leg = legs_[hint_];
    if (t >= leg.arrive) return leg.to;  // pausing at the waypoint
    if (t <= leg.depart) return leg.from;
    const double f = static_cast<double>(t - leg.depart) /
                     static_cast<double>(leg.arrive - leg.depart);
    return {leg.from.x + (leg.to.x - leg.from.x) * f,
            leg.from.y + (leg.to.y - leg.from.y) * f};
}

}  // namespace mip::mobility
