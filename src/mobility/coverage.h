// Radio coverage: 2-D regions bound to link segments.
//
// A CoverageCell says "while the mobile host is physically inside this
// region, the segment @p link is within radio range, and joining it means
// attaching as @p kind". Overlapping cells model overlapping coverage —
// the paper's Figure 1–5 topologies become a strip of cells, one per
// subnet, with overlap (or dead gaps) at the seams. Positions covered by
// no cell are dead zones: the radio has nothing to associate with.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "mobility/motion.h"
#include "net/ipv4_address.h"
#include "sim/link.h"

namespace mip::mobility {

/// An axis-aligned rectangle or a disc, in meters. Boundaries inclusive.
class Region {
public:
    static Region rect(double min_x, double min_y, double max_x, double max_y) {
        return Region{Kind::Rect, min_x, min_y, max_x, max_y};
    }
    static Region disc(Position center, double radius) {
        return Region{Kind::Disc, center.x, center.y, radius, 0};
    }

    bool contains(Position p) const noexcept;

private:
    enum class Kind { Rect, Disc };
    Region(Kind kind, double a, double b, double c, double d)
        : kind_(kind), a_(a), b_(b), c_(c), d_(d) {}

    Kind kind_;
    double a_, b_, c_, d_;  ///< rect: min_x/min_y/max_x/max_y; disc: cx/cy/r
};

/// How the mobile host joins the cell's segment on entry.
enum class AttachKind {
    Home,          ///< the home LAN: attach_home (deregisters if needed)
    Foreign,       ///< co-located care-of address: attach_foreign + register
    ForeignAgent,  ///< register through the segment's foreign agent
};

struct CoverageCell {
    std::string name;
    Region region = Region::rect(0, 0, 0, 0);
    AttachKind kind = AttachKind::Foreign;
    /// The segment within radio range inside this region.
    sim::Link* link = nullptr;
    /// Foreign cells: the co-located care-of address to adopt and its subnet.
    net::Ipv4Address care_of;
    net::Prefix subnet;
    std::optional<net::Ipv4Address> gateway;
    /// Overlap resolution: higher wins; ties go to the earlier-added cell.
    int priority = 0;
};

/// The cells of a scenario. Populate fully before handing the map to a
/// HandoffController — lookups return pointers into the cell vector.
class CoverageMap {
public:
    CoverageMap& add(CoverageCell cell) {
        cells_.push_back(std::move(cell));
        return *this;
    }

    /// The cell the radio associates with at @p p: highest priority among
    /// the containing cells, earliest added on ties. nullptr = dead zone.
    const CoverageCell* best_at(Position p) const;

    /// All cells containing @p p, in insertion order.
    std::vector<const CoverageCell*> cells_at(Position p) const;

    const CoverageCell* find(std::string_view name) const;
    const std::vector<CoverageCell>& cells() const noexcept { return cells_; }

private:
    std::vector<CoverageCell> cells_;
};

}  // namespace mip::mobility
