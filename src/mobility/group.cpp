#include "mobility/group.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace mip::mobility {

std::uint64_t mix_seed(std::uint64_t x) {
    // splitmix64 finalizer: cheap, stateless, and good enough to make
    // adjacent member indices land far apart in parameter space.
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

double seed_unit(std::uint64_t mixed) {
    // Top 53 bits -> [0, 1); exact in a double.
    return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

GroupMemberMobility::GroupMemberMobility(std::shared_ptr<MobilityModel> leader,
                                         Config config)
    : leader_(std::move(leader)), config_(config) {
    if (!leader_) {
        throw std::invalid_argument("GroupMemberMobility needs a leader model");
    }
    if (config_.max_radius_m <= 0) {
        throw std::invalid_argument("GroupMemberMobility: max_radius_m must be > 0");
    }
    if (config_.anchor_fraction < 0 || config_.anchor_fraction > 1) {
        throw std::invalid_argument("GroupMemberMobility: anchor_fraction outside [0,1]");
    }
    if (config_.wander_period <= 0) {
        throw std::invalid_argument("GroupMemberMobility: wander_period must be > 0");
    }
    const std::uint64_t m0 = mix_seed(config_.seed);
    const std::uint64_t m1 = mix_seed(m0);
    const std::uint64_t m2 = mix_seed(m1);
    const std::uint64_t m3 = mix_seed(m2);
    const double anchor_r = config_.max_radius_m * config_.anchor_fraction *
                            seed_unit(m0);
    const double anchor_theta = 2 * std::numbers::pi * seed_unit(m1);
    anchor_x_ = anchor_r * std::cos(anchor_theta);
    anchor_y_ = anchor_r * std::sin(anchor_theta);
    // Whatever the anchor left unused of the radius budget bounds the
    // wander, so |anchor| + wander_r <= max_radius_m by construction.
    wander_r_ = (config_.max_radius_m - anchor_r) * seed_unit(m2);
    wander_phase_ = 2 * std::numbers::pi * seed_unit(m3);
}

Position GroupMemberMobility::position_at(sim::TimePoint t) {
    const Position lead = leader_->position_at(t);
    const double omega =
        2 * std::numbers::pi / sim::to_seconds(config_.wander_period);
    const double phase = omega * sim::to_seconds(t) + wander_phase_;
    // A circular orbit around the anchor point: |offset| <=
    // |anchor| + wander_r <= max_radius_m for every t — the cohesion bound.
    return {lead.x + anchor_x_ + wander_r_ * std::cos(phase),
            lead.y + anchor_y_ + wander_r_ * std::sin(phase)};
}

}  // namespace mip::mobility
