// Authoritative DNS server bound to UDP port 53 of a host's stack.
#pragma once

#include <memory>

#include "dns/message.h"
#include "dns/zone.h"
#include "transport/udp_service.h"

namespace mip::dns {

class DnsServer {
public:
    /// Serves @p zone on port 53 of @p udp's stack. The zone is referenced,
    /// not owned, so scenario code can mutate it directly.
    DnsServer(transport::UdpService& udp, Zone& zone);

    Zone& zone() noexcept { return zone_; }

    std::size_t queries_served() const noexcept { return queries_served_; }
    std::size_t updates_applied() const noexcept { return updates_applied_; }

private:
    void on_datagram(std::span<const std::uint8_t> data, transport::UdpEndpoint from);
    Message handle(const Message& request);

    Zone& zone_;
    std::unique_ptr<transport::UdpSocket> socket_;
    std::size_t queries_served_ = 0;
    std::size_t updates_applied_ = 0;
};

}  // namespace mip::dns
