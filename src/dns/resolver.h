// Stub resolver with a TTL cache.
//
// Per the paper (§5, Row D motivation), DNS lookups are short connectionless
// transactions that "may also be usefully performed" without Mobile IP, so
// the resolver can optionally bind its queries to a specific (temporary)
// source address — the Out-DT path.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dns/message.h"
#include "transport/udp_service.h"

namespace mip::dns {

struct ResolverConfig {
    sim::Duration timeout = sim::seconds(2);
    unsigned max_retries = 2;
    /// Source address to bind queries to (unspecified = policy decides).
    net::Ipv4Address bind_source;
};

class Resolver {
public:
    using Callback = std::function<void(std::vector<Record>)>;  ///< empty on failure

    Resolver(transport::UdpService& udp, net::Ipv4Address server, ResolverConfig config = {});

    /// Looks up (name, type), serving from cache when fresh.
    void resolve(const std::string& name, RecordType type, Callback cb);

    /// Sends a dynamic update installing @p record.
    void send_update(Record record);
    /// Sends a dynamic update deleting (name, type).
    void send_removal(std::string name, RecordType type);

    void flush_cache() { cache_.clear(); }
    std::size_t cache_hits() const noexcept { return cache_hits_; }
    std::size_t queries_sent() const noexcept { return queries_sent_; }

private:
    struct CacheEntry {
        std::vector<Record> records;
        sim::TimePoint expires;
    };
    struct Outstanding {
        std::string name;
        RecordType type = RecordType::A;
        std::vector<Callback> callbacks;
        unsigned attempts = 0;
        sim::EventId timeout_event = 0;
    };

    void transmit(std::uint16_t id, const Outstanding& q);
    void on_timeout(std::uint16_t id);
    void on_datagram(std::span<const std::uint8_t> data);

    transport::UdpService& udp_;
    net::Ipv4Address server_;
    ResolverConfig config_;
    std::unique_ptr<transport::UdpSocket> socket_;
    std::map<std::pair<std::string, RecordType>, CacheEntry> cache_;
    std::map<std::uint16_t, Outstanding> outstanding_;
    std::uint16_t next_id_ = 1;
    std::size_t cache_hits_ = 0;
    std::size_t queries_sent_ = 0;
};

}  // namespace mip::dns
