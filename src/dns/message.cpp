#include "dns/message.h"

namespace mip::dns {

namespace {
constexpr std::uint16_t kClassIn = 1;
constexpr std::uint16_t kFlagResponse = 0x8000;
/// RDLENGTH 0 in an update answer means "delete records of this name/type".
constexpr std::uint32_t kDeleteSentinelTtl = 0;
}  // namespace

void write_name(net::BufferWriter& w, const std::string& name) {
    std::size_t start = 0;
    while (start <= name.size()) {
        std::size_t dot = name.find('.', start);
        if (dot == std::string::npos) dot = name.size();
        const std::size_t len = dot - start;
        if (len > 63) {
            throw net::ParseError("DNS label longer than 63 bytes");
        }
        if (len > 0) {
            w.u8(static_cast<std::uint8_t>(len));
            w.bytes(std::span<const std::uint8_t>(
                reinterpret_cast<const std::uint8_t*>(name.data()) + start, len));
        }
        start = dot + 1;
    }
    w.u8(0);  // root label
}

std::string read_name(net::BufferReader& r) {
    std::string name;
    for (;;) {
        const std::uint8_t len = r.u8();
        if (len == 0) break;
        if (len > 63) {
            throw net::ParseError("DNS compression/extended labels unsupported");
        }
        if (!name.empty()) name.push_back('.');
        const auto label = r.bytes(len);
        name.append(reinterpret_cast<const char*>(label.data()), label.size());
    }
    return name;
}

void Message::serialize(net::BufferWriter& w) const {
    w.u16(id);
    std::uint16_t flags = 0;
    if (is_response) flags |= kFlagResponse;
    flags |= static_cast<std::uint16_t>(static_cast<std::uint16_t>(opcode) << 11);
    flags |= static_cast<std::uint16_t>(rcode) & 0x0f;
    w.u16(flags);
    w.u16(static_cast<std::uint16_t>(questions.size()));
    w.u16(static_cast<std::uint16_t>(answers.size()));
    w.u16(0);  // authority
    w.u16(0);  // additional
    for (const auto& q : questions) {
        write_name(w, q.name);
        w.u16(static_cast<std::uint16_t>(q.type));
        w.u16(kClassIn);
    }
    for (const auto& rr : answers) {
        write_name(w, rr.name);
        w.u16(static_cast<std::uint16_t>(rr.type));
        w.u16(kClassIn);
        w.u32(rr.ttl_seconds);
        if (rr.addr.is_unspecified() && rr.ttl_seconds == kDeleteSentinelTtl) {
            w.u16(0);  // deletion sentinel: empty RDATA
        } else {
            w.u16(4);
            w.u32(rr.addr.value());
        }
    }
}

Message Message::parse(net::BufferReader& r) {
    Message m;
    m.id = r.u16();
    const std::uint16_t flags = r.u16();
    m.is_response = (flags & kFlagResponse) != 0;
    m.opcode = static_cast<Opcode>((flags >> 11) & 0x0f);
    m.rcode = static_cast<Rcode>(flags & 0x0f);
    const std::uint16_t qdcount = r.u16();
    const std::uint16_t ancount = r.u16();
    r.skip(4);  // authority + additional counts (always zero here)
    for (std::uint16_t i = 0; i < qdcount; ++i) {
        Question q;
        q.name = read_name(r);
        q.type = static_cast<RecordType>(r.u16());
        if (r.u16() != kClassIn) {
            throw net::ParseError("DNS class not IN");
        }
        m.questions.push_back(std::move(q));
    }
    for (std::uint16_t i = 0; i < ancount; ++i) {
        Record rr;
        rr.name = read_name(r);
        rr.type = static_cast<RecordType>(r.u16());
        if (r.u16() != kClassIn) {
            throw net::ParseError("DNS class not IN");
        }
        rr.ttl_seconds = r.u32();
        const std::uint16_t rdlength = r.u16();
        if (rdlength == 4) {
            rr.addr = net::Ipv4Address(r.u32());
        } else if (rdlength == 0) {
            rr.addr = net::Ipv4Address{};
        } else {
            throw net::ParseError("DNS RDATA length unsupported");
        }
        m.answers.push_back(std::move(rr));
    }
    return m;
}

Message Message::query(std::uint16_t id, std::string name, RecordType type) {
    Message m;
    m.id = id;
    m.questions.push_back(Question{std::move(name), type});
    return m;
}

Message Message::response_to(const Message& q) {
    Message m;
    m.id = q.id;
    m.is_response = true;
    m.opcode = q.opcode;
    m.questions = q.questions;
    return m;
}

Message Message::update(std::uint16_t id, Record record) {
    Message m;
    m.id = id;
    m.opcode = Opcode::Update;
    m.answers.push_back(std::move(record));
    return m;
}

Message Message::remove(std::uint16_t id, std::string name, RecordType type) {
    Message m;
    m.id = id;
    m.opcode = Opcode::Update;
    Record rr;
    rr.name = std::move(name);
    rr.type = type;
    rr.ttl_seconds = kDeleteSentinelTtl;
    m.answers.push_back(std::move(rr));
    return m;
}

}  // namespace mip::dns
