// DNS wire format (RFC 1034/1035 subset): fixed 12-byte header, label-
// encoded names (no compression), class IN, record types A and TA, plus a
// dynamic-update opcode that mobile hosts use to (de)register their
// care-of address.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/buffer.h"
#include "dns/record.h"

namespace mip::dns {

inline constexpr std::size_t kDnsHeaderSize = 12;

enum class Opcode : std::uint8_t {
    Query = 0,
    Update = 5,
};

enum class Rcode : std::uint8_t {
    NoError = 0,
    FormErr = 1,
    NxDomain = 3,
    Refused = 5,
};

struct Question {
    std::string name;
    RecordType type = RecordType::A;
};

struct Message {
    std::uint16_t id = 0;
    bool is_response = false;
    Opcode opcode = Opcode::Query;
    Rcode rcode = Rcode::NoError;
    std::vector<Question> questions;
    std::vector<Record> answers;

    void serialize(net::BufferWriter& w) const;
    static Message parse(net::BufferReader& r);

    static Message query(std::uint16_t id, std::string name, RecordType type);
    static Message response_to(const Message& q);
    /// Update: install @p record (replacing existing records of the same
    /// name and type).
    static Message update(std::uint16_t id, Record record);
    /// Update: delete all records of @p type at @p name.
    static Message remove(std::uint16_t id, std::string name, RecordType type);
};

/// Writes a dotted name as DNS labels; throws on labels > 63 bytes.
void write_name(net::BufferWriter& w, const std::string& name);
std::string read_name(net::BufferReader& r);

}  // namespace mip::dns
