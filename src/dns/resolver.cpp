#include "dns/resolver.h"

#include "net/protocol.h"

namespace mip::dns {

Resolver::Resolver(transport::UdpService& udp, net::Ipv4Address server, ResolverConfig config)
    : udp_(udp), server_(server), config_(config) {
    socket_ = udp_.open();
    if (!config_.bind_source.is_unspecified()) {
        socket_->bind_address(config_.bind_source);
    }
    socket_->set_receiver([this](std::span<const std::uint8_t> data,
                                 const transport::RxMeta&) { on_datagram(data); });
}

void Resolver::resolve(const std::string& name, RecordType type, Callback cb) {
    const auto key = std::make_pair(name, type);
    if (auto it = cache_.find(key); it != cache_.end()) {
        if (it->second.expires > udp_.ip().simulator().now()) {
            ++cache_hits_;
            cb(it->second.records);
            return;
        }
        cache_.erase(it);
    }

    // Piggyback onto an identical in-flight query if one exists.
    for (auto& [id, q] : outstanding_) {
        if (q.name == name && q.type == type) {
            q.callbacks.push_back(std::move(cb));
            return;
        }
    }

    const std::uint16_t id = next_id_++;
    Outstanding q;
    q.name = name;
    q.type = type;
    q.callbacks.push_back(std::move(cb));
    q.attempts = 1;
    auto [it, ok] = outstanding_.emplace(id, std::move(q));
    transmit(id, it->second);
    it->second.timeout_event = udp_.ip().simulator().schedule_in(
        config_.timeout, [this, id] { on_timeout(id); });
}

void Resolver::transmit(std::uint16_t id, const Outstanding& q) {
    ++queries_sent_;
    net::BufferWriter w;
    Message::query(id, q.name, q.type).serialize(w);
    socket_->send_to(server_, net::ports::kDns, w.take());
}

void Resolver::on_timeout(std::uint16_t id) {
    auto it = outstanding_.find(id);
    if (it == outstanding_.end()) return;
    if (it->second.attempts > config_.max_retries) {
        auto callbacks = std::move(it->second.callbacks);
        outstanding_.erase(it);
        for (auto& cb : callbacks) cb({});
        return;
    }
    ++it->second.attempts;
    transmit(id, it->second);
    it->second.timeout_event = udp_.ip().simulator().schedule_in(
        config_.timeout, [this, id] { on_timeout(id); });
}

void Resolver::on_datagram(std::span<const std::uint8_t> data) {
    Message m;
    try {
        net::BufferReader r(data);
        m = Message::parse(r);
    } catch (const net::ParseError&) {
        return;
    }
    if (!m.is_response) return;
    auto it = outstanding_.find(m.id);
    if (it == outstanding_.end()) return;
    udp_.ip().simulator().cancel(it->second.timeout_event);

    // Cache positive answers with the minimum record TTL.
    if (!m.answers.empty()) {
        std::uint32_t min_ttl = m.answers.front().ttl_seconds;
        for (const auto& rr : m.answers) min_ttl = std::min(min_ttl, rr.ttl_seconds);
        cache_[{it->second.name, it->second.type}] = CacheEntry{
            m.answers, udp_.ip().simulator().now() + sim::seconds(min_ttl)};
    }

    auto callbacks = std::move(it->second.callbacks);
    outstanding_.erase(it);
    for (auto& cb : callbacks) cb(m.answers);
}

void Resolver::send_update(Record record) {
    net::BufferWriter w;
    Message::update(next_id_++, std::move(record)).serialize(w);
    socket_->send_to(server_, net::ports::kDns, w.take());
}

void Resolver::send_removal(std::string name, RecordType type) {
    net::BufferWriter w;
    Message::remove(next_id_++, std::move(name), type).serialize(w);
    socket_->send_to(server_, net::ports::kDns, w.take());
}

}  // namespace mip::dns
