// DNS resource records, including the paper's proposed mobility extension:
//
//   "The second is an extension to the Domain Name Service, similar to the
//    current MX records ... A mobile host that is away from home, but not
//    currently changing location frequently, could register its care-of
//    address with the extended DNS service."  (§3.2)
//
// The TA ("temporary address") record type carries a mobile host's current
// care-of address alongside its permanent A record. Its type code sits in
// the private-use range.
#pragma once

#include <cstdint>
#include <string>

#include "net/ipv4_address.h"

namespace mip::dns {

enum class RecordType : std::uint16_t {
    A = 1,
    /// Temporary (care-of) address record — the paper's MX-like extension.
    TA = 0xFF01,
};

struct Record {
    std::string name;
    RecordType type = RecordType::A;
    net::Ipv4Address addr;
    std::uint32_t ttl_seconds = 300;
};

inline std::string to_string(RecordType t) {
    switch (t) {
        case RecordType::A: return "A";
        case RecordType::TA: return "TA";
    }
    return "TYPE" + std::to_string(static_cast<std::uint16_t>(t));
}

}  // namespace mip::dns
