#include "dns/server.h"

#include "net/protocol.h"

namespace mip::dns {

DnsServer::DnsServer(transport::UdpService& udp, Zone& zone) : zone_(zone) {
    socket_ = udp.open(net::ports::kDns);
    socket_->set_receiver([this](std::span<const std::uint8_t> data,
                                 const transport::RxMeta& meta) {
        on_datagram(data, meta.peer);
    });
}

void DnsServer::on_datagram(std::span<const std::uint8_t> data, transport::UdpEndpoint from) {
    Message request;
    try {
        net::BufferReader r(data);
        request = Message::parse(r);
    } catch (const net::ParseError&) {
        return;
    }
    if (request.is_response) {
        return;
    }
    const Message response = handle(request);
    net::BufferWriter w;
    response.serialize(w);
    socket_->send_to(from.addr, from.port, w.take());
}

Message DnsServer::handle(const Message& request) {
    Message response = Message::response_to(request);

    if (request.opcode == Opcode::Update) {
        // Dynamic update: empty-RDATA records delete, others replace.
        for (const auto& rr : request.answers) {
            if (rr.addr.is_unspecified() && rr.ttl_seconds == 0) {
                zone_.remove(rr.name, rr.type);
            } else {
                zone_.replace(rr);
            }
            ++updates_applied_;
        }
        return response;
    }

    ++queries_served_;
    bool any_name_known = false;
    for (const auto& q : request.questions) {
        if (zone_.has_name(q.name)) any_name_known = true;
        for (auto& rr : zone_.lookup(q.name, q.type)) {
            response.answers.push_back(std::move(rr));
        }
    }
    if (response.answers.empty() && !any_name_known) {
        response.rcode = Rcode::NxDomain;
    }
    return response;
}

}  // namespace mip::dns
