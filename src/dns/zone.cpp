#include "dns/zone.h"

namespace mip::dns {

void Zone::add(Record record) {
    records_.emplace(record.name, std::move(record));
}

void Zone::add_a(std::string name, net::Ipv4Address addr, std::uint32_t ttl) {
    add(Record{name, RecordType::A, addr, ttl});
}

void Zone::add_ta(std::string name, net::Ipv4Address addr, std::uint32_t ttl) {
    add(Record{name, RecordType::TA, addr, ttl});
}

void Zone::replace(Record record) {
    remove(record.name, record.type);
    add(std::move(record));
}

std::size_t Zone::remove(const std::string& name, RecordType type) {
    std::size_t removed = 0;
    auto [begin, end] = records_.equal_range(name);
    for (auto it = begin; it != end;) {
        if (it->second.type == type) {
            it = records_.erase(it);
            ++removed;
        } else {
            ++it;
        }
    }
    return removed;
}

std::vector<Record> Zone::lookup(const std::string& name, RecordType type) const {
    std::vector<Record> out;
    auto [begin, end] = records_.equal_range(name);
    for (auto it = begin; it != end; ++it) {
        if (it->second.type == type) {
            out.push_back(it->second);
        }
    }
    return out;
}

bool Zone::has_name(const std::string& name) const {
    return records_.contains(name);
}

}  // namespace mip::dns
