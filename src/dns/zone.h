// An authoritative DNS zone: name -> records, with TA-record dynamic
// updates from mobile hosts.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dns/record.h"

namespace mip::dns {

class Zone {
public:
    void add(Record record);
    void add_a(std::string name, net::Ipv4Address addr, std::uint32_t ttl = 86400);
    void add_ta(std::string name, net::Ipv4Address addr, std::uint32_t ttl = 60);

    /// Replaces all records of (name, type) with @p record.
    void replace(Record record);

    /// Removes all records of (name, type); returns how many were removed.
    std::size_t remove(const std::string& name, RecordType type);

    /// All records matching (name, type).
    std::vector<Record> lookup(const std::string& name, RecordType type) const;

    /// True if any record exists for @p name (used for NXDOMAIN vs NOERROR).
    bool has_name(const std::string& name) const;

    std::size_t size() const noexcept { return records_.size(); }

private:
    std::multimap<std::string, Record> records_;
};

}  // namespace mip::dns
