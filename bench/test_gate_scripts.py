#!/usr/bin/env python3
"""Unit tests for the CI gate scripts (PR 8 satellite): the perf
trendline gate (check_perf_trend.py) and the docs-vs-schema gate
(check_docs_schema.py). Both scripts decide whether CI goes red, so
their pass/fail/vacuous edges deserve the same test coverage as the
C++ validators they front.

Runs under plain unittest (no third-party deps):

    python3 bench/test_gate_scripts.py -v

and is wired into ctest as `gate_scripts` so the CI default job runs it.
The scripts are imported as modules and exercised through their main()
entry points; check_docs_schema's `validate_metrics --dump-schema`
dependency is replaced by a tiny shell stub, so these tests pin the
scripts' parsing and exit-code contracts independently of the C++
binary (bench_smoke covers the real-binary integration).
"""

import contextlib
import io
import json
import sys
import tempfile
import unittest
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(BENCH_DIR))

import check_docs_schema  # noqa: E402
import check_perf_trend  # noqa: E402


def run_main(module, argv):
    """Invoke module.main with stdout/stderr captured.

    Returns (exit_code, stdout, stderr)."""
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        code = module.main(["prog"] + argv)
    return code, out.getvalue(), err.getvalue()


def perf_doc(*, smoke, scenario_rate=1000.0, city_rate=5000.0,
             traced_pct=None, obs_pct=None, overload_rate=None, cc_rate=None):
    """A minimal BENCH_perf.json document with the fields the gate reads."""
    scenario = {"name": "basic", "baseline": {"events_per_sec": scenario_rate}}
    if traced_pct is not None:
        scenario["overhead"] = {"traced_overhead_pct": traced_pct}
    city = {"events_per_sec": city_rate}
    if obs_pct is not None:
        city["observability"] = {"overhead_pct": obs_pct}
    doc = {"kind": "bench_perf", "smoke": smoke,
           "scenarios": [scenario], "city": city}
    if overload_rate is not None:
        doc["overload"] = {"events_per_sec": overload_rate}
    if cc_rate is not None:
        doc["cc"] = {"events_per_sec": cc_rate}
    return doc


class PerfTrendTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self._tmp.cleanup)
        self.dir = Path(self._tmp.name)

    def write(self, name, doc):
        path = self.dir / name
        path.write_text(json.dumps(doc))
        return str(path)

    def check(self, baseline, fresh, extra=None):
        argv = [self.write("baseline.json", baseline),
                self.write("fresh.json", fresh)] + (extra or [])
        return run_main(check_perf_trend, argv)

    def test_usage_error_is_exit_2(self):
        code, _, err = run_main(check_perf_trend, ["only-one-arg"])
        self.assertEqual(code, 2)
        self.assertIn("Usage", err)

    def test_passes_when_rates_hold(self):
        code, out, _ = self.check(perf_doc(smoke=True),
                                  perf_doc(smoke=True, scenario_rate=1100.0))
        self.assertEqual(code, 0)
        self.assertIn("check_perf_trend: OK", out)

    def test_fails_on_regression_beyond_threshold(self):
        code, out, _ = self.check(
            perf_doc(smoke=True, scenario_rate=1000.0),
            perf_doc(smoke=True, scenario_rate=700.0))  # -30% > 20% default
        self.assertEqual(code, 1)
        self.assertIn("REGRESSION", out)
        self.assertIn("scenario:basic", out)

    def test_threshold_is_exclusive_at_the_boundary(self):
        # cur == base * (1 - threshold) is NOT a regression; one tick
        # below is. This edge is what --threshold tuning leans on.
        at_edge = self.check(perf_doc(smoke=True, scenario_rate=1000.0),
                             perf_doc(smoke=True, scenario_rate=800.0),
                             ["--threshold=0.20"])
        below = self.check(perf_doc(smoke=True, scenario_rate=1000.0),
                           perf_doc(smoke=True, scenario_rate=799.0),
                           ["--threshold=0.20"])
        self.assertEqual(at_edge[0], 0)
        self.assertEqual(below[0], 1)

    def test_overload_headline_is_gated(self):
        # The abl_overload block's events/sec headline participates in
        # the trendline like the city figure does: a collapse in the
        # storm-ablation throughput goes red even when every other
        # figure holds.
        code, out, _ = self.check(
            perf_doc(smoke=True, overload_rate=2000.0),
            perf_doc(smoke=True, overload_rate=1200.0))  # -40%
        self.assertEqual(code, 1)
        self.assertIn("overload", out)
        code, _, _ = self.check(
            perf_doc(smoke=True, overload_rate=2000.0),
            perf_doc(smoke=True, overload_rate=1900.0))
        self.assertEqual(code, 0)

    def test_cc_headline_is_gated(self):
        # The abl_cc_handoff block's events/sec headline is a trendline
        # figure too: the congestion-control hot path (feedback taps,
        # pacing timers, pooled buffers) regressing by more than the
        # threshold goes red on its own.
        code, out, _ = self.check(
            perf_doc(smoke=True, cc_rate=3000.0),
            perf_doc(smoke=True, cc_rate=1800.0))  # -40%
        self.assertEqual(code, 1)
        self.assertIn("cc", out)
        code, _, _ = self.check(
            perf_doc(smoke=True, cc_rate=3000.0),
            perf_doc(smoke=True, cc_rate=2850.0))
        self.assertEqual(code, 0)

    def test_threshold_space_separated_form(self):
        code, _, _ = self.check(perf_doc(smoke=True, scenario_rate=1000.0),
                                perf_doc(smoke=True, scenario_rate=700.0),
                                ["--threshold", "0.35"])
        self.assertEqual(code, 0)

    def test_smoke_mismatch_passes_vacuously(self):
        # A smoke run vs a full baseline says nothing; the gate must not
        # lie in either direction.
        code, out, _ = self.check(
            perf_doc(smoke=False, scenario_rate=1000.0),
            perf_doc(smoke=True, scenario_rate=1.0))
        self.assertEqual(code, 0)
        self.assertIn("vacuously", out)

    def test_added_and_retired_scenarios_are_not_gated(self):
        baseline = perf_doc(smoke=True)
        fresh = perf_doc(smoke=True)
        fresh["scenarios"] = [
            {"name": "brand-new", "baseline": {"events_per_sec": 1.0}}]
        code, out, _ = self.check(baseline, fresh)
        self.assertEqual(code, 0)
        self.assertIn("(new)", out)
        self.assertIn("(gone)", out)

    def test_overhead_budgets_enforced_on_full_documents(self):
        over_traced = self.check(
            perf_doc(smoke=False),
            perf_doc(smoke=False,
                     traced_pct=check_perf_trend.TRACED_BUDGET_PCT + 1.0))
        over_obs = self.check(
            perf_doc(smoke=False),
            perf_doc(smoke=False,
                     obs_pct=check_perf_trend.CITY_OBS_BUDGET_PCT + 1.0))
        self.assertEqual(over_traced[0], 1)
        self.assertIn("traced overhead", over_traced[1])
        self.assertEqual(over_obs[0], 1)
        self.assertIn("sampler overhead", over_obs[1])

    def test_overhead_budgets_pass_within_budget(self):
        code, out, _ = self.check(
            perf_doc(smoke=False),
            perf_doc(smoke=False,
                     traced_pct=check_perf_trend.TRACED_BUDGET_PCT - 1.0,
                     obs_pct=check_perf_trend.CITY_OBS_BUDGET_PCT - 1.0))
        self.assertEqual(code, 0)
        self.assertIn("overhead budget", out)

    def test_overhead_budgets_skipped_on_smoke_documents(self):
        # Smoke ratios are noise-dominated; a huge smoke overhead must
        # not fail the gate.
        code, out, _ = self.check(
            perf_doc(smoke=True),
            perf_doc(smoke=True, traced_pct=400.0, obs_pct=400.0))
        self.assertEqual(code, 0)
        self.assertIn("budgets not enforced", out)

    def test_budgets_enforced_even_when_trendline_is_vacuous(self):
        # Budgets are absolute properties of the fresh run; a smoke
        # baseline must not launder a blown full-run budget.
        code, _, _ = self.check(
            perf_doc(smoke=True),
            perf_doc(smoke=False, obs_pct=99.0))
        self.assertEqual(code, 1)


class DocsSchemaTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self._tmp.cleanup)
        self.dir = Path(self._tmp.name)
        self.docs = self.dir / "docs"
        self.docs.mkdir()

    def make_stub(self, pairs):
        """An executable stand-in for `validate_metrics --dump-schema`."""
        stub = self.dir / "stub_validate_metrics"
        lines = "".join(f"echo '{section} {field}'\n" for section, field in pairs)
        stub.write_text("#!/bin/sh\n" + lines)
        stub.chmod(0o755)
        return str(stub)

    def write_doc(self, name, text):
        (self.docs / name).write_text(text)

    def check(self, stub):
        return run_main(check_docs_schema, [stub, str(self.docs)])

    STUB_PAIRS = [("timeseries", "samples"), ("timeseries", "points"),
                  ("incident", "truncated")]

    def test_usage_error_is_exit_2(self):
        code, _, _ = run_main(check_docs_schema, [])
        self.assertEqual(code, 2)

    def test_no_markdown_files_is_exit_2(self):
        code, _, err = self.check(self.make_stub(self.STUB_PAIRS))
        self.assertEqual(code, 2)
        self.assertIn("no markdown files", err)

    def test_consistent_docs_pass(self):
        self.write_doc("FORMAT.md", "\n".join([
            "| Field | Meaning |",
            "| --- | --- |",
            "| `samples` | ticks taken |",
            "| `points` | per-series rows |",
            "",
        ]))
        code, out, _ = self.check(self.make_stub(self.STUB_PAIRS))
        self.assertEqual(code, 0)
        self.assertIn("2 field reference(s)", out)

    def test_stale_reference_fails_with_location(self):
        self.write_doc("FORMAT.md", "\n".join([
            "| Field | Meaning |",
            "| --- | --- |",
            "| `samples` | fine |",
            "| `renamed_away` | the exporter no longer writes this |",
            "",
        ]))
        code, _, err = self.check(self.make_stub(self.STUB_PAIRS))
        self.assertEqual(code, 1)
        self.assertIn("renamed_away", err)
        self.assertIn("FORMAT.md:4", err)

    def test_dotted_paths_check_every_segment(self):
        # `trace.truncated`-style nesting: each segment must be a real
        # exported field on its own.
        self.write_doc("FORMAT.md", "\n".join([
            "| Field | Meaning |",
            "| --- | --- |",
            "| `points.truncated` | ok: both segments exported |",
            "| `points.missing_leaf` | stale leaf |",
            "",
        ]))
        code, _, err = self.check(self.make_stub(self.STUB_PAIRS))
        self.assertEqual(code, 1)
        self.assertIn("missing_leaf", err)
        self.assertNotIn("`points`", err)

    def test_tables_without_field_column_are_ignored(self):
        self.write_doc("NOTES.md", "\n".join([
            "| Flag | Meaning |",
            "| --- | --- |",
            "| `--definitely-not-a-field` | CLI flag, not schema |",
            "",
            "| Field | Meaning |",
            "| --- | --- |",
            "| `samples` | checked |",
            "",
        ]))
        code, out, _ = self.check(self.make_stub(self.STUB_PAIRS))
        self.assertEqual(code, 0)
        self.assertIn("1 field reference(s)", out)

    def test_empty_schema_dump_is_an_error(self):
        with self.assertRaises(RuntimeError):
            check_docs_schema.dumped_fields(self.make_stub([]))


if __name__ == "__main__":
    unittest.main()
