// Chaos convergence harness (robustness PR): N seeded fault plans against
// the standard world, asserting that end-to-end delivery is restored
// within a bounded window after the last fault clears.
//
// Per seed: build a world, attach the mobile host to the foreign segment,
// generate FaultPlan::random(seed) (link flaps, burst loss, corruption,
// duplication, reorder, jitter, home-agent crashes, boundary filter
// churn), hand it to a FaultInjector, and probe end-to-end delivery with
// a periodic ICMP echo from the mobile host's *home address* to a
// correspondent across the backbone — the path that exercises the full
// Mobile IP machinery (binding at the home agent, outgoing-mode
// selection, boundary filters). Recovery time is the gap between the
// plan's last clearing action and the first successful round trip that
// started after it. A seed converges iff that happens within the bound.
//
// Probe outcomes are reported to the delivery-method cache
// (report_success / report_failure), standing in for the transport-layer
// failure signals a real application mix would generate; together with
// the cache's mode TTL this is what lets the host climb back to an
// aggressive mode after filter churn clears.
//
// Exit status: 0 iff every seed converged — CI runs `abl_chaos --smoke`
// in the default job and the full sweep under sanitizers.
#include "common.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <vector>

#include "fault/injector.h"
#include "fault/plan.h"

using namespace mip;
using namespace mip::core;

namespace {

/// Attribution: the class of the plan's last-clearing fault — the fault
/// whose disappearance recovery is measured from. (With overlapping
/// windows other faults may still share blame; the decision log has the
/// full timeline when the aggregate is not enough.)
const char* fault_class(fault::FaultKind kind) {
    using fault::FaultKind;
    switch (fault::clearing_kind(kind)) {
        case FaultKind::LinkUp: return "link-flap";
        case FaultKind::BurstLossOff: return "burst-loss";
        case FaultKind::CorruptionOff: return "corruption";
        case FaultKind::DuplicationOff: return "duplication";
        case FaultKind::ReorderOff: return "reorder";
        case FaultKind::JitterOff: return "jitter";
        case FaultKind::AgentRestart: return "agent-crash";
        case FaultKind::FilterChurnOff: return "filter-churn";
        default: return "none";
    }
}

const char* last_fault_class(const fault::FaultPlan& plan) {
    const fault::FaultAction* last = nullptr;
    for (const fault::FaultAction& a : plan.actions()) {
        if (!fault::is_clearing(a.kind)) continue;
        if (last == nullptr || a.at >= last->at) last = &a;
    }
    return last != nullptr ? fault_class(last->kind) : "none";
}

struct SeedOutcome {
    std::uint64_t seed = 0;
    std::size_t plan_size = 0;
    double last_clear_s = 0.0;
    std::string fault_class = "none";
    bool converged = false;
    double recovery_ms = 0.0;
    std::size_t probes_failed = 0;
    std::size_t cancelled_backlog = 0;
};

/// How long after the last clearing action delivery must be restored.
constexpr sim::Duration kRecoveryBound = sim::seconds(10);
constexpr sim::Duration kProbeInterval = sim::milliseconds(250);
constexpr sim::Duration kProbeTimeout = sim::seconds(1);

SeedOutcome run_seed(std::uint64_t seed, bool smoke) {
    WorldConfig cfg;
    cfg.backbone_routers = smoke ? 2 : 4;
    cfg.seed = seed;
    World world{cfg};
    CorrespondentHost& ch = world.create_correspondent({}, Placement::CorrLan);

    MobileHostConfig mcfg = world.mobile_config();
    // Short lifetime + capped backoff: recovery from a home-agent crash
    // rides the ordinary re-registration cycle instead of waiting out the
    // default 300 s binding.
    mcfg.registration_lifetime = 5;
    mcfg.registration_backoff_cap = sim::seconds(2);
    // Stale cached modes re-probe the strategy's initial pick, so a host
    // that downgraded under filter churn climbs back up once it clears.
    mcfg.cache.mode_ttl = sim::seconds(5);
    MobileHost& mh = world.create_mobile_host(std::move(mcfg));
    world.enable_decision_log();

    SeedOutcome out;
    out.seed = seed;
    if (!world.attach_mobile_foreign()) return out;

    fault::ChaosProfile profile;
    profile.horizon = smoke ? sim::seconds(8) : sim::seconds(15);
    if (smoke) profile.impairments = 1;
    fault::FaultPlan plan = fault::FaultPlan::random(seed, profile);
    out.plan_size = plan.size();
    out.fault_class = last_fault_class(plan);
    const sim::TimePoint last_clear = plan.last_clear_time();
    out.last_clear_s = sim::to_seconds(last_clear);

    fault::FaultInjector injector(world, /*seed=*/seed ^ 0xc4a05);
    injector.execute(plan);

    // Optional deep-dive exports: a metrics time series (and its Perfetto
    // rendering) of the whole chaos run, so a recovery can be inspected
    // alongside the fault counters on one timeline.
    obs::MetricsSampler sampler(world.sim, world.metrics,
                                {.interval = sim::milliseconds(100)});
    const bool deep_export = std::getenv("M4X4_PERFETTO_DIR") != nullptr ||
                             std::getenv("M4X4_METRICS_DIR") != nullptr;
    if (deep_export) sampler.start();

    // Periodic end-to-end probe, self-scheduling from t=now. Recovery is
    // the completion time of the first successful exchange *sent* at or
    // after last_clear (an exchange that straddles the boundary proves
    // nothing about the fault-free network).
    transport::Pinger pinger(mh.stack());
    bool recovered = false;
    sim::TimePoint recovered_at = 0;
    std::size_t failed = 0;
    std::function<void()> probe = [&] {
        const sim::TimePoint sent_at = world.sim.now();
        pinger.ping(
            ch.address(),
            [&, sent_at](std::optional<sim::Duration> rtt) {
                if (rtt.has_value()) {
                    mh.method_cache().report_success(ch.address(), world.sim.now());
                    if (!recovered && sent_at >= last_clear) {
                        recovered = true;
                        recovered_at = world.sim.now();
                    }
                } else {
                    ++failed;
                    mh.method_cache().report_failure(ch.address(), world.sim.now(),
                                                     "chaos-probe-timeout");
                }
            },
            kProbeTimeout, 56, mh.home_address());
        if (!recovered) {
            world.sim.schedule_in(kProbeInterval, probe, "chaos-probe");
        }
    };
    world.sim.schedule_in(0, probe, "chaos-probe");

    const sim::TimePoint deadline = last_clear + kRecoveryBound;
    while (!recovered && world.sim.now() < deadline) {
        world.run_for(kProbeInterval);
    }
    // Let the last in-flight echo resolve.
    world.run_for(kProbeTimeout + kProbeInterval);

    out.converged = recovered;
    out.recovery_ms =
        recovered ? sim::to_milliseconds(std::max<sim::Duration>(
                        0, recovered_at - last_clear))
                  : sim::to_milliseconds(kRecoveryBound);
    out.probes_failed = failed;
    out.cancelled_backlog = world.sim.cancelled_backlog();

    world.metrics
        .histogram("mobile-host", "chaos", "recovery_ms",
                   {50, 100, 250, 500, 1000, 2000, 5000, 10000})
        .observe(out.recovery_ms);
    obs::DecisionEvent ev;
    ev.when = world.sim.now();
    ev.node = "chaos-harness";
    ev.correspondent = out.fault_class;
    ev.trigger = "recovery";
    ev.test = "delivery-restored";
    ev.input = "bound=" +
               std::to_string(static_cast<long long>(sim::to_milliseconds(kRecoveryBound))) +
               "ms";
    ev.passed = out.converged;
    ev.detail = out.converged
                    ? "end-to-end delivery restored after last fault cleared"
                    : "no successful round trip inside the recovery bound";
    world.decisions.record(std::move(ev));

    const std::string label = "seed" + std::to_string(seed);
    bench::export_metrics(world, "abl_chaos", label);
    bench::export_decisions(world.decisions, "abl_chaos", label);
    if (deep_export) {
        sampler.stop();
        bench::export_timeseries(sampler, "abl_chaos", label);
        obs::ChromeTraceWriter writer;
        writer.add_series(sampler);
        bench::export_perfetto(writer, "abl_chaos", label);
    }
    return out;
}

double percentile(std::vector<double> v, double p) {
    if (v.empty()) return 0.0;
    std::sort(v.begin(), v.end());
    const auto idx = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
    return v[idx];
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = bench::smoke_mode();
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    }
    const int seeds = smoke ? 5 : 20;

    bench::print_header(
        "Chaos convergence: recovery after seeded fault plans",
        "Each seed generates a deterministic FaultPlan (link flaps, burst\n"
        "loss, corruption, duplication, reorder, jitter, home-agent\n"
        "crashes, boundary filter churn). A seed converges iff an\n"
        "end-to-end echo (home address -> correspondent) succeeds within\n"
        "10 s of the last fault clearing.");

    std::printf("%-6s  %5s  %13s  %-12s  %9s  %12s  %6s  %9s\n", "seed", "plan",
                "last-clear(s)", "last-fault", "converged", "recovery(ms)", "fails",
                "cancelled");
    std::map<std::string, std::vector<double>> by_class;
    std::vector<double> all;
    int failures = 0;
    for (int s = 1; s <= seeds; ++s) {
        const SeedOutcome o = run_seed(static_cast<std::uint64_t>(s), smoke);
        std::printf("%-6llu  %5zu  %13.3f  %-12s  %9s  %12.1f  %6zu  %9zu\n",
                    static_cast<unsigned long long>(o.seed), o.plan_size, o.last_clear_s,
                    o.fault_class.c_str(), bench::yn(o.converged), o.recovery_ms,
                    o.probes_failed, o.cancelled_backlog);
        if (!o.converged) ++failures;
        by_class[o.fault_class].push_back(o.recovery_ms);
        all.push_back(o.recovery_ms);
    }

    std::printf("\nRecovery time by last-clearing fault class:\n");
    std::printf("%-12s  %5s  %11s  %9s\n", "class", "seeds", "median(ms)", "p95(ms)");
    for (const auto& [cls, times] : by_class) {
        std::printf("%-12s  %5zu  %11.1f  %9.1f\n", cls.c_str(), times.size(),
                    percentile(times, 0.5), percentile(times, 0.95));
    }
    std::printf("%-12s  %5zu  %11.1f  %9.1f\n", "(all)", all.size(),
                percentile(all, 0.5), percentile(all, 0.95));

    if (failures > 0) {
        std::printf("\nFAIL: %d/%d seeds did not converge inside the bound.\n", failures,
                    seeds);
        return 1;
    }
    std::printf("\nAll %d seeds converged.\n", seeds);
    return 0;
}
