// Chaos convergence harness (robustness PR): N seeded fault plans against
// the standard world, asserting that end-to-end delivery is restored
// within a bounded window after the last fault clears.
//
// The per-seed scenario lives in chaos_sweep.h (shared with bench_perf's
// sweep-scaling measurement); this binary fans the seeds out across a
// sweep::SweepRunner thread pool (--jobs N, default serial) and prints
// the figure from the deterministic merged results — the table, the
// per-class aggregates and the exported sweep report are byte-identical
// for any --jobs value.
//
// Exit status (PR 8 adds the monitor contract): 0 iff every seed
// converged AND tripped at least one health monitor matching its fault
// class before recovery, AND a fault-free control leg (same world, same
// probes, monitors armed, no injector) produced zero trips — CI runs
// `abl_chaos --smoke` in the default job, the full sweep with --jobs
// under sanitizers. Every trip captures an incident bundle; with a
// metrics dir set the bundles are exported and schema-validated by
// bench_smoke / uploaded by CI on failure.
#include "chaos_sweep.h"

#include <algorithm>
#include <map>
#include <vector>

using namespace mip;

namespace {

double percentile(std::vector<double> v, double p) {
    if (v.empty()) return 0.0;
    std::sort(v.begin(), v.end());
    const auto idx = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
    return v[idx];
}

}  // namespace

int main(int argc, char** argv) {
    const bench::HarnessOptions opt = bench::parse_harness_options(&argc, argv);
    const int seeds = opt.seeds > 0 ? opt.seeds : opt.pick(20, 5);

    bench::print_header(
        "Chaos convergence: recovery after seeded fault plans",
        "Each seed generates a deterministic FaultPlan (link flaps, burst\n"
        "loss, corruption, duplication, reorder, jitter, home-agent\n"
        "crashes, boundary filter churn). A seed converges iff an\n"
        "end-to-end echo (home address -> correspondent) succeeds within\n"
        "10 s of the last fault clearing.");

    // Fault-free control leg: identical world, probes and armed monitors,
    // but the plan is never injected. Any trip here is a false positive
    // and fails the bench — the detectors must stay quiet on a clean run.
    const bench::chaos::SeedOutcome control =
        bench::chaos::run_seed(1, opt.smoke, opt, nullptr, /*inject=*/false);
    std::printf("control (no faults): %llu monitor trip(s)%s\n\n",
                static_cast<unsigned long long>(control.monitor_trips),
                control.monitor_trips == 0 ? "" : "  <-- FALSE TRIPS");

    const sweep::SweepRunner runner({.jobs = opt.jobs});
    const sweep::SweepOutcome outcome =
        runner.run(bench::chaos::seed_jobs(seeds, opt.smoke, opt));

    std::printf("%-6s  %5s  %13s  %-12s  %9s  %12s  %6s  %5s  %8s  %13s\n", "seed",
                "plan", "last-clear(s)", "last-fault", "converged", "recovery(ms)",
                "fails", "trips", "matched", "1st-trip(ms)");
    std::map<std::string, std::vector<double>> by_class;
    std::vector<double> all;
    int failures = 0;
    int unmatched = 0;
    for (const sweep::JobResult& r : outcome.results) {
        if (!r.ok) {
            std::printf("job failed: %s\n", r.error.c_str());
            ++failures;
            continue;
        }
        const obs::JsonValue::Object& row = r.report;
        const bool converged = row.at("converged").as_bool();
        const bool matched = row.at("monitor_matched").as_bool();
        const double recovery_ms = row.at("recovery_ms").as_number();
        const std::string& cls = row.at("fault_class").as_string();
        std::printf("%-6llu  %5llu  %13.3f  %-12s  %9s  %12.1f  %6llu  %5llu  %8s  %13.1f\n",
                    static_cast<unsigned long long>(row.at("seed").as_number()),
                    static_cast<unsigned long long>(row.at("plan_size").as_number()),
                    row.at("last_clear_s").as_number(), cls.c_str(),
                    bench::yn(converged), recovery_ms,
                    static_cast<unsigned long long>(row.at("probes_failed").as_number()),
                    static_cast<unsigned long long>(row.at("monitor_trips").as_number()),
                    bench::yn(matched), row.at("first_trip_ms").as_number());
        if (!converged) ++failures;
        if (!matched) ++unmatched;
        by_class[cls].push_back(recovery_ms);
        all.push_back(recovery_ms);
    }

    std::printf("\nRecovery time by last-clearing fault class:\n");
    std::printf("%-12s  %5s  %11s  %9s\n", "class", "seeds", "median(ms)", "p95(ms)");
    for (const auto& [cls, times] : by_class) {
        std::printf("%-12s  %5zu  %11.1f  %9.1f\n", cls.c_str(), times.size(),
                    percentile(times, 0.5), percentile(times, 0.95));
    }
    std::printf("%-12s  %5zu  %11.1f  %9.1f\n", "(all)", all.size(),
                percentile(all, 0.5), percentile(all, 0.95));
    std::printf("\nsweep: %d seed(s) on %d job(s), %.1f ms wall\n", seeds,
                outcome.jobs_used, outcome.wall_ms);

    // The deterministic merged report (docs/TRACE_FORMAT.md §8) — same
    // bytes for any --jobs value; bench_smoke validates it.
    bench::export_text(opt.metrics_dir, "abl_chaos", "sweep", ".json",
                       outcome.report("abl_chaos", "sweep").dump(2) + "\n");

    int rc = 0;
    if (failures > 0) {
        std::printf("\nFAIL: %d/%d seeds did not converge inside the bound.\n", failures,
                    seeds);
        rc = 1;
    }
    if (unmatched > 0) {
        std::printf("\nFAIL: %d/%d seeds tripped no matching monitor before recovery.\n",
                    unmatched, seeds);
        rc = 1;
    }
    if (control.monitor_trips > 0) {
        std::printf("\nFAIL: fault-free control leg tripped %llu monitor(s).\n",
                    static_cast<unsigned long long>(control.monitor_trips));
        rc = 1;
    }
    if (rc == 0) {
        std::printf("\nAll %d seeds converged; every seed tripped a matching monitor, "
                    "control leg clean.\n", seeds);
    }
    return rc;
}
