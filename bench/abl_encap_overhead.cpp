// Ablation A2 (§3.3) — encapsulation scheme overhead.
//
// "this overhead can be minimized by use of Generic Routing Encapsulation
// [RFC1702] or Minimal Encapsulation [Per95]". We compare the three
// schemes end-to-end: bytes on the wire for a fixed workload, goodput over
// a tunnel, and where each scheme's fragmentation crossover sits.
#include "common.h"

#include "net/fragmentation.h"
#include "tunnel/encapsulator.h"

using namespace mip;
using namespace mip::core;

namespace {

tunnel::EncapScheme kSchemes[] = {tunnel::EncapScheme::IpInIp, tunnel::EncapScheme::Minimal,
                                  tunnel::EncapScheme::Gre};

void print_figure(const bench::HarnessOptions& opt) {
    bench::print_header(
        "Ablation A2 (§3.3): encapsulation scheme comparison",
        "End-to-end Out-IE TCP transfer of 64 KiB through each tunnel\n"
        "scheme; wire bytes include every IPv4 byte on every hop.");

    std::printf("%-15s  %9s  %12s  %11s  %14s\n", "scheme", "overhead", "wire-bytes",
                "duration", "goodput(kb/s)");
    for (auto scheme : kSchemes) {
        WorldConfig cfg;
        cfg.foreign_egress_antispoof = true;  // make tunneling mandatory
        cfg.home_agent.encap_scheme = scheme;
        World world{cfg};
        CorrespondentHost& ch = world.create_correspondent({}, Placement::CorrLan);
        ch.tcp().listen(7200, [](transport::TcpConnection&) {});

        MobileHostConfig mcfg = world.mobile_config();
        mcfg.encap_scheme = scheme;
        MobileHost& mh = world.create_mobile_host(std::move(mcfg));
        if (!world.attach_mobile_foreign()) continue;
        mh.force_mode(ch.address(), OutMode::IE);

        const auto r = bench::measure_tcp_transfer(
            world, mh.tcp(), ch.address(), 7200,
            opt.pick<std::size_t>(64 * 1024, 8 * 1024));
        bench::export_metrics(opt, world, "abl_encap_overhead", tunnel::to_string(scheme));
        const auto encap = tunnel::make_encapsulator(scheme);
        const auto probe = net::make_packet(world.mh_home_addr(), ch.address(),
                                            net::IpProto::Tcp,
                                            std::vector<std::uint8_t>(1000, 0));
        std::printf("%-15s  %8zuB  %12zu  %9.1fms  %14.1f\n",
                    tunnel::to_string(scheme).c_str(),
                    encap->encapsulate(probe, world.mh_care_of_addr(),
                                       world.home_agent_addr())
                            .wire_size() -
                        probe.wire_size(),
                    r.ip_bytes, r.duration_ms, r.goodput_kbps);
    }

    std::printf("\nFragmentation crossover (largest TCP payload that still fits one\n");
    std::printf("1500-byte MTU frame after tunnel overhead):\n");
    for (auto scheme : kSchemes) {
        const auto encap = tunnel::make_encapsulator(scheme);
        std::size_t best = 0;
        for (std::size_t payload = 1400; payload <= 1480; ++payload) {
            const auto inner = net::make_packet(
                net::Ipv4Address::must_parse("10.1.0.10"),
                net::Ipv4Address::must_parse("10.3.0.2"), net::IpProto::Tcp,
                std::vector<std::uint8_t>(payload, 0));
            const auto outer =
                encap->encapsulate(inner, net::Ipv4Address::must_parse("10.2.0.10"),
                                   net::Ipv4Address::must_parse("10.1.0.2"));
            if (net::fragment(outer, 1500).size() == 1) best = payload;
        }
        std::printf("  %-15s %zu bytes (plain IPv4: 1480)\n",
                    tunnel::to_string(scheme).c_str(), best);
    }
    std::printf(
        "\nShape check: minimal encapsulation carries the least overhead (12 B\n"
        "vs 20 B IP-in-IP vs 24 B GRE), so it moves the fewest wire bytes and\n"
        "keeps the largest un-fragmented payload.\n\n");
}

void BM_TunneledTransfer(benchmark::State& state) {
    const auto scheme = kSchemes[state.range(0)];
    std::size_t total_bytes = 0;
    for (auto _ : state) {
        WorldConfig cfg;
        cfg.foreign_egress_antispoof = true;
        cfg.home_agent.encap_scheme = scheme;
        World world{cfg};
        CorrespondentHost& ch = world.create_correspondent({}, Placement::CorrLan);
        ch.tcp().listen(7200, [](transport::TcpConnection&) {});
        MobileHostConfig mcfg = world.mobile_config();
        mcfg.encap_scheme = scheme;
        MobileHost& mh = world.create_mobile_host(std::move(mcfg));
        if (!world.attach_mobile_foreign()) {
            state.SkipWithError("registration failed");
            return;
        }
        mh.force_mode(ch.address(), OutMode::IE);
        const auto r =
            bench::measure_tcp_transfer(world, mh.tcp(), ch.address(), 7200, 16 * 1024);
        total_bytes += r.ip_bytes;
    }
    state.SetLabel(tunnel::to_string(scheme));
    state.counters["wire_bytes"] = benchmark::Counter(
        static_cast<double>(total_bytes) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_TunneledTransfer)->Arg(0)->Arg(1)->Arg(2)->Iterations(1);

}  // namespace

M4X4_BENCH_MAIN(print_figure)
