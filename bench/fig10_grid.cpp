// Figure 10 — Internet Mobility 4x4.
//
// The paper's central result: of the sixteen (incoming x outgoing)
// combinations, seven are useful, three are valid but would not normally
// be used, and six do not work with current protocols.
//
// We *measure* the grid rather than assume it: for each cell, a UDP
// request/response conversation is set up in which the correspondent
// addresses the mobile host per the row's In-mode and the mobile host
// replies per the column's Out-mode. Like any real transport, the
// correspondent only accepts a response that comes from the address it
// sent to ("the correspondent host will have no way to associate the
// reply with the packet that caused it", §6.5). The measured grid must
// match classify_combo() — the paper's shading — exactly.
#include "common.h"

#include <utility>
#include <vector>

#include "transport/udp_service.h"

using namespace mip;
using namespace mip::core;

namespace {

struct CellResult {
    bool works = false;
    double rtt_ms = 0.0;
    std::size_t ip_bytes = 0;
    /// The delivery-decision audit trail behind this cell (docs/
    /// TRACE_FORMAT.md §6): why the mobile host answered in the mode the
    /// column dictates.
    std::string decision_chain;
};

constexpr std::uint16_t kServicePort = 7000;

CellResult run_cell(InMode in, OutMode out, bool foreign_filter = false,
                    const bench::HarnessOptions& opt = {}) {
    WorldConfig cfg;
    cfg.foreign_egress_antispoof = foreign_filter;
    World world{cfg};

    CorrespondentConfig ccfg;
    const bool ch_mobile_aware = in == InMode::DE || in == InMode::DH;
    if (ch_mobile_aware) {
        ccfg.awareness = Awareness::MobileAware;
    } else if (out == OutMode::DE) {
        // Out-DE "requires only decapsulation capability of the
        // correspondent host" (Figure 10 caption) — capability, not full
        // mobile-awareness. The CH still sends In-IE.
        ccfg.awareness = Awareness::DecapCapable;
    }
    CorrespondentHost& ch = world.create_correspondent(
        ccfg, in == InMode::DH ? Placement::ForeignLan : Placement::CorrLan);

    MobileHostConfig mcfg = world.mobile_config();
    mcfg.enable_port_heuristics = false;  // the cell dictates the mode, not ports
    MobileHost& mh = world.create_mobile_host(std::move(mcfg));
    world.enable_decision_log();
    if (!world.attach_mobile_foreign()) return {};
    if (ch_mobile_aware) {
        ch.learn_binding(world.mh_home_addr(), world.mh_care_of_addr(), sim::seconds(3600));
    }

    // The mobile host's responder: replies from the address the column
    // dictates (home for IE/DE/DH — routed per the forced mode — or the
    // care-of address for DT).
    auto responder = mh.udp().open(kServicePort);
    if (out == OutMode::DT) {
        responder->bind_address(world.mh_care_of_addr());
        // Out-DT traffic never consults the method cache (the care-of
        // address is a plain local source); record the cell's configured
        // choice by hand so every cell's chain is non-empty.
        mip::obs::DecisionEvent ev;
        ev.when = world.sim.now();
        ev.node = "mobile-host";
        ev.correspondent = ch.address().to_string();
        ev.trigger = "forced";
        ev.test = "cell-config";
        ev.input = "bind care-of address";
        ev.passed = true;
        ev.from_mode = to_string(OutMode::DT);
        ev.to_mode = to_string(OutMode::DT);
        ev.detail = "Out-DT bypasses the method cache";
        world.decisions.record(std::move(ev));
    } else {
        responder->bind_address(world.mh_home_addr());
        mh.force_mode(ch.address(), out);
    }
    responder->set_receiver([&](std::span<const std::uint8_t> data,
                                const transport::RxMeta& meta) {
        responder->send_to(meta.peer.addr, meta.peer.port,
                           std::vector<std::uint8_t>(data.begin(), data.end()));
    });

    // The correspondent's client: sends to the row's target address and
    // accepts only replies from that same endpoint.
    const net::Ipv4Address target =
        in == InMode::DT ? world.mh_care_of_addr() : world.mh_home_addr();
    auto client = ch.udp().open();
    bool accepted = false;
    sim::TimePoint sent_at = 0;
    sim::TimePoint got_at = 0;
    client->set_receiver([&](std::span<const std::uint8_t>, const transport::RxMeta& meta) {
        if (meta.peer.addr == target && meta.peer.port == kServicePort) {
            accepted = true;
            got_at = world.sim.now();
        }
    });

    // Warm-up exchange (ARP, etc.), then the measured one.
    for (int round = 0; round < 2; ++round) {
        accepted = false;
        world.trace.clear();
        sent_at = world.sim.now();
        client->send_to(target, kServicePort, {0x4d, 0x34, 0x78, 0x34});
        world.run_for(sim::seconds(3));
        if (!accepted) break;
    }

    CellResult r;
    r.works = accepted;
    r.rtt_ms = accepted ? sim::to_milliseconds(got_at - sent_at) : 0.0;
    r.ip_bytes = world.trace.ip_tx_bytes();
    r.decision_chain = world.decisions.chain_string(ch.address().to_string());
    const std::string label =
        to_string(in) + "_" + to_string(out) + (foreign_filter ? "_filtered" : "");
    bench::export_metrics(opt, world, "fig10", label);
    bench::export_decisions(opt, world.decisions, "fig10", label);
    return r;
}

const char* class_mark(ComboClass c) {
    switch (c) {
        case ComboClass::Useful: return " ";
        case ComboClass::ValidUnused: return "~";
        case ComboClass::Broken: return "#";
    }
    return "?";
}

void print_figure(const bench::HarnessOptions& opt) {
    bench::print_header(
        "Figure 10: Internet Mobility 4x4 — the measured grid",
        "Each cell: measured works/FAILS (+ RTT ms, IPv4 bytes on all\n"
        "wires). Predicted shading: ' '=useful, '~'=valid-but-unused,\n"
        "'#'=broken. A '!' marks disagreement with the paper's grid.");

    std::printf("%-8s", "");
    for (OutMode out : kAllOutModes) {
        std::printf("  %-21s", to_string(out).c_str());
    }
    std::printf("\n");

    int mismatches = 0;
    GridCensus measured;
    std::vector<std::pair<std::string, std::string>> chains;
    for (InMode in : kAllInModes) {
        std::printf("%-8s", to_string(in).c_str());
        for (OutMode out : kAllOutModes) {
            const CellResult cell = run_cell(in, out, /*foreign_filter=*/false, opt);
            chains.emplace_back("In-" + to_string(in) + " x Out-" + to_string(out),
                                cell.decision_chain);
            const ComboClass predicted = classify_combo(in, out);
            const bool should_work = predicted != ComboClass::Broken;
            const bool agree = cell.works == should_work;
            if (!agree) ++mismatches;
            if (cell.works) {
                predicted == ComboClass::ValidUnused ? ++measured.valid_unused
                                                     : ++measured.useful;
                std::printf("  %s%s %5.1fms %7zuB", agree ? class_mark(predicted) : "!",
                            "ok ", cell.rtt_ms, cell.ip_bytes);
            } else {
                ++measured.broken;
                std::printf("  %s%-19s", agree ? "#" : "!", "FAILS");
            }
        }
        std::printf("\n");
    }

    std::printf("\nmeasured census: %d useful + %d valid-unused work, %d broken\n",
                measured.useful, measured.valid_unused, measured.broken);
    std::printf("paper census:    7 useful + 3 valid-unused work, 6 broken\n");
    std::printf("grid agreement:  %s (%d mismatches)\n\n",
                mismatches == 0 ? "EXACT" : "MISMATCH", mismatches);
    std::printf(
        "Shape check: working cells get cheaper left to right (less\n"
        "encapsulation, shorter paths) and faster down the rows (In-IE\n"
        "detours via the home agent; In-DH/DT go direct).\n\n");

    // --- the audit trail behind the grid -----------------------------------
    // Every cell's outgoing mode is the end of a recorded decision chain
    // (docs/TRACE_FORMAT.md §6): which test ran, its input, pass/fail, and
    // the mode transition it caused.
    std::printf("decision chains (why each cell answered in its column's mode):\n");
    for (const auto& [cell, chain] : chains) {
        std::printf("%s:\n%s", cell.c_str(),
                    chain.empty() ? "  (no decisions recorded)\n" : chain.c_str());
    }
    std::printf("\n");

    // --- the abstract's second dimension: network permissiveness -----------
    // The same grid under a visited network that filters foreign sources:
    // the Out-DH column (except the Row C same-segment cell, which never
    // crosses the boundary) goes dark for *environmental* reasons — the
    // combination is protocol-valid but the packets never escape.
    std::printf("same grid, visited network with egress anti-spoofing:\n");
    std::printf("%-8s", "");
    for (OutMode out : kAllOutModes) {
        std::printf("  %-9s", to_string(out).c_str());
    }
    std::printf("\n");
    int filtered_dh_failures = 0;
    for (InMode in : kAllInModes) {
        std::printf("%-8s", to_string(in).c_str());
        for (OutMode out : kAllOutModes) {
            const bool works = run_cell(in, out, /*foreign_filter=*/true, opt).works;
            if (!works && out == OutMode::DH &&
                classify_combo(in, out) != ComboClass::Broken && in != InMode::DH) {
                ++filtered_dh_failures;
            }
            std::printf("  %-9s", works ? "ok" : "FAILS");
        }
        std::printf("\n");
    }
    std::printf(
        "\nOut-DH now fails in %d protocol-valid cells: 'the best choice ...\n"
        "depends on ... the permissiveness of the networks over which the\n"
        "packets travel' (abstract). The Row C cell survives because\n"
        "same-segment traffic never reaches the boundary router.\n\n",
        filtered_dh_failures);
}

void BM_GridClassification(benchmark::State& state) {
    for (auto _ : state) {
        for (InMode in : kAllInModes) {
            for (OutMode out : kAllOutModes) {
                benchmark::DoNotOptimize(classify_combo(in, out));
            }
        }
    }
}
BENCHMARK(BM_GridClassification);

void BM_GridCellConversation(benchmark::State& state) {
    // Full simulated conversation for the canonical useful cell of each row.
    static const std::pair<InMode, OutMode> kCells[] = {
        {InMode::IE, OutMode::IE},
        {InMode::DE, OutMode::DH},
        {InMode::DH, OutMode::DH},
        {InMode::DT, OutMode::DT},
    };
    const auto [in, out] = kCells[state.range(0)];
    std::size_t worked = 0;
    for (auto _ : state) {
        worked += run_cell(in, out).works;
    }
    state.SetLabel(to_string(in) + "/" + to_string(out));
    state.counters["works"] = benchmark::Counter(
        static_cast<double>(worked) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_GridCellConversation)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Iterations(1);

}  // namespace

M4X4_BENCH_MAIN(print_figure)
