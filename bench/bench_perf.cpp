// bench_perf — the simulator measuring itself (ISSUE: time-resolved
// observability, part c; ROADMAP north star: a simulator that runs as
// fast as the hardware allows).
//
// Three scenario sizes (small / medium / large: wider backbones, more
// correspondents, longer conversations) each run three ways over
// identical simulated workloads:
//
//   baseline       profiler, sampler and fault hooks all detached — the
//                  product default, where instrumentation and the fault
//                  layer each cost one pointer compare per dispatch/frame
//   fault-attached a benign FaultChain installed on every link (one
//                  LinkDownFault left up) — the price of dispatching
//                  through an installed-but-idle fault hook
//   instrumented   SimProfiler attached and a MetricsSampler ticking —
//                  per-kind dispatch timing, queue-depth gauges, series
//
// A separate overhead block (schema_version 3, ISSUE 7) isolates the cost
// of the trace recorder itself: untraced (recorder detached — every trace
// seam is one pointer compare), traced (the baseline: binary records into
// the per-simulator arena at sample rate 1.0) and sampled (journey
// sampling at rate 0.1). check_perf_trend.py gates traced_overhead_pct
// at 25% per scenario.
//
// Every configuration runs >= 2 reps (5 by default) and reports the
// MEDIAN wall time with the rep count in the JSON — a single wall-clock
// sample is noise, and validate_metrics rejects overhead percentages
// derived from one. The simulated work is deterministic, so events and
// sim_seconds are identical across reps; only the wall clock varies.
//
// A fourth section measures the sweep engine itself: the chaos seed
// sweep (chaos_sweep.h) serially and with --jobs {2,4}, recording the
// speedup and verifying the per-job results and the merged report are
// byte-identical to the serial run. Results go to stdout and to
// BENCH_perf.json (M4X4_BENCH_PERF_OUT overrides the path; under --smoke
// the file is only written when that override is set, so smoke runs do
// not clobber a real machine baseline with tiny-scenario numbers).
//
// Wall-clock numbers are machine-dependent by nature; everything else
// this repo emits is deterministic, which is why bench_perf has its own
// output file instead of polluting the metrics snapshots.
#include "chaos_sweep.h"
#include "common.h"

#include <chrono>
#include <cinttypes>
#include <fstream>
#include <thread>
#include <vector>

#include "fault/link_faults.h"
#include "obs/profile.h"
#include "sim/profiler.h"

using namespace mip;
using namespace mip::core;

namespace {

struct PerfScenario {
    const char* name;
    int backbone_routers;
    int correspondents;
    sim::Duration sim_time;
    std::size_t tcp_bytes;  ///< payload pushed to each correspondent
};

struct RunStats {
    std::uint64_t events = 0;
    double wall_ms = 0.0;  ///< median across reps
    double events_per_sec = 0.0;
    double sim_seconds = 0.0;
    int reps = 1;
    // Buffer-pool counters from the run's simulator (hot-path evidence):
    std::uint64_t pool_acquires = 0;
    std::uint64_t pool_reuses = 0;
    // Record-arena counters (trace/decision chunk recycling, ISSUE 7):
    std::uint64_t arena_acquires = 0;
    std::uint64_t arena_allocations = 0;
    std::uint64_t trace_records = 0;
    std::uint64_t trace_sampled_out = 0;
    // Instrumented runs only:
    std::size_t max_queue_depth = 0;
    std::size_t max_cancelled = 0;
    std::uint64_t samples = 0;
    std::string profile_summary;
};

/// Tracing configuration for one measured run — the three legs of the
/// overhead block (docs/OBSERVABILITY.md §6).
struct TraceMode {
    bool tracing = true;
    double sample_rate = 1.0;
};

std::vector<PerfScenario> scenarios(const bench::HarnessOptions& opt) {
    if (opt.smoke) {
        return {
            {"small", 2, 1, sim::seconds(3), 16 * 1024},
            {"medium", 4, 2, sim::seconds(3), 32 * 1024},
            {"large", 6, 2, sim::seconds(5), 64 * 1024},
        };
    }
    return {
        {"small", 2, 1, sim::seconds(15), 128 * 1024},
        {"medium", 8, 3, sim::seconds(30), 512 * 1024},
        {"large", 16, 6, sim::seconds(60), 1024 * 1024},
    };
}

RunStats run_scenario(const bench::HarnessOptions& opt, const PerfScenario& sc,
                      bool instrumented, bool fault_attached = false,
                      TraceMode trace_mode = {}) {
    WorldConfig cfg;
    cfg.backbone_routers = sc.backbone_routers;
    cfg.tracing = trace_mode.tracing;
    cfg.trace_sample_rate = trace_mode.sample_rate;
    cfg.trace_sample_seed = 1;
    World world{cfg};

    std::vector<CorrespondentHost*> correspondents;
    for (int i = 0; i < sc.correspondents; ++i) {
        CorrespondentHost& ch = world.create_correspondent(
            {}, Placement::CorrLan, static_cast<std::uint32_t>(20 + i));
        ch.tcp().listen(7200, [](transport::TcpConnection& c) {
            c.set_data_callback([&c](std::span<const std::uint8_t> d, const transport::RxMeta&) {
                c.send(std::vector<std::uint8_t>(d.begin(), d.end()));
            });
        });
        correspondents.push_back(&ch);
    }

    MobileHost& mh = world.create_mobile_host();
    if (!world.attach_mobile_foreign()) return {};

    sim::SimProfiler profiler;
    obs::MetricsSampler sampler(world.sim, world.metrics,
                                {.interval = sim::milliseconds(100)});
    if (instrumented) {
        world.sim.set_profiler(&profiler);
        sampler.start();
    }

    // Fault-attached run: a benign chain (one LinkDownFault left in the up
    // state) on every link. Nothing is ever dropped or delayed, so the
    // workload stays identical — the measured delta over baseline is pure
    // hook-dispatch cost.
    std::vector<std::unique_ptr<fault::FaultChain>> chains;
    if (fault_attached) {
        const auto idle = std::make_shared<fault::LinkDownFault>();
        for (sim::Link* link : world.all_links()) {
            auto chain = std::make_unique<fault::FaultChain>();
            chain->add(idle);
            link->set_fault(chain.get());
            chains.push_back(std::move(chain));
        }
    }

    // The measured workload: one echoed TCP conversation per
    // correspondent, all concurrent, driven to the scenario's horizon.
    // Identical simulated work either way — the only difference between
    // the two runs is the attached instrumentation.
    const auto wall_start = std::chrono::steady_clock::now();
    const std::uint64_t events_before = world.sim.events_fired();
    const sim::TimePoint sim_start = world.sim.now();

    std::vector<transport::TcpConnection*> conns;
    for (CorrespondentHost* ch : correspondents) {
        auto& conn = mh.tcp().connect(ch->address(), 7200);
        conn.send(std::vector<std::uint8_t>(sc.tcp_bytes, 0x42));
        conns.push_back(&conn);
    }
    world.run_for(sc.sim_time);
    for (transport::TcpConnection* conn : conns) conn->close();
    world.run_for(sim::milliseconds(500));

    const auto wall_end = std::chrono::steady_clock::now();
    if (fault_attached) {
        for (sim::Link* link : world.all_links()) link->set_fault(nullptr);
    }
    RunStats r;
    r.events = world.sim.events_fired() - events_before;
    r.wall_ms = std::chrono::duration<double, std::milli>(wall_end - wall_start).count();
    r.events_per_sec = r.wall_ms > 0 ? static_cast<double>(r.events) / (r.wall_ms / 1e3) : 0;
    r.sim_seconds = static_cast<double>(world.sim.now() - sim_start) / 1e9;
    r.pool_acquires = world.sim.buffer_pool().stats().acquires;
    r.pool_reuses = world.sim.buffer_pool().stats().reuses;
    r.arena_acquires = world.sim.record_arena().stats().acquires;
    r.arena_allocations = world.sim.record_arena().stats().allocations;
    r.trace_records = world.trace.record_count();
    r.trace_sampled_out = world.trace.records_sampled_out();

    if (instrumented) {
        world.sim.set_profiler(nullptr);
        sampler.stop();
        r.max_queue_depth = profiler.max_queue_depth();
        r.max_cancelled = profiler.max_cancelled_size();
        r.samples = sampler.samples_taken();
        r.profile_summary = profiler.summary();
        // Bridge the profiler into the registry so the exported snapshot
        // and time series carry the ("simulator", ...) gauges too.
        obs::publish_profiler(profiler, world.sim, world.metrics);
        sampler.sample_now();
        bench::export_metrics(opt, world, "bench_perf", sc.name);
        bench::export_timeseries(opt, sampler, "bench_perf", sc.name);
        if (opt.perfetto_enabled()) {
            obs::ChromeTraceWriter writer;
            writer.add_series(sampler);
            bench::export_perfetto(opt, writer, "bench_perf", sc.name);
        }
    }
    return r;
}

obs::JsonValue::Object run_to_json(const RunStats& r) {
    obs::JsonValue::Object o;
    o["events"] = r.events;
    o["wall_ms"] = r.wall_ms;
    o["events_per_sec"] = r.events_per_sec;
    o["sim_seconds"] = r.sim_seconds;
    o["reps"] = r.reps;
    o["pool_acquires"] = r.pool_acquires;
    o["pool_reuses"] = r.pool_reuses;
    return o;
}

/// The tracing-overhead block (schema_version 3): the same workload with
/// tracing detached entirely, fully traced (the product default), and
/// journey-sampled at kSampleRate. The traced percentage is the one
/// check_perf_trend.py gates at 25%.
constexpr double kSampleRate = 0.1;

/// One measured configuration of a scenario.
struct LegSpec {
    bool instrumented = false;
    bool fault_attached = false;
    TraceMode trace_mode = {};
};

/// Measures every leg with round-robin interleaved reps: leg 0, leg 1,
/// ..., leg N-1, repeat. Block-ordered measurement (all reps of one leg,
/// then the next) lets slow machine-state drift — CPU frequency,
/// container throttling — land entirely on whichever leg ran first and
/// masquerade as overhead; interleaving spreads it across all legs so
/// the deltas isolate the configuration cost. One discarded warm-up rep
/// per leg pays the process-wide first-run costs (allocator arenas,
/// page faults, icache).
std::vector<RunStats> measure_legs(const bench::HarnessOptions& opt,
                                   const PerfScenario& sc,
                                   const std::vector<LegSpec>& legs, int reps) {
    for (const LegSpec& leg : legs) {
        run_scenario(opt, sc, leg.instrumented, leg.fault_attached, leg.trace_mode);
    }
    std::vector<std::vector<RunStats>> runs(legs.size());
    for (int i = 0; i < reps; ++i) {
        for (std::size_t l = 0; l < legs.size(); ++l) {
            runs[l].push_back(run_scenario(opt, sc, legs[l].instrumented,
                                           legs[l].fault_attached, legs[l].trace_mode));
        }
    }
    std::vector<RunStats> medians;
    for (std::vector<RunStats>& leg_runs : runs) {
        std::sort(leg_runs.begin(), leg_runs.end(),
                  [](const RunStats& a, const RunStats& b) { return a.wall_ms < b.wall_ms; });
        RunStats m = leg_runs[leg_runs.size() / 2];
        m.events_per_sec =
            m.wall_ms > 0 ? static_cast<double>(m.events) / (m.wall_ms / 1e3) : 0;
        m.reps = reps;
        medians.push_back(std::move(m));
    }
    return medians;
}

obs::JsonValue::Object overhead_to_json(const RunStats& untraced, const RunStats& traced,
                                        const RunStats& sampled) {
    const auto pct = [&untraced](const RunStats& r) {
        return untraced.wall_ms > 0
                   ? (r.wall_ms - untraced.wall_ms) / untraced.wall_ms * 100.0
                   : 0.0;
    };
    obs::JsonValue::Object untr = run_to_json(untraced);
    obs::JsonValue::Object tr = run_to_json(traced);
    tr["trace_records"] = traced.trace_records;
    tr["arena_acquires"] = traced.arena_acquires;
    tr["arena_allocations"] = traced.arena_allocations;
    obs::JsonValue::Object sm = run_to_json(sampled);
    sm["sample_rate"] = kSampleRate;
    sm["trace_records"] = sampled.trace_records;
    sm["trace_sampled_out"] = sampled.trace_sampled_out;

    obs::JsonValue::Object o;
    o["untraced"] = std::move(untr);
    o["traced"] = std::move(tr);
    o["sampled"] = std::move(sm);
    o["traced_overhead_pct"] = pct(traced);
    o["sampled_overhead_pct"] = pct(sampled);
    return o;
}

/// The sweep engine measuring itself: the chaos seed sweep serially and
/// with --jobs {2,4}. The speedup is hardware-dependent (it cannot exceed
/// the machine's core count); the byte-identity of the results is not —
/// each parallel run's merged report and per-job metrics snapshots must
/// match the serial run exactly.
obs::JsonValue::Object measure_sweep_scaling(const bench::HarnessOptions& opt) {
    const int seeds = opt.pick(20, 5);
    // Exports disabled: these sweeps measure compute, and must not clobber
    // the figure artifacts abl_chaos exports.
    const bench::HarnessOptions quiet{.smoke = opt.smoke};

    const auto run_with = [&](int jobs) {
        const sweep::SweepRunner runner({.jobs = jobs});
        return runner.run(bench::chaos::seed_jobs(seeds, opt.smoke, quiet));
    };

    const sweep::SweepOutcome serial = run_with(1);
    const std::string serial_report = serial.report("abl_chaos", "sweep").dump(2);

    std::printf("\nsweep scaling (%d-seed chaos sweep, hardware_concurrency=%u):\n",
                seeds, std::thread::hardware_concurrency());
    std::printf("%6s  %12s  %8s  %10s\n", "jobs", "wall(ms)", "speedup", "identical");
    std::printf("%6d  %12.1f  %8s  %10s\n", 1, serial.wall_ms, "1.00x", "-");

    bool all_identical = true;
    obs::JsonValue::Array parallel;
    for (const int jobs : {2, 4}) {
        const sweep::SweepOutcome par = run_with(jobs);
        bool identical = par.report("abl_chaos", "sweep").dump(2) == serial_report &&
                         par.results.size() == serial.results.size();
        if (identical) {
            for (std::size_t i = 0; i < par.results.size(); ++i) {
                if (par.results[i].metrics.dump(2) != serial.results[i].metrics.dump(2)) {
                    identical = false;
                    break;
                }
            }
        }
        all_identical = all_identical && identical;
        const double speedup = par.wall_ms > 0 ? serial.wall_ms / par.wall_ms : 0.0;
        std::printf("%6d  %12.1f  %7.2fx  %10s\n", jobs, par.wall_ms, speedup,
                    bench::yn(identical));
        obs::JsonValue::Object p;
        p["jobs"] = jobs;
        p["wall_ms"] = par.wall_ms;
        p["speedup"] = speedup;
        parallel.emplace_back(std::move(p));
    }

    obs::JsonValue::Object sw;
    sw["seeds"] = seeds;
    sw["serial_wall_ms"] = serial.wall_ms;
    sw["parallel"] = std::move(parallel);
    sw["artifacts_identical"] = all_identical;
    sw["hardware_concurrency"] =
        static_cast<std::uint64_t>(std::thread::hardware_concurrency());
    return sw;
}

void write_report(const bench::HarnessOptions& opt, const obs::JsonValue& doc) {
    const char* out = std::getenv("M4X4_BENCH_PERF_OUT");
    if (opt.smoke && (out == nullptr || out[0] == '\0')) {
        // Smoke scenarios are deliberately tiny; their wall-clock numbers
        // would overwrite a meaningful baseline.
        return;
    }
    const std::string path = (out != nullptr && out[0] != '\0') ? out : "BENCH_perf.json";
    std::ofstream f(path);
    f << doc.dump(2) << "\n";
    std::printf("wrote %s\n", path.c_str());
}

void print_figure(const bench::HarnessOptions& opt) {
    bench::print_header(
        "bench_perf: simulator self-measurement",
        "Each scenario runs the same simulated workload five ways:\n"
        "baseline (profiler, sampler and fault hooks detached — the\n"
        "default), fault-attached (a benign FaultChain on every link),\n"
        "instrumented (SimProfiler attached, MetricsSampler ticking every\n"
        "100ms), untraced (TraceRecorder detached) and sampled (journey\n"
        "sampling). Reps are interleaved round-robin across the legs so\n"
        "machine drift cancels out of the deltas; wall times are medians\n"
        "over the rep count. events/sec is the discrete-event dispatch\n"
        "rate in wall time.");

    const int reps = opt.pick(5, 2);
    obs::JsonValue::Array rows;
    std::string largest_profile;
    std::printf("%-8s %6s %10s %12s %14s %12s %9s %12s %9s\n", "size", "sim(s)",
                "events", "base wall ms", "base ev/s", "fault wall", "fault +%",
                "inst wall ms", "inst +%");
    struct OverheadRow {
        const char* name;
        RunStats untraced, traced, sampled;
    };
    std::vector<OverheadRow> overhead_rows;
    for (const PerfScenario& sc : scenarios(opt)) {
        // All five configurations of a scenario are measured in one
        // interleaved group (see measure_legs). The baseline — recorder
        // attached, nothing sampled out — doubles as the traced leg of
        // the overhead block, since it is the same configuration and the
        // interleaving keeps the comparison drift-free.
        const std::vector<RunStats> measured = measure_legs(
            opt, sc,
            {
                LegSpec{},                                            // baseline / traced
                LegSpec{.fault_attached = true},                      // fault-attached
                LegSpec{.instrumented = true},                        // instrumented
                LegSpec{.trace_mode = {.tracing = false}},            // untraced
                LegSpec{.trace_mode = {.sample_rate = kSampleRate}},  // sampled
            },
            reps);
        const RunStats& base = measured[0];
        const RunStats& fault = measured[1];
        const RunStats& inst = measured[2];
        struct {
            RunStats untraced, traced, sampled;
        } legs{measured[3], measured[0], measured[4]};
        const double overhead_pct =
            base.wall_ms > 0 ? (inst.wall_ms - base.wall_ms) / base.wall_ms * 100.0 : 0.0;
        const double fault_pct =
            base.wall_ms > 0 ? (fault.wall_ms - base.wall_ms) / base.wall_ms * 100.0
                             : 0.0;

        std::printf("%-8s %6.1f %10" PRIu64 " %12.1f %14.0f %12.1f %8.1f%% %12.1f %8.1f%%\n",
                    sc.name, base.sim_seconds, base.events, base.wall_ms,
                    base.events_per_sec, fault.wall_ms, fault_pct, inst.wall_ms,
                    overhead_pct);

        obs::JsonValue::Object row;
        row["name"] = sc.name;
        row["backbone_routers"] = sc.backbone_routers;
        row["correspondents"] = sc.correspondents;
        row["tcp_bytes"] = static_cast<std::uint64_t>(sc.tcp_bytes);
        row["baseline"] = run_to_json(base);
        row["fault_attached"] = run_to_json(fault);
        row["fault_attached_overhead_pct"] = fault_pct;
        obs::JsonValue::Object instr = run_to_json(inst);
        instr["max_queue_depth"] = static_cast<std::uint64_t>(inst.max_queue_depth);
        instr["max_cancelled"] = static_cast<std::uint64_t>(inst.max_cancelled);
        instr["sampler_samples"] = inst.samples;
        row["instrumented"] = std::move(instr);
        row["instrumentation_overhead_pct"] = overhead_pct;
        row["overhead"] = overhead_to_json(legs.untraced, legs.traced, legs.sampled);
        rows.emplace_back(std::move(row));
        overhead_rows.push_back({sc.name, legs.untraced, legs.traced, legs.sampled});
        largest_profile = inst.profile_summary;
    }

    std::printf("\ntracing overhead (untraced = recorder detached; traced = the\n"
                "product default; sampled = journey sampling at rate %.2f;\n"
                "interleaved reps):\n",
                kSampleRate);
    std::printf("%-8s %14s %13s %9s %13s %9s %12s\n", "size", "untraced ms",
                "traced ms", "traced+%", "sampled ms", "sampl+%", "records");
    for (const OverheadRow& row : overhead_rows) {
        const auto pct = [&row](const RunStats& r) {
            return row.untraced.wall_ms > 0
                       ? (r.wall_ms - row.untraced.wall_ms) / row.untraced.wall_ms * 100.0
                       : 0.0;
        };
        std::printf("%-8s %14.1f %13.1f %8.1f%% %13.1f %8.1f%% %12" PRIu64 "\n",
                    row.name, row.untraced.wall_ms, row.traced.wall_ms, pct(row.traced),
                    row.sampled.wall_ms, pct(row.sampled), row.traced.trace_records);
    }

    std::printf("\nper-kind profile of the largest scenario (instrumented run):\n%s\n",
                largest_profile.c_str());

    obs::JsonValue::Object doc;
    doc["schema_version"] = 3;
    doc["kind"] = "bench_perf";
    doc["smoke"] = opt.smoke;
    doc["reps"] = reps;
    doc["hardware_concurrency"] =
        static_cast<std::uint64_t>(std::thread::hardware_concurrency());
    doc["scenarios"] = std::move(rows);
    doc["sweep_scaling"] = measure_sweep_scaling(opt);
    write_report(opt, obs::JsonValue(std::move(doc)));
}

}  // namespace

int main(int argc, char** argv) {
    const bench::HarnessOptions opt = bench::parse_harness_options(&argc, argv);
    print_figure(opt);
    return 0;
}
