// Figure 5 — A Smart Correspondent Host.
//
// "A correspondent host with enhanced networking software can learn the
// mobile host's temporary care-of address, and then perform the
// encapsulation itself, sending the packet directly to the mobile host."
// We reproduce both discovery mechanisms from §3.2 — the home agent's ICMP
// care-of advert and the DNS TA record — and measure the route
// optimization they unlock.
#include "common.h"
#include "obs/metrics_view.h"

using namespace mip;
using namespace mip::core;

namespace {

void print_figure(const bench::HarnessOptions& opt) {
    bench::print_header(
        "Figure 5: Smart correspondent — route optimization",
        "Ping RTT from correspondent to the mobile host's home address,\n"
        "before and after the correspondent learns the care-of address.");

    // --- mechanism 1: ICMP care-of advert ------------------------------------
    {
        WorldConfig cfg;
        cfg.backbone_routers = 8;
        cfg.home_attach = 0;
        cfg.foreign_attach = 7;
        cfg.corr_attach = 7;
        cfg.home_agent.send_care_of_adverts = true;
        World world{cfg};
        CorrespondentConfig ccfg;
        ccfg.awareness = Awareness::MobileAware;
        CorrespondentHost& ch = world.create_correspondent(ccfg, Placement::CorrLan);
        world.create_mobile_host();
        if (world.attach_mobile_foreign()) {
            // Cold: first exchange is In-IE, and triggers the advert.
            const auto cold =
                bench::measure_ping(world, ch.stack(), world.mh_home_addr(),
                                    {}, /*warm_up=*/false);
            // Warm: the binding is cached; packets go In-DE.
            const auto warm = bench::measure_ping(world, ch.stack(), world.mh_home_addr(),
                                                  {}, /*warm_up=*/false);
            std::printf("mechanism: ICMP care-of advert (§3.2 #1)\n");
            std::printf("  %-34s %10.3f ms   %3zu ip-hops\n",
                        "first exchange (In-IE + advert):", cold.rtt_ms, cold.ip_hops);
            std::printf("  %-34s %10.3f ms   %3zu ip-hops\n",
                        "after optimization (In-DE):", warm.rtt_ms, warm.ip_hops);
            std::printf("  %-34s %10.2fx\n", "improvement:",
                        warm.rtt_ms > 0 ? cold.rtt_ms / warm.rtt_ms : 0.0);
            std::printf("  correspondent mode now: %s, adverts learned: %zu\n\n",
                        to_string(ch.mode_for(world.mh_home_addr())).c_str(),
                        static_cast<std::size_t>(
                            obs::MetricsView(world.metrics)
                                .node("ch0")
                                .gauge("mobileip", "adverts_learned")));
            bench::export_metrics(opt, world, "fig05", "icmp_advert");
        }
    }

    // --- mechanism 2: DNS TA record -------------------------------------------
    {
        WorldConfig cfg;
        cfg.backbone_routers = 8;
        cfg.home_attach = 0;
        cfg.foreign_attach = 7;
        cfg.corr_attach = 7;
        World world{cfg};
        world.enable_dns();
        CorrespondentConfig ccfg;
        ccfg.awareness = Awareness::MobileAware;
        CorrespondentHost& ch = world.create_correspondent(ccfg, Placement::CorrLan);
        world.create_mobile_host();
        if (world.attach_mobile_foreign()) {
            // The mobile host publishes its care-of address (a real host
            // would do this right after registering, §3.2).
            dns::Resolver mh_resolver(world.mobile_host().udp(), world.dns_server_addr());
            mh_resolver.send_update(dns::Record{world.mh_dns_name(), dns::RecordType::TA,
                                                world.mh_care_of_addr(), 120});
            world.run_for(sim::seconds(2));

            const auto before = bench::measure_ping(world, ch.stack(),
                                                    world.mh_home_addr());
            dns::Resolver ch_resolver(ch.udp(), world.dns_server_addr());
            bool resolved = false;
            ch.discover_via_dns(ch_resolver, world.mh_dns_name(),
                                [&](net::Ipv4Address home) {
                                    resolved = !home.is_unspecified();
                                });
            world.run_for(sim::seconds(2));
            const auto after = bench::measure_ping(world, ch.stack(), world.mh_home_addr());

            std::printf("mechanism: DNS TA record (§3.2 #2, MX-like extension)\n");
            std::printf("  %-34s %10s\n", "A+TA lookup resolved:", bench::yn(resolved));
            std::printf("  %-34s %10.3f ms   %3zu ip-hops\n", "before lookup (In-IE):",
                        before.rtt_ms, before.ip_hops);
            std::printf("  %-34s %10.3f ms   %3zu ip-hops\n", "after lookup (In-DE):",
                        after.rtt_ms, after.ip_hops);
            std::printf("  %-34s %10.2fx\n\n", "improvement:",
                        after.rtt_ms > 0 ? before.rtt_ms / after.rtt_ms : 0.0);
            bench::export_metrics(opt, world, "fig05", "dns_ta");
        }
    }
    std::printf(
        "Shape check: both discovery channels collapse the triangle route to\n"
        "the direct path; the hop count drops to the CH<->MH neighbourhood.\n\n");
}

void BM_CareOfAdvertBuildParse(benchmark::State& state) {
    const auto home = net::Ipv4Address::must_parse("10.1.0.10");
    const auto coa = net::Ipv4Address::must_parse("10.2.0.10");
    for (auto _ : state) {
        const auto m = net::IcmpMessage::care_of_advert(home, coa);
        net::BufferWriter w;
        m.serialize(w);
        net::BufferReader r(w.view());
        const auto parsed = net::IcmpMessage::parse(r);
        benchmark::DoNotOptimize(parsed.advertised_care_of());
    }
}
BENCHMARK(BM_CareOfAdvertBuildParse);

void BM_BindingCacheLookup(benchmark::State& state) {
    BindingTable table;
    for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(state.range(0)); ++i) {
        table.set(net::Ipv4Address(0x0a010000u + i), net::Ipv4Address(0x0a020000u + i),
                  1'000'000'000);
    }
    std::uint32_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            table.lookup(net::Ipv4Address(0x0a010000u + (i++ % state.range(0))), 0));
    }
}
BENCHMARK(BM_BindingCacheLookup)->Arg(16)->Arg(1024);

}  // namespace

M4X4_BENCH_MAIN(print_figure)
