// The chaos-convergence seed job, shared between abl_chaos (the figure
// and CI assertion) and bench_perf (the sweep-scaling measurement).
//
// Per seed: build a world, attach the mobile host to the foreign segment,
// generate FaultPlan::random(seed) (link flaps, burst loss, corruption,
// duplication, reorder, jitter, home-agent crashes, boundary filter
// churn), hand it to a FaultInjector, and probe end-to-end delivery with
// a periodic ICMP echo from the mobile host's *home address* to a
// correspondent across the backbone — the path that exercises the full
// Mobile IP machinery (binding at the home agent, outgoing-mode
// selection, boundary filters). Recovery time is the gap between the
// plan's last clearing action and the first successful round trip that
// started after it. A seed converges iff that happens within the bound.
//
// Each job builds its World inside the run callback and communicates
// only through its JobResult — the SweepRunner determinism contract
// (DESIGN.md §10) — so the per-seed report, metrics snapshot and
// exported artifacts are byte-identical for any --jobs value.
#pragma once

#include <algorithm>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "obs/incident.h"
#include "obs/monitor.h"
#include "sweep/sweep.h"

namespace bench::chaos {

/// How long after the last clearing action delivery must be restored.
inline constexpr mip::sim::Duration kRecoveryBound = mip::sim::seconds(10);
inline constexpr mip::sim::Duration kProbeInterval = mip::sim::milliseconds(250);
inline constexpr mip::sim::Duration kProbeTimeout = mip::sim::seconds(1);

/// Attribution: the class of the plan's last-clearing fault — the fault
/// whose disappearance recovery is measured from. (With overlapping
/// windows other faults may still share blame; the decision log has the
/// full timeline when the aggregate is not enough.)
inline const char* fault_class(mip::fault::FaultKind kind) {
    using mip::fault::FaultKind;
    switch (mip::fault::clearing_kind(kind)) {
        case FaultKind::LinkUp: return "link-flap";
        case FaultKind::BurstLossOff: return "burst-loss";
        case FaultKind::CorruptionOff: return "corruption";
        case FaultKind::DuplicationOff: return "duplication";
        case FaultKind::ReorderOff: return "reorder";
        case FaultKind::JitterOff: return "jitter";
        case FaultKind::AgentRestart: return "agent-crash";
        case FaultKind::FilterChurnOff: return "filter-churn";
        default: return "none";
    }
}

inline const char* last_fault_class(const mip::fault::FaultPlan& plan) {
    const mip::fault::FaultAction* last = nullptr;
    for (const mip::fault::FaultAction& a : plan.actions()) {
        if (!mip::fault::is_clearing(a.kind)) continue;
        if (last == nullptr || a.at >= last->at) last = &a;
    }
    return last != nullptr ? fault_class(last->kind) : "none";
}

struct SeedOutcome {
    std::uint64_t seed = 0;
    std::size_t plan_size = 0;
    double last_clear_s = 0.0;
    std::string fault_class = "none";
    bool converged = false;
    double recovery_ms = 0.0;
    std::size_t probes_failed = 0;
    std::size_t cancelled_backlog = 0;
    // Health-monitor outcome (PR 8): total trips across all monitors, did
    // a monitor matching the seed's fault class trip before recovery, when
    // that first matching trip fired, and how many incident bundles the
    // flight recorder captured.
    std::uint64_t monitor_trips = 0;
    bool monitor_matched = false;
    double first_trip_ms = -1.0;
    std::uint64_t incidents = 0;
};

/// The monitors every chaos run arms, and which fault classes each one is
/// evidence for. "probe-failures" is the end-to-end canary — any injected
/// fault that breaks delivery shows up there — while the others pin the
/// symptom to a mechanism (registration machinery, binding lifetime, RTT
/// inflation).
inline bool monitor_matches_class(const std::string& monitor, const std::string& cls) {
    if (monitor == "probe-failures") return true;  // delivery canary: any class
    if (monitor == "registration-backoff") {
        return cls == "agent-crash" || cls == "link-flap" || cls == "burst-loss" ||
               cls == "corruption" || cls == "filter-churn";
    }
    if (monitor == "binding-expiry") {
        return cls == "agent-crash" || cls == "link-flap";
    }
    if (monitor == "probe-rtt-p95") {
        return cls == "jitter" || cls == "reorder" || cls == "duplication" ||
               cls == "burst-loss";
    }
    if (monitor == "transport-give-up") {
        // The TCP canary gives up only after a sustained delivery outage —
        // the same fault classes that starve the registration machinery.
        return cls == "agent-crash" || cls == "link-flap" || cls == "burst-loss" ||
               cls == "corruption" || cls == "filter-churn";
    }
    return false;
}

inline const char* const kChaosMonitors[] = {
    "probe-failures", "registration-backoff", "binding-expiry", "probe-rtt-p95",
    "transport-give-up"};

/// p95 end-to-end RTT SLO for the chaos probes (the "p95 delivery within
/// bound" style of rule from the issue). The clean tunnel path (MH home
/// address -> HA -> backbone -> correspondent and back) has a p95 around
/// 45 ms, so 500 ms flags only genuine degradation — queueing pileups or
/// repeated near-timeout exchanges — with >10x margin against false
/// trips on the fault-free control leg.
inline constexpr double kRttSloNs = 5.0e8;

/// Arms the standard chaos monitor set on @p monitor (see
/// monitor_matches_class for the class attribution).
inline void arm_chaos_monitors(mip::obs::HealthMonitor& monitor) {
    using namespace mip;
    obs::RateSpikeRule probe;
    probe.name = "probe-failures";
    probe.node = "mobile-host";
    probe.layer = "chaos";
    probe.metric = "probe_failures";
    probe.source = obs::MetricSource::Counter;
    probe.min_rate = 1.0;
    probe.detail = "end-to-end chaos probe timed out";
    monitor.add_rate_spike(probe);

    obs::RateSpikeRule backoff;
    backoff.name = "registration-backoff";
    backoff.node = "mobile-host";
    backoff.layer = "mobileip";
    backoff.metric = "registration_backoffs";
    backoff.source = obs::MetricSource::Gauge;
    backoff.min_rate = 1.0;
    backoff.detail = "registration request went unanswered";
    monitor.add_rate_spike(backoff);

    obs::WatermarkRule expiry;
    expiry.name = "binding-expiry";
    expiry.node = "mobile-host";
    expiry.layer = "mobileip";
    expiry.metric = "binding_expiries";
    expiry.source = obs::MetricSource::Gauge;
    expiry.trip_at = 1.0;
    expiry.detail = "home binding expired without renewal";
    monitor.add_watermark(expiry);

    // PR 10: the transport give-up audit. TcpService counts every
    // connection that exhausts its retransmission budget under
    // ("mobile-host","transport","give_ups") and records a cc-give-up
    // decision event; one give-up on the canary flow trips this rule.
    obs::WatermarkRule give_up;
    give_up.name = "transport-give-up";
    give_up.node = "mobile-host";
    give_up.layer = "transport";
    give_up.metric = "give_ups";
    give_up.source = obs::MetricSource::Counter;
    give_up.trip_at = 1.0;
    give_up.detail = "tcp canary exhausted its retransmission budget";
    monitor.add_watermark(give_up);

    obs::QuantileSloRule rtt;
    rtt.name = "probe-rtt-p95";
    rtt.quantile = 0.95;
    rtt.bound = kRttSloNs;
    rtt.min_samples = 20;
    rtt.unit = "ns";
    rtt.detail = "p95 end-to-end probe RTT above SLO";
    monitor.add_quantile_slo(rtt);
}

/// Runs one seeded chaos scenario to completion. @p export_artifacts
/// gates the per-seed metrics/decisions/timeseries files — bench_perf's
/// scaling runs pass exports-disabled options so repeated sweeps measure
/// pure compute and never clobber the figure's artifacts.
///
/// Monitors and the flight recorder are always armed (that is the PR 8
/// point: detection is cheap enough to leave on). @p inject false runs
/// the identical scenario with the fault plan generated but never
/// executed — the fault-free control leg that must produce zero trips.
inline SeedOutcome run_seed(std::uint64_t seed, bool smoke, const HarnessOptions& opt,
                            mip::sweep::JobResult* job = nullptr, bool inject = true) {
    using namespace mip;
    using namespace mip::core;

    WorldConfig cfg;
    cfg.backbone_routers = smoke ? 2 : 4;
    cfg.seed = seed;
    World world{cfg};
    CorrespondentHost& ch = world.create_correspondent({}, Placement::CorrLan);

    MobileHostConfig mcfg = world.mobile_config();
    // Short lifetime + capped backoff: recovery from a home-agent crash
    // rides the ordinary re-registration cycle instead of waiting out the
    // default 300 s binding.
    mcfg.registration_lifetime = 5;
    mcfg.registration_backoff_cap = sim::seconds(2);
    // Stale cached modes re-probe the strategy's initial pick, so a host
    // that downgraded under filter churn climbs back up once it clears.
    mcfg.cache.mode_ttl = sim::seconds(5);
    // Short give-up fuse for the TCP canary below: four doubling RTOs
    // (~3 s of sustained outage) before the transport declares the path
    // dead — well inside any fault window that also breaks the probes,
    // and unreachable on the fault-free control leg.
    mcfg.tcp.rto = sim::milliseconds(200);
    mcfg.tcp.max_retries = 4;
    MobileHost& mh = world.create_mobile_host(std::move(mcfg));
    world.enable_decision_log();

    SeedOutcome out;
    out.seed = seed;
    if (!world.attach_mobile_foreign()) return out;

    fault::ChaosProfile profile;
    profile.horizon = smoke ? sim::seconds(8) : sim::seconds(15);
    if (smoke) profile.impairments = 1;
    fault::FaultPlan plan = fault::FaultPlan::random(seed, profile);
    out.plan_size = plan.size();
    out.fault_class = last_fault_class(plan);
    const sim::TimePoint last_clear = plan.last_clear_time();
    out.last_clear_s = sim::to_seconds(last_clear);

    fault::FaultInjector injector(world, /*seed=*/seed ^ 0xc4a05);
    if (inject) injector.execute(plan);

    const std::string label = inject ? "seed" + std::to_string(seed) : "control";

    // TCP canary (PR 10): a persistent trickle flow from the mobile host's
    // home address to the correspondent. Any fault that severs delivery
    // long enough exhausts the short retransmission fuse above; the
    // give-up is audited as a counter + decision event by TcpService and
    // the transport-give-up watermark turns it into a monitor trip. The
    // fault-free control leg must keep the counter at zero.
    mh.tcp().set_observability("mobile-host", &world.metrics, &world.decisions);
    ch.tcp().listen(7500, [](transport::TcpConnection& c) {
        c.set_data_callback([](std::span<const std::uint8_t>, auto&&...) {});
    });
    transport::TcpConnection& canary = mh.tcp().connect(ch.address(), 7500);
    std::function<void()> canary_tick = [&] {
        if (!canary.alive()) return;  // gave up: the watermark has its trip
        if (canary.established()) {
            canary.send(std::vector<std::uint8_t>(64, 0xca));
        }
        world.sim.schedule_in(sim::milliseconds(500), canary_tick, "chaos-canary");
    };
    world.sim.schedule_in(sim::milliseconds(500), canary_tick, "chaos-canary");

    // Always-on observability: the delta-sampled time series feeds the
    // flight recorder's excerpts, and the health monitors watch the run
    // live. Deep exports (the full timeseries + Perfetto files) stay
    // gated on the metrics dir.
    mip::obs::MetricsSampler sampler(world.sim, world.metrics,
                                     {.interval = sim::milliseconds(100)});
    const bool deep_export = opt.metrics_enabled() || opt.perfetto_enabled();
    sampler.start();

    mip::obs::HealthMonitor monitor(world.sim, world.metrics,
                                    {.interval = sim::milliseconds(250)});
    arm_chaos_monitors(monitor);
    monitor.set_decision_log(&world.decisions);
    mip::obs::IncidentRecorder recorder;
    recorder.attach_trace(&world.trace);
    recorder.attach_decisions(&world.decisions);
    recorder.attach_sampler(&sampler);
    recorder.arm(monitor, "abl_chaos", label);
    monitor.start();

    // Periodic end-to-end probe, self-scheduling from t=now. Recovery is
    // the completion time of the first successful exchange *sent* at or
    // after last_clear (an exchange that straddles the boundary proves
    // nothing about the fault-free network).
    mip::transport::Pinger pinger(mh.stack());
    bool recovered = false;
    sim::TimePoint recovered_at = 0;
    std::size_t failed = 0;
    std::function<void()> probe = [&] {
        const sim::TimePoint sent_at = world.sim.now();
        pinger.ping(
            ch.address(),
            [&, sent_at](std::optional<sim::Duration> rtt, const transport::RxMeta&) {
                if (rtt.has_value()) {
                    mh.method_cache().report_success(ch.address(), world.sim.now());
                    monitor.observe("probe-rtt-p95", static_cast<double>(*rtt));
                    if (!recovered && sent_at >= last_clear) {
                        recovered = true;
                        recovered_at = world.sim.now();
                    }
                } else {
                    ++failed;
                    world.metrics.counter("mobile-host", "chaos", "probe_failures").add();
                    mh.method_cache().report_failure(ch.address(), world.sim.now(),
                                                     "chaos-probe-timeout");
                }
            },
            kProbeTimeout, 56, mh.home_address());
        if (!recovered) {
            world.sim.schedule_in(kProbeInterval, probe, "chaos-probe");
        }
    };
    world.sim.schedule_in(0, probe, "chaos-probe");

    const sim::TimePoint deadline = last_clear + kRecoveryBound;
    while (!recovered && world.sim.now() < deadline) {
        world.run_for(kProbeInterval);
    }
    // Let the last in-flight echo resolve.
    world.run_for(kProbeTimeout + kProbeInterval);

    out.converged = recovered;
    out.recovery_ms =
        recovered ? sim::to_milliseconds(std::max<sim::Duration>(
                        0, recovered_at - last_clear))
                  : sim::to_milliseconds(kRecoveryBound);
    out.probes_failed = failed;
    out.cancelled_backlog = world.sim.cancelled_backlog();

    // Monitor outcome: did a monitor whose class set covers this seed's
    // fault class trip, and did its first trip precede recovery?
    out.monitor_trips = monitor.trips();
    out.incidents = recorder.captured();
    const sim::TimePoint recovery_cutoff = recovered ? recovered_at : deadline;
    sim::TimePoint first_match = -1;
    for (const char* name : kChaosMonitors) {
        if (monitor.trip_count(name) == 0) continue;
        if (!monitor_matches_class(name, out.fault_class)) continue;
        const sim::TimePoint ft = monitor.first_trip_at(name);
        if (ft >= 0 && (first_match < 0 || ft < first_match)) first_match = ft;
    }
    out.monitor_matched = first_match >= 0 && first_match <= recovery_cutoff;
    if (first_match >= 0) out.first_trip_ms = sim::to_milliseconds(first_match);

    world.metrics
        .histogram("mobile-host", "chaos", "recovery_ms",
                   {50, 100, 250, 500, 1000, 2000, 5000, 10000})
        .observe(out.recovery_ms);
    mip::obs::DecisionEvent ev;
    ev.when = world.sim.now();
    ev.node = "chaos-harness";
    ev.correspondent = out.fault_class;
    ev.trigger = "recovery";
    ev.test = "delivery-restored";
    ev.input = "bound=" +
               std::to_string(static_cast<long long>(sim::to_milliseconds(kRecoveryBound))) +
               "ms";
    ev.passed = out.converged;
    ev.detail = out.converged
                    ? "end-to-end delivery restored after last fault cleared"
                    : "no successful round trip inside the recovery bound";
    world.decisions.record(std::move(ev));

    monitor.stop();
    sampler.stop();
    export_metrics(opt, world, "abl_chaos", label);
    export_decisions(opt, world.decisions, "abl_chaos", label);
    export_incidents(opt, recorder, "abl_chaos", label);
    if (deep_export) {
        export_timeseries(opt, sampler, "abl_chaos", label);
        mip::obs::ChromeTraceWriter writer;
        writer.add_series(sampler);
        export_perfetto(opt, writer, "abl_chaos", label);
    }

    if (job != nullptr) {
        job->metrics = world.metrics.snapshot("abl_chaos", label, world.sim.now());
        job->decision_count = world.decisions.size();
    }
    return out;
}

/// The sweep job for one seed: deterministic report row + metrics
/// snapshot for the merge stage.
inline mip::sweep::JobSpec seed_job(std::uint64_t seed, bool smoke,
                                    const HarnessOptions& opt) {
    mip::sweep::JobSpec spec;
    spec.id = seed;
    spec.label = "seed" + std::to_string(seed);
    spec.run = [seed, smoke, opt]() {
        mip::sweep::JobResult r;
        const SeedOutcome out = run_seed(seed, smoke, opt, &r);
        r.report["seed"] = out.seed;
        r.report["plan_size"] = static_cast<std::uint64_t>(out.plan_size);
        r.report["last_clear_s"] = out.last_clear_s;
        r.report["fault_class"] = out.fault_class;
        r.report["converged"] = out.converged;
        r.report["recovery_ms"] = out.recovery_ms;
        r.report["probes_failed"] = static_cast<std::uint64_t>(out.probes_failed);
        r.report["cancelled_backlog"] =
            static_cast<std::uint64_t>(out.cancelled_backlog);
        r.report["monitor_trips"] = out.monitor_trips;
        r.report["monitor_matched"] = out.monitor_matched;
        r.report["first_trip_ms"] = out.first_trip_ms;
        r.report["incidents"] = out.incidents;
        return r;
    };
    return spec;
}

/// Seeds 1..@p seeds as a job list ready for SweepRunner::run.
inline std::vector<mip::sweep::JobSpec> seed_jobs(int seeds, bool smoke,
                                                  const HarnessOptions& opt) {
    std::vector<mip::sweep::JobSpec> jobs;
    jobs.reserve(static_cast<std::size_t>(seeds));
    for (int s = 1; s <= seeds; ++s) {
        jobs.push_back(seed_job(static_cast<std::uint64_t>(s), smoke, opt));
    }
    return jobs;
}

}  // namespace bench::chaos
